//! # wait-free-locks
//!
//! A reproduction of **"Fast and Fair Randomized Wait-Free Locks"** by
//! Naama Ben-David and Guy Blelloch (PODC 2022, arXiv:2108.04520): a
//! `tryLock` over sets of fine-grained locks that is **wait-free** (every
//! attempt finishes in `O(κ²L²T)` of the caller's own steps, even if every
//! other process is stalled) and **fair** (every attempt succeeds with
//! probability ≥ `1/(κL)` against an oblivious scheduler adversary and an
//! adaptive player adversary).
//!
//! The facade re-exports the workspace crates:
//!
//! * [`runtime`] — the asynchronous shared-memory substrate: a word heap,
//!   step-counted process contexts, a real-threads driver and a
//!   deterministic simulator with oblivious adversarial schedules and an
//!   adaptive player-adversary hook.
//! * [`idem`] — the idempotence construction for critical sections
//!   (Theorem 4.2): any number of helpers may run a thunk concurrently
//!   with the combined effect of exactly one run.
//! * [`activeset`] — the linearizable active set (Algorithm 1) and the
//!   set-regular multi active set (Algorithm 2).
//! * [`core`] — the lock algorithm itself (Algorithm 3): known-bounds and
//!   unknown-bounds (§6.2) variants and the retry-until-success wrapper.
//! * [`baselines`] — Turek–Shasha–Prakash-style lock-free locks, blocking
//!   two-phase locking, and a no-helping tryLock, behind one trait.
//! * [`delegation`] — combining lock baselines (flat combining, CCSynch)
//!   behind the same trait: the delegation execution model head-to-head
//!   against wfl and its combining fast path (E17).
//! * [`workloads`] — dining philosophers, bank transfers, a sorted linked
//!   list, graph updates, and the experiment harness.
//! * [`lincheck`] — linearizability, set-regularity and holder-
//!   exclusivity checkers used by the test suite.
//! * [`fairness`] — fairness telemetry (fixed-bucket histograms, Jain
//!   index) and the adaptive player adversary on both backends (E15).
//!
//! The most common entry points are also re-exported at the top level.
//!
//! ## Quickstart
//!
//! ```
//! use wait_free_locks::{
//!     Heap, SimBuilder, SeededRandom, Ctx,
//!     Registry, TagSource, Thunk, IdemRun, cell,
//!     LockConfig, LockSpace, LockId, Scratch, TryLockRequest, lock_and_run,
//! };
//!
//! // A critical section: transfer-like read-modify-write.
//! struct Incr;
//! impl Thunk for Incr {
//!     fn run(&self, run: &mut IdemRun<'_, '_>) {
//!         let c = wait_free_locks::Addr::from_word(run.arg(0));
//!         let v = run.read(c);
//!         run.write(c, v + 1);
//!     }
//!     fn max_ops(&self) -> usize { 2 }
//! }
//!
//! let mut registry = Registry::new();
//! let incr = registry.register(Incr);
//! let heap = Heap::new(1 << 20);
//! let space = LockSpace::create_root(&heap, 1, 2);
//! let counter = heap.alloc_root(1);
//! let cfg = LockConfig::new(2, 1, 2);
//!
//! let (space, registry) = (&space, &registry);
//! let report = SimBuilder::new(&heap, 2)
//!     .schedule(SeededRandom::new(2, 7))
//!     .max_steps(10_000_000)
//!     .spawn_all(|pid| move |ctx: &Ctx| {
//!         let mut tags = TagSource::new(pid);
//!         let mut scratch = Scratch::new();
//!         let req = TryLockRequest { locks: &[LockId(0)], thunk: incr, args: &[counter.to_word()] };
//!         lock_and_run(ctx, space, registry, &cfg, &mut tags, &mut scratch, req);
//!     })
//!     .run();
//! report.assert_clean();
//! assert_eq!(cell::value(heap.peek(counter)), 2);
//! ```

pub use wfl_activeset as activeset;
pub use wfl_baselines as baselines;
pub use wfl_core as core;
pub use wfl_delegation as delegation;
pub use wfl_fairness as fairness;
pub use wfl_idem as idem;
pub use wfl_lincheck as lincheck;
pub use wfl_obs as obs;
pub use wfl_runtime as runtime;
pub use wfl_workloads as workloads;

// Common entry points at the top level.
pub use wfl_core::{
    lock_and_run, lock_and_run_limited, try_locks, try_locks_unknown, AttemptMetrics, LockConfig,
    LockId, LockSpace, RetryMetrics, Scratch, SpaceLayout, TryLockRequest, UnknownConfig,
};
pub use wfl_idem::{cell, Frame, IdemRun, Registry, TagSource, Thunk, ThunkId};
pub use wfl_runtime::epoch::{EpochState, EpochSync};
pub use wfl_runtime::schedule::{Bursty, RoundRobin, SeededRandom, StallWindow, Stalls, Weighted};
pub use wfl_runtime::sim::SimBuilder;
pub use wfl_runtime::{
    available_parallelism, clamp_threads, run_threads, run_threads_epochs, run_threads_with, Addr,
    AllocMode, CachePadded, ClockMode, Ctx, Heap, HeapExhausted, HeapMark, OrderTier, Placement,
    RealConfig, LINE_WORDS,
};
