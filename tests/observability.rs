//! Integration tests of the flight recorder (`wfl_obs`) through the
//! harness: sim traces are deterministic (same seed ⇒ bit-identical
//! event sequence, faulted cells included), turning the recorder on
//! never perturbs the run it observes, and the disabled path stays
//! cheap enough to leave compiled into every build.
//!
//! The recorder is process-global, so every test here serializes on one
//! mutex (other integration-test binaries are separate processes).

use std::sync::Mutex;
use wait_free_locks::obs::{perfetto, rec, EventKind};
use wait_free_locks::workloads::harness::{
    run_random_conflict_mode, AlgoKind, ExecMode, HarnessReport, SchedKind, SimSpec,
};

static RECORDER: Mutex<()> = Mutex::new(());

fn recorder_lock() -> std::sync::MutexGuard<'static, ()> {
    RECORDER.lock().unwrap_or_else(|e| e.into_inner())
}

/// The e16 fault shape at 3 procs: each 85050-slot window freezes a
/// victim for its first 56700 global slots.
const FAULTS: SchedKind = SchedKind::RandomFaults { period: 85_050, quantum: 56_700 };
/// A deadline below wfl's mandatory pre-decision stall at κ = 3
/// (~82·κ² own steps), so every armed attempt aborts at the first
/// post-stall poll point — a dense abort/give-up event mix.
const TIGHT: u64 = 675;

fn spec(nprocs: usize, rounds: usize) -> SimSpec {
    let mut spec = SimSpec::new(nprocs, rounds, nprocs, 1);
    spec.seed = 1312;
    spec.think_max = 0;
    spec.cs_work = 400;
    spec.heap_words = 1 << 23;
    spec
}

fn wfl(nprocs: usize) -> AlgoKind {
    AlgoKind::Wfl { kappa: nprocs.max(2), delays: true, helping: true }
}

/// A faulted, deadline-armed sim cell — the densest event mix we have
/// (attempt phases, aborts, give-ups, rescues, fault windows).
fn run_faulted(record: bool) -> HarnessReport {
    let mut mode = ExecMode::sim(FAULTS, 2_000_000_000).with_deadline_steps(TIGHT);
    if record {
        mode = mode.with_recorder();
    }
    let r = run_random_conflict_mode(&spec(3, 50), wfl(3), &mode);
    assert!(r.safety_ok);
    r
}

#[test]
fn sim_trace_is_deterministic() {
    let _g = recorder_lock();
    for sched in [SchedKind::Random, FAULTS] {
        let run = || {
            let mode = ExecMode::sim(sched, 2_000_000_000)
                .with_deadline_steps(TIGHT)
                .with_recorder();
            let r = run_random_conflict_mode(&spec(3, 40), wfl(3), &mode);
            assert!(r.safety_ok);
            r.trace.expect("recorded run carries a trace")
        };
        let a = run();
        let b = run();
        assert!(a.total_events() > 0, "{sched:?}: empty trace");
        assert_eq!(a, b, "{sched:?}: same seed must replay to an identical trace");
    }
}

#[test]
fn recording_does_not_perturb_the_run() {
    let _g = recorder_lock();
    let plain = run_faulted(false);
    let recorded = run_faulted(true);
    assert!(plain.trace.is_none());
    let trace = recorded.trace.as_ref().expect("recorded run carries a trace");
    assert!(trace.total_events() > 0);
    // Outcome books and step accounting are bit-identical: every recorder
    // argument is an uncounted read, so the schedule cannot shift.
    assert_eq!(plain.attempts, recorded.attempts);
    assert_eq!(plain.wins, recorded.wins);
    assert_eq!(plain.aborts, recorded.aborts);
    assert_eq!(plain.rescues, recorded.rescues);
    assert_eq!(plain.give_up, recorded.give_up);
    assert_eq!(plain.per_pid, recorded.per_pid);
    assert_eq!(plain.steps.samples(), recorded.steps.samples());
}

#[test]
fn faulted_trace_reaches_the_exporter() {
    let _g = recorder_lock();
    let r = run_faulted(true);
    let trace = r.trace.as_ref().unwrap();
    // The event mix a faulted deadline-armed cell must show.
    let kinds: Vec<EventKind> = trace
        .per_pid
        .iter()
        .flat_map(|(_, events)| events.iter().map(|e| e.kind))
        .collect();
    assert!(kinds.contains(&EventKind::AttemptStart));
    assert!(kinds.contains(&EventKind::AttemptEnd));
    assert!(kinds.contains(&EventKind::Abort), "deadline-armed cell must abort");
    assert!(kinds.contains(&EventKind::FaultStart), "faulted cell must open fault windows");
    // And the export round-trips through the validator.
    let doc = perfetto::export(trace, &[("test", "observability".to_string())]);
    let stats = perfetto::validate(&doc).expect("exported trace validates");
    assert!(stats.attempts > 0);
    assert!(stats.aborts > 0);
    assert!(stats.fault_windows > 0);
}

#[test]
fn disabled_path_stays_cheap() {
    let _g = recorder_lock();
    assert!(!rec::is_enabled());
    // 20M disabled-path calls: one relaxed load + branch each. The bound
    // is ~50x the expected cost — loose enough for any shared CI machine,
    // tight enough to catch the disabled path growing real work (an
    // allocation, a lock, a syscall) by accident.
    let start = std::time::Instant::now();
    for i in 0..20_000_000u64 {
        rec::record(2, EventKind::AttemptStart, i, i, 1);
    }
    let elapsed = start.elapsed();
    assert!(
        elapsed < std::time::Duration::from_secs(2),
        "20M disabled-path records took {elapsed:?}"
    );
    // Nothing was written.
    assert_eq!(rec::snapshot().total_events(), 0);
}
