//! Schedule-sweep stress over the abort/help race: deadline-armed attempts
//! under adversarial schedules — including the E16 fault windows that
//! freeze a victim mid-critical-section — must keep every safety and
//! conservation invariant of the outcome book, for every interleaving the
//! sweep reaches.
//!
//! This is the integration-level counterpart of the in-module harness
//! tests: those pin one schedule family; this sweeps schedule x window
//! shape x deadline so the abort poll points race against helping from
//! many alignments (aborter's `ACTIVE -> LOST` CAS vs a helper's decide,
//! freezes landing before, inside, and after the reveal stall).

use wait_free_locks::core::GiveUp;
use wait_free_locks::workloads::harness::{
    run_random_conflict_mode, AlgoKind, ExecMode, HarnessReport, SchedKind, SimSpec,
};

/// One lock of three per attempt with a padded critical section, zero
/// think time: the E16 shape, scaled down to test size.
fn spec(seed: u64) -> SimSpec {
    let mut spec = SimSpec::new(3, 20, 3, 1);
    spec.seed = seed;
    spec.think_max = 0;
    spec.cs_work = 120;
    spec.heap_words = 1 << 22;
    spec
}

/// The invariants every cell must satisfy, whatever the interleaving.
fn audit(r: &HarnessReport, deadline: u64, label: &str) {
    assert!(r.safety_ok, "{label}: safety audit failed");
    assert_eq!(r.attempts, 60, "{label}: every round must be recorded");
    assert!(r.rescues <= r.aborts, "{label}: rescues exceed aborts");
    assert!(r.rescues <= r.wins, "{label}: rescued attempts count as wins");
    assert!(
        r.wins + (r.aborts - r.rescues) <= r.attempts,
        "{label}: non-rescued aborts and wins must be disjoint attempts"
    );
    assert_eq!(
        r.abort_steps.len() as u64,
        r.aborts,
        "{label}: abort latency book must cover the aborts exactly"
    );
    // Nothing stops or starves a sim cell, so every abort is a deadline
    // abort, and the reason book says so exactly.
    assert_eq!(
        r.give_up[GiveUp::Deadline.index()],
        r.aborts,
        "{label}: abort reasons must classify exactly once"
    );
    if r.aborts > 0 {
        // The poll points bound overstay: an abort surfaces within the
        // budget plus one reveal stall (the T0 stall has no poll inside,
        // so a sub-stall budget saturates at the first post-stall poll).
        let worst = r.abort_steps.max();
        assert!(
            worst <= deadline + 2_500,
            "{label}: abort overstayed its budget (worst {worst}, budget {deadline})"
        );
    }
}

#[test]
fn abort_help_race_survives_schedule_sweep() {
    // Fault windows sized against the sweep's own deadlines: the small
    // window freezes the victim for about one attempt, the large one for
    // many — catching descriptors before, during, and after the reveal.
    let scheds = [
        SchedKind::Random,
        SchedKind::Bursty(64),
        SchedKind::RandomFaults { period: 6_000, quantum: 3_000 },
        SchedKind::RandomFaults { period: 40_000, quantum: 30_000 },
    ];
    // Below the kappa=3 reveal stall (~743 own steps), between stall and a
    // comfortable attempt, and loose enough that only freezes bite.
    let deadlines = [500u64, 1_500, 6_000];
    let algos = [
        AlgoKind::Wfl { kappa: 3, delays: true, helping: true },
        AlgoKind::WflUnknown,
    ];
    for (si, sched) in scheds.into_iter().enumerate() {
        for deadline in deadlines {
            for algo in algos {
                let label = format!("{}/sched{}/d{}", algo.label(), si, deadline);
                let spec = spec(7 + si as u64);
                let mode =
                    ExecMode::sim(sched, 2_000_000_000).with_deadline_steps(deadline);
                let r = run_random_conflict_mode(&spec, algo, &mode);
                audit(&r, deadline, &label);
                if deadline == 500 && matches!(algo, AlgoKind::Wfl { .. }) {
                    // A budget below the mandatory stall can never be met:
                    // the known-bound attempt must abort every round.
                    assert_eq!(r.aborts, r.attempts, "{label}: sub-stall budget must abort");
                }
            }
        }
    }
}

#[test]
fn faulted_deadline_cells_replay_identically() {
    let sched = SchedKind::RandomFaults { period: 40_000, quantum: 30_000 };
    let algo = AlgoKind::Wfl { kappa: 3, delays: true, helping: true };
    let run = || {
        let mode = ExecMode::sim(sched, 2_000_000_000).with_deadline_steps(1_500);
        run_random_conflict_mode(&spec(11), algo, &mode)
    };
    let (a, b) = (run(), run());
    assert_eq!(
        (a.attempts, a.wins, a.aborts, a.rescues, a.give_up),
        (b.attempts, b.wins, b.aborts, b.rescues, b.give_up),
        "outcome book must be schedule-deterministic under faults"
    );
    assert_eq!(a.steps.max(), b.steps.max());
    assert_eq!(a.abort_steps.len(), b.abort_steps.len());
}
