//! Integration tests of the epoch lifecycle: quiescent heap resets + tag
//! rewinds + root re-creation, across both execution backends.
//!
//! Three angles:
//!
//! 1. A **proptest** that places the epoch boundary at an adversarially
//!    chosen round split (× random schedules and seeds) and asserts every
//!    workload's safety check survives the crossing with nothing lost or
//!    double-counted.
//! 2. A real-threads **contention stress** that forces several epoch
//!    boundaries under `RealConfig::fast()`.
//! 3. The **lincheck smoke slice** (ROADMAP open item #3): a real-mode
//!    Precise-clock history of the bank workload's first epoch, fed
//!    through `wfl_lincheck::regular` against a synthetic final `getSet`
//!    built from the heap-recorded outcomes. A transfer that the history
//!    claims won but the heap recording lost (or vice versa) shows up as a
//!    set-regularity violation.

use proptest::prelude::*;
use std::time::Duration;
use wait_free_locks::lincheck::regular::{check_set_regularity, MS_GETSET, MS_INSERT};
use wait_free_locks::runtime::Event;
use wait_free_locks::workloads::harness::{
    bank_history_token, run_bank_mode, run_bank_mode_recorded, run_graph_mode, run_list_mode,
    run_philosophers_mode, run_random_conflict_mode, AlgoKind, ExecMode, SchedKind, SimSpec,
    BANK_HIST_LOSS, BANK_HIST_WIN,
};
use wait_free_locks::RealConfig;

fn sched_for(kind: u8) -> SchedKind {
    match kind % 3 {
        0 => SchedKind::Random,
        1 => SchedKind::Bursty(17),
        _ => SchedKind::WeightedRamp,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Sim-mode epoch boundaries at adversarial positions: for any round
    /// split, schedule family, and seed, every workload's safety check
    /// holds across the reset and the attempt totals are exact (nothing
    /// lost or double-counted at the boundary).
    #[test]
    fn epoch_boundary_at_adversarial_split_preserves_safety(
        epoch_rounds in 1usize..8,
        seed in 0u64..10_000,
        sched_kind in 0u8..3,
        nprocs in 2usize..4,
    ) {
        let total = 8usize;
        let algo = AlgoKind::Wfl { kappa: nprocs, delays: false, helping: true };
        let mode = ExecMode::sim(sched_for(sched_kind), 200_000_000)
            .with_epoch_rounds(epoch_rounds);
        let expect_epochs = total.div_ceil(epoch_rounds.min(total)) as u64;

        let mut spec = SimSpec::new(nprocs, total, 4, 2);
        spec.seed = seed;
        spec.heap_words = 1 << 22;
        let r = run_random_conflict_mode(&spec, algo, &mode);
        prop_assert!(r.safety_ok, "conflict: split {epoch_rounds} broke safety");
        prop_assert_eq!(r.attempts, (nprocs * total) as u64);
        prop_assert_eq!(r.epochs, expect_epochs);

        let r = run_philosophers_mode(nprocs.max(2), total, seed, algo, 1 << 22, &mode);
        prop_assert!(r.safety_ok, "philosophers: split {epoch_rounds} broke safety");
        prop_assert_eq!(r.attempts, (nprocs.max(2) * total) as u64);

        let r = run_bank_mode(nprocs, 4, total, 100, seed, algo, 1 << 22, &mode);
        prop_assert!(r.safety_ok, "bank: split {epoch_rounds} broke conservation");
        prop_assert_eq!(r.attempts, (nprocs * total) as u64);

        let r = run_list_mode(nprocs, total, seed, algo, 1 << 22, &mode);
        prop_assert!(r.safety_ok, "list: split {epoch_rounds} broke the snapshot");
        prop_assert_eq!(r.attempts, (nprocs * total) as u64);

        let r = run_graph_mode(nprocs, 5, total, seed, algo, 1 << 22, &mode);
        prop_assert!(r.safety_ok, "graph: split {epoch_rounds} broke update counters");
        prop_assert_eq!(r.attempts, (nprocs * total) as u64);
    }
}

/// Real-threads stress: a timed run under `RealConfig::fast()` whose small
/// epoch batches force many boundaries under genuine hardware contention,
/// and an untimed run whose exact totals prove no outcome is lost or
/// double-counted across the resets.
#[test]
fn real_threads_epoch_stress_under_contention() {
    // Timed leg: >= 3 boundaries, full wall budget, aggregated safety.
    let mut spec = SimSpec::new(4, 50, 2, 2); // 2 locks, L=2: everyone collides
    spec.seed = 97;
    spec.think_max = 0;
    spec.heap_words = 1 << 22;
    let budget = Duration::from_millis(150);
    let mode = ExecMode::real_timed(4, budget).with_epoch_rounds(50);
    for algo in [AlgoKind::WflUnknown, AlgoKind::Naive] {
        let r = run_random_conflict_mode(&spec, algo, &mode);
        assert!(r.safety_ok, "{algo:?}: safety violated across epoch resets");
        assert!(r.epochs >= 3, "{algo:?}: only {} epochs in {budget:?}", r.epochs);
        assert!(
            r.attempts > 200,
            "{algo:?}: {} attempts — epochs did not extend past one tag batch",
            r.attempts
        );
        assert_eq!(
            r.per_pid.iter().map(|p| p.1).sum::<u64>(),
            r.attempts,
            "{algo:?}: per-pid attempt totals disagree with the aggregate"
        );
        assert_eq!(r.steps.len() as u64, r.attempts, "{algo:?}: one steps sample per attempt");
        let wall = r.wall.expect("real runs report wall");
        assert!(wall >= budget, "{algo:?}: stopped early at {wall:?}");
    }

    // Untimed leg: fixed total split into epochs — totals must be *exact*.
    let mode = ExecMode::real(4).with_epoch_rounds(7); // 50 = 7x7 + 1 partial
    let r = run_random_conflict_mode(&spec, AlgoKind::WflUnknown, &mode);
    assert!(r.safety_ok);
    assert_eq!(r.attempts, 200, "outcome lost or double-counted across resets");
    assert_eq!(r.epochs, 8);
}

/// The lincheck smoke slice: real-mode Precise-clock bank history (first
/// epoch) through the set-regularity checker.
#[test]
fn bank_real_history_first_epoch_is_set_regular() {
    let mode = ExecMode::Real {
        threads: 3,
        run_for: None,
        cfg: RealConfig::precise(), // globally ordered event timestamps
        epoch_rounds: Some(8),
        deadline_steps: None,
        recorder: false,
    };
    let (r, win_tokens) =
        run_bank_mode_recorded(3, 4, 16, 100, 61, AlgoKind::Wfl {
            kappa: 3,
            delays: false,
            helping: true,
        }, 1 << 22, &mode);
    assert!(r.safety_ok, "bank conservation failed");
    assert_eq!(r.epochs, 2, "two epochs: history must cover only the first");
    assert_eq!(r.attempts, 48);

    // Sanity: the opcode bridge to the checker holds, and the event stream
    // covers exactly the first epoch's 3x8 attempts.
    assert_eq!(BANK_HIST_WIN, MS_INSERT, "harness opcode must match the checker's");
    let wins: Vec<&Event> = r.history.events.iter().filter(|e| e.op == BANK_HIST_WIN).collect();
    let losses = r.history.events.iter().filter(|e| e.op == BANK_HIST_LOSS).count();
    assert_eq!(wins.len() + losses, 24, "history covers exactly the first epoch");
    assert_eq!(wins.len(), win_tokens.len(), "history wins != heap-recorded wins");
    assert!(!wins.is_empty(), "some transfer must have won");

    // Synthesize the final getSet from the *heap-recorded* outcomes and
    // check set regularity: every history-claimed win must be present,
    // nothing else may be.
    let mut set = win_tokens.clone();
    set.sort_unstable();
    let t_end = r.history.events.iter().map(|e| e.response).max().unwrap_or(0);
    let mut history = r.history.clone();
    history.events.push(Event {
        pid: 0,
        op: MS_GETSET,
        a: 0,
        b: 0,
        result: 0,
        result_set: set,
        invoke: t_end + 1,
        response: t_end + 2,
    });
    let violations = check_set_regularity(&history);
    assert!(violations.is_empty(), "history/outcome divergence: {violations:#?}");

    // Negative control: drop one real win from the getSet — the checker
    // must notice the lost member (proves the smoke test has teeth).
    let mut broken = r.history.clone();
    let mut short_set: Vec<u64> = win_tokens.clone();
    short_set.sort_unstable();
    short_set.pop();
    broken.events.push(Event {
        pid: 0,
        op: MS_GETSET,
        a: 0,
        b: 0,
        result: 0,
        result_set: short_set,
        invoke: t_end + 1,
        response: t_end + 2,
    });
    assert!(
        !check_set_regularity(&broken).is_empty(),
        "checker failed to flag a deliberately dropped win"
    );

    // And a phantom token never attempted must also be flagged.
    let mut phantom = r.history.clone();
    let mut phantom_set = win_tokens;
    phantom_set.push(bank_history_token(999, 999));
    phantom_set.sort_unstable();
    phantom.events.push(Event {
        pid: 0,
        op: MS_GETSET,
        a: 0,
        b: 0,
        result: 0,
        result_set: phantom_set,
        invoke: t_end + 1,
        response: t_end + 2,
    });
    assert!(
        !check_set_regularity(&phantom).is_empty(),
        "checker failed to flag a phantom win"
    );
}
