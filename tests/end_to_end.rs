//! Cross-crate integration tests through the facade: the full stack
//! (runtime simulator → idempotence → active sets → lock algorithm →
//! workloads) exercised end to end.

use wait_free_locks::baselines::{LockAlgo, WflKnown};
use wait_free_locks::workloads::bank::Bank;
use wait_free_locks::workloads::philosophers::Table;
use wait_free_locks::{
    cell, lock_and_run, Addr, Bursty, Ctx, Heap, IdemRun, LockConfig, LockId, LockSpace, Registry,
    Scratch, SeededRandom, SimBuilder, StallWindow, Stalls, TagSource, Thunk, TryLockRequest,
};

struct Incr;
impl Thunk for Incr {
    fn run(&self, run: &mut IdemRun<'_, '_>) {
        let c = Addr::from_word(run.arg(0));
        let v = run.read(c);
        run.write(c, v + 1);
    }
    fn max_ops(&self) -> usize {
        2
    }
}

/// The facade's quickstart flow: retry-until-success increments under one
/// lock, exact counting.
#[test]
fn facade_lock_and_run_counts_exactly() {
    let mut registry = Registry::new();
    let incr = registry.register(Incr);
    let heap = Heap::new(1 << 22);
    let space = LockSpace::create_root(&heap, 1, 3);
    let counter = heap.alloc_root(1);
    let cfg = LockConfig::new(3, 1, 2);
    let (space, registry) = (&space, &registry);
    let report = SimBuilder::new(&heap, 3)
        .schedule(SeededRandom::new(3, 5))
        .max_steps(200_000_000)
        .spawn_all(|pid| {
            move |ctx: &Ctx| {
                let mut tags = TagSource::new(pid);
                let mut scratch = Scratch::new();
                for _ in 0..5 {
                    let req = TryLockRequest {
                        locks: &[LockId(0)],
                        thunk: incr,
                        args: &[counter.to_word()],
                    };
                    lock_and_run(ctx, space, registry, &cfg, &mut tags, &mut scratch, req);
                }
            }
        })
        .run();
    report.assert_clean();
    assert_eq!(cell::value(heap.peek(counter)), 15);
}

/// Crash a philosopher mid-run; its neighbors must keep making progress
/// (wait-freedom via helping), and all meal counters stay exact.
#[test]
fn crashed_philosopher_does_not_starve_neighbors() {
    for crash_time in [500u64, 2_000, 10_000] {
        let n = 4;
        let mut registry = Registry::new();
        let heap = Heap::new(1 << 24);
        let table = Table::create_root(&heap, &mut registry, n);
        let space = LockSpace::create_root(&heap, n, 2);
        let algo = WflKnown {
            space: &space,
            registry: &registry,
            cfg: LockConfig::new(2, 2, 2),
        };
        let (table_ref, algo_ref) = (&table, &algo);
        let wins = heap.alloc_root(n);
        let report = SimBuilder::new(&heap, n)
            .schedule(Stalls::new(
                wait_free_locks::RoundRobin::new(n),
                vec![StallWindow::crash(0, crash_time)],
            ))
            .max_steps(100_000_000)
            .spawn_all(|pid| {
                move |ctx: &Ctx| {
                    let mut tags = TagSource::new(pid);
                    let mut scratch = Scratch::new();
                    let mut w = 0u64;
                    let rounds = if pid == 0 { 10_000 } else { 8 };
                    for _ in 0..rounds {
                        if ctx.stop_requested() {
                            break;
                        }
                        if table_ref.attempt_eat(ctx, algo_ref, &mut tags, &mut scratch, pid).won {
                            w += 1;
                        }
                        ctx.write(wins.off(pid as u32), w);
                    }
                }
            })
            .run();
        assert!(report.panics.is_empty(), "crash {crash_time}: {:?}", report.panics);
        // Meal counters never exceed recorded wins + 1 (the crashed
        // philosopher may have one in-flight win recorded by helpers but
        // not yet written to its wins cell).
        for i in 0..n {
            let meals = table.meals_eaten(&heap, i) as u64;
            let w = heap.peek(wins.off(i as u32));
            assert!(
                meals == w || (i == 0 && meals == w + 1),
                "crash {crash_time}: philosopher {i}: meals {meals} vs wins {w}"
            );
        }
        // Neighbors made progress.
        for i in 1..n {
            assert!(
                heap.peek(wins.off(i as u32)) > 0,
                "crash {crash_time}: philosopher {i} starved"
            );
        }
    }
}

/// Bank conservation under the bursty adversarial schedule, with delays.
#[test]
fn bank_conserves_money_with_delays_and_bursty_schedule() {
    let nprocs = 3;
    let accounts = 4;
    let mut registry = Registry::new();
    let heap = Heap::new(1 << 24);
    let bank = Bank::create_root(&heap, &mut registry, accounts, 500);
    let space = LockSpace::create_root(&heap, accounts, nprocs);
    let algo = WflKnown {
        space: &space,
        registry: &registry,
        cfg: LockConfig::new(nprocs, 2, 4),
    };
    let initial = bank.total(&heap);
    let (bank_ref, algo_ref) = (&bank, &algo);
    let report = SimBuilder::new(&heap, nprocs)
        .seed(13)
        .schedule(Bursty::new(nprocs, 50, 13))
        .max_steps(400_000_000)
        .spawn_all(|pid| {
            move |ctx: &Ctx| {
                let mut tags = TagSource::new(pid);
                let mut scratch = Scratch::new();
                for _ in 0..8 {
                    let a = ctx.rand_below(accounts as u64) as usize;
                    let mut b = ctx.rand_below(accounts as u64) as usize;
                    if a == b {
                        b = (b + 1) % accounts;
                    }
                    bank_ref.attempt_transfer(ctx, algo_ref, &mut tags, &mut scratch, a, b, 25);
                }
            }
        })
        .run();
    report.assert_clean();
    assert_eq!(bank.total(&heap), initial);
}

/// The unknown-bounds variant works through the facade too.
#[test]
fn unknown_bounds_end_to_end() {
    use wait_free_locks::{try_locks_unknown, UnknownConfig};
    let mut registry = Registry::new();
    let incr = registry.register(Incr);
    let heap = Heap::new(1 << 22);
    let space = LockSpace::create_root(&heap, 2, 3);
    let counter = heap.alloc_root(1);
    let ucfg = UnknownConfig::new();
    let (space, registry, ucfg) = (&space, &registry, &ucfg);
    let wins = heap.alloc_root(3);
    let report = SimBuilder::new(&heap, 3)
        .schedule(SeededRandom::new(3, 9))
        .max_steps(200_000_000)
        .spawn_all(|pid| {
            move |ctx: &Ctx| {
                let mut tags = TagSource::new(pid);
                let mut scratch = Scratch::new();
                let mut w = 0u64;
                for _ in 0..6 {
                    let req = TryLockRequest {
                        locks: &[LockId(0), LockId(1)],
                        thunk: incr,
                        args: &[counter.to_word()],
                    };
                    if try_locks_unknown(ctx, space, registry, ucfg, &mut tags, &mut scratch, req).won {
                        w += 1;
                    }
                }
                ctx.write(wins.off(pid as u32), w);
            }
        })
        .run();
    report.assert_clean();
    let total: u64 = (0..3).map(|i| heap.peek(wins.off(i))).sum();
    assert_eq!(cell::value(heap.peek(counter)) as u64, total);
    assert!(total >= 1);
}

/// Mixed algorithms coexisting on one heap (separate lock structures):
/// the paper's lock and a baseline each keep their own invariants.
#[test]
fn wfl_and_baseline_coexist_on_one_heap() {
    use wait_free_locks::baselines::TspLock;
    let mut registry = Registry::new();
    let incr = registry.register(Incr);
    let heap = Heap::new(1 << 24);
    let space = LockSpace::create_root(&heap, 1, 2);
    let tsp = TspLock::create_root(&heap, &registry, 1);
    let c_wfl = heap.alloc_root(1);
    let c_tsp = heap.alloc_root(1);
    let cfg = LockConfig::new(2, 1, 2).without_delays();
    let wfl = WflKnown { space: &space, registry: &registry, cfg };
    let (wfl_ref, tsp_ref) = (&wfl, &tsp);
    let report = SimBuilder::new(&heap, 4)
        .schedule(SeededRandom::new(4, 33))
        .max_steps(200_000_000)
        .spawn_all(|pid| {
            move |ctx: &Ctx| {
                let mut tags = TagSource::new(pid);
                let mut scratch = Scratch::new();
                for _ in 0..5 {
                    if pid < 2 {
                        let req = TryLockRequest {
                            locks: &[LockId(0)],
                            thunk: incr,
                            args: &[c_wfl.to_word()],
                        };
                        // Retry until success so the count is deterministic.
                        while !wfl_ref.attempt(ctx, &mut tags, &mut scratch, &req).won {}
                    } else {
                        let req = TryLockRequest {
                            locks: &[LockId(0)],
                            thunk: incr,
                            args: &[c_tsp.to_word()],
                        };
                        tsp_ref.attempt(ctx, &mut tags, &mut scratch, &req);
                    }
                }
            }
        })
        .run();
    report.assert_clean();
    assert_eq!(cell::value(heap.peek(c_wfl)), 10);
    assert_eq!(cell::value(heap.peek(c_tsp)), 10);
}
