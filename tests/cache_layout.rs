//! Integration tests for the cache-layout work (padded placement +
//! lock-neighborhood sharding, DESIGN.md §1.3):
//!
//! 1. A **proptest** that shard routing is a stable pure function of the
//!    lock id: rebuilding the map, copying it, or re-rooting the heap
//!    never changes where an id routes, and the shards always tile the id
//!    space contiguously.
//! 2. Layout is **pure address arithmetic**: a deterministic sim replay
//!    (same seed, same schedule) produces an identical report under all
//!    four placement x sharding combinations, across epoch re-rootings.
//! 3. The safety audits hold on the **sharded** active set over
//!    multi-epoch real-mode histories: set regularity on the bank
//!    workload's recorded transfers, holder exclusivity on the adversary's
//!    recorded holder sequences — both against a lock space the default
//!    layout actually splits into several shards.

use proptest::prelude::*;
use wait_free_locks::activeset::{create_sharded_roots, ShardMap};
use wait_free_locks::fairness::{run_adversary, AdvStrength, AdversarySpec};
use wait_free_locks::lincheck::holders::assert_holder_exclusive;
use wait_free_locks::lincheck::regular::{assert_set_regular, MS_GETSET, MS_INSERT};
use wait_free_locks::runtime::Event;
use wait_free_locks::workloads::harness::{
    run_bank_mode_recorded, run_random_conflict_mode, AlgoKind, ExecMode, SchedKind, SimSpec,
    BANK_HIST_WIN,
};
use wait_free_locks::{Heap, Placement, RealConfig, SpaceLayout};

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Shard routing consults no runtime state: the map built from
    /// `(nsets, nshards)` routes every id the same way on every rebuild,
    /// the routes tile `0..nsets` contiguously and monotonically, and
    /// allocating the sets — then rewinding the heap and allocating them
    /// again, as the epoch leader does — reproduces both the map and the
    /// exact set base addresses.
    #[test]
    fn shard_routing_is_a_stable_pure_function_of_the_lock_id(
        nsets in 1usize..96,
        nshards in 1usize..12,
    ) {
        let map = ShardMap::new(nsets, nshards);
        let routes: Vec<usize> = (0..nsets).map(|id| map.shard_of(id)).collect();
        let rebuilt = ShardMap::new(nsets, nshards);
        let routes2: Vec<usize> = (0..nsets).map(|id| rebuilt.shard_of(id)).collect();
        prop_assert_eq!(&routes, &routes2, "rebuilding the map changed routing");

        // Contiguous monotone tiling: shard indices start at 0, step by at
        // most 1, end at nshards-1, and agree with the member ranges.
        prop_assert_eq!(routes[0], 0);
        prop_assert_eq!(*routes.last().unwrap(), map.nshards() - 1);
        for w in routes.windows(2) {
            prop_assert!(w[1] == w[0] || w[1] == w[0] + 1, "routing skipped a shard");
        }
        for s in 0..map.nshards() {
            for id in map.members(s) {
                prop_assert_eq!(routes[id], s, "members({}) disagrees with shard_of", s);
            }
        }

        // Epoch re-rooting: same creation sequence after a quiescent
        // rewind => byte-identical geometry.
        let heap = Heap::new(1 << 20);
        let mark = heap.mark();
        let (built, sets) = create_sharded_roots(&heap, nsets, 2, Placement::Padded, nshards);
        prop_assert_eq!(built, map, "create_sharded_roots changed the routing map");
        prop_assert_eq!(sets.len(), nsets);
        let bases: Vec<u32> = sets.iter().map(|s| s.base().0).collect();
        heap.reset_to_quiescent(&mark);
        let (again, sets2) = create_sharded_roots(&heap, nsets, 2, Placement::Padded, nshards);
        prop_assert_eq!(again, map);
        let bases2: Vec<u32> = sets2.iter().map(|s| s.base().0).collect();
        prop_assert_eq!(bases, bases2, "re-rooting moved the sharded sets");
    }
}

/// Layout is invisible to the step-counted execution: the same seeded sim
/// (with epoch re-rootings in the middle) produces an identical report
/// under all four placement x sharding combinations.
#[test]
fn sim_replay_is_layout_invariant_across_epochs() {
    let layouts = [
        SpaceLayout::packed_unified(),
        SpaceLayout { placement: Placement::Packed, shards: 0 },
        SpaceLayout { placement: Placement::Padded, shards: 1 },
        SpaceLayout::default(),
    ];
    let mut baseline = None;
    for layout in layouts {
        let mut spec = SimSpec::new(4, 24, 6, 2);
        spec.seed = 99;
        spec.layout = layout;
        let mode = ExecMode::sim(SchedKind::Bursty(13), 400_000_000).with_epoch_rounds(7);
        let algo = AlgoKind::Wfl { kappa: 4, delays: true, helping: true };
        let r = run_random_conflict_mode(&spec, algo, &mode);
        assert!(r.safety_ok, "{}: counter invariant broken", layout.label());
        assert_eq!(r.epochs, 4, "24 rounds at 7/epoch");
        let fingerprint = (r.attempts, r.wins, r.aborts, r.per_pid.clone());
        match &baseline {
            None => baseline = Some(fingerprint),
            Some(b) => {
                assert_eq!(&fingerprint, b, "layout {} diverged from the replay", layout.label())
            }
        }
    }
}

/// Set regularity on the sharded active set, from a real-threads history:
/// the bank run crosses several epoch re-rootings of a lock space the
/// default layout splits into 4 shards; the recorded epoch's history plus
/// a final getSet synthesized from the heap-recorded outcomes must pass
/// the Theorem 5.1 checker.
#[test]
fn sharded_bank_real_history_is_set_regular() {
    const ACCOUNTS: usize = 16;
    let layout = SpaceLayout::default();
    assert!(
        layout.shards_for(ACCOUNTS) > 1,
        "the audit must run against a genuinely sharded space"
    );

    let mode = ExecMode::Real {
        threads: 3,
        run_for: None,
        // Globally ordered event timestamps for the checker's real-time
        // precedence.
        cfg: RealConfig::precise(),
        epoch_rounds: Some(6),
        deadline_steps: None,
        recorder: false,
    };
    let algo = AlgoKind::Wfl { kappa: 3, delays: false, helping: true };
    let (r, win_tokens) = run_bank_mode_recorded(3, ACCOUNTS, 18, 100, 23, algo, 1 << 22, &mode);
    assert!(r.safety_ok, "bank conservation failed on the sharded layout");
    assert_eq!(r.epochs, 3, "the run must cross multiple epoch re-rootings");
    assert_eq!(r.attempts, 54);

    assert_eq!(BANK_HIST_WIN, MS_INSERT, "harness opcode must match the checker's");
    let wins = r.history.events.iter().filter(|e| e.op == BANK_HIST_WIN).count();
    assert_eq!(wins, win_tokens.len(), "history wins != heap-recorded wins");
    assert!(wins > 0, "some transfer must have won in the recorded epoch");

    let mut set = win_tokens;
    set.sort_unstable();
    let t_end = r.history.events.iter().map(|e| e.response).max().unwrap_or(0);
    let mut history = r.history.clone();
    history.events.push(Event {
        pid: 0,
        op: MS_GETSET,
        a: 0,
        b: 0,
        result: 0,
        result_set: set,
        invoke: t_end + 1,
        response: t_end + 2,
    });
    assert_set_regular(&history);
}

/// Holder exclusivity on the sharded active set: the adversary's recorded
/// real-mode run contests a rotating lock inside an 8-lock (2-shard)
/// space across three epochs; every per-lock holder sequence must be
/// consistent with the recorded attempt history.
#[test]
fn sharded_adversary_holder_sequences_are_exclusive() {
    let mut spec = AdversarySpec::new(3, 24);
    spec.nlocks = 8;
    assert!(
        SpaceLayout::default().shards_for(spec.nlocks) > 1,
        "the audit must run against a genuinely sharded space"
    );
    spec.strength = AdvStrength::Flood;
    spec.victim_period = 30;
    spec.seed = 17;
    spec.record = true;
    let mode = ExecMode::Real {
        threads: 3,
        run_for: None,
        cfg: RealConfig::precise(),
        epoch_rounds: Some(8),
        deadline_steps: None,
        recorder: false,
    };
    let r = run_adversary(&spec, AlgoKind::Wfl { kappa: 3, delays: true, helping: true }, &mode);
    assert!(r.safety_ok, "per-epoch win counters diverged on the sharded layout");
    assert_eq!(r.epochs, 3, "24 rounds at 8/epoch");
    assert_eq!(r.holder_logs.len(), 3, "one holder log per recorded epoch");
    assert!(!r.history.is_empty(), "recorded epochs must produce attempt events");
    let total_log: usize = r.holder_logs.iter().map(|(_, t)| t.len()).sum();
    assert_eq!(total_log as u64, r.wins(), "every win appends exactly one holder");
    assert_holder_exclusive(&r.history, &r.holder_logs);
}
