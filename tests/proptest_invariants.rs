//! Property-based tests (proptest) over the core invariants: random
//! workload shapes × random schedules, with the lost-update counter
//! invariant, idempotence agreement, and active-set membership all
//! checked on every case. Failing cases shrink to minimal seeds.

use proptest::prelude::*;
use wait_free_locks::activeset::ActiveSet;
use wait_free_locks::idem::{cell, Frame, IdemRun, Registry, TagSource, Thunk};
use wait_free_locks::{
    try_locks, Addr, Bursty, Ctx, Heap, LockConfig, LockId, LockSpace, Scratch, SeededRandom,
    SimBuilder, TryLockRequest, Weighted,
};

struct IncrAll {
    max_locks: usize,
}
impl Thunk for IncrAll {
    fn run(&self, run: &mut IdemRun<'_, '_>) {
        let n = run.arg(0) as usize;
        for i in 0..n {
            let c = Addr::from_word(run.arg(1 + i));
            let v = run.read(c);
            run.write(c, v + 1);
        }
    }
    fn max_ops(&self) -> usize {
        2 * self.max_locks
    }
}

fn schedule_for(kind: u8, n: usize, seed: u64) -> Box<dyn wait_free_locks::runtime::Schedule> {
    match kind % 3 {
        0 => Box::new(SeededRandom::new(n, seed)),
        1 => Box::new(Bursty::new(n, 1 + (seed % 60), seed)),
        _ => Box::new(Weighted::new(
            &(0..n as u64).map(|i| 1 + (i * seed) % 9).collect::<Vec<_>>(),
            seed,
        )),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Counter invariant: for arbitrary process counts, lock counts, lock
    /// sets and schedules, each lock's counter equals the number of
    /// successful attempts covering it.
    #[test]
    fn lock_counters_always_exact(
        nprocs in 2usize..5,
        nlocks in 1usize..4,
        l in 1usize..3,
        rounds in 1usize..5,
        seed in 0u64..10_000,
        sched_kind in 0u8..3,
    ) {
        let l = l.min(nlocks);
        let mut registry = Registry::new();
        let incr = registry.register(IncrAll { max_locks: l });
        let heap = Heap::new(1 << 22);
        let space = LockSpace::create_root(&heap, nlocks, nprocs);
        let counters = heap.alloc_root(nlocks);
        let outcomes = heap.alloc_root(nprocs * rounds);
        let cfg = LockConfig::new(nprocs, l, 2 * l).without_delays();
        let (space_ref, reg_ref, cfg_ref) = (&space, &registry, &cfg);
        let pick = |pid: usize, round: usize| -> Vec<LockId> {
            let mut rng = wait_free_locks::runtime::rng::Pcg::new(
                seed ^ 0xabcd, ((pid as u64) << 32) | round as u64);
            let mut chosen: Vec<u32> = Vec::new();
            while chosen.len() < l {
                let c = rng.below(nlocks as u64) as u32;
                if !chosen.contains(&c) { chosen.push(c); }
            }
            chosen.sort_unstable();
            chosen.into_iter().map(LockId).collect()
        };
        let report = SimBuilder::new(&heap, nprocs)
            .seed(seed)
            .schedule_box(schedule_for(sched_kind, nprocs, seed))
            .max_steps(300_000_000)
            .spawn_all(|pid| {
                move |ctx: &Ctx| {
                    let mut tags = TagSource::new(pid);
                    let mut scratch = Scratch::new();
                    for round in 0..rounds {
                        let locks = pick(pid, round);
                        let mut args = vec![locks.len() as u64];
                        args.extend(locks.iter().map(|lk| counters.off(lk.0).to_word()));
                        let req = TryLockRequest { locks: &locks, thunk: incr, args: &args };
                        let m = try_locks(ctx, space_ref, reg_ref, cfg_ref, &mut tags, &mut scratch, req);
                        ctx.write(outcomes.off((pid * rounds + round) as u32), 1 + m.won as u64);
                    }
                }
            })
            .run();
        report.assert_clean();
        prop_assert!(report.completed, "did not finish");
        let mut expected = vec![0u64; nlocks];
        for pid in 0..nprocs {
            for round in 0..rounds {
                if heap.peek(outcomes.off((pid * rounds + round) as u32)) == 2 {
                    for lk in pick(pid, round) {
                        expected[lk.0 as usize] += 1;
                    }
                }
            }
        }
        for (lk, &e) in expected.iter().enumerate() {
            prop_assert_eq!(
                cell::value(heap.peek(counters.off(lk as u32))) as u64,
                e,
                "lock {} counter diverged", lk
            );
        }
    }

    /// Idempotence: arbitrary chains of dependent read/write ops helped by
    /// arbitrary helper counts equal one sequential run.
    #[test]
    fn helped_thunks_equal_sequential_run(
        nhelpers in 1usize..6,
        chain_len in 1usize..6,
        init in 0u32..100,
        seed in 0u64..10_000,
    ) {
        struct Chain { len: usize }
        impl Thunk for Chain {
            fn run(&self, run: &mut IdemRun<'_, '_>) {
                let base = Addr::from_word(run.arg(0));
                let mut acc = run.read(base);
                for i in 0..self.len {
                    acc = acc.wrapping_mul(3).wrapping_add(i as u32);
                    run.write(base.off(1 + i as u32), acc);
                }
            }
            fn max_ops(&self) -> usize { 1 + self.len }
        }
        // Sequential expectation.
        let mut acc = init;
        let mut expected = Vec::new();
        for i in 0..chain_len {
            acc = acc.wrapping_mul(3).wrapping_add(i as u32);
            expected.push(acc);
        }
        // Concurrent helped execution.
        let mut registry = Registry::new();
        let id = registry.register(Chain { len: chain_len });
        let heap = Heap::new(1 << 20);
        let base = heap.alloc_root(1 + chain_len);
        heap.poke(base, cell::untagged(init));
        let mut tags = TagSource::new(0);
        let frame = Frame::create_root(&heap, &registry, id, tags.next_base(), &[base.to_word()]);
        let reg = &registry;
        let report = SimBuilder::new(&heap, nhelpers)
            .schedule(SeededRandom::new(nhelpers, seed))
            .spawn_all(|_pid| move |ctx: &Ctx| frame.help(ctx, reg))
            .run();
        report.assert_clean();
        for (i, &e) in expected.iter().enumerate() {
            prop_assert_eq!(cell::value(heap.peek(base.off(1 + i as u32))), e, "op {}", i);
        }
    }

    /// Active set: completed inserts are visible, completed removes are
    /// not, under arbitrary interleavings.
    #[test]
    fn active_set_membership_after_quiescence(
        nprocs in 1usize..5,
        cycles in 1usize..4,
        keep_last in proptest::bool::ANY,
        seed in 0u64..10_000,
    ) {
        let heap = Heap::new(1 << 20);
        let set = ActiveSet::create_root(&heap, nprocs + 1);
        let report = SimBuilder::new(&heap, nprocs)
            .schedule(SeededRandom::new(nprocs, seed))
            .max_steps(50_000_000)
            .spawn_all(|pid| {
                move |ctx: &Ctx| {
                    for c in 0..cycles {
                        let slot = set.insert(ctx, (pid + 1) as u64);
                        let last = c == cycles - 1;
                        if !(keep_last && last) {
                            set.remove(ctx, slot);
                        }
                    }
                }
            })
            .run();
        report.assert_clean();
        // Read membership at quiescence via one fresh process.
        let probe = SimBuilder::new(&heap, 1)
            .spawn(move |ctx: &Ctx| {
                let mut out = Vec::new();
                set.get_set(ctx, &mut out);
                out.sort_unstable();
                let expected: Vec<u64> = if keep_last {
                    (1..=nprocs as u64).collect()
                } else {
                    Vec::new()
                };
                assert_eq!(out, expected, "membership after quiescence");
            })
            .run();
        probe.assert_clean();
    }
}
