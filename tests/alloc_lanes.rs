//! Integration tests of the sharded allocation lanes (DESIGN.md §1.1.2).
//!
//! Three angles:
//!
//! 1. A **proptest** over lane counts × slab sizes × allocation-size
//!    streams, with every lane allocating concurrently from real threads:
//!    returned regions must be pairwise disjoint, sub-slab allocations must
//!    never straddle a slab boundary, and multi-slab grabs must start
//!    slab-aligned.
//! 2. An `Addr::to_word` / `Addr::from_word` roundtrip property.
//! 3. A **multi-epoch real-threads run** asserting that the quiescent
//!    barrier rewinds every lane — cursor (identical addresses re-issued
//!    every epoch), usage counter, and the per-lane high-water accounting.

use proptest::prelude::*;
use std::sync::Mutex;
use wait_free_locks::runtime::epoch::run_epoch_worker;
use wait_free_locks::{
    run_threads_epochs, Addr, AllocMode, Ctx, EpochState, EpochSync, Heap, RealConfig,
};

/// SplitMix-style size stream so each (seed, lane) thread draws a
/// reproducible but well-mixed allocation-size sequence.
fn size_stream(seed: u64, lane: usize, i: usize, max: usize) -> usize {
    let mut z = seed ^ ((lane as u64) << 32) ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    1 + (z ^ (z >> 31)) as usize % max
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Concurrent allocations across lanes never overlap and sub-slab
    /// allocations never straddle a slab boundary, for any lane count,
    /// slab size, and size stream (sizes range past the slab size so
    /// multi-slab grabs are exercised too).
    #[test]
    fn concurrent_lane_allocations_are_disjoint_and_slab_confined(
        nprocs in 1usize..7,
        slab_exp in 3u32..7,
        allocs in 8usize..60,
        seed in 0u64..10_000,
    ) {
        let slab_words = 1usize << slab_exp; // 8..=64: always a line multiple
        let heap = Heap::with_mode(1 << 17, AllocMode::Laned { lanes: nprocs, slab_words });
        prop_assert_eq!(heap.slab_words(), slab_words);
        let regions: Vec<Mutex<Vec<(usize, usize)>>> =
            (0..nprocs).map(|_| Mutex::new(Vec::new())).collect();
        std::thread::scope(|scope| {
            for (lane, out) in regions.iter().enumerate() {
                let heap = &heap;
                scope.spawn(move || {
                    let mut local = Vec::with_capacity(allocs);
                    for i in 0..allocs {
                        let n = size_stream(seed, lane, i, slab_words + 3);
                        let a = heap.alloc(lane, n).expect("arena sized generously");
                        local.push((a.0 as usize, n));
                    }
                    *out.lock().unwrap() = local;
                });
            }
        });
        let mut all: Vec<(usize, usize)> = Vec::new();
        for m in &regions {
            all.extend(m.lock().unwrap().iter().copied());
        }
        all.sort_unstable();
        for w in all.windows(2) {
            prop_assert!(
                w[0].0 + w[0].1 <= w[1].0,
                "regions overlap: {:?} then {:?}", w[0], w[1]
            );
        }
        for &(base, n) in &all {
            if n <= slab_words {
                prop_assert_eq!(
                    base / slab_words,
                    (base + n - 1) / slab_words,
                    "sub-slab allocation [{}, {}) straddles a slab boundary", base, base + n
                );
            } else {
                prop_assert_eq!(base % slab_words, 0, "multi-slab grab not slab-aligned");
            }
        }
    }

    /// `Addr::to_word` / `Addr::from_word` roundtrip over the whole 32-bit
    /// address range, and nullness survives the packing.
    #[test]
    fn addr_word_roundtrip(w in 0u64..(u32::MAX as u64 + 1)) {
        let a = Addr::from_word(w);
        prop_assert_eq!(a.to_word(), w);
        prop_assert_eq!(Addr::from_word(a.to_word()), a);
        prop_assert_eq!(a.is_null(), w == 0);
    }
}

/// The quiescent barrier rewinds **every** lane: the leader observes the
/// exact per-lane usage at each boundary, the reset returns each lane to
/// its baseline, re-issued addresses are identical in every epoch (cursor
/// rewind), and the per-lane high-water marks equal one epoch's usage.
#[test]
fn quiescent_barrier_rewinds_every_lane_cursor_and_high_water() {
    const NPROCS: usize = 4;
    const EPOCHS: u64 = 5;
    let heap = Heap::with_mode(1 << 14, AllocMode::Laned { lanes: NPROCS, slab_words: 32 });
    let persistent = heap.alloc_root(2);
    heap.poke(persistent, 0x5eed);
    let state = EpochState::new(&heap);
    let sync = EpochSync::new(NPROCS);
    let used_at_mark = heap.used();
    let baseline: Vec<usize> = (0..heap.lane_count()).map(|l| heap.lane_used(l)).collect();
    // Per-pid record of (first, second) allocation addresses per epoch:
    // contiguity of the pair proves the second came from the same slab.
    let first_addrs: Vec<Mutex<Vec<(u64, u64)>>> =
        (0..NPROCS).map(|_| Mutex::new(Vec::new())).collect();

    let report = run_threads_epochs(&heap, NPROCS, 9, None, RealConfig::fast(), &state, &sync, |pid| {
        let (sync, state, baseline, first_addrs) = (&sync, &state, &baseline, &first_addrs);
        move |ctx: &Ctx| {
            run_epoch_worker(
                ctx,
                sync,
                |ctx, _epoch| {
                    // Two sub-slab records (sizes distinct per lane) and a
                    // multi-slab grab, so both rewind paths are covered.
                    let a = ctx.alloc(2 + pid);
                    let b = ctx.alloc(1);
                    first_addrs[pid].lock().unwrap().push((a.to_word(), b.to_word()));
                    ctx.write(a, pid as u64 + 1);
                    let big = ctx.alloc(40);
                    ctx.write(big.off(39), 7);
                },
                |ctx, epoch| {
                    let heap = ctx.heap();
                    // Leader at quiescence: the usage of every worker lane
                    // is exactly this epoch's allocations.
                    for p in 0..NPROCS {
                        assert_eq!(
                            heap.lane_used(p),
                            3 + p + 40,
                            "epoch {epoch}: lane {p} usage drifted"
                        );
                    }
                    if epoch < EPOCHS - 1 {
                        state.advance(heap);
                        // The reset returned every lane (workers AND root)
                        // to its baseline usage, and the whole footprint to
                        // the mark.
                        for (l, &b) in baseline.iter().enumerate() {
                            assert_eq!(heap.lane_used(l), b, "epoch {epoch}: lane {l} not rewound");
                        }
                        assert_eq!(heap.used(), used_at_mark, "epoch {epoch}: footprint not rewound");
                        true
                    } else {
                        state.finish(heap);
                        false
                    }
                },
            );
        }
    });
    report.assert_clean();
    assert_eq!(report.epochs, EPOCHS);
    assert_eq!(heap.peek(persistent), 0x5eed, "pre-mark roots survive every rewind");

    // Fresh-slab handoffs race across lanes in real mode (addresses vary
    // run to run), but every epoch's pair must be slab-aligned and
    // contiguous — the lane bumped inside its own freshly-taken slab.
    let slab = heap.slab_words() as u64;
    for (pid, slots) in first_addrs.iter().enumerate() {
        let addrs = slots.lock().unwrap();
        assert_eq!(addrs.len(), EPOCHS as usize, "pid {pid} missed an epoch");
        for &(a, b) in addrs.iter() {
            assert_eq!(a % slab, 0, "pid {pid}: fresh lane slab not slab-aligned");
            assert_eq!(b, a + 2 + pid as u64, "pid {pid}: intra-slab bump not contiguous");
        }
    }

    // Per-lane high water: exactly one epoch's usage per worker lane, the
    // persistent root words on the root lane, nothing anywhere else.
    let lanes = state.high_water_lanes();
    for (p, &w) in lanes[..NPROCS].iter().enumerate() {
        assert_eq!(w, 3 + p + 40, "lane {p} high water");
    }
    assert_eq!(lanes[heap.root_lane()], 2, "root lane high water = persistent root");
    let expected_total: usize = (0..NPROCS).map(|p| 3 + p + 40).sum::<usize>() + 2;
    assert_eq!(state.high_water(), expected_total);
}

/// In the simulator, lane assignment (lane = pid) and the gate-serialized
/// slab handoffs make allocation fully deterministic: across a quiescent
/// rewind, a replayed epoch re-issues **identical addresses** in every
/// lane, and identical runs produce identical heap fingerprints.
#[test]
fn sim_epochs_reissue_identical_addresses_after_rewind() {
    use wait_free_locks::{SeededRandom, SimBuilder};

    let run = || {
        let heap = Heap::with_mode(1 << 14, AllocMode::Laned { lanes: 8, slab_words: 32 });
        let state = EpochState::new(&heap);
        let addrs: Vec<Mutex<Vec<u64>>> = (0..3).map(|_| Mutex::new(Vec::new())).collect();
        for epoch in 0..4u64 {
            let addrs = &addrs;
            let report = SimBuilder::new(&heap, 3)
                .seed(11)
                .schedule(SeededRandom::new(3, 77)) // same schedule every epoch
                .spawn_all(|pid| {
                    move |ctx: &Ctx| {
                        for i in 0..5u32 {
                            let a = ctx.alloc(1 + (pid + i as usize) % 4);
                            addrs[pid].lock().unwrap().push(a.to_word());
                            ctx.write(a, (epoch << 8) | i as u64);
                        }
                    }
                })
                .run();
            report.assert_clean();
            state.advance(&heap);
        }
        let per_pid: Vec<Vec<u64>> =
            addrs.iter().map(|m| m.lock().unwrap().clone()).collect();
        (per_pid, heap.fingerprint())
    };

    let (addrs_a, fp_a) = run();
    let (addrs_b, fp_b) = run();
    assert_eq!(fp_a, fp_b, "identical sim runs must produce identical heaps");
    assert_eq!(addrs_a, addrs_b, "identical sim runs must allocate identically");
    for (pid, seq) in addrs_a.iter().enumerate() {
        assert_eq!(seq.len(), 20, "pid {pid}: 5 allocations x 4 epochs");
        let (first, rest) = (&seq[..5], &seq[5..]);
        for (e, chunk) in rest.chunks(5).enumerate() {
            assert_eq!(
                chunk, first,
                "pid {pid}: epoch {} re-issued different addresses after the rewind",
                e + 1
            );
        }
    }
}
