//! A minimal, deterministic stand-in for the subset of `proptest` used by
//! this workspace: the `proptest!` macro with `#![proptest_config(..)]`,
//! integer-range and boolean strategies, and `prop_assert!`/
//! `prop_assert_eq!`.
//!
//! The build environment has no access to crates.io. Instead of proptest's
//! randomized shrinking search, this shim enumerates a deterministic,
//! well-mixed sequence of cases per test (seeded from the test name), so
//! failures are reproducible run-to-run; on failure it prints the sampled
//! inputs before re-panicking. No shrinking is attempted.

use std::ops::Range;

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
    /// Accepted for source compatibility; unused by the shim.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64, max_shrink_iters: 0 }
    }
}

/// Deterministic per-test random stream (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A stream derived from the test name: stable across runs and
    /// platforms.
    pub fn deterministic(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 well-mixed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A value generator: the sampling half of proptest's `Strategy`.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value from the deterministic stream.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// The uniform boolean strategy type.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = core::primitive::bool;
        fn sample(&self, rng: &mut TestRng) -> core::primitive::bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Common imports, as in proptest.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Property assertion (the shim panics immediately; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// The `proptest!` block: expands each property into a `#[test]` that
/// runs `cases` deterministic samples, printing the inputs on failure.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_props! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_props! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_props {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        #[test]
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cfg.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    $(let $arg = $arg.clone();)+
                    $body
                }));
                if let Err(payload) = result {
                    eprintln!(
                        concat!(
                            "proptest case {} of {} failed for ", stringify!($name), ":",
                            $("\n  ", stringify!($arg), " = {:?}",)+
                        ),
                        case + 1, cfg.cases, $(&$arg),+
                    );
                    std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_props! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds_and_are_deterministic() {
        let mut a = crate::TestRng::deterministic("t");
        let mut b = crate::TestRng::deterministic("t");
        for _ in 0..100 {
            let x = crate::Strategy::sample(&(3usize..17), &mut a);
            assert!((3..17).contains(&x));
            assert_eq!(x, crate::Strategy::sample(&(3usize..17), &mut b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

        /// The macro itself: strategies sample, asserts work.
        #[test]
        fn macro_expands_and_runs(
            x in 1u64..100,
            flag in crate::bool::ANY,
        ) {
            prop_assert!((1..100).contains(&x));
            prop_assert_eq!(flag as u64 <= 1, true, "flag {} case {}", flag, x);
        }
    }
}
