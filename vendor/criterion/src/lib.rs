//! A minimal stand-in for the subset of the `criterion` API used by the
//! workspace benches (`criterion_group!`/`criterion_main!`, benchmark
//! groups, `bench_with_input`, `BenchmarkId`).
//!
//! The build environment has no access to crates.io. This shim keeps the
//! bench sources compile-compatible and produces simple wall-clock
//! statistics (median of N samples) instead of criterion's full analysis.

use std::time::Instant;

pub use std::hint::black_box;

/// Top-level benchmark driver handed to each `criterion_group!` function.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size.max(10), _c: self }
    }
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id of the form `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _c: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { samples: Vec::with_capacity(self.sample_size) };
        for _ in 0..self.sample_size {
            f(&mut b, input);
        }
        report(&self.name, &id.0, &mut b.samples);
        self
    }

    /// Runs one benchmark with no input.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { samples: Vec::with_capacity(self.sample_size) };
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        report(&self.name, &id.to_string(), &mut b.samples);
        self
    }

    /// Ends the group (printing is already done per benchmark).
    pub fn finish(&mut self) {}
}

/// Timing harness passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<f64>,
}

impl Bencher {
    /// Times one invocation of `routine` (the shim takes one sample per
    /// `iter` call; the group calls the closure `sample_size` times).
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let t0 = Instant::now();
        black_box(routine());
        self.samples.push(t0.elapsed().as_secs_f64() * 1e9);
    }
}

fn report(group: &str, id: &str, samples: &mut [f64]) {
    if samples.is_empty() {
        println!("{group}/{id}: no samples");
        return;
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let lo = samples[0];
    let hi = samples[samples.len() - 1];
    println!("{group}/{id}: median {median:.0} ns (min {lo:.0}, max {hi:.0}, n={})", samples.len());
}

/// Declares a benchmark group function, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        let mut runs = 0;
        g.bench_with_input(BenchmarkId::new("work", 1), &1u32, |b, &x| {
            b.iter(|| {
                runs += 1;
                x + 1
            })
        });
        g.finish();
        assert_eq!(runs, 3, "one iter per sample");
    }
}
