//! A minimal, std-backed stand-in for the subset of the `parking_lot` API
//! used by this workspace (`Mutex::lock` without poisoning, and
//! `Condvar::wait(&mut guard)`).
//!
//! The build environment has no access to crates.io, so the real crate
//! cannot be vendored; this shim keeps the call sites source-compatible.
//! Poisoning is deliberately swallowed (parking_lot has none): a panicked
//! holder does not invalidate the data, matching parking_lot semantics
//! closely enough for the drivers' bookkeeping locks.

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutex whose `lock` returns the guard directly (no `Result`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Holds an `Option` internally so [`Condvar::wait`] can move the std
/// guard out and back in while the caller keeps a `&mut` borrow.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard vacated mid-wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard vacated mid-wait")
    }
}

/// Result of [`Condvar::wait_for`]: whether the wait timed out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed (not a notify).
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable compatible with [`MutexGuard`].
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar(std::sync::Condvar::new())
    }

    /// Blocks until notified, releasing the guard's mutex while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard vacated mid-wait");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    /// Blocks until notified or `timeout` elapses, releasing the guard's
    /// mutex while waiting. Matches parking_lot's `wait_for` shape.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard vacated mid-wait");
        let (inner, result) =
            self.0.wait_timeout(inner, timeout).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn poisoned_lock_is_recovered() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        assert_eq!(*m.lock(), 7, "shim must swallow std poisoning");
    }
}
