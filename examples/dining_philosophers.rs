//! Dining philosophers — the paper's running example (§1).
//!
//! Each philosopher's eating attempt is a tryLock on its two chopsticks.
//! With the paper's algorithm, every attempt succeeds with probability at
//! least 1/4 (κ = L = 2) and takes O(1) steps, independent of the number
//! of philosophers — no philosopher can starve, even if its neighbor is
//! stalled forever.
//!
//! Run with: `cargo run --release --example dining_philosophers`

use wait_free_locks::workloads::harness::{run_philosophers, AlgoKind, SchedKind};

fn main() {
    println!("n philosophers | attempts | success rate | mean steps | max steps | fair share");
    println!("---------------|----------|--------------|------------|-----------|-----------");
    for n in [3usize, 5, 8, 16] {
        let report = run_philosophers(
            n,
            40,
            7,
            SchedKind::Random,
            AlgoKind::Wfl { kappa: 2, delays: true, helping: true },
            1 << 24,
        );
        assert!(report.safety_ok, "meal counters diverged");
        let min_wins = report.per_pid.iter().map(|&(w, _)| w).min().unwrap_or(0);
        println!(
            "{:>14} | {:>8} | {:>11.3} | {:>10.1} | {:>9} | every philosopher ate >= {} times",
            n,
            report.attempts,
            report.success.rate(),
            report.steps.mean(),
            report.steps.max(),
            min_wins,
        );
    }
    println!();
    println!("Theorem 1.1 (special case): success probability >= 1/4 per attempt,");
    println!("step counts independent of n — compare the rows above.");
}
