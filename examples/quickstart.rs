//! Quickstart: two processes increment a shared counter under one
//! wait-free lock, in the deterministic simulator.
//!
//! Run with: `cargo run --release --example quickstart`

use wait_free_locks::{
    cell, lock_and_run, Addr, Ctx, Heap, IdemRun, LockConfig, LockId, LockSpace, Registry,
    Scratch, SeededRandom, SimBuilder, TagSource, Thunk, TryLockRequest,
};

/// The critical section: a non-atomic read-then-write increment. Only
/// mutual exclusion (plus idempotent helping) keeps it exact.
struct Incr;
impl Thunk for Incr {
    fn run(&self, run: &mut IdemRun<'_, '_>) {
        let counter = Addr::from_word(run.arg(0));
        let v = run.read(counter);
        run.write(counter, v + 1);
    }
    fn max_ops(&self) -> usize {
        2
    }
}

fn main() {
    // 1. Register critical sections.
    let mut registry = Registry::new();
    let incr = registry.register(Incr);

    // 2. Create the shared heap, one lock (κ = 2 contenders), a counter.
    let heap = Heap::new(1 << 20);
    let space = LockSpace::create_root(&heap, 1, 2);
    let counter = heap.alloc_root(1);
    let cfg = LockConfig::new(2, 1, 2); // κ = 2, L = 1, T = 2

    // 3. Run two processes under a seeded adversarial schedule; each
    //    increments the counter 10 times through the wait-free lock.
    let (space, registry) = (&space, &registry);
    let report = SimBuilder::new(&heap, 2)
        .schedule(SeededRandom::new(2, 42))
        .max_steps(100_000_000)
        .spawn_all(|pid| {
            move |ctx: &Ctx| {
                let mut tags = TagSource::new(pid);
                let mut scratch = Scratch::new();
                for _ in 0..10 {
                    let req = TryLockRequest {
                        locks: &[LockId(0)],
                        thunk: incr,
                        args: &[counter.to_word()],
                    };
                    let m = lock_and_run(ctx, space, registry, &cfg, &mut tags, &mut scratch, req);
                    assert!(m.attempts >= 1);
                }
            }
        })
        .run();
    report.assert_clean();

    println!("counter = {} (expected 20)", cell::value(heap.peek(counter)));
    println!(
        "steps: p0 = {}, p1 = {} (every attempt bounded by O(kappa^2 L^2 T) = {})",
        report.steps[0],
        report.steps[1],
        cfg.step_bound(),
    );
    assert_eq!(cell::value(heap.peek(counter)), 20);
    println!("ok: 20 critical sections, each ran exactly once");
}
