//! Crash tolerance: the property that motivates helping.
//!
//! A philosopher acquires its chopsticks and is then stalled *forever* by
//! the scheduler (a crash). With blocking locks its neighbors would starve;
//! with the paper's wait-free locks, the neighbors finish the crashed
//! winner's critical section themselves (idempotently) and keep eating —
//! every attempt still completes within its fixed step bound.
//!
//! Run with: `cargo run --release --example crash_tolerance`

use wait_free_locks::baselines::{LockAlgo, WflKnown};
use wait_free_locks::workloads::philosophers::Table;
use wait_free_locks::{
    Ctx, Heap, LockConfig, LockSpace, Registry, RoundRobin, Scratch, SimBuilder, StallWindow,
    Stalls, TagSource,
};

fn main() {
    let n = 4;
    let mut registry = Registry::new();
    let heap = Heap::new(1 << 24);
    let table = Table::create_root(&heap, &mut registry, n);
    let space = LockSpace::create_root(&heap, n, 2);
    let algo = WflKnown {
        space: &space,
        registry: &registry,
        cfg: LockConfig::new(2, 2, 2),
    };
    let outcomes = heap.alloc_root(n as u32 as usize);

    // Philosopher 0 crashes at global time 2000 — likely mid-attempt,
    // possibly right after winning its chopsticks.
    let schedule = Stalls::new(RoundRobin::new(n), vec![StallWindow::crash(0, 2000)]);

    let (table_ref, algo_ref) = (&table, &algo);
    let report = SimBuilder::new(&heap, n)
        .schedule(schedule)
        .max_steps(80_000_000)
        .spawn_all(|pid| {
            move |ctx: &Ctx| {
                let mut tags = TagSource::new(pid);
                let mut scratch = Scratch::new();
                let mut wins = 0u64;
                let rounds = if pid == 0 { 100 } else { 12 };
                for _ in 0..rounds {
                    if ctx.stop_requested() {
                        break;
                    }
                    if table_ref.attempt_eat(ctx, algo_ref, &mut tags, &mut scratch, pid).won {
                        wins += 1;
                    }
                }
                ctx.write(outcomes.off(pid as u32), wins);
            }
        })
        .run();
    // Philosopher 0 never finishes its loop (it is crashed, then the
    // drain lets it run its current bounded attempt to completion and
    // observe the stop flag).
    assert!(report.panics.is_empty());

    println!("philosopher | meals eaten (crashed philosopher 0 stalled at t=2000)");
    for i in 0..n {
        println!("{:>11} | {}", i, table.meals_eaten(&heap, i));
    }
    for i in 1..n {
        assert!(
            table.meals_eaten(&heap, i) > 0,
            "philosopher {i} starved despite wait-freedom!"
        );
    }
    println!();
    println!("ok: neighbors of the crashed philosopher kept eating —");
    println!("helpers completed any critical section the crashed winner left behind.");
    let _ = algo.blocks_under_crash(); // (false: this algorithm never blocks)
}
