//! The adaptive player adversary vs the delay mechanism (§2, §6.1) — on
//! **both execution backends**.
//!
//! An adaptive adversary watches a victim process and floods competitor
//! attempts while the victim sits in its pre-reveal window, trying to
//! stack strong competitors against it. The paper's claim (Theorem 6.9):
//! the victim's per-attempt success probability still cannot be pushed
//! below `1/C_p` — the helping phase clears pre-revealed competitors and
//! the fixed delays make the victim's reveal time independent of anything
//! the adversary observes.
//!
//! Part 1 runs the deterministic simulator: an omniscient controller
//! ([`TargetedStarter`]) reads the quiesced heap between steps and feeds
//! competitor commands into mailboxes. Part 2 runs the same strategy on
//! **real threads** via `wfl_fairness`: competitor OS threads observe the
//! victim's published attempt state (its probe cell) and launch attempts
//! themselves, with the identical `flood_decision`.
//!
//! Run with: `cargo run --release --example adversary_demo`

use std::time::Duration;
use wait_free_locks::baselines::WflKnown;
use wait_free_locks::fairness::{run_adversary, AdvStrength, AdversarySpec};
use wait_free_locks::workloads::harness::{AlgoKind, ExecMode};
use wait_free_locks::workloads::player::{run_player_loop, TargetedStarter};
use wait_free_locks::{
    cell, Ctx, Heap, IdemRun, LockConfig, LockId, LockSpace, Registry, RoundRobin, SimBuilder,
    TagSource, Thunk,
};

struct Touch;
impl Thunk for Touch {
    fn run(&self, run: &mut IdemRun<'_, '_>) {
        let c = wait_free_locks::Addr::from_word(run.arg(0));
        let v = run.read(c);
        run.write(c, v + 1);
    }
    fn max_ops(&self) -> usize {
        2
    }
}

fn sim_part() {
    let nprocs = 3; // victim + 2 competitors
    let attempts = 60u64;

    let mut registry = Registry::new();
    let touch = registry.register(Touch);
    let heap = Heap::new(1 << 24);
    let space = LockSpace::create_root(&heap, 1, nprocs);
    let counter = heap.alloc_root(1);
    let results = heap.alloc_root(attempts as usize * nprocs);
    let victim_desc_cell = heap.alloc_root(1);
    let cfg = LockConfig::new(nprocs, 1, 2);
    let algo = WflKnown { space: &space, registry: &registry, cfg };

    let adversary = TargetedStarter {
        victim: 0,
        competitors: vec![1, 2],
        locks: vec![LockId(0)],
        args: vec![counter.to_word()],
        victim_period: 400,
        victim_desc_cell,
        strength: AdvStrength::Targeted,
        issued: 0,
    };

    let algo_ref = &algo;
    let report = SimBuilder::new(&heap, nprocs)
        .schedule(RoundRobin::new(nprocs))
        .controller(adversary)
        .max_steps(40_000_000)
        .spawn_all(|pid| {
            move |ctx: &Ctx| {
                let mut tags = TagSource::new(pid);
                let mut scratch = wait_free_locks::core::Scratch::new();
                if pid == 0 {
                    // The victim publishes its in-flight attempt through the
                    // probe cell — the adversary's window into its state.
                    scratch.probe = Some(victim_desc_cell);
                }
                let my_results = results.off((pid as u64 * attempts) as u32);
                run_player_loop(ctx, algo_ref, &mut tags, &mut scratch, touch, my_results, attempts);
            }
        })
        .run();
    report.assert_clean();

    let mut rows = Vec::new();
    for pid in 0..nprocs {
        let mut wins = 0u64;
        let mut total = 0u64;
        for i in 0..attempts {
            match heap.peek(results.off((pid as u64 * attempts + i) as u32)) {
                0 => break,
                o => {
                    total += 1;
                    if o == 2 {
                        wins += 1;
                    }
                }
            }
        }
        rows.push((pid, wins, total));
    }
    println!("process | role       | wins / attempts | success rate");
    for (pid, wins, total) in &rows {
        let role = if *pid == 0 { "victim" } else { "competitor" };
        let rate = if *total > 0 { *wins as f64 / *total as f64 } else { 0.0 };
        println!("{pid:>7} | {role:<10} | {wins:>4} / {total:<8} | {rate:.3}");
    }
    println!();
    println!("counter = {} (sanity: equals total wins)", cell::value(heap.peek(counter)));
    let total_wins: u64 = rows.iter().map(|r| r.1).sum();
    assert_eq!(cell::value(heap.peek(counter)) as u64, total_wins);
}

fn real_part() {
    let nprocs = 3;
    let mut spec = AdversarySpec::new(nprocs, 64);
    // Saturation pressure: on oversubscribed hardware the targeted window
    // is often narrower than a scheduler timeslice, so the demo uses the
    // maximal-contention strength (E15 sweeps all of them).
    spec.strength = AdvStrength::Flood;
    spec.victim_period = 400;
    let mode = ExecMode::real_timed(nprocs, Duration::from_millis(100)).with_epoch_rounds(64);
    let algo = AlgoKind::Wfl { kappa: nprocs, delays: true, helping: true };
    let report = run_adversary(&spec, algo, &mode);
    assert!(report.safety_ok, "counter safety violated");

    println!("process | role       | wins / attempts | success rate | max stretch");
    for (pid, t) in report.per_proc.iter().enumerate() {
        let role = if pid == 0 { "victim" } else { "competitor" };
        println!(
            "{pid:>7} | {role:<10} | {:>6} / {:<8} | {:.3}        | {}",
            t.wins, t.attempts, t.rate(), t.max_stretch
        );
    }
    let v = report.victim_success();
    println!();
    println!(
        "victim success {:.3} (99% lb {:.3}) vs bound 1/(kL) = {:.3}; jain index {:.3}; \
         {} epochs in the wall budget",
        v.rate(),
        v.wilson_lower(2.58),
        1.0 / nprocs as f64,
        report.jain_rates(),
        report.epochs
    );
}

fn main() {
    println!("== simulator: commanded player loops under the omniscient controller ==");
    sim_part();
    println!();
    println!("== real threads: observer competitors over the epoch lifecycle ==");
    real_part();
    println!();
    println!("fairness bound for the victim: 1/(kappa*L) with the adversary's worst-case");
    println!("contention — on both backends the victim's rate sits well above it.");
}
