//! The adaptive player adversary vs the delay mechanism (§2, §6.1).
//!
//! An omniscient controller watches a victim process and floods competitor
//! attempts whenever the victim is in its pending (pre-reveal) phase,
//! trying to stack strong competitors against it. The paper's claim
//! (Theorem 6.9): the victim's per-attempt success probability still
//! cannot be pushed below `1/C_p` — here `1/κL = 1/(2·1) = 1/2` with two
//! contenders per lock — because the helping phase clears pre-revealed
//! competitors and the fixed delays make the victim's reveal time
//! independent of what the adversary observes.
//!
//! Run with: `cargo run --release --example adversary_demo`

use wait_free_locks::baselines::WflKnown;
use wait_free_locks::workloads::player::{run_player_loop, TargetedStarter};
use wait_free_locks::{
    cell, Ctx, Heap, IdemRun, LockConfig, LockId, LockSpace, Registry, RoundRobin, SimBuilder,
    TagSource, Thunk,
};

struct Touch;
impl Thunk for Touch {
    fn run(&self, run: &mut IdemRun<'_, '_>) {
        let c = wait_free_locks::Addr::from_word(run.arg(0));
        let v = run.read(c);
        run.write(c, v + 1);
    }
    fn max_ops(&self) -> usize {
        2
    }
}

fn main() {
    let nprocs = 3; // victim + 2 competitors
    let attempts = 60u64;

    let mut registry = Registry::new();
    let touch = registry.register(Touch);
    let heap = Heap::new(1 << 24);
    let space = LockSpace::create_root(&heap, 1, nprocs);
    let counter = heap.alloc_root(1);
    let results = heap.alloc_root(attempts as usize * nprocs);
    let victim_desc_cell = heap.alloc_root(1);
    let cfg = LockConfig::new(nprocs, 1, 2);
    let algo = WflKnown { space: &space, registry: &registry, cfg };

    let adversary = TargetedStarter {
        victim: 0,
        competitors: vec![1, 2],
        locks: vec![LockId(0)],
        args: vec![counter.to_word()],
        victim_period: 400,
        victim_desc_cell,
        issued: 0,
    };

    let algo_ref = &algo;
    let report = SimBuilder::new(&heap, nprocs)
        .schedule(RoundRobin::new(nprocs))
        .controller(adversary)
        .max_steps(40_000_000)
        .spawn_all(|pid| {
            move |ctx: &Ctx| {
                let mut tags = TagSource::new(pid);
                let mut scratch = wait_free_locks::core::Scratch::new();
                let my_results = results.off((pid as u64 * attempts) as u32);
                run_player_loop(ctx, algo_ref, &mut tags, &mut scratch, touch, my_results, attempts);
            }
        })
        .run();
    report.assert_clean();

    let mut rows = Vec::new();
    for pid in 0..nprocs {
        let mut wins = 0u64;
        let mut total = 0u64;
        for i in 0..attempts {
            match heap.peek(results.off((pid as u64 * attempts + i) as u32)) {
                0 => break,
                o => {
                    total += 1;
                    if o == 2 {
                        wins += 1;
                    }
                }
            }
        }
        rows.push((pid, wins, total));
    }
    println!("process | role       | wins / attempts | success rate");
    for (pid, wins, total) in &rows {
        let role = if *pid == 0 { "victim" } else { "competitor" };
        let rate = if *total > 0 { *wins as f64 / *total as f64 } else { 0.0 };
        println!("{pid:>7} | {role:<10} | {wins:>4} / {total:<8} | {rate:.3}");
    }
    println!();
    println!("counter = {} (sanity: equals total wins)", cell::value(heap.peek(counter)));
    let total_wins: u64 = rows.iter().map(|r| r.1).sum();
    assert_eq!(cell::value(heap.peek(counter)) as u64, total_wins);
    println!("fairness bound for the victim: 1/(kappa*L) with the adversary's");
    println!("worst case contention — the victim's rate should sit well above 0.");
}
