//! Bank transfers: multi-lock transactions with a conservation invariant.
//!
//! Processes transfer random amounts between random account pairs; each
//! transfer tryLocks the two account locks. Whatever the adversarial
//! interleaving, the total balance is conserved — any mutual-exclusion or
//! idempotence failure would break it.
//!
//! Run with: `cargo run --release --example bank_transfers`

use wait_free_locks::baselines::WflKnown;
use wait_free_locks::workloads::bank::Bank;
use wait_free_locks::{Ctx, Heap, LockConfig, LockSpace, Registry, Scratch, SeededRandom, SimBuilder, TagSource};

fn main() {
    let nprocs = 4;
    let accounts = 6;
    let rounds = 25;

    let mut registry = Registry::new();
    let heap = Heap::new(1 << 24);
    let bank = Bank::create_root(&heap, &mut registry, accounts, 1_000);
    let space = LockSpace::create_root(&heap, accounts, nprocs);
    let algo = WflKnown {
        space: &space,
        registry: &registry,
        cfg: LockConfig::new(nprocs, 2, 4),
    };
    let initial_total = bank.total(&heap);

    let (bank_ref, algo_ref) = (&bank, &algo);
    let report = SimBuilder::new(&heap, nprocs)
        .seed(99)
        .schedule(SeededRandom::new(nprocs, 99))
        .max_steps(400_000_000)
        .spawn_all(|pid| {
            move |ctx: &Ctx| {
                let mut tags = TagSource::new(pid);
                let mut scratch = Scratch::new();
                let mut wins = 0;
                for _ in 0..rounds {
                    let a = ctx.rand_below(accounts as u64) as usize;
                    let mut b = ctx.rand_below(accounts as u64) as usize;
                    if a == b {
                        b = (b + 1) % accounts;
                    }
                    let amt = 1 + ctx.rand_below(100) as u32;
                    if bank_ref.attempt_transfer(ctx, algo_ref, &mut tags, &mut scratch, a, b, amt).won {
                        wins += 1;
                    }
                }
                println!("process {pid}: {wins}/{rounds} transfers committed");
            }
        })
        .run();
    report.assert_clean();

    println!();
    for i in 0..accounts {
        println!("account {i}: balance {}", bank.balance(&heap, i));
    }
    let total = bank.total(&heap);
    println!("total: {total} (initial {initial_total})");
    assert_eq!(total, initial_total, "conservation violated!");
    println!("ok: money conserved under adversarial interleaving");
}
