//! Set-regularity checking for the multi active set (Algorithm 2).
//!
//! The paper requires the multi active set to satisfy *set regularity*
//! (§5.2): every `multiInsert`/`multiRemove` appears to take effect
//! atomically at some point within its interval; a `getSet` invoked after
//! that point sees the effect, one that responds before it does not, and
//! one that overlaps it may see either. Unlike linearizability, two
//! overlapping `getSet`s may disagree about overlapping updates.
//!
//! The checker below is an *interval-based violation detector*: it verifies,
//! per item, the two conditions that set regularity makes mandatory:
//!
//! 1. **No phantoms**: if a `getSet` `G` reports `x ∈ S`, then some
//!    `insert(x)` was invoked before `G` responded, and it is not the case
//!    that a `remove(x)` responded before `G` was invoked with no later
//!    `insert(x)` invoked before `G` responded.
//! 2. **No lost members**: if a `getSet` `G` reports `x ∉ S`, then it is
//!    not the case that some `insert(x)` responded before `G` was invoked
//!    while no `remove(x)` was invoked before `G` responded.
//!
//! These conditions are *necessary* for set regularity, so any reported
//! violation is real; the detector is sound (it may accept some histories a
//! full existential-point search would reject, which suffices for testing).

use wfl_runtime::{Event, History};

/// Multi-active-set op code: `insert(item=a)` into set `b` (interval = the
/// covering multiInsert's interval).
pub const MS_INSERT: u32 = 20;
/// Multi-active-set op code: `remove(item=a)` from set `b`.
pub const MS_REMOVE: u32 = 21;
/// Multi-active-set op code: `getSet(set=b) -> result_set`.
pub const MS_GETSET: u32 = 22;

/// A detected set-regularity violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegularityViolation {
    /// Index of the offending `getSet` event in the history.
    pub getset_index: usize,
    /// The item whose reported membership is impossible.
    pub item: u64,
    /// Human-readable explanation.
    pub reason: String,
}

/// Checks set regularity of a multi-active-set history (see module docs).
/// Events with other opcodes are ignored. Returns all violations found.
pub fn check_set_regularity(history: &History) -> Vec<RegularityViolation> {
    let evs = &history.events;
    let mut violations = Vec::new();

    for (gi, g) in evs.iter().enumerate() {
        if g.op != MS_GETSET {
            continue;
        }
        let set_id = g.b;
        // Check every item with insert/remove activity on this set, plus
        // every item the getSet itself reported (to catch phantoms that
        // were never inserted anywhere).
        let mut items: Vec<u64> = evs
            .iter()
            .filter(|e| (e.op == MS_INSERT || e.op == MS_REMOVE) && e.b == set_id)
            .map(|e| e.a)
            .chain(g.result_set.iter().copied())
            .collect();
        items.sort_unstable();
        items.dedup();

        for &x in &items {
            let reported = g.result_set.binary_search(&x).is_ok();
            let inserts: Vec<&Event> = evs
                .iter()
                .filter(|e| e.op == MS_INSERT && e.a == x && e.b == set_id)
                .collect();
            let removes: Vec<&Event> = evs
                .iter()
                .filter(|e| e.op == MS_REMOVE && e.a == x && e.b == set_id)
                .collect();

            if reported {
                // 1a: some insert invoked before G responded.
                let some_insert_before = inserts.iter().any(|i| i.invoke <= g.response);
                if !some_insert_before {
                    violations.push(RegularityViolation {
                        getset_index: gi,
                        item: x,
                        reason: "reported member with no insert invoked before response".into(),
                    });
                    continue;
                }
                // 1b: not definitely removed: a remove that completed before
                // G's invoke, with no insert invoked after that remove began
                // and before G responded.
                let definitely_removed = removes.iter().any(|r| {
                    r.response < g.invoke
                        && !inserts.iter().any(|i| i.invoke > r.invoke && i.invoke <= g.response)
                });
                if definitely_removed {
                    violations.push(RegularityViolation {
                        getset_index: gi,
                        item: x,
                        reason: "reported member that was removed before the getSet began".into(),
                    });
                }
            } else {
                // 2: not definitely present: an insert completed before G's
                // invoke and no remove was invoked before G responded
                // (after that insert began).
                let definitely_present = inserts.iter().any(|i| {
                    i.response < g.invoke
                        && !removes.iter().any(|r| r.invoke > i.invoke && r.invoke <= g.response)
                });
                if definitely_present {
                    violations.push(RegularityViolation {
                        getset_index: gi,
                        item: x,
                        reason: "missing member that was present throughout the getSet".into(),
                    });
                }
            }
        }
    }
    violations
}

/// Asserts that the history is set regular.
///
/// # Panics
/// Panics with the violations if any are found.
pub fn assert_set_regular(history: &History) {
    let v = check_set_regularity(history);
    assert!(v.is_empty(), "set-regularity violations: {v:#?}");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ins(x: u64, set: u64, invoke: u64, response: u64) -> Event {
        Event { pid: 0, op: MS_INSERT, a: x, b: set, result: 0, result_set: vec![], invoke, response }
    }
    fn rem(x: u64, set: u64, invoke: u64, response: u64) -> Event {
        Event { pid: 0, op: MS_REMOVE, a: x, b: set, result: 0, result_set: vec![], invoke, response }
    }
    fn get(set: u64, members: Vec<u64>, invoke: u64, response: u64) -> Event {
        let mut ms = members;
        ms.sort_unstable();
        Event { pid: 1, op: MS_GETSET, a: 0, b: set, result: 0, result_set: ms, invoke, response }
    }

    fn history(evs: Vec<Event>) -> History {
        History::from_parts(vec![evs])
    }

    #[test]
    fn sequential_insert_then_get_sees_member() {
        let h = history(vec![ins(7, 0, 0, 1), get(0, vec![7], 2, 3)]);
        assert!(check_set_regularity(&h).is_empty());
    }

    #[test]
    fn missing_completed_insert_is_violation() {
        let h = history(vec![ins(7, 0, 0, 1), get(0, vec![], 2, 3)]);
        let v = check_set_regularity(&h);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].item, 7);
    }

    #[test]
    fn overlapping_insert_may_be_seen_or_not() {
        for members in [vec![], vec![7u64]] {
            let h = history(vec![ins(7, 0, 0, 10), get(0, members.clone(), 2, 3)]);
            assert!(check_set_regularity(&h).is_empty(), "members {members:?} legal");
        }
    }

    #[test]
    fn phantom_member_never_inserted_is_violation() {
        let h = history(vec![get(0, vec![9], 0, 1)]);
        let v = check_set_regularity(&h);
        assert_eq!(v.len(), 1);
        assert!(v[0].reason.contains("no insert"));
    }

    #[test]
    fn member_seen_after_completed_remove_is_violation() {
        let h = history(vec![ins(7, 0, 0, 1), rem(7, 0, 2, 3), get(0, vec![7], 4, 5)]);
        let v = check_set_regularity(&h);
        assert_eq!(v.len(), 1);
        assert!(v[0].reason.contains("removed"));
    }

    #[test]
    fn overlapping_remove_may_be_seen_or_not() {
        for members in [vec![], vec![7u64]] {
            let h = history(vec![ins(7, 0, 0, 1), rem(7, 0, 2, 10), get(0, members.clone(), 3, 4)]);
            assert!(check_set_regularity(&h).is_empty(), "members {members:?} legal");
        }
    }

    #[test]
    fn reinsert_after_remove_allows_membership() {
        let h = history(vec![
            ins(7, 0, 0, 1),
            rem(7, 0, 2, 3),
            ins(7, 0, 4, 10), // overlaps the getSet
            get(0, vec![7], 5, 6),
        ]);
        assert!(check_set_regularity(&h).is_empty());
    }

    #[test]
    fn sets_are_independent() {
        // Insert into set 0 only; getSet on set 1 must not require it.
        let h = history(vec![ins(7, 0, 0, 1), get(1, vec![], 2, 3)]);
        assert!(check_set_regularity(&h).is_empty());
        // And seeing it in set 1 is a phantom.
        let h2 = history(vec![ins(7, 0, 0, 1), get(1, vec![7], 2, 3)]);
        assert_eq!(check_set_regularity(&h2).len(), 1);
    }

    #[test]
    fn two_overlapping_getsets_may_disagree() {
        // a and b inserted concurrently; G1 sees only a, G2 sees only b.
        // Legal under set regularity (the paper's own example), though not
        // linearizable.
        let h = History::from_parts(vec![
            vec![ins(1, 0, 0, 10)],
            vec![ins(2, 0, 0, 10)],
            vec![get(0, vec![1], 2, 5), get(0, vec![2], 6, 9)],
        ]);
        assert!(check_set_regularity(&h).is_empty());
    }
}
