//! Sequential specifications for the checker.

use crate::Spec;
use std::collections::BTreeSet;
use wfl_runtime::Event;

/// Register op code: `read() -> result`.
pub const REG_READ: u32 = 0;
/// Register op code: `write(a)`.
pub const REG_WRITE: u32 = 1;
/// Register op code: `cas(a -> b) -> result (1 success / 0 failure)`.
pub const REG_CAS: u32 = 2;

/// Sequential spec of a single atomic register supporting read/write/CAS.
#[derive(Debug, Clone)]
pub struct RegisterSpec {
    init: u64,
}

impl RegisterSpec {
    /// Register with the given initial value.
    pub fn new(init: u64) -> RegisterSpec {
        RegisterSpec { init }
    }
}

impl Spec for RegisterSpec {
    type State = u64;

    fn initial(&self) -> u64 {
        self.init
    }

    fn apply(&self, state: &u64, ev: &Event) -> Option<u64> {
        match ev.op {
            REG_READ => (ev.result == *state).then_some(*state),
            REG_WRITE => Some(ev.a),
            REG_CAS => {
                let success = *state == ev.a;
                if (ev.result != 0) != success {
                    return None;
                }
                Some(if success { ev.b } else { *state })
            }
            _ => None,
        }
    }
}

/// Active set op code: `insert(a)`.
pub const AS_INSERT: u32 = 10;
/// Active set op code: `remove(a)`.
pub const AS_REMOVE: u32 = 11;
/// Active set op code: `getSet() -> result_set`.
pub const AS_GETSET: u32 = 12;

/// Sequential spec of the active set object of Afek et al. (and §5 of the
/// paper): `insert(x)`, `remove(x)`, and `getSet()` returning exactly the
/// elements inserted but not yet removed.
#[derive(Debug, Clone, Default)]
pub struct ActiveSetSpec;

impl Spec for ActiveSetSpec {
    type State = BTreeSet<u64>;

    fn initial(&self) -> BTreeSet<u64> {
        BTreeSet::new()
    }

    fn apply(&self, state: &BTreeSet<u64>, ev: &Event) -> Option<BTreeSet<u64>> {
        let mut next = state.clone();
        match ev.op {
            AS_INSERT => {
                // Processes alternate insert/remove of distinct items;
                // re-inserting a present item is a spec violation.
                if !next.insert(ev.a) {
                    return None;
                }
                Some(next)
            }
            AS_REMOVE => {
                if !next.remove(&ev.a) {
                    return None;
                }
                Some(next)
            }
            AS_GETSET => {
                let got: Vec<u64> = state.iter().copied().collect();
                (got == ev.result_set).then_some(next)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check_linearizable, LinResult};
    use wfl_runtime::History;

    fn ev(op: u32, a: u64, result_set: Vec<u64>, invoke: u64, response: u64) -> Event {
        Event { pid: 0, op, a, b: 0, result: 0, result_set, invoke, response }
    }

    #[test]
    fn active_set_sequential_history_ok() {
        let h = History::from_parts(vec![vec![
            ev(AS_INSERT, 7, vec![], 0, 1),
            ev(AS_GETSET, 0, vec![7], 2, 3),
            ev(AS_REMOVE, 7, vec![], 4, 5),
            ev(AS_GETSET, 0, vec![], 6, 7),
        ]]);
        assert!(check_linearizable(&h, &ActiveSetSpec).is_ok());
    }

    #[test]
    fn getset_missing_completed_insert_is_violation() {
        let h = History::from_parts(vec![
            vec![ev(AS_INSERT, 7, vec![], 0, 1)],
            vec![Event { pid: 1, ..ev(AS_GETSET, 0, vec![], 2, 3) }],
        ]);
        assert_eq!(check_linearizable(&h, &ActiveSetSpec), LinResult::Violation);
    }

    #[test]
    fn getset_may_or_may_not_see_overlapping_insert() {
        for seen in [vec![], vec![7u64]] {
            let h = History::from_parts(vec![
                vec![ev(AS_INSERT, 7, vec![], 0, 10)],
                vec![Event { pid: 1, ..ev(AS_GETSET, 0, seen.clone(), 2, 3) }],
            ]);
            assert!(
                check_linearizable(&h, &ActiveSetSpec).is_ok(),
                "result {seen:?} should be legal for an overlapping getSet"
            );
        }
    }

    #[test]
    fn phantom_member_is_violation() {
        let h = History::from_parts(vec![vec![ev(AS_GETSET, 0, vec![9], 0, 1)]]);
        assert_eq!(check_linearizable(&h, &ActiveSetSpec), LinResult::Violation);
    }

    #[test]
    fn double_insert_is_violation() {
        let h = History::from_parts(vec![vec![
            ev(AS_INSERT, 7, vec![], 0, 1),
            ev(AS_INSERT, 7, vec![], 2, 3),
        ]]);
        assert_eq!(check_linearizable(&h, &ActiveSetSpec), LinResult::Violation);
    }

    #[test]
    fn remove_of_absent_item_is_violation() {
        let h = History::from_parts(vec![vec![ev(AS_REMOVE, 3, vec![], 0, 1)]]);
        assert_eq!(check_linearizable(&h, &ActiveSetSpec), LinResult::Violation);
    }
}
