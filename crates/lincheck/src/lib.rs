//! Linearizability and set-regularity checking for recorded histories.
//!
//! The paper's correctness claims rest on two consistency conditions:
//!
//! * the **active set** (Algorithm 1) is *linearizable* — checked here with
//!   a Wing–Gong style exhaustive search ([`check_linearizable`]);
//! * the **multi active set** (Algorithm 2) is *set regular* (a weakening
//!   of linearizability analogous to Lamport's regular registers) —
//!   checked with an interval-based sound violation detector
//!   ([`regular::check_set_regularity`]).
//!
//! A third, end-to-end audit covers the lock layer itself: real-mode runs
//! record **per-lock holder sequences** (each winning critical section
//! appends a unique token to its lock's holder log), and
//! [`holders::check_holder_exclusivity`] verifies the sequences are
//! distinct, exactly cover the recorded wins, and never contradict
//! real-time precedence.
//!
//! Histories come from `wfl-runtime`'s deterministic simulator via
//! [`wfl_runtime::History`]; timestamps are exact global step numbers, so
//! the real-time precedence relation used by the checker is exact.
//! (Real-threads histories recorded under
//! `wfl_runtime::real::RealConfig::precise` carry globally ordered
//! timestamps too, which is what the holder audit consumes.)

pub mod holders;
pub mod regular;
pub mod specs;

use std::collections::HashSet;
use std::hash::Hash;
use wfl_runtime::{Event, History};

/// A sequential specification for the Wing–Gong checker.
pub trait Spec {
    /// Abstract sequential state.
    type State: Clone + Eq + Hash;

    /// The initial abstract state.
    fn initial(&self) -> Self::State;

    /// Applies `ev` to `state`. Returns the successor state if the event's
    /// recorded result is legal from `state`, or `None` if it is not.
    fn apply(&self, state: &Self::State, ev: &Event) -> Option<Self::State>;
}

/// Outcome of a linearizability check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinResult {
    /// A legal linearization exists (one witness order is returned, as
    /// indices into `history.events`).
    Linearizable(Vec<usize>),
    /// No legal linearization exists.
    Violation,
}

impl LinResult {
    /// Whether the history is linearizable.
    pub fn is_ok(&self) -> bool {
        matches!(self, LinResult::Linearizable(_))
    }
}

/// Checks that `history` is linearizable with respect to `spec`.
///
/// This is an exponential-time search (with memoization on
/// `(linearized-set, state)` pairs), suitable for the small histories
/// produced by targeted simulator tests — up to roughly 30–40 events with
/// realistic overlap.
///
/// # Panics
/// Panics if the history has more than 63 events (the search uses a 64-bit
/// mask); split larger histories before checking.
pub fn check_linearizable<S: Spec>(history: &History, spec: &S) -> LinResult {
    let n = history.len();
    assert!(n <= 63, "history too large for the checker ({n} events)");
    if n == 0 {
        return LinResult::Linearizable(vec![]);
    }

    // preds[i] = bitmask of events that must linearize before event i
    // (they responded before i was invoked).
    let mut preds = vec![0u64; n];
    for (i, pred) in preds.iter_mut().enumerate() {
        for j in 0..n {
            if i != j && history.precedes(j, i) {
                *pred |= 1 << j;
            }
        }
    }

    let full: u64 = (1u64 << n) - 1;
    let mut memo: HashSet<(u64, S::State)> = HashSet::new();
    let mut order: Vec<usize> = Vec::with_capacity(n);

    #[allow(clippy::too_many_arguments)]
    fn dfs<S: Spec>(
        history: &History,
        spec: &S,
        preds: &[u64],
        full: u64,
        done: u64,
        state: &S::State,
        memo: &mut HashSet<(u64, S::State)>,
        order: &mut Vec<usize>,
    ) -> bool {
        if done == full {
            return true;
        }
        if !memo.insert((done, state.clone())) {
            return false; // already explored this frontier
        }
        for i in 0..history.len() {
            let bit = 1u64 << i;
            if done & bit != 0 {
                continue; // already linearized
            }
            if preds[i] & !done != 0 {
                continue; // a real-time predecessor is not yet linearized
            }
            if let Some(next) = spec.apply(state, &history.events[i]) {
                order.push(i);
                if dfs(history, spec, preds, full, done | bit, &next, memo, order) {
                    return true;
                }
                order.pop();
            }
        }
        false
    }

    let init = spec.initial();
    if dfs(history, spec, &preds, full, 0, &init, &mut memo, &mut order) {
        LinResult::Linearizable(order)
    } else {
        LinResult::Violation
    }
}

/// Convenience: checks linearizability and panics with diagnostics on
/// violation (for use in tests).
///
/// # Panics
/// Panics if the history is not linearizable.
pub fn assert_linearizable<S: Spec>(history: &History, spec: &S) {
    if let LinResult::Violation = check_linearizable(history, spec) {
        panic!("history is not linearizable: {:#?}", history.events);
    }
}

#[cfg(test)]
mod tests {
    use super::specs::{RegisterSpec, REG_CAS, REG_READ, REG_WRITE};
    use super::*;

    fn ev(pid: usize, op: u32, a: u64, b: u64, result: u64, invoke: u64, response: u64) -> Event {
        Event { pid, op, a, b, result, result_set: vec![], invoke, response }
    }

    #[test]
    fn empty_history_is_linearizable() {
        let h = History::default();
        assert!(check_linearizable(&h, &RegisterSpec::new(0)).is_ok());
    }

    #[test]
    fn sequential_register_history_ok() {
        let h = History::from_parts(vec![vec![
            ev(0, REG_WRITE, 5, 0, 0, 0, 1),
            ev(0, REG_READ, 0, 0, 5, 2, 3),
        ]]);
        assert!(check_linearizable(&h, &RegisterSpec::new(0)).is_ok());
    }

    #[test]
    fn stale_read_after_write_is_violation() {
        // write(5) completes strictly before read, but read returns 0.
        let h = History::from_parts(vec![
            vec![ev(0, REG_WRITE, 5, 0, 0, 0, 1)],
            vec![ev(1, REG_READ, 0, 0, 0, 2, 3)],
        ]);
        assert_eq!(check_linearizable(&h, &RegisterSpec::new(0)), LinResult::Violation);
    }

    #[test]
    fn overlapping_read_may_return_either_value() {
        // read overlaps write(5): returning 0 or 5 are both fine.
        for result in [0u64, 5] {
            let h = History::from_parts(vec![
                vec![ev(0, REG_WRITE, 5, 0, 0, 0, 10)],
                vec![ev(1, REG_READ, 0, 0, result, 2, 3)],
            ]);
            assert!(
                check_linearizable(&h, &RegisterSpec::new(0)).is_ok(),
                "result {result} should be legal"
            );
        }
    }

    #[test]
    fn read_of_never_written_value_is_violation() {
        let h = History::from_parts(vec![
            vec![ev(0, REG_WRITE, 5, 0, 0, 0, 10)],
            vec![ev(1, REG_READ, 0, 0, 7, 2, 3)],
        ]);
        assert_eq!(check_linearizable(&h, &RegisterSpec::new(0)), LinResult::Violation);
    }

    #[test]
    fn two_successful_cas_from_same_value_is_violation() {
        // Both CAS(0 -> x) succeed: impossible.
        let h = History::from_parts(vec![
            vec![ev(0, REG_CAS, 0, 1, 1, 0, 10)],
            vec![ev(1, REG_CAS, 0, 2, 1, 0, 10)],
        ]);
        assert_eq!(check_linearizable(&h, &RegisterSpec::new(0)), LinResult::Violation);
    }

    #[test]
    fn cas_success_and_failure_interleave_ok() {
        let h = History::from_parts(vec![
            vec![ev(0, REG_CAS, 0, 1, 1, 0, 10)],
            vec![ev(1, REG_CAS, 0, 2, 0, 0, 10)], // fails: sees 1
        ]);
        assert!(check_linearizable(&h, &RegisterSpec::new(0)).is_ok());
    }

    #[test]
    fn witness_order_respects_real_time() {
        let h = History::from_parts(vec![
            vec![ev(0, REG_WRITE, 1, 0, 0, 0, 1), ev(0, REG_WRITE, 2, 0, 0, 4, 5)],
            vec![ev(1, REG_READ, 0, 0, 1, 2, 3)],
        ]);
        match check_linearizable(&h, &RegisterSpec::new(0)) {
            LinResult::Linearizable(order) => {
                // write(1) must come first, read(=1) second, write(2) last.
                let pos = |i: usize| order.iter().position(|&x| x == i).unwrap();
                assert!(pos(0) < pos(1), "write(1) before read in {order:?}");
                assert!(pos(1) < pos(2), "read before write(2) in {order:?}");
            }
            LinResult::Violation => panic!("expected linearizable"),
        }
    }
}
