//! Per-lock **holder-exclusivity** auditing over recorded histories.
//!
//! Mutual exclusion says the winners of one lock form a *sequence*: their
//! critical sections take effect one at a time. The fairness subsystem
//! makes that sequence observable on real hardware: each winning critical
//! section appends its unique holder token to the lock's **holder log** at
//! the slot named by the lock's acquisition counter (so slot `k` holds the
//! token of the `k`-th holder), and every attempt is bracketed in the
//! history as a [`HOLD_OP`] event (`a` = lock id, `b` = holder token,
//! `result` = 1 for a win, 0 for a loss) whose interval covers the
//! critical section — `invoke` is recorded before the attempt starts and
//! `response` after it returns, and a winner's thunk has completed by the
//! time its attempt returns.
//!
//! [`check_holder_exclusivity`] verifies the conditions any mutually
//! exclusive execution must satisfy, and that are violated by lost
//! updates, double applications, or phantom holders:
//!
//! 1. **Distinct holders**: no token appears twice in a log (a duplicate
//!    means one attempt's critical section ran twice, or two attempts saw
//!    the same sequence number).
//! 2. **Exact coverage**: the multiset of log tokens for a lock equals the
//!    multiset of winning `HOLD_OP` tokens for it — every win appended
//!    exactly once, no loss appended at all (a gap is a lost update; an
//!    extra entry is a phantom holder).
//! 3. **Real-time order**: if win `A`'s event responded before win `B`'s
//!    was invoked, `A`'s token sits earlier in the log than `B`'s — the
//!    holder sequence may not contradict wall-clock precedence. (Record
//!    the history under [`wfl_runtime::real::RealConfig::precise`] so
//!    cross-thread timestamps are globally ordered; overlapping attempts
//!    are unconstrained, which is what makes this condition sound under
//!    helping and post-attempt delay padding.)
//!
//! The conditions are necessary, not complete — like the set-regularity
//! detector, every reported violation is real.

use std::collections::HashMap;
use wfl_runtime::History;

/// History op code: one tryLock attempt on lock `a` with holder token `b`;
/// `result` 1 = won (the token was appended to the holder log), 0 = lost.
pub const HOLD_OP: u32 = 30;

/// A detected holder-exclusivity violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HolderViolation {
    /// The lock whose holder sequence is impossible.
    pub lock: u64,
    /// Human-readable explanation.
    pub reason: String,
}

/// Audits per-lock holder sequences against the recorded attempt history
/// (see module docs). `logs` pairs each audited lock id with its holder
/// log — the tokens in acquisition-sequence order, exactly as the critical
/// sections appended them. Events with other opcodes are ignored; a
/// `HOLD_OP` event on a lock missing from `logs` is itself a violation
/// (the audit must cover every contested lock).
pub fn check_holder_exclusivity(
    history: &History,
    logs: &[(u64, Vec<u64>)],
) -> Vec<HolderViolation> {
    let mut violations = Vec::new();
    let audited: HashMap<u64, &Vec<u64>> = logs.iter().map(|(l, t)| (*l, t)).collect();

    for e in history.events.iter().filter(|e| e.op == HOLD_OP) {
        if !audited.contains_key(&e.a) {
            violations.push(HolderViolation {
                lock: e.a,
                reason: format!("attempt event for lock {} has no holder log", e.a),
            });
        }
    }

    for (lock, log) in logs {
        // 1. Distinct, non-null holders.
        let mut pos: HashMap<u64, usize> = HashMap::with_capacity(log.len());
        for (i, &tok) in log.iter().enumerate() {
            if tok == 0 {
                violations.push(HolderViolation {
                    lock: *lock,
                    reason: format!("log slot {i} holds no token (lost update left a gap)"),
                });
            } else if pos.insert(tok, i).is_some() {
                violations.push(HolderViolation {
                    lock: *lock,
                    reason: format!("token {tok:#x} appears twice (critical section ran twice)"),
                });
            }
        }

        // 2. Exact coverage: log tokens == winning event tokens.
        let wins: Vec<usize> = history
            .events
            .iter()
            .enumerate()
            .filter(|(_, e)| e.op == HOLD_OP && e.a == *lock && e.result == 1)
            .map(|(i, _)| i)
            .collect();
        let mut won_tokens: Vec<u64> = wins.iter().map(|&i| history.events[i].b).collect();
        won_tokens.sort_unstable();
        let mut log_tokens: Vec<u64> = log.clone();
        log_tokens.sort_unstable();
        if won_tokens != log_tokens {
            violations.push(HolderViolation {
                lock: *lock,
                reason: format!(
                    "holder log {log_tokens:x?} disagrees with recorded wins {won_tokens:x?}"
                ),
            });
        }
        for e in history.events.iter().filter(|e| e.op == HOLD_OP && e.a == *lock && e.result == 0)
        {
            if pos.contains_key(&e.b) {
                violations.push(HolderViolation {
                    lock: *lock,
                    reason: format!("losing attempt {:#x} appears as a holder", e.b),
                });
            }
        }

        // 3. Real-time precedence must agree with the log order. Sweep the
        // wins in invoke order, folding in completed wins (response
        // strictly before the current invoke) from a response-sorted list
        // and tracking the *latest* log slot among them: the current win
        // must hold strictly later than all of those — comparing against
        // the maximum covers every ordered pair in O(W log W), not W².
        let mut by_invoke: Vec<usize> = wins.clone();
        by_invoke.sort_by_key(|&i| history.events[i].invoke);
        let mut by_response: Vec<usize> = wins.clone();
        by_response.sort_by_key(|&i| history.events[i].response);
        let mut folded = 0usize;
        let mut latest: Option<(usize, u64)> = None; // (log slot, token)
        for &bi in &by_invoke {
            let b = &history.events[bi];
            while folded < by_response.len() {
                let a = &history.events[by_response[folded]];
                if a.response >= b.invoke {
                    break;
                }
                if let Some(&pa) = pos.get(&a.b) {
                    if latest.is_none_or(|(slot, _)| pa > slot) {
                        latest = Some((pa, a.b));
                    }
                }
                folded += 1;
            }
            let (Some((pa, tok)), Some(&pb)) = (latest, pos.get(&b.b)) else {
                continue; // unlogged tokens are reported by the coverage check
            };
            if pa >= pb && tok != b.b {
                violations.push(HolderViolation {
                    lock: *lock,
                    reason: format!(
                        "win {tok:#x} finished before win {:#x} began but holds later (slot {pa} >= {pb})",
                        b.b
                    ),
                });
            }
        }
    }
    violations
}

/// Asserts that the per-lock holder sequences are exclusive.
///
/// # Panics
/// Panics with the violations if any are found.
pub fn assert_holder_exclusive(history: &History, logs: &[(u64, Vec<u64>)]) {
    let v = check_holder_exclusivity(history, logs);
    assert!(v.is_empty(), "holder-exclusivity violations: {v:#?}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfl_runtime::Event;

    fn hold(pid: usize, lock: u64, token: u64, won: bool, invoke: u64, response: u64) -> Event {
        Event {
            pid,
            op: HOLD_OP,
            a: lock,
            b: token,
            result: won as u64,
            result_set: vec![],
            invoke,
            response,
        }
    }

    fn history(evs: Vec<Event>) -> History {
        History::from_parts(vec![evs])
    }

    #[test]
    fn sequential_holders_in_order_pass() {
        let h = history(vec![
            hold(0, 7, 0xA, true, 0, 10),
            hold(1, 7, 0xB, false, 11, 20),
            hold(1, 7, 0xC, true, 21, 30),
        ]);
        let logs = vec![(7u64, vec![0xA, 0xC])];
        assert!(check_holder_exclusivity(&h, &logs).is_empty());
    }

    #[test]
    fn overlapping_wins_may_hold_in_either_order() {
        for log in [vec![0xAu64, 0xB], vec![0xBu64, 0xA]] {
            let h = history(vec![
                hold(0, 7, 0xA, true, 0, 100),
                hold(1, 7, 0xB, true, 50, 160),
            ]);
            assert!(
                check_holder_exclusivity(&h, &[(7, log.clone())]).is_empty(),
                "overlapping attempts: log order {log:x?} is legal"
            );
        }
    }

    #[test]
    fn real_time_precedence_violation_is_detected() {
        // A finished strictly before B began, yet the log says B held first.
        let h = history(vec![
            hold(0, 7, 0xA, true, 0, 10),
            hold(1, 7, 0xB, true, 20, 30),
        ]);
        let v = check_holder_exclusivity(&h, &[(7, vec![0xB, 0xA])]);
        assert_eq!(v.len(), 1);
        assert!(v[0].reason.contains("holds later"), "{}", v[0].reason);
    }

    #[test]
    fn duplicate_holder_is_detected() {
        let h = history(vec![
            hold(0, 7, 0xA, true, 0, 10),
            hold(1, 7, 0xA, true, 20, 30),
        ]);
        let v = check_holder_exclusivity(&h, &[(7, vec![0xA, 0xA])]);
        assert!(v.iter().any(|x| x.reason.contains("twice")), "{v:?}");
    }

    #[test]
    fn gap_and_coverage_mismatch_are_detected() {
        let h = history(vec![hold(0, 7, 0xA, true, 0, 10)]);
        // Gap: a zero slot where the win's token should be.
        let v = check_holder_exclusivity(&h, &[(7, vec![0])]);
        assert!(v.iter().any(|x| x.reason.contains("gap")), "{v:?}");
        assert!(v.iter().any(|x| x.reason.contains("disagrees")), "{v:?}");
        // Phantom: the log has a holder no win produced.
        let v = check_holder_exclusivity(&h, &[(7, vec![0xA, 0xD])]);
        assert!(v.iter().any(|x| x.reason.contains("disagrees")), "{v:?}");
    }

    #[test]
    fn losing_attempt_in_log_is_detected() {
        let h = history(vec![
            hold(0, 7, 0xA, true, 0, 10),
            hold(1, 7, 0xB, false, 0, 10),
        ]);
        let v = check_holder_exclusivity(&h, &[(7, vec![0xA, 0xB])]);
        assert!(v.iter().any(|x| x.reason.contains("losing attempt")), "{v:?}");
    }

    #[test]
    fn unaudited_lock_with_events_is_flagged() {
        let h = history(vec![hold(0, 9, 0xA, true, 0, 10)]);
        let v = check_holder_exclusivity(&h, &[(7, vec![])]);
        assert!(v.iter().any(|x| x.lock == 9 && x.reason.contains("no holder log")), "{v:?}");
    }

    #[test]
    fn locks_are_audited_independently() {
        let h = history(vec![
            hold(0, 1, 0xA, true, 0, 10),
            hold(1, 2, 0xB, true, 20, 30),
        ]);
        let logs = vec![(1u64, vec![0xA]), (2u64, vec![0xB])];
        assert!(check_holder_exclusivity(&h, &logs).is_empty());
    }
}
