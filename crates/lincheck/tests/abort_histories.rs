//! Property tests for the **abort path**: histories mixing won, lost,
//! aborted and rescued tryLock attempts must pass the holder-exclusivity
//! audit and the set-regularity detector, and corrupted variants of the
//! same histories must trip them.
//!
//! The four attempt fates mirror what `lock_and_run_until` can produce:
//!
//! * **won** — decided ST_WON; the critical section ran and appended the
//!   attempt's token to the holder log.
//! * **lost** — eliminated (ST_LOST); no token appended.
//! * **aborted** — the owner gave up on its deadline before the decision
//!   point and the descriptor was eliminated; observationally a loss, but
//!   the interval may have been cut short at any poll point.
//! * **rescued** — the owner gave up *after* reveal and a helper drove the
//!   descriptor to ST_WON anyway: the critical section ran (the helper
//!   appended the token) and the owner observed the win on its way out.
//!
//! The checkers cannot (and must not) distinguish a rescued win from an
//! ordinary one, or an abort from a loss — mutual exclusion is about which
//! critical sections ran, not who executed them. What the properties pin
//! down is that such histories are *accepted*, and that the corruptions an
//! abort bug would produce — an abandoned token leaking into the log, a
//! helper appending twice, a lost update, a sequence contradicting real
//! time — are *rejected*.

use proptest::prelude::*;
use wfl_lincheck::holders::{check_holder_exclusivity, HOLD_OP};
use wfl_lincheck::regular::{check_set_regularity, MS_GETSET, MS_INSERT, MS_REMOVE};
use wfl_runtime::{Event, History};

/// Deterministic xorshift stream (the vendored proptest shim only draws
/// scalar strategies; structured inputs are derived from a sampled seed).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed ^ 0x9e37_79b9_7f4a_7c15)
    }
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

#[derive(Clone, Copy, PartialEq, Debug)]
enum Fate {
    Won,
    Lost,
    Aborted,
    Rescued,
}

struct Attempt {
    lock: u64,
    token: u64,
    fate: Fate,
    invoke: u64,
    response: u64,
}

/// A generated execution: the recorded history, the per-lock holder logs
/// (tokens in commit order, exactly as the critical sections appended
/// them), and the attempt table the negative controls mutate from.
struct Execution {
    history: History,
    logs: Vec<(u64, Vec<u64>)>,
    attempts: Vec<Attempt>,
}

/// Builds a mixed-fate execution. Attempts are laid out on `nprocs`
/// sequential lanes over a shared clock that advances slower than the
/// attempt intervals, so attempts on different lanes overlap freely. Each
/// winning attempt (won or rescued) commits — takes its holder slot — at a
/// point strictly inside its interval; the holder log lists winners in
/// commit order, which is exactly what a correct lock produces: if A
/// responded before B was invoked then A committed first.
fn build(seed: u64, nprocs: usize, nlocks: u64, nattempts: usize) -> Execution {
    let mut rng = Rng::new(seed);
    let mut lanes: Vec<Vec<Event>> = vec![Vec::new(); nprocs];
    let mut last_resp = vec![0u64; nprocs];
    let mut base = 1u64;
    let mut attempts = Vec::with_capacity(nattempts);
    // (lock, commit, token) for every critical section that ran.
    let mut commits: Vec<(u64, u64, u64)> = Vec::new();

    for i in 0..nattempts {
        let pid = i % nprocs;
        let lock = rng.below(nlocks);
        let fate = match rng.below(8) {
            0..=2 => Fate::Won,
            3..=4 => Fate::Lost,
            5..=6 => Fate::Aborted,
            _ => Fate::Rescued,
        };
        let token = 0x100 + i as u64; // unique and nonzero
        base += rng.below(7);
        let invoke = base.max(last_resp[pid] + 1);
        let commit = invoke + 1 + rng.below(9);
        // A rescued owner returns only after observing the helper's win,
        // so response never precedes the commit point for any fate.
        let response = commit + rng.below(9);
        last_resp[pid] = response;
        let won = matches!(fate, Fate::Won | Fate::Rescued);
        lanes[pid].push(Event {
            pid,
            op: HOLD_OP,
            a: lock,
            b: token,
            result: won as u64,
            result_set: vec![],
            invoke,
            response,
        });
        if won {
            commits.push((lock, commit, token));
        }
        attempts.push(Attempt { lock, token, fate, invoke, response });
    }

    commits.sort_by_key(|&(lock, commit, _)| (lock, commit));
    let logs = (0..nlocks)
        .map(|l| {
            let toks =
                commits.iter().filter(|&&(lock, _, _)| lock == l).map(|&(_, _, t)| t).collect();
            (l, toks)
        })
        .collect();

    Execution { history: History::from_parts(lanes), logs, attempts }
}

fn log_of(ex: &mut Execution, lock: u64) -> &mut Vec<u64> {
    &mut ex.logs.iter_mut().find(|(l, _)| *l == lock).expect("every lock is audited").1
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Clean mixed-fate executions pass the holder audit: aborted and lost
    /// attempts leave no trace in the logs, won and rescued attempts each
    /// hold exactly once, and commit order never contradicts real time.
    #[test]
    fn mixed_fate_histories_are_holder_exclusive(
        seed in 0u64..1_000_000,
        nprocs in 1usize..6,
        nlocks in 1u64..5,
        nattempts in 0usize..120,
    ) {
        let ex = build(seed, nprocs, nlocks, nattempts);
        let v = check_holder_exclusivity(&ex.history, &ex.logs);
        prop_assert!(v.is_empty(), "clean history flagged: {v:?}");
        // The generator really does exercise the abort path.
        if nattempts >= 64 {
            for fate in [Fate::Won, Fate::Aborted, Fate::Rescued] {
                prop_assert!(
                    ex.attempts.iter().any(|a| a.fate == fate),
                    "generator produced no {fate:?} attempt in {nattempts}"
                );
            }
        }
    }

    /// Corruption control: a helper that re-runs an already-completed
    /// critical section appends the same token twice.
    #[test]
    fn double_helped_critical_section_is_detected(seed in 0u64..1_000_000) {
        let mut ex = build(seed, 4, 3, 80);
        let Some(w) = ex.attempts.iter().find(|a| matches!(a.fate, Fate::Won | Fate::Rescued))
        else { return; };
        let (lock, token) = (w.lock, w.token);
        log_of(&mut ex, lock).push(token);
        let v = check_holder_exclusivity(&ex.history, &ex.logs);
        prop_assert!(
            v.iter().any(|x| x.lock == lock && x.reason.contains("twice")),
            "duplicated token {token:#x} not flagged: {v:?}"
        );
    }

    /// Corruption control: an aborted attempt whose token nevertheless
    /// appears in the holder log — the abandoned-descriptor bug the
    /// helpable-after-abort invariant exists to prevent.
    #[test]
    fn aborted_token_leaking_into_the_log_is_detected(seed in 0u64..1_000_000) {
        let mut ex = build(seed, 4, 3, 80);
        let Some(a) = ex.attempts.iter().find(|a| a.fate == Fate::Aborted)
        else { return; };
        let (lock, token) = (a.lock, a.token);
        log_of(&mut ex, lock).push(token);
        let v = check_holder_exclusivity(&ex.history, &ex.logs);
        prop_assert!(
            v.iter().any(|x| x.lock == lock && x.reason.contains("losing attempt")),
            "aborted holder {token:#x} not flagged: {v:?}"
        );
        prop_assert!(v.iter().any(|x| x.reason.contains("disagrees")), "{v:?}");
    }

    /// Corruption control: a lost update — a win whose log entry vanished
    /// (e.g. an aborting owner released a lock its helper had won).
    #[test]
    fn lost_update_is_detected(seed in 0u64..1_000_000) {
        let mut ex = build(seed, 4, 3, 80);
        let Some((lock, tok)) = ex
            .logs
            .iter()
            .find(|(_, toks)| !toks.is_empty())
            .map(|(l, toks)| (*l, toks[toks.len() / 2]))
        else { return; };
        log_of(&mut ex, lock).retain(|&t| t != tok);
        let v = check_holder_exclusivity(&ex.history, &ex.logs);
        prop_assert!(
            v.iter().any(|x| x.lock == lock && x.reason.contains("disagrees")),
            "dropped win {tok:#x} not flagged: {v:?}"
        );
    }

    /// Corruption control: two wins separated in real time whose log slots
    /// are swapped — the holder sequence contradicting wall-clock order.
    #[test]
    fn real_time_inversion_is_detected(seed in 0u64..1_000_000) {
        let mut ex = build(seed, 4, 2, 80);
        // A pair of wins on one lock where the earlier responded strictly
        // before the later was invoked; the lanes overlap, so scan for one.
        let mut pair = None;
        'outer: for a in &ex.attempts {
            if !matches!(a.fate, Fate::Won | Fate::Rescued) {
                continue;
            }
            for b in &ex.attempts {
                if matches!(b.fate, Fate::Won | Fate::Rescued)
                    && a.lock == b.lock
                    && a.response < b.invoke
                {
                    pair = Some((a.lock, a.token, b.token));
                    break 'outer;
                }
            }
        }
        let Some((lock, ta, tb)) = pair else { return; };
        let log = log_of(&mut ex, lock);
        let ia = log.iter().position(|&t| t == ta).expect("win A holds");
        let ib = log.iter().position(|&t| t == tb).expect("win B holds");
        log.swap(ia, ib);
        let v = check_holder_exclusivity(&ex.history, &ex.logs);
        prop_assert!(
            v.iter().any(|x| x.lock == lock && x.reason.contains("holds later")),
            "swapped wins {ta:#x}/{tb:#x} not flagged: {v:?}"
        );
    }
}

// ---------------------------------------------------------------------------
// Set regularity under aborts: an attempt inserts itself into the lock's
// multi active set at reveal; whoever finishes the attempt — the owner on a
// win or loss, a helper after an abort — removes it. The detector must
// accept those insert/remove/getSet interleavings and reject views that
// resurrect a cleaned-up abort or lose a standing member.
// ---------------------------------------------------------------------------

fn ins(pid: usize, x: u64, set: u64, invoke: u64, response: u64) -> Event {
    Event { pid, op: MS_INSERT, a: x, b: set, result: 0, result_set: vec![], invoke, response }
}
fn rem(pid: usize, x: u64, set: u64, invoke: u64, response: u64) -> Event {
    Event { pid, op: MS_REMOVE, a: x, b: set, result: 0, result_set: vec![], invoke, response }
}
fn get(pid: usize, set: u64, members: Vec<u64>, invoke: u64, response: u64) -> Event {
    let mut ms = members;
    ms.sort_unstable();
    Event { pid, op: MS_GETSET, a: 0, b: set, result: 0, result_set: ms, invoke, response }
}

/// A generated active-set history plus the index of every *quiescent*
/// getSet (one that overlapped no update, so its view is forced) — the
/// negative controls corrupt those.
struct SetExecution {
    events: Vec<Event>,
    quiescent_getsets: Vec<usize>,
}

/// Sequential truth with injected overlap: updates and quiescent getSets
/// advance a single clock; sometimes an insert or the remove that cleans up
/// an aborted attempt is left dangling over the next getSet, which is then
/// free to report either view. Membership is tracked exactly, so quiescent
/// getSets report ground truth.
fn build_set_history(seed: u64, nsteps: usize) -> SetExecution {
    let mut rng = Rng::new(seed.wrapping_mul(0x5851_f42d_4c95_7f2d).wrapping_add(1));
    let mut events = Vec::new();
    let mut quiescent = Vec::new();
    let mut members: Vec<u64> = Vec::new();
    let mut next_tok = 0x1000u64;
    let mut t = 1u64;
    let set = 0u64;

    for step in 0..nsteps {
        let pid = step % 3;
        match rng.below(6) {
            // Reveal: a fresh attempt inserts itself (it may later win,
            // lose, or abort — the set does not care which).
            0 | 1 => {
                let x = next_tok;
                next_tok += 1;
                events.push(ins(pid, x, set, t, t + 1));
                members.push(x);
                t += 2;
            }
            // Completion or post-abort helper cleanup: remove a member.
            2 => {
                if members.is_empty() {
                    continue;
                }
                let i = rng.below(members.len() as u64) as usize;
                let x = members.remove(i);
                events.push(rem(pid, x, set, t, t + 1));
                t += 2;
            }
            // Quiescent getSet: no concurrent update, view is forced.
            3 => {
                quiescent.push(events.len());
                events.push(get(pid, set, members.clone(), t, t + 1));
                t += 2;
            }
            // An insert left hanging over a getSet: the reader may or may
            // not see the still-revealing attempt.
            4 => {
                let x = next_tok;
                next_tok += 1;
                events.push(ins(pid, x, set, t, t + 6));
                let mut view = members.clone();
                if rng.below(2) == 1 {
                    view.push(x);
                }
                events.push(get((pid + 1) % 3, set, view, t + 1, t + 2));
                members.push(x);
                t += 7;
            }
            // An abort's cleanup remove hanging over a getSet: the reader
            // may still see the abandoned attempt, or already not.
            _ => {
                if members.is_empty() {
                    continue;
                }
                let i = rng.below(members.len() as u64) as usize;
                let x = members.remove(i);
                events.push(rem(pid, x, set, t, t + 6));
                let mut view = members.clone();
                if rng.below(2) == 1 {
                    view.push(x);
                }
                events.push(get((pid + 1) % 3, set, view, t + 1, t + 2));
                t += 7;
            }
        }
    }
    SetExecution { events, quiescent_getsets: quiescent }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Clean abort-heavy active-set histories are set regular: helper
    /// cleanup racing a reader is legal in either outcome, and forced
    /// views match ground truth.
    #[test]
    fn abort_cleanup_histories_are_set_regular(
        seed in 0u64..1_000_000,
        nsteps in 0usize..150,
    ) {
        let ex = build_set_history(seed, nsteps);
        let h = History::from_parts(vec![ex.events]);
        let v = check_set_regularity(&h);
        prop_assert!(v.is_empty(), "clean set history flagged: {v:?}");
    }

    /// Corruption control: a reader resurrects an attempt whose cleanup
    /// finished before the read began (stale active-set view).
    #[test]
    fn resurrected_abort_is_detected(seed in 0u64..1_000_000) {
        let mut ex = build_set_history(seed, 100);
        // Find a quiescent getSet preceded by a completed remove whose
        // token it correctly omits, and resurrect that token.
        let Some((gi, tok)) = ex.quiescent_getsets.iter().find_map(|&gi| {
            let g = &ex.events[gi];
            ex.events[..gi]
                .iter()
                .filter(|e| e.op == MS_REMOVE && !g.result_set.contains(&e.a))
                .map(|e| (gi, e.a))
                .next_back()
        }) else { return; };
        ex.events[gi].result_set.push(tok);
        ex.events[gi].result_set.sort_unstable();
        let h = History::from_parts(vec![ex.events]);
        let v = check_set_regularity(&h);
        prop_assert!(
            v.iter().any(|x| x.item == tok && x.reason.contains("removed")),
            "resurrected token {tok:#x} not flagged: {v:?}"
        );
    }

    /// Corruption control: a reader drops a member whose insert completed
    /// and which nothing removed during the read (lost member).
    #[test]
    fn lost_member_is_detected(seed in 0u64..1_000_000) {
        let mut ex = build_set_history(seed, 100);
        let Some((gi, tok)) = ex
            .quiescent_getsets
            .iter()
            .find(|&&gi| !ex.events[gi].result_set.is_empty())
            .map(|&gi| (gi, ex.events[gi].result_set[0]))
        else { return; };
        ex.events[gi].result_set.retain(|&x| x != tok);
        let h = History::from_parts(vec![ex.events]);
        let v = check_set_regularity(&h);
        prop_assert!(
            v.iter().any(|x| x.item == tok && x.reason.contains("missing member")),
            "dropped member {tok:#x} not flagged: {v:?}"
        );
    }

    /// Corruption control: a phantom that was never inserted at all.
    #[test]
    fn phantom_member_is_detected(seed in 0u64..1_000_000) {
        let mut ex = build_set_history(seed, 60);
        let Some(&gi) = ex.quiescent_getsets.first() else { return; };
        let phantom = 0xdead_beef;
        ex.events[gi].result_set.push(phantom);
        ex.events[gi].result_set.sort_unstable();
        let h = History::from_parts(vec![ex.events]);
        let v = check_set_regularity(&h);
        prop_assert!(
            v.iter().any(|x| x.item == phantom && x.reason.contains("no insert")),
            "phantom {phantom:#x} not flagged: {v:?}"
        );
    }
}
