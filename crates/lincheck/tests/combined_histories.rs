//! Property tests for the **combining fast path**: histories in which some
//! wins were granted by a combining holder (wfl's `LockConfig::combine`
//! claim, or a delegation combiner applying a published request) must pass
//! the holder-exclusivity audit, and the corruptions a combining bug would
//! produce must trip it.
//!
//! The fates extend `abort_histories.rs` with the fifth outcome
//! `lock_and_run_until` can now report:
//!
//! * **combined** — the attempt revealed, and a holder of a superset of
//!   its locks claimed the descriptor (CAS ACTIVE→COMBINED) and executed
//!   its critical section before releasing. Observationally a win: the
//!   thunk ran exactly once (the combiner appended the token) and the
//!   owner returned success after observing the claim.
//!
//! Like a rescue, a combined win is *executed by someone else* — and the
//! checkers must not care who. What the properties pin down:
//!
//! * clean mixed histories with combined wins are accepted (exactly-once
//!   execution: each combined attempt holds exactly once, in an order
//!   consistent with real time);
//! * the double-apply a combiner/owner race would cause — the owner's
//!   decide path re-running a critical section its combiner already ran,
//!   i.e. the `OUT_COMBINED`/`OUT_RESCUED` disjointness broken into two
//!   executors — appends the token twice and is rejected;
//! * a claim that "wins" an attempt the competition had already
//!   eliminated (eliminate-beats-claim done wrong) leaks a losing
//!   attempt's token into the log and is rejected;
//! * a combiner batch whose commits contradict real time is rejected.

use proptest::prelude::*;
use wfl_lincheck::holders::{check_holder_exclusivity, HOLD_OP};
use wfl_runtime::{Event, History};

/// Deterministic xorshift stream (the vendored proptest shim only draws
/// scalar strategies; structured inputs are derived from a sampled seed).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed ^ 0x9e37_79b9_7f4a_7c15)
    }
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

#[derive(Clone, Copy, PartialEq, Debug)]
enum Fate {
    Won,
    Lost,
    Aborted,
    Rescued,
    /// Claimed and executed by a combining holder.
    Combined,
}

struct Attempt {
    lock: u64,
    token: u64,
    fate: Fate,
    invoke: u64,
    response: u64,
}

/// A generated execution: the recorded history, the per-lock holder logs
/// (tokens in commit order, exactly as the critical sections appended
/// them), and the attempt table the negative controls mutate from.
struct Execution {
    history: History,
    logs: Vec<(u64, Vec<u64>)>,
    attempts: Vec<Attempt>,
}

/// Builds a mixed-fate execution including combined wins. Attempts are laid
/// out on `nprocs` sequential lanes over a shared clock that advances
/// slower than the attempt intervals, so attempts on different lanes
/// overlap freely. Every winning fate (won, rescued, combined) commits —
/// the critical section appends its token — at a point strictly inside the
/// attempt's interval: a combiner claims only descriptors that revealed
/// before its settle pass, and the owner returns only after observing the
/// claim, so the combined execution is always bracketed by the owner's
/// invoke/response exactly like a rescue.
fn build(seed: u64, nprocs: usize, nlocks: u64, nattempts: usize) -> Execution {
    let mut rng = Rng::new(seed);
    let mut lanes: Vec<Vec<Event>> = vec![Vec::new(); nprocs];
    let mut last_resp = vec![0u64; nprocs];
    let mut base = 1u64;
    let mut attempts = Vec::with_capacity(nattempts);
    // (lock, commit, token) for every critical section that ran.
    let mut commits: Vec<(u64, u64, u64)> = Vec::new();

    for i in 0..nattempts {
        let pid = i % nprocs;
        let lock = rng.below(nlocks);
        let fate = match rng.below(10) {
            0..=2 => Fate::Won,
            3..=4 => Fate::Lost,
            5 => Fate::Aborted,
            6 => Fate::Rescued,
            _ => Fate::Combined,
        };
        let token = 0x100 + i as u64; // unique and nonzero
        base += rng.below(7);
        let invoke = base.max(last_resp[pid] + 1);
        let commit = invoke + 1 + rng.below(9);
        // Rescued and combined owners return only after observing the
        // helper's (or claimant's) win, so response never precedes the
        // commit point for any fate.
        let response = commit + rng.below(9);
        last_resp[pid] = response;
        let won = matches!(fate, Fate::Won | Fate::Rescued | Fate::Combined);
        lanes[pid].push(Event {
            pid,
            op: HOLD_OP,
            a: lock,
            b: token,
            result: won as u64,
            result_set: vec![],
            invoke,
            response,
        });
        if won {
            commits.push((lock, commit, token));
        }
        attempts.push(Attempt { lock, token, fate, invoke, response });
    }

    commits.sort_by_key(|&(lock, commit, _)| (lock, commit));
    let logs = (0..nlocks)
        .map(|l| {
            let toks =
                commits.iter().filter(|&&(lock, _, _)| lock == l).map(|&(_, _, t)| t).collect();
            (l, toks)
        })
        .collect();

    Execution { history: History::from_parts(lanes), logs, attempts }
}

fn log_of(ex: &mut Execution, lock: u64) -> &mut Vec<u64> {
    &mut ex.logs.iter_mut().find(|(l, _)| *l == lock).expect("every lock is audited").1
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Clean histories with combined wins pass the holder audit: each
    /// combined attempt's critical section ran exactly once (one token in
    /// the log), lost and aborted attempts leave no trace, and commit
    /// order never contradicts real time. The checker cannot — and must
    /// not — distinguish a combined win from an ordinary or rescued one.
    #[test]
    fn combined_histories_are_holder_exclusive(
        seed in 0u64..1_000_000,
        nprocs in 1usize..6,
        nlocks in 1u64..5,
        nattempts in 0usize..120,
    ) {
        let ex = build(seed, nprocs, nlocks, nattempts);
        let v = check_holder_exclusivity(&ex.history, &ex.logs);
        prop_assert!(v.is_empty(), "clean combined history flagged: {v:?}");
        // The generator really does exercise the combining path alongside
        // the abort path it extends.
        if nattempts >= 64 {
            for fate in [Fate::Won, Fate::Combined, Fate::Rescued] {
                prop_assert!(
                    ex.attempts.iter().any(|a| a.fate == fate),
                    "generator produced no {fate:?} attempt in {nattempts}"
                );
            }
        }
    }

    /// Corruption control — the exactly-once property: a combiner/owner
    /// race in which both execute the claimed critical section (the owner
    /// decided itself WON while the claimant also ran the frame; the bug
    /// the one-claim-per-settle-round protocol exists to prevent) appends
    /// the token twice. This is also what breaking `OUT_COMBINED` /
    /// `OUT_RESCUED` disjointness looks like on the log: two distinct
    /// grant paths each executing the same attempt.
    #[test]
    fn combiner_owner_double_apply_is_detected(seed in 0u64..1_000_000) {
        let mut ex = build(seed, 4, 3, 80);
        let Some(c) = ex.attempts.iter().find(|a| a.fate == Fate::Combined)
        else { return; };
        let (lock, token) = (c.lock, c.token);
        log_of(&mut ex, lock).push(token);
        let v = check_holder_exclusivity(&ex.history, &ex.logs);
        prop_assert!(
            v.iter().any(|x| x.lock == lock && x.reason.contains("twice")),
            "double-applied combined token {token:#x} not flagged: {v:?}"
        );
    }

    /// Corruption control — eliminate-beats-claim: an attempt the
    /// competition eliminated (reported lost to its owner) whose critical
    /// section a combiner nevertheless ran. A correct claimant's CAS
    /// ACTIVE→COMBINED fails once the eliminate landed; running the frame
    /// anyway leaks a losing attempt's token into the log.
    #[test]
    fn claim_of_eliminated_attempt_is_detected(seed in 0u64..1_000_000) {
        let mut ex = build(seed, 4, 3, 80);
        let Some(l) = ex.attempts.iter().find(|a| a.fate == Fate::Lost)
        else { return; };
        let (lock, token) = (l.lock, l.token);
        log_of(&mut ex, lock).push(token);
        let v = check_holder_exclusivity(&ex.history, &ex.logs);
        prop_assert!(
            v.iter().any(|x| x.lock == lock && x.reason.contains("losing attempt")),
            "eliminated-then-claimed token {token:#x} not flagged: {v:?}"
        );
        prop_assert!(v.iter().any(|x| x.reason.contains("disagrees")), "{v:?}");
    }

    /// Corruption control — a lost update inside a batch: a combined win
    /// whose log entry vanished (the claimant crashed mid-frame and the
    /// owner, observing COMBINED, returned success anyway).
    #[test]
    fn combined_lost_update_is_detected(seed in 0u64..1_000_000) {
        let mut ex = build(seed, 4, 3, 80);
        let Some((lock, tok)) = ex
            .attempts
            .iter()
            .find(|a| a.fate == Fate::Combined)
            .map(|a| (a.lock, a.token))
        else { return; };
        log_of(&mut ex, lock).retain(|&t| t != tok);
        let v = check_holder_exclusivity(&ex.history, &ex.logs);
        prop_assert!(
            v.iter().any(|x| x.lock == lock && x.reason.contains("disagrees")),
            "dropped combined win {tok:#x} not flagged: {v:?}"
        );
    }

    /// Corruption control — batch order vs real time: a combiner executes
    /// its claims while holding, so their commits still fall inside each
    /// owner's attempt interval; a log placing a combined win *before* a
    /// win that responded before the combined attempt was even invoked
    /// contradicts real time and must be flagged.
    #[test]
    fn combined_real_time_inversion_is_detected(seed in 0u64..1_000_000) {
        let mut ex = build(seed, 4, 2, 80);
        // A pair of wins on one lock, at least one combined, where the
        // earlier responded strictly before the later was invoked.
        let mut pair = None;
        'outer: for a in &ex.attempts {
            if !matches!(a.fate, Fate::Won | Fate::Rescued | Fate::Combined) {
                continue;
            }
            for b in &ex.attempts {
                if matches!(b.fate, Fate::Won | Fate::Rescued | Fate::Combined)
                    && (a.fate == Fate::Combined || b.fate == Fate::Combined)
                    && a.lock == b.lock
                    && a.response < b.invoke
                {
                    pair = Some((a.lock, a.token, b.token));
                    break 'outer;
                }
            }
        }
        let Some((lock, ta, tb)) = pair else { return; };
        let log = log_of(&mut ex, lock);
        let ia = log.iter().position(|&t| t == ta).expect("win A holds");
        let ib = log.iter().position(|&t| t == tb).expect("win B holds");
        log.swap(ia, ib);
        let v = check_holder_exclusivity(&ex.history, &ex.logs);
        prop_assert!(
            v.iter().any(|x| x.lock == lock && x.reason.contains("holds later")),
            "swapped combined wins {ta:#x}/{tb:#x} not flagged: {v:?}"
        );
    }
}
