//! CCSynch list-based combining (Fatourou & Kallimanis, PPoPP 2012,
//! *"Revisiting the combining synchronization technique"*).
//!
//! No lock word at all: contenders SWAP a fresh node onto a global tail,
//! publish their request (thunk frame) into the node they displaced, and
//! spin on it locally. Whoever exits its spin *uncompleted* is the
//! combiner: it walks the queue applying up to `H` requests back to
//! back, then hands combining duty to the first unapplied node. Each
//! process recycles one node (allocation-free after setup; nodes are
//! cache-line padded like PR 8's hot records).
//!
//! Aborts use the same claim-CAS discipline as [`crate::FcLock`]: the
//! combiner claims a request (`frame → TAKEN`) before running it, an
//! aborting owner *retracts* (`frame → RETRACTED`); whichever CAS lands
//! settles exactly-once. A retracting owner still spins to `wait == 0`
//! and still performs combining duty if handed it (applying everyone
//! else, skipping its own retracted slot) — bailing early would orphan
//! the queue behind it.
//!
//! The SWAP is emulated with a CAS loop (the runtime exposes no native
//! exchange), making arrival lock-free rather than wait-free — fine for
//! a baseline whose whole family is blocking under a frozen combiner.

use crate::obs;
use wfl_baselines::{AttemptOutcome, LockAlgo};
use wfl_core::{Scratch, TryLockRequest};
use wfl_idem::{Frame, Registry, TagSource};
use wfl_obs::EventKind;
use wfl_runtime::{Addr, Ctx, Heap, Placement, LINE_WORDS};

const W_WAIT: u32 = 0;
const W_DONE: u32 = 1;
const W_REQ: u32 = 2;
const W_NEXT: u32 = 3;
/// Words per queue node (packed placement).
const NODE_WORDS: u32 = 4;

/// Request word: nothing published yet (the tail dummy).
const REQ_NONE: u64 = 0;
/// Request word: retracted by an aborting owner before any combiner
/// claimed it (the combiner skips the node).
const REQ_RETRACTED: u64 = u64::MAX;
/// Request word: claimed by a combiner (the frame is being / has been
/// run). Frame addresses are small heap words, never near the sentinels.
const REQ_TAKEN: u64 = u64::MAX - 1;

/// CCSynch combining queue (one recycled node per process plus the
/// dummy).
pub struct CcSynch<'a> {
    registry: &'a Registry,
    /// Global queue tail: holds the address of the current dummy node.
    tail: Addr,
    /// Per-process spare-node slots (single-writer after setup).
    slots: Addr,
    nprocs: usize,
    slot_stride: u32,
    /// Combining bound `H`: max requests applied per combiner stint.
    h: u64,
}

impl<'a> CcSynch<'a> {
    /// Creates the queue (harness setup): `nprocs + 1` nodes, the tail
    /// pointing at the zeroed dummy.
    pub fn create_root(heap: &Heap, registry: &'a Registry, nprocs: usize) -> CcSynch<'a> {
        Self::create_root_placed(heap, registry, nprocs, Placement::Packed)
    }

    /// Creates the queue under an explicit [`Placement`] (padded: every
    /// node and slot owns a 64B line).
    pub fn create_root_placed(
        heap: &Heap,
        registry: &'a Registry,
        nprocs: usize,
        placement: Placement,
    ) -> CcSynch<'a> {
        assert!(nprocs > 0);
        let nnodes = nprocs + 1;
        let (tail, nodes, slots, node_stride, slot_stride) = match placement {
            Placement::Packed => (
                heap.alloc_root(1),
                heap.alloc_root(nnodes * NODE_WORDS as usize),
                heap.alloc_root(nprocs),
                NODE_WORDS,
                1u32,
            ),
            Placement::Padded => (
                heap.alloc_root_aligned(LINE_WORDS),
                heap.alloc_root_aligned(nnodes * LINE_WORDS),
                heap.alloc_root_aligned(nprocs * LINE_WORDS),
                LINE_WORDS as u32,
                LINE_WORDS as u32,
            ),
        };
        // Node 0 is the initial dummy: all-zero (wait=0, done=0, req=NONE,
        // next=0) is exactly the handed-off state. Each process starts
        // with node `pid + 1` as its spare.
        heap.poke(tail, nodes.to_word());
        for p in 0..nprocs {
            let spare = nodes.off((p as u32 + 1) * node_stride);
            heap.poke(slots.off(p as u32 * slot_stride), spare.to_word());
        }
        CcSynch { registry, tail, slots, nprocs, slot_stride, h: 4 * nprocs as u64 }
    }

    fn slot(&self, pid: usize) -> Addr {
        debug_assert!(pid < self.nprocs);
        self.slots.off(pid as u32 * self.slot_stride)
    }

    /// The combiner stint: walk the chain from `cur`, applying every
    /// unretracted request whose node has a successor, up to `h` nodes;
    /// hand duty to the first unapplied node. Returns
    /// `(others_applied, self_applied)` — `self` meaning `cur`'s own
    /// request.
    fn combine(&self, ctx: &Ctx<'_>, cur: Addr) -> (u64, bool) {
        obs(ctx, EventKind::CombinerEnter, 0);
        let mut others = 0u64;
        let mut self_applied = false;
        let mut tmp = cur;
        let mut count = 0u64;
        loop {
            // A node with no successor yet is the live dummy: its request
            // word is not yet published — hand off and stop.
            let next = ctx.read_acq(tmp.off(W_NEXT));
            if next == 0 || count >= self.h {
                break;
            }
            count += 1;
            let req = ctx.read_acq(tmp.off(W_REQ));
            if req != REQ_NONE
                && req != REQ_RETRACTED
                && req != REQ_TAKEN
                && ctx.cas_bool_sync(tmp.off(W_REQ), req, REQ_TAKEN)
            {
                obs(ctx, EventKind::CombinerApply, tmp.to_word());
                Frame(Addr::from_word(req)).run_raw(ctx, self.registry);
                if tmp == cur {
                    self_applied = true;
                } else {
                    others += 1;
                }
            }
            // Completed: Release order — done before the wait flip the
            // owner spins on.
            ctx.write_rel(tmp.off(W_DONE), 1);
            ctx.write_rel(tmp.off(W_WAIT), 0);
            tmp = Addr::from_word(next);
        }
        // Handoff: wait=0 with done=0 makes tmp's owner (or the next
        // arriver displacing the dummy) the next combiner.
        ctx.write_rel(tmp.off(W_WAIT), 0);
        obs(ctx, EventKind::CombinerExit, others + self_applied as u64);
        (others, self_applied)
    }
}

impl LockAlgo for CcSynch<'_> {
    fn name(&self) -> &'static str {
        "ccsynch"
    }

    fn blocks_under_crash(&self) -> bool {
        true
    }

    fn attempt(
        &self,
        ctx: &Ctx<'_>,
        tags: &mut TagSource,
        scratch: &mut Scratch,
        req: &TryLockRequest<'_>,
    ) -> AttemptOutcome {
        let start = ctx.steps();
        let deadline = scratch.deadline;
        let me = ctx.pid();
        // Pre-arrival bail: not enqueued, nothing to unwind.
        if ctx.stop_requested() || deadline.expired(ctx) {
            return AttemptOutcome {
                won: false,
                steps: ctx.steps() - start,
                aborted: true,
                rescued: false,
                combined: false,
                combined_peers: 0,
            };
        }
        let frame = Frame::create(ctx, self.registry, req.thunk, tags.next_base(), req.args);
        let frame_word = frame.0.to_word();

        // Reset the spare node and SWAP it onto the tail (CAS loop).
        let next_node = Addr::from_word(ctx.read_acq(self.slot(me)));
        ctx.write_rel(next_node.off(W_NEXT), 0);
        ctx.write_rel(next_node.off(W_DONE), 0);
        ctx.write_rel(next_node.off(W_REQ), REQ_NONE);
        ctx.write_rel(next_node.off(W_WAIT), 1);
        let cur = loop {
            let t = ctx.read_acq(self.tail);
            if ctx.cas_bool_sync(self.tail, t, next_node.to_word()) {
                break Addr::from_word(t);
            }
        };
        // Publish into the displaced node: request first, then the next
        // link (Release) — a combiner that sees the link sees the frame.
        ctx.write_rel(cur.off(W_REQ), frame_word);
        ctx.write_rel(cur.off(W_NEXT), next_node.to_word());
        // Adopt the displaced node as the next attempt's spare; it is
        // fully settled before this attempt returns.
        ctx.write_rel(self.slot(me), cur.to_word());

        // Spin locally; retract on abort but keep spinning — the node
        // stays in the queue until a combiner (possibly us) settles it.
        let mut retracted = false;
        let mut tried_retract = false;
        while ctx.read_acq(cur.off(W_WAIT)) == 1 {
            if !tried_retract && (ctx.stop_requested() || deadline.expired(ctx)) {
                tried_retract = true;
                retracted = ctx.cas_bool_sync(cur.off(W_REQ), frame_word, REQ_RETRACTED);
            }
        }

        if ctx.read_acq(cur.off(W_DONE)) == 1 {
            // A combiner settled the node.
            if retracted {
                return AttemptOutcome {
                    won: false,
                    steps: ctx.steps() - start,
                    aborted: true,
                    rescued: false,
                    combined: false,
                    combined_peers: 0,
                };
            }
            return AttemptOutcome {
                won: true,
                steps: ctx.steps() - start,
                aborted: tried_retract,
                // The retract lost the claim race: the thunk already
                // belonged to a combiner's batch — a rescued win, not a
                // combined one (same disjointness as wfl's abort path).
                rescued: tried_retract,
                combined: !tried_retract,
                combined_peers: 0,
            };
        }

        // Handed combining duty (wait=0, done=0): our own request is
        // still unclaimed unless we retracted it ourselves.
        let (others, self_applied) = self.combine(ctx, cur);
        if retracted {
            debug_assert!(!self_applied);
            return AttemptOutcome {
                won: false,
                steps: ctx.steps() - start,
                aborted: true,
                rescued: false,
                combined: false,
                combined_peers: others,
            };
        }
        debug_assert!(self_applied);
        AttemptOutcome {
            won: true,
            steps: ctx.steps() - start,
            aborted: false,
            rescued: false,
            combined: false,
            combined_peers: others,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfl_core::{Deadline, LockId};
    use wfl_idem::{cell, IdemRun, Thunk};
    use wfl_runtime::schedule::{RoundRobin, SeededRandom};
    use wfl_runtime::sim::SimBuilder;

    struct Incr;
    impl Thunk for Incr {
        fn run(&self, run: &mut IdemRun<'_, '_>) {
            let c = Addr::from_word(run.arg(0));
            let v = run.read(c);
            run.write(c, v + 1);
        }
        fn max_ops(&self) -> usize {
            2
        }
    }

    fn run_counter(seed: u64, placement: Placement) {
        let mut registry = Registry::new();
        let incr = registry.register(Incr);
        let heap = Heap::new(1 << 20);
        let algo = CcSynch::create_root_placed(&heap, &registry, 4, placement);
        let counter = heap.alloc_root(1);
        let algo_ref = &algo;
        let report = SimBuilder::new(&heap, 4)
            .schedule(SeededRandom::new(4, seed))
            .max_steps(10_000_000)
            .spawn_all(|pid| {
                move |ctx: &Ctx| {
                    let mut tags = TagSource::new(pid);
                    let mut scratch = Scratch::new();
                    for _ in 0..5 {
                        let locks = [LockId(0)];
                        let req = TryLockRequest {
                            locks: &locks,
                            thunk: incr,
                            args: &[counter.to_word()],
                        };
                        let out = algo_ref.attempt(ctx, &mut tags, &mut scratch, &req);
                        assert!(out.won, "ccsynch attempts always complete without faults");
                        assert!(!out.aborted && !out.rescued);
                    }
                }
            })
            .run();
        report.assert_clean();
        assert_eq!(cell::value(heap.peek(counter)), 20, "seed {seed}: exactly-once");
    }

    #[test]
    fn counter_is_exact_under_random_schedules() {
        for seed in 0..10 {
            run_counter(seed, Placement::Packed);
            run_counter(seed, Placement::Padded);
        }
    }

    #[test]
    fn combining_actually_happens_under_contention() {
        let mut registry = Registry::new();
        let incr = registry.register(Incr);
        let heap = Heap::new(1 << 20);
        let algo = CcSynch::create_root(&heap, &registry, 4);
        let counter = heap.alloc_root(1);
        let combined_total = heap.alloc_root(4);
        let algo_ref = &algo;
        let report = SimBuilder::new(&heap, 4)
            .schedule(RoundRobin::new(4))
            .max_steps(10_000_000)
            .spawn_all(|pid| {
                move |ctx: &Ctx| {
                    let mut tags = TagSource::new(pid);
                    let mut scratch = Scratch::new();
                    let mut combined = 0u64;
                    for _ in 0..20 {
                        let locks = [LockId(0)];
                        let req = TryLockRequest {
                            locks: &locks,
                            thunk: incr,
                            args: &[counter.to_word()],
                        };
                        let out = algo_ref.attempt(ctx, &mut tags, &mut scratch, &req);
                        assert!(out.won);
                        combined += out.combined as u64 + out.combined_peers;
                    }
                    ctx.write(combined_total.off(pid as u32), combined);
                }
            })
            .run();
        report.assert_clean();
        assert_eq!(cell::value(heap.peek(counter)), 80);
        let combined: u64 = (0..4).map(|i| heap.peek(combined_total.off(i))).sum();
        assert!(combined > 0, "tight interleaving must produce combined executions");
    }

    #[test]
    fn expired_deadline_aborts_cleanly_and_node_is_reusable() {
        let mut registry = Registry::new();
        let incr = registry.register(Incr);
        let heap = Heap::new(1 << 20);
        let algo = CcSynch::create_root(&heap, &registry, 1);
        let counter = heap.alloc_root(1);
        let algo_ref = &algo;
        let report = SimBuilder::new(&heap, 1)
            .spawn(move |ctx: &Ctx| {
                let mut tags = TagSource::new(0);
                let mut scratch = Scratch::new();
                let locks = [LockId(0)];
                let req =
                    TryLockRequest { locks: &locks, thunk: incr, args: &[counter.to_word()] };
                ctx.stall_until_steps(100);
                scratch.deadline = Deadline::at_steps(50);
                let out = algo_ref.attempt(ctx, &mut tags, &mut scratch, &req);
                assert!(!out.won && out.aborted && !out.rescued);
                scratch.deadline = Deadline::NEVER;
                for _ in 0..3 {
                    let out = algo_ref.attempt(ctx, &mut tags, &mut scratch, &req);
                    assert!(out.won && !out.combined, "solo attempts self-combine");
                }
            })
            .run();
        report.assert_clean();
        assert_eq!(cell::value(heap.peek(counter)), 3, "aborted attempt never ran");
    }
}
