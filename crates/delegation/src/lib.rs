//! Delegation (combining) lock baselines: the *other* modern
//! high-performance answer for the oversubscribed regime the paper
//! targets. Instead of every contender fighting for the lock word and
//! running its own critical section, contenders *publish* their critical
//! section (as an idempotent-thunk frame — the closure shape our
//! workloads already use) and one process, the **combiner**, executes a
//! batch of published sections back to back while everyone else spins
//! locally.
//!
//! Two classic designs behind the shared [`wfl_baselines::LockAlgo`]
//! trait, both allocation-free on the attempt path (per-process records
//! are set up once, cache-line padded like PR 8's hot structures):
//!
//! * [`FcLock`] — flat combining (Hendler, Incze, Shavit, Tzafrir,
//!   SPAA 2010): a publication array plus a combiner lock; whoever
//!   acquires the lock scans the array and applies pending requests.
//! * [`CcSynch`] — list-based combining (Fatourou & Kallimanis,
//!   PPoPP 2012): a swap-based queue of request nodes where combining
//!   duty is handed from node to node, no lock word at all.
//!
//! Both serialize *every* request through one combiner at a time — the
//! delegation model protects one concurrent object, so a multi-lock
//! request is simply a request (the whole heap is the object). That is
//! the honest baseline: delegation trades away disjoint-access
//! parallelism and wait-freedom (a frozen combiner wedges everyone —
//! [`LockAlgo::blocks_under_crash`] is true for both) for very low
//! coherence traffic on the hot path. Experiment E17 measures both sides
//! of that trade against wfl's combining fast path, which batches at a
//! *winner* without ever blocking losers.
//!
//! [`LockAlgo::blocks_under_crash`]: wfl_baselines::LockAlgo::blocks_under_crash

mod ccsynch;
mod fc;

pub use ccsynch::CcSynch;
pub use fc::FcLock;

/// Emits one flight-recorder event from a combiner hook point (uncounted
/// `Cell` reads only — see `wfl_core`'s twin helper).
#[inline]
pub(crate) fn obs(ctx: &wfl_runtime::Ctx<'_>, kind: wfl_obs::EventKind, arg: u64) {
    wfl_obs::rec::record(ctx.pid(), kind, ctx.now(), ctx.steps(), arg);
}
