//! Flat combining (Hendler, Incze, Shavit, Tzafrir, SPAA 2010).
//!
//! Each process owns one *publication record* (a cache line under the
//! padded placement): a state word and a thunk-frame word. To run a
//! critical section, a process publishes its frame (`EMPTY → PENDING`)
//! and then either (a) observes `DONE` — a combiner executed it — or
//! (b) wins the combiner lock itself, scans the whole publication array
//! for `PENDING` records, and applies them back to back.
//!
//! The claim CAS (`PENDING → TAKEN`) is what keeps execution
//! exactly-once: it arbitrates three-ways between the combiner applying
//! the record, a second combiner racing it, and the owner *retracting*
//! it (`PENDING → EMPTY`) on an abort. A retract that loses the race
//! means the thunk is already in a combiner's batch — the owner then
//! waits for `DONE` and reports a rescued win, never a double-run and
//! never a lost one (the same disjointness contract as wfl's abort
//! path).
//!
//! Blocking caveat: a combiner frozen mid-scan leaves every `TAKEN`/
//! `PENDING` owner spinning — flat combining trades wait-freedom for
//! throughput, which is exactly what E17's fault arms measure.

use crate::obs;
use wfl_baselines::{AttemptOutcome, LockAlgo};
use wfl_core::{Scratch, TryLockRequest};
use wfl_idem::{Frame, Registry, TagSource};
use wfl_obs::EventKind;
use wfl_runtime::{Addr, Ctx, Heap, Placement, LINE_WORDS};

/// Record state: free for the owner to publish into.
const REC_EMPTY: u64 = 0;
/// Record state: a published request awaiting a combiner.
const REC_PENDING: u64 = 1;
/// Record state: claimed by a combiner (execution in flight).
const REC_TAKEN: u64 = 2;
/// Record state: executed; the owner reaps and resets to `EMPTY`.
const REC_DONE: u64 = 3;

const W_STATE: u32 = 0;
const W_FRAME: u32 = 1;
/// Words per publication record (packed placement).
const RECORD_WORDS: u32 = 2;

/// Bounded combining: passes over the publication array per lock
/// acquisition. More passes amortize the lock better under load; the
/// bound keeps a combiner's stint (and thus everyone's spin) finite.
const SCAN_PASSES: usize = 3;

/// Flat-combining lock over a publication array (one record per
/// process).
pub struct FcLock<'a> {
    registry: &'a Registry,
    /// The combiner lock word (0 free, else combiner pid+1).
    lock: Addr,
    /// Publication records, `nprocs × RECORD_WORDS` (or line-strided).
    records: Addr,
    nprocs: usize,
    stride: u32,
}

impl<'a> FcLock<'a> {
    /// Creates the combiner lock and publication array (harness setup).
    pub fn create_root(heap: &Heap, registry: &'a Registry, nprocs: usize) -> FcLock<'a> {
        Self::create_root_placed(heap, registry, nprocs, Placement::Packed)
    }

    /// Creates the structure under an explicit [`Placement`]: padded
    /// gives the combiner lock and every publication record its own 64B
    /// line, so a waiter's spin never false-shares with its neighbors.
    pub fn create_root_placed(
        heap: &Heap,
        registry: &'a Registry,
        nprocs: usize,
        placement: Placement,
    ) -> FcLock<'a> {
        assert!(nprocs > 0);
        let (lock, records, stride) = match placement {
            Placement::Packed => (heap.alloc_root(1), heap.alloc_root(nprocs * RECORD_WORDS as usize), RECORD_WORDS),
            Placement::Padded => (
                heap.alloc_root_aligned(LINE_WORDS),
                heap.alloc_root_aligned(nprocs * LINE_WORDS),
                LINE_WORDS as u32,
            ),
        };
        FcLock { registry, lock, records, nprocs, stride }
    }

    fn record(&self, pid: usize) -> Addr {
        debug_assert!(pid < self.nprocs);
        self.records.off(pid as u32 * self.stride)
    }

    /// The combiner's stint: scan the publication array up to
    /// [`SCAN_PASSES`] times, claiming and executing every `PENDING`
    /// record. Returns `(others_applied, self_applied)`.
    fn combine(&self, ctx: &Ctx<'_>, me: usize) -> (u64, bool) {
        obs(ctx, EventKind::CombinerEnter, 0);
        let mut others = 0u64;
        let mut self_applied = false;
        for _ in 0..SCAN_PASSES {
            let mut applied = 0u64;
            for p in 0..self.nprocs {
                let rec = self.record(p);
                if ctx.read_acq(rec.off(W_STATE)) == REC_PENDING
                    && ctx.cas_bool_sync(rec.off(W_STATE), REC_PENDING, REC_TAKEN)
                {
                    let frame = Frame(Addr::from_word(ctx.read_acq(rec.off(W_FRAME))));
                    obs(ctx, EventKind::CombinerApply, p as u64);
                    frame.run_raw(ctx, self.registry);
                    ctx.write_rel(rec.off(W_STATE), REC_DONE);
                    if p == me {
                        self_applied = true;
                    } else {
                        others += 1;
                    }
                    applied += 1;
                }
            }
            if applied == 0 {
                break;
            }
        }
        obs(ctx, EventKind::CombinerExit, others + self_applied as u64);
        (others, self_applied)
    }
}

impl LockAlgo for FcLock<'_> {
    fn name(&self) -> &'static str {
        "fc"
    }

    fn blocks_under_crash(&self) -> bool {
        true
    }

    fn attempt(
        &self,
        ctx: &Ctx<'_>,
        tags: &mut TagSource,
        scratch: &mut Scratch,
        req: &TryLockRequest<'_>,
    ) -> AttemptOutcome {
        let start = ctx.steps();
        let deadline = scratch.deadline;
        let me = ctx.pid();
        // Pre-publication bail: nothing shared has been touched.
        if ctx.stop_requested() || deadline.expired(ctx) {
            return AttemptOutcome {
                won: false,
                steps: ctx.steps() - start,
                aborted: true,
                rescued: false,
                combined: false,
                combined_peers: 0,
            };
        }
        let my = self.record(me);
        let frame = Frame::create(ctx, self.registry, req.thunk, tags.next_base(), req.args);
        // Publish: frame first, then the PENDING flip (Release) — a
        // combiner that acquires PENDING sees the frame word.
        ctx.write_rel(my.off(W_FRAME), frame.0.to_word());
        ctx.write_rel(my.off(W_STATE), REC_PENDING);

        let mut others = 0u64;
        let mut self_applied = false;
        loop {
            match ctx.read_acq(my.off(W_STATE)) {
                REC_DONE => {
                    ctx.write_rel(my.off(W_STATE), REC_EMPTY);
                    return AttemptOutcome {
                        won: true,
                        steps: ctx.steps() - start,
                        aborted: false,
                        rescued: false,
                        // Executed by another process's combining stint
                        // unless this process applied it itself.
                        combined: !self_applied,
                        combined_peers: others,
                    };
                }
                REC_PENDING => {
                    // TTAS on the combiner lock.
                    if ctx.read_acq(self.lock) == 0
                        && ctx.cas_bool_sync(self.lock, 0, me as u64 + 1)
                    {
                        let (o, s) = self.combine(ctx, me);
                        others += o;
                        self_applied |= s;
                        ctx.write_rel(self.lock, 0);
                        // Own record is PENDING going in, so the stint
                        // always settles it; the next loop turn reaps.
                        continue;
                    }
                    if ctx.stop_requested() || deadline.expired(ctx) {
                        // Retract. Success: the request was never picked
                        // up — a clean aborted loss. Failure: a combiner
                        // already claimed it; wait out the (bounded)
                        // execution and report the rescue.
                        if ctx.cas_bool_sync(my.off(W_STATE), REC_PENDING, REC_EMPTY) {
                            return AttemptOutcome {
                                won: false,
                                steps: ctx.steps() - start,
                                aborted: true,
                                rescued: false,
                                combined: false,
                                combined_peers: 0,
                            };
                        }
                        while ctx.read_acq(my.off(W_STATE)) != REC_DONE {
                            ctx.local_step();
                        }
                        ctx.write_rel(my.off(W_STATE), REC_EMPTY);
                        return AttemptOutcome {
                            won: true,
                            steps: ctx.steps() - start,
                            aborted: true,
                            rescued: true,
                            combined: false,
                            combined_peers: 0,
                        };
                    }
                    ctx.local_step();
                }
                // TAKEN: a combiner is mid-execution; completion is a
                // bounded number of its steps away.
                _ => ctx.local_step(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfl_core::{Deadline, LockId};
    use wfl_idem::{cell, IdemRun, Thunk};
    use wfl_runtime::schedule::{RoundRobin, SeededRandom};
    use wfl_runtime::sim::SimBuilder;

    struct Incr;
    impl Thunk for Incr {
        fn run(&self, run: &mut IdemRun<'_, '_>) {
            let c = Addr::from_word(run.arg(0));
            let v = run.read(c);
            run.write(c, v + 1);
        }
        fn max_ops(&self) -> usize {
            2
        }
    }

    fn run_counter(seed: u64, placement: Placement) {
        let mut registry = Registry::new();
        let incr = registry.register(Incr);
        let heap = Heap::new(1 << 20);
        let algo = FcLock::create_root_placed(&heap, &registry, 4, placement);
        let counter = heap.alloc_root(1);
        let combined_out = heap.alloc_root(4);
        let algo_ref = &algo;
        let report = SimBuilder::new(&heap, 4)
            .schedule(SeededRandom::new(4, seed))
            .max_steps(10_000_000)
            .spawn_all(|pid| {
                move |ctx: &Ctx| {
                    let mut tags = TagSource::new(pid);
                    let mut scratch = Scratch::new();
                    let mut combined = 0u64;
                    for _ in 0..5 {
                        let locks = [LockId(0)];
                        let req = TryLockRequest {
                            locks: &locks,
                            thunk: incr,
                            args: &[counter.to_word()],
                        };
                        let out = algo_ref.attempt(ctx, &mut tags, &mut scratch, &req);
                        assert!(out.won, "fc attempts always complete without faults");
                        assert!(!out.aborted && !out.rescued);
                        combined += out.combined as u64;
                    }
                    ctx.write(combined_out.off(pid as u32), combined);
                }
            })
            .run();
        report.assert_clean();
        assert_eq!(cell::value(heap.peek(counter)), 20, "seed {seed}: exactly-once");
    }

    #[test]
    fn counter_is_exact_under_random_schedules() {
        for seed in 0..10 {
            run_counter(seed, Placement::Packed);
            run_counter(seed, Placement::Padded);
        }
    }

    #[test]
    fn combining_actually_happens_under_contention() {
        // Round-robin interleaves publication and combining tightly
        // enough that some requests are executed by a peer's stint.
        let mut registry = Registry::new();
        let incr = registry.register(Incr);
        let heap = Heap::new(1 << 20);
        let algo = FcLock::create_root(&heap, &registry, 4);
        let counter = heap.alloc_root(1);
        let combined_total = heap.alloc_root(4);
        let algo_ref = &algo;
        let report = SimBuilder::new(&heap, 4)
            .schedule(RoundRobin::new(4))
            .max_steps(10_000_000)
            .spawn_all(|pid| {
                move |ctx: &Ctx| {
                    let mut tags = TagSource::new(pid);
                    let mut scratch = Scratch::new();
                    let mut combined = 0u64;
                    for _ in 0..20 {
                        let locks = [LockId(0)];
                        let req = TryLockRequest {
                            locks: &locks,
                            thunk: incr,
                            args: &[counter.to_word()],
                        };
                        let out = algo_ref.attempt(ctx, &mut tags, &mut scratch, &req);
                        assert!(out.won);
                        combined += out.combined as u64 + out.combined_peers;
                    }
                    ctx.write(combined_total.off(pid as u32), combined);
                }
            })
            .run();
        report.assert_clean();
        assert_eq!(cell::value(heap.peek(counter)), 80);
        let combined: u64 = (0..4).map(|i| heap.peek(combined_total.off(i))).sum();
        assert!(combined > 0, "tight interleaving must produce combined executions");
    }

    #[test]
    fn expired_deadline_aborts_cleanly_and_record_is_reusable() {
        let mut registry = Registry::new();
        let incr = registry.register(Incr);
        let heap = Heap::new(1 << 20);
        let algo = FcLock::create_root(&heap, &registry, 1);
        let counter = heap.alloc_root(1);
        let algo_ref = &algo;
        let report = SimBuilder::new(&heap, 1)
            .spawn(move |ctx: &Ctx| {
                let mut tags = TagSource::new(0);
                let mut scratch = Scratch::new();
                let locks = [LockId(0)];
                let req =
                    TryLockRequest { locks: &locks, thunk: incr, args: &[counter.to_word()] };
                ctx.stall_until_steps(100);
                scratch.deadline = Deadline::at_steps(50);
                let out = algo_ref.attempt(ctx, &mut tags, &mut scratch, &req);
                assert!(!out.won && out.aborted && !out.rescued);
                // The record is clean: a fresh un-deadlined attempt wins.
                scratch.deadline = Deadline::NEVER;
                let out = algo_ref.attempt(ctx, &mut tags, &mut scratch, &req);
                assert!(out.won && !out.combined, "solo attempt self-combines");
            })
            .run();
        report.assert_clean();
        assert_eq!(cell::value(heap.peek(counter)), 1, "aborted attempt never ran");
    }
}
