//! Per-process step gates for the deterministic simulator driver.
//!
//! A [`Gate`] serializes one process's shared-memory steps against the
//! scheduler: the worker thread blocks in [`Gate::request`] until the
//! scheduler grants it a step, performs exactly one shared-memory operation,
//! and then calls [`Gate::complete`]. The scheduler's [`Gate::grant`] blocks
//! until the granted operation has fully completed, so at most one
//! shared-memory operation is ever in flight — exactly the paper's
//! interleaving model, and the source of the simulator's determinism.

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicU64, Ordering};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Worker is running local code (or has not started).
    Idle,
    /// Worker is blocked waiting for a grant.
    Requesting,
    /// Scheduler granted a step; worker may wake and run its operation.
    Granted,
    /// Worker finished its body and will never request again.
    Done,
    /// Simulator abort path: the worker must unwind at its next request.
    Poisoned,
}

/// Panic payload used to unwind deliberately-poisoned workers. The
/// simulator catches it and reports the process as poisoned; any other
/// panic payload is reported as a genuine bug.
pub(crate) struct PoisonToken;

/// Outcome of [`Gate::grant`], as observed by the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GrantOutcome {
    /// The worker executed one shared-memory step.
    Stepped,
    /// The worker had already finished; the schedule slot was wasted
    /// (this models the oblivious scheduler granting time to an absent
    /// process).
    WasDone,
}

/// A step gate between the simulator scheduler and one worker thread.
pub struct Gate {
    state: Mutex<State>,
    cv: Condvar,
    /// Global logical time of the step currently being granted; written by
    /// the scheduler before waking the worker, read by the worker during its
    /// step (used to timestamp history events).
    now: AtomicU64,
}

impl std::fmt::Debug for Gate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gate").field("state", &*self.state.lock()).finish()
    }
}

impl Default for Gate {
    fn default() -> Self {
        Gate::new()
    }
}

impl Gate {
    /// Creates a gate in the idle state.
    pub fn new() -> Gate {
        Gate { state: Mutex::new(State::Idle), cv: Condvar::new(), now: AtomicU64::new(0) }
    }

    /// Worker side: block until the scheduler grants a step. On return the
    /// worker must perform exactly one shared-memory operation and then call
    /// [`Gate::complete`].
    pub fn request(&self) {
        let mut st = self.state.lock();
        if *st == State::Poisoned {
            drop(st);
            std::panic::panic_any(PoisonToken);
        }
        debug_assert_eq!(*st, State::Idle, "request while not idle");
        *st = State::Requesting;
        self.cv.notify_all();
        while *st != State::Granted {
            if *st == State::Poisoned {
                drop(st);
                std::panic::panic_any(PoisonToken);
            }
            self.cv.wait(&mut st);
        }
        // Keep Granted while the op runs; `complete` moves back to Idle.
    }

    /// Worker side: signal that the granted operation has completed.
    pub fn complete(&self) {
        let mut st = self.state.lock();
        debug_assert_eq!(*st, State::Granted, "complete without grant");
        *st = State::Idle;
        self.cv.notify_all();
    }

    /// Worker side: mark the worker as finished forever.
    pub fn finish(&self) {
        let mut st = self.state.lock();
        *st = State::Done;
        self.cv.notify_all();
    }

    /// Scheduler side: grant one step at logical time `t` and wait until the
    /// worker has executed it. If the worker has finished, returns
    /// [`GrantOutcome::WasDone`] without blocking on it.
    pub fn grant(&self, t: u64) -> GrantOutcome {
        self.now.store(t, Ordering::SeqCst);
        let mut st = self.state.lock();
        // Wait for the worker to arrive at the gate (it may be running local
        // code, which is finite by assumption).
        loop {
            match *st {
                State::Requesting => break,
                State::Done | State::Poisoned => return GrantOutcome::WasDone,
                State::Idle | State::Granted => self.cv.wait(&mut st),
            }
        }
        *st = State::Granted;
        self.cv.notify_all();
        // Wait for the step to complete (worker sets Idle, or finishes and
        // sets Done, or immediately requests the next step).
        loop {
            match *st {
                State::Idle | State::Requesting | State::Done | State::Poisoned => {
                    return GrantOutcome::Stepped
                }
                State::Granted => self.cv.wait(&mut st),
            }
        }
    }

    /// Simulator abort path: forces the worker to unwind with a
    /// [`PoisonToken`] at its next (or current) request.
    pub(crate) fn poison_flag(&self) {
        let mut st = self.state.lock();
        if *st != State::Done {
            *st = State::Poisoned;
        }
        self.cv.notify_all();
    }

    /// The logical time the scheduler attached to the current grant.
    #[inline]
    pub fn now(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }

    /// Whether the worker has finished (scheduler side).
    pub fn is_done(&self) -> bool {
        *self.state.lock() == State::Done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn grant_serializes_steps() {
        let gate = Arc::new(Gate::new());
        let shared = Arc::new(AtomicU64::new(0));
        let (g, s) = (gate.clone(), shared.clone());
        let worker = std::thread::spawn(move || {
            for i in 0..10 {
                g.request();
                s.store(i + 1, Ordering::SeqCst);
                g.complete();
            }
            g.finish();
        });
        for i in 0..10 {
            assert_eq!(gate.grant(i), GrantOutcome::Stepped);
            // Because grant blocks until the op completes, the store is
            // always visible here.
            assert_eq!(shared.load(Ordering::SeqCst), i + 1);
        }
        assert_eq!(gate.grant(11), GrantOutcome::WasDone);
        worker.join().unwrap();
    }

    #[test]
    fn grant_to_finished_worker_is_wasted() {
        let gate = Arc::new(Gate::new());
        let g = gate.clone();
        let worker = std::thread::spawn(move || g.finish());
        worker.join().unwrap();
        assert_eq!(gate.grant(0), GrantOutcome::WasDone);
        assert!(gate.is_done());
    }

    #[test]
    fn now_is_visible_during_step() {
        let gate = Arc::new(Gate::new());
        let seen = Arc::new(AtomicU64::new(u64::MAX));
        let (g, s) = (gate.clone(), seen.clone());
        let worker = std::thread::spawn(move || {
            g.request();
            s.store(g.now(), Ordering::SeqCst);
            g.complete();
            g.finish();
        });
        gate.grant(42);
        assert_eq!(seen.load(Ordering::SeqCst), 42);
        worker.join().unwrap();
    }
}
