//! Per-process execution context: step-counted shared-memory operations.
//!
//! All algorithm code in this repository is written against [`Ctx`] and runs
//! unchanged under both drivers (real threads and the deterministic
//! simulator). Every operation — shared reads/writes/CAS, allocation,
//! invocation/response markers, and explicit local steps — counts exactly
//! one *own step* of the process, matching the paper's cost model in which
//! delays ("stall until `T0` own steps have been taken") are measured in the
//! process's own instructions.
//!
//! # The real-threads hot path
//!
//! Two driver-selected knobs keep the free-running driver contention-free
//! without touching the simulator (see `DESIGN.md` §2):
//!
//! * [`ClockMode`] — how logical timestamps are drawn. `Precise` performs
//!   one global `fetch_add` per step (exact, totally-ordered history
//!   timestamps; the simulator's and the historical default). `Leased`
//!   claims a whole block of timestamps in one relaxed `fetch_add` and
//!   ticks locally, so the shared clock cache line is touched once per
//!   block instead of once per step.
//! * [`OrderTier`] — how the *semantic* memory operations
//!   ([`Ctx::read_acq`], [`Ctx::write_rel`], [`Ctx::cas_bool_sync`], …)
//!   map to hardware orderings. Under `SeqCst` they all stay sequentially
//!   consistent; under `Tiered` they become acquire/release/acq-rel, which
//!   the algorithm's publication structure permits (§2.2 of DESIGN.md).

use crate::gate::Gate;
use crate::heap::{Addr, Heap};
use crate::history::{Event, PendingOp};
use crate::rng::Pcg;
use parking_lot::Mutex;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// A command sent to a process by the (adaptive) player adversary, encoded
/// as a boxed word slice; workloads define the encoding.
pub type Command = Box<[u64]>;

/// A per-process mailbox, written by the simulator controller between steps
/// and polled by the process as a gated step.
pub type Mailbox = Mutex<VecDeque<Command>>;

/// How a real-mode context draws global logical timestamps (one per step).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockMode {
    /// One `SeqCst` `fetch_add` on the shared clock per step: timestamps
    /// are exact and totally ordered across processes. Required when a
    /// recorded history's timestamps must be globally meaningful.
    Precise,
    /// Claim a lease of this many consecutive timestamps in one relaxed
    /// `fetch_add`, then tick locally. Per-process timestamps remain
    /// strictly monotonic and globally unique; cross-process order within
    /// concurrently-held leases is not meaningful. Use for throughput runs.
    Leased(u64),
}

impl ClockMode {
    /// The default lease length used by [`crate::real::RealConfig::fast`].
    pub const DEFAULT_LEASE: u64 = 256;
}

/// Which hardware ordering the semantic (tiered) memory operations use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderTier {
    /// Everything sequentially consistent (the simulator, and the
    /// conservative real-mode default).
    SeqCst,
    /// Acquire/release/acq-rel where the algorithm's publication structure
    /// permits: status and slot CAS = AcqRel, reveal/publish writes =
    /// Release, membership/pointer-chasing reads = Acquire.
    Tiered,
}

/// Per-process execution context.
///
/// A `Ctx` is created by a driver for exactly one process (thread) and must
/// not be shared across threads (it is `!Sync` by construction).
pub struct Ctx<'h> {
    heap: &'h Heap,
    pid: usize,
    nprocs: usize,
    gate: Option<&'h Gate>,
    clock: &'h AtomicU64,
    stop: &'h AtomicBool,
    /// Real-mode fault injection: when set and holding `pid + 1`, this
    /// process is suspended — `stepped` spins (uncounted) until the
    /// injector clears the word. Models the OS scheduler withholding steps
    /// (the real-threads analogue of a [`crate::schedule::StallWindow`]):
    /// own steps do not advance while suspended, exactly as in sim.
    pauser: Option<&'h AtomicU64>,
    mailbox: Option<&'h Mailbox>,
    clock_mode: ClockMode,
    tier: OrderTier,
    steps: Cell<u64>,
    last_now: Cell<u64>,
    /// Latched when an allocation had to fall back to the heap's emergency
    /// reserve: the process's lane (or the shared slab region) is dry.
    heap_low: Cell<bool>,
    /// Next unconsumed leased timestamp (real + `Leased` mode only).
    lease_next: Cell<u64>,
    /// One past the last timestamp of the current lease.
    lease_end: Cell<u64>,
    rng: RefCell<Pcg>,
    events: RefCell<Vec<Event>>,
    pending: RefCell<Option<PendingOp>>,
}

impl std::fmt::Debug for Ctx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx")
            .field("pid", &self.pid)
            .field("steps", &self.steps.get())
            .field("simulated", &self.gate.is_some())
            .field("clock_mode", &self.clock_mode)
            .field("tier", &self.tier)
            .finish()
    }
}

impl<'h> Ctx<'h> {
    /// Creates a context. Drivers call this; algorithm code receives `&Ctx`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        heap: &'h Heap,
        pid: usize,
        nprocs: usize,
        seed: u64,
        gate: Option<&'h Gate>,
        clock: &'h AtomicU64,
        stop: &'h AtomicBool,
        pauser: Option<&'h AtomicU64>,
        mailbox: Option<&'h Mailbox>,
        clock_mode: ClockMode,
        tier: OrderTier,
    ) -> Ctx<'h> {
        let clock_mode = match clock_mode {
            ClockMode::Leased(0) => ClockMode::Leased(1),
            other => other,
        };
        Ctx {
            heap,
            pid,
            nprocs,
            gate,
            clock,
            stop,
            pauser,
            mailbox,
            clock_mode,
            tier,
            steps: Cell::new(0),
            last_now: Cell::new(0),
            heap_low: Cell::new(false),
            lease_next: Cell::new(0),
            lease_end: Cell::new(0),
            rng: RefCell::new(Pcg::new(seed, pid as u64 + 1)),
            events: RefCell::new(Vec::new()),
            pending: RefCell::new(None),
        }
    }

    /// Draws this step's logical timestamp in real (ungated) mode.
    #[inline]
    fn next_tick(&self) -> u64 {
        match self.clock_mode {
            ClockMode::Precise => self.clock.fetch_add(1, Ordering::SeqCst),
            ClockMode::Leased(block) => {
                let t = self.lease_next.get();
                if t >= self.lease_end.get() {
                    // Lease exhausted (or never claimed): claim the next
                    // block with the run's only shared-clock RMW. Relaxed
                    // suffices — uniqueness comes from RMW atomicity, and
                    // nothing is published through the clock.
                    let base = self.clock.fetch_add(block, Ordering::Relaxed);
                    self.lease_next.set(base + 1);
                    self.lease_end.set(base + block);
                    base
                } else {
                    self.lease_next.set(t + 1);
                    t
                }
            }
        }
    }

    /// Executes `f` as one step: counts it, and in simulated mode blocks
    /// until the oblivious scheduler grants the step.
    #[inline]
    fn stepped<T>(&self, f: impl FnOnce() -> T) -> T {
        self.steps.set(self.steps.get() + 1);
        match self.gate {
            Some(gate) => {
                gate.request();
                self.last_now.set(gate.now());
                let r = f();
                gate.complete();
                r
            }
            None => {
                // Fault injection: a suspended process takes no steps until
                // the injector releases it. The spin is uncounted — the
                // step happens (and is counted) only once it is granted,
                // mirroring the simulator's wasted scheduler slots.
                if let Some(p) = self.pauser {
                    while p.load(Ordering::Acquire) == self.pid as u64 + 1 {
                        std::hint::spin_loop();
                    }
                }
                let t = self.next_tick();
                self.last_now.set(t);
                f()
            }
        }
    }

    // ----- ordering-tier selection -----

    /// Ordering for tiered loads (membership scans, pointer chasing).
    #[inline]
    fn acq(&self) -> Ordering {
        match self.tier {
            OrderTier::SeqCst => Ordering::SeqCst,
            OrderTier::Tiered => Ordering::Acquire,
        }
    }

    /// Ordering for tiered stores (reveals, record publication).
    #[inline]
    fn rel(&self) -> Ordering {
        match self.tier {
            OrderTier::SeqCst => Ordering::SeqCst,
            OrderTier::Tiered => Ordering::Release,
        }
    }

    /// Success ordering for tiered CAS (status transitions, slot claims).
    #[inline]
    fn acqrel(&self) -> Ordering {
        match self.tier {
            OrderTier::SeqCst => Ordering::SeqCst,
            OrderTier::Tiered => Ordering::AcqRel,
        }
    }

    /// Process id in `0..nprocs`.
    #[inline]
    pub fn pid(&self) -> usize {
        self.pid
    }

    /// Total number of processes in the system (the paper's `P`).
    #[inline]
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// Number of own steps this process has taken so far.
    #[inline]
    pub fn steps(&self) -> u64 {
        self.steps.get()
    }

    /// Global logical time of this process's most recent step. Under
    /// [`ClockMode::Leased`] this is strictly monotonic per process and
    /// globally unique, but only lease-granular across processes.
    #[inline]
    pub fn now(&self) -> u64 {
        self.last_now.get()
    }

    /// The driver-selected clock mode.
    #[inline]
    pub fn clock_mode(&self) -> ClockMode {
        self.clock_mode
    }

    /// The driver-selected memory-ordering tier.
    #[inline]
    pub fn order_tier(&self) -> OrderTier {
        self.tier
    }

    /// The underlying heap (for address arithmetic only; going around the
    /// step accounting in algorithm code invalidates the experiments).
    #[inline]
    pub fn heap(&self) -> &'h Heap {
        self.heap
    }

    /// Whether the driver has requested cooperative shutdown. Workload
    /// loops must poll this between attempts.
    #[inline]
    pub fn stop_requested(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    // ----- shared-memory operations (one step each) -----

    /// Atomic read of a shared word (sequentially consistent).
    #[inline]
    pub fn read(&self, a: Addr) -> u64 {
        self.stepped(|| self.heap.load(a, Ordering::SeqCst))
    }

    /// Atomic write of a shared word (sequentially consistent).
    #[inline]
    pub fn write(&self, a: Addr, v: u64) {
        self.stepped(|| self.heap.store(a, v, Ordering::SeqCst))
    }

    /// Atomic compare-and-swap; returns the *previous* value. The CAS
    /// succeeded iff the return value equals `old`. Sequentially
    /// consistent.
    #[inline]
    pub fn cas_val(&self, a: Addr, old: u64, new: u64) -> u64 {
        self.stepped(|| self.heap.cas_ord(a, old, new, Ordering::SeqCst, Ordering::SeqCst))
    }

    /// Atomic compare-and-swap; returns whether it succeeded. Sequentially
    /// consistent.
    #[inline]
    pub fn cas_bool(&self, a: Addr, old: u64, new: u64) -> bool {
        self.cas_val(a, old, new) == old
    }

    // ----- tiered shared-memory operations (one step each) -----
    //
    // Identical to the operations above under `OrderTier::SeqCst` (always
    // the case in the simulator, so determinism and the recorded histories
    // are untouched); weaker-but-sufficient hardware orderings under
    // `OrderTier::Tiered`.

    /// Tiered read: `Acquire` under [`OrderTier::Tiered`]. For reads that
    /// chase a published pointer or scan membership (active-set snapshots,
    /// descriptor status/priority, frame headers).
    #[inline]
    pub fn read_acq(&self, a: Addr) -> u64 {
        self.stepped(|| self.heap.load(a, self.acq()))
    }

    /// Tiered write: `Release` under [`OrderTier::Tiered`]. For writes
    /// that publish a record or reveal a value (priority reveal, record
    /// initialization completed by a later release publication, owner
    /// clears).
    #[inline]
    pub fn write_rel(&self, a: Addr, v: u64) {
        self.stepped(|| self.heap.store(a, v, self.rel()))
    }

    /// Tiered CAS returning the previous value: `AcqRel` on success /
    /// `Acquire` on failure under [`OrderTier::Tiered`]. For one-shot
    /// status transitions, slot claims and snapshot installs.
    #[inline]
    pub fn cas_val_sync(&self, a: Addr, old: u64, new: u64) -> u64 {
        self.stepped(|| {
            let fail = self.acq();
            self.heap.cas_ord(a, old, new, self.acqrel(), fail)
        })
    }

    /// Tiered CAS returning success, see [`Ctx::cas_val_sync`].
    #[inline]
    pub fn cas_bool_sync(&self, a: Addr, old: u64, new: u64) -> bool {
        self.cas_val_sync(a, old, new) == old
    }

    /// A full `SeqCst` fence under [`OrderTier::Tiered`]; a no-op under
    /// [`OrderTier::SeqCst`] (every operation is already sequentially
    /// consistent there, and the simulator serializes steps anyway).
    ///
    /// Not a counted step: it is a hardware-ordering artifact with no
    /// shared-memory effect, so step accounting stays identical across
    /// tiers. Needed at *reveal points*: a Release store followed by
    /// Acquire scans permits store-buffer reordering (both of two
    /// concurrent attempts reading the other's pre-reveal value); an SC
    /// fence between each attempt's reveal store and its subsequent scan
    /// restores the "at least one sees the other" guarantee
    /// (Dekker-via-fences, see DESIGN.md §2.2).
    #[inline]
    pub fn publication_fence(&self) {
        if self.tier == OrderTier::Tiered {
            std::sync::atomic::fence(Ordering::SeqCst);
        }
    }

    /// Allocates `n` words from this process's allocation lane (one step;
    /// the model treats allocation as a constant-time primitive, see
    /// DESIGN.md). The hot path is a plain uncontended bump inside the
    /// lane's current slab; the shared slab cursor is touched once per
    /// slab. The lane is the pid, so simulated replays allocate from
    /// identical lanes deterministically.
    ///
    /// When the slab region is exhausted the allocation falls back to the
    /// heap's emergency reserve and latches [`Ctx::heap_low`], so the
    /// in-flight attempt completes (it may already have published records)
    /// and the caller gives up cleanly before starting new work — the next
    /// quiescent epoch reset rewinds every lane and clears the pressure.
    ///
    /// # Panics
    /// Panics (with a [`crate::heap::HeapExhausted`] payload) only when the
    /// reserve itself is dry — a genuine arena-sizing bug.
    #[inline]
    pub fn alloc(&self, n: usize) -> Addr {
        self.stepped(|| match self.heap.alloc(self.pid, n) {
            Ok(a) => a,
            Err(_) => {
                self.heap_low.set(true);
                self.heap.alloc_reserve(self.pid, n)
            }
        })
    }

    /// Whether an allocation has had to dip into the emergency reserve
    /// since the last [`Ctx::reset_heap_low`]. Retry loops and batch
    /// drivers treat this like tag exhaustion: stop opening new attempts
    /// and let the epoch boundary rewind the lanes.
    #[inline]
    pub fn heap_low(&self) -> bool {
        self.heap_low.get()
    }

    /// Clears the heap-pressure latch. Called by epoch drivers right after
    /// a quiescent reset has rewound the lanes (a new heap lifetime).
    #[inline]
    pub fn reset_heap_low(&self) {
        self.heap_low.set(false);
    }

    // ----- local operations (one step each) -----

    /// A private step with no shared-memory effect. Used to implement the
    /// paper's fixed delays.
    #[inline]
    pub fn local_step(&self) {
        self.stepped(|| ())
    }

    /// Stalls (taking local steps) until this process has taken at least
    /// `target` own steps in total. This is the paper's `Delay until ...
    /// total steps taken` primitive; the stall length is a deterministic
    /// function of the process's own step count, never of other processes.
    pub fn stall_until_steps(&self, target: u64) {
        while self.steps.get() < target {
            self.local_step();
        }
    }

    /// Draws 64 random bits from this process's private deterministic
    /// stream (one local step).
    #[inline]
    pub fn rand_u64(&self) -> u64 {
        self.stepped(|| self.rng.borrow_mut().next_u64())
    }

    /// Draws a uniform value in `0..bound` (one local step).
    #[inline]
    pub fn rand_below(&self, bound: u64) -> u64 {
        self.stepped(|| self.rng.borrow_mut().below(bound))
    }

    /// Polls this process's mailbox for a command from the player adversary
    /// (one step). Returns `None` when the mailbox is empty or the driver
    /// has no mailboxes (real mode).
    pub fn poll_mailbox(&self) -> Option<Command> {
        self.stepped(|| self.mailbox.and_then(|m| m.lock().pop_front()))
    }

    // ----- history recording -----

    /// Marks the invocation of a high-level operation (one step). Must be
    /// matched by [`Ctx::respond`].
    ///
    /// # Panics
    /// Panics if an operation is already pending on this process.
    pub fn invoke(&self, op: u32, a: u64, b: u64) {
        self.stepped(|| ());
        let mut p = self.pending.borrow_mut();
        assert!(p.is_none(), "nested invoke on process {}", self.pid);
        *p = Some(PendingOp { op, a, b, invoke: self.last_now.get() });
    }

    /// Marks the response of the pending operation (one step), recording a
    /// history [`Event`].
    ///
    /// # Panics
    /// Panics if no operation is pending.
    pub fn respond(&self, result: u64, mut result_set: Vec<u64>) {
        self.stepped(|| ());
        let p = self.pending.borrow_mut().take().expect("respond without invoke");
        result_set.sort_unstable();
        self.events.borrow_mut().push(Event {
            pid: self.pid,
            op: p.op,
            a: p.a,
            b: p.b,
            result,
            result_set,
            invoke: p.invoke,
            response: self.last_now.get(),
        });
    }

    /// Drains the recorded events (drivers call this after the body runs).
    pub(crate) fn take_events(&self) -> Vec<Event> {
        std::mem::take(&mut self.events.borrow_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_ctx(heap: &Heap) -> (Ctx<'_>, &'static AtomicU64, &'static AtomicBool) {
        // Leak tiny statics for test plumbing simplicity.
        let clock: &'static AtomicU64 = Box::leak(Box::new(AtomicU64::new(0)));
        let stop: &'static AtomicBool = Box::leak(Box::new(AtomicBool::new(false)));
        (
            Ctx::new(heap, 0, 1, 42, None, clock, stop, None, None, ClockMode::Precise, OrderTier::SeqCst),
            clock,
            stop,
        )
    }

    fn leased_ctx(heap: &Heap, block: u64) -> (Ctx<'_>, &'static AtomicU64) {
        let clock: &'static AtomicU64 = Box::leak(Box::new(AtomicU64::new(0)));
        let stop: &'static AtomicBool = Box::leak(Box::new(AtomicBool::new(false)));
        (
            Ctx::new(
                heap,
                0,
                1,
                42,
                None,
                clock,
                stop,
                None,
                None,
                ClockMode::Leased(block),
                OrderTier::Tiered,
            ),
            clock,
        )
    }

    #[test]
    fn every_operation_counts_one_step() {
        let heap = Heap::new(64);
        let (ctx, _, _) = test_ctx(&heap);
        let a = ctx.alloc(1);
        assert_eq!(ctx.steps(), 1);
        ctx.write(a, 5);
        assert_eq!(ctx.steps(), 2);
        assert_eq!(ctx.read(a), 5);
        assert_eq!(ctx.steps(), 3);
        assert!(ctx.cas_bool(a, 5, 6));
        assert_eq!(ctx.steps(), 4);
        ctx.local_step();
        assert_eq!(ctx.steps(), 5);
        ctx.rand_u64();
        assert_eq!(ctx.steps(), 6);
    }

    #[test]
    fn tiered_operations_count_steps_and_roundtrip() {
        let heap = Heap::new(64);
        let (ctx, _) = leased_ctx(&heap, 4);
        let a = ctx.alloc(1);
        ctx.write_rel(a, 9);
        assert_eq!(ctx.read_acq(a), 9);
        assert!(ctx.cas_bool_sync(a, 9, 11));
        assert_eq!(ctx.cas_val_sync(a, 9, 12), 11, "failed CAS reports witness");
        assert_eq!(ctx.read_acq(a), 11);
        assert_eq!(ctx.steps(), 6);
    }

    #[test]
    fn cas_val_reports_witness() {
        let heap = Heap::new(64);
        let (ctx, _, _) = test_ctx(&heap);
        let a = ctx.alloc(1);
        ctx.write(a, 10);
        assert_eq!(ctx.cas_val(a, 10, 20), 10);
        assert_eq!(ctx.cas_val(a, 10, 30), 20);
        assert_eq!(ctx.read(a), 20);
    }

    #[test]
    fn stall_until_steps_reaches_exact_target() {
        let heap = Heap::new(16);
        let (ctx, _, _) = test_ctx(&heap);
        ctx.stall_until_steps(100);
        assert_eq!(ctx.steps(), 100);
        // Already past target: no-op.
        ctx.stall_until_steps(50);
        assert_eq!(ctx.steps(), 100);
    }

    #[test]
    fn invoke_respond_records_event() {
        let heap = Heap::new(16);
        let (ctx, _, _) = test_ctx(&heap);
        ctx.invoke(3, 7, 8);
        ctx.local_step();
        ctx.respond(1, vec![5, 2]);
        let evs = ctx.take_events();
        assert_eq!(evs.len(), 1);
        let e = &evs[0];
        assert_eq!((e.op, e.a, e.b, e.result), (3, 7, 8, 1));
        assert_eq!(e.result_set, vec![2, 5], "result sets are sorted");
        assert!(e.invoke < e.response);
    }

    #[test]
    #[should_panic(expected = "respond without invoke")]
    fn respond_without_invoke_panics() {
        let heap = Heap::new(16);
        let (ctx, _, _) = test_ctx(&heap);
        ctx.respond(0, vec![]);
    }

    #[test]
    fn real_mode_clock_advances() {
        let heap = Heap::new(16);
        let (ctx, clock, _) = test_ctx(&heap);
        ctx.local_step();
        let t1 = ctx.now();
        ctx.local_step();
        assert!(ctx.now() > t1);
        assert_eq!(clock.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn precise_mode_yields_consecutive_timestamps() {
        let heap = Heap::new(16);
        let (ctx, _, _) = test_ctx(&heap);
        for i in 0..100u64 {
            ctx.local_step();
            assert_eq!(ctx.now(), i, "precise mode = one global tick per step");
        }
    }

    #[test]
    fn leased_mode_ticks_locally_and_claims_blocks() {
        let heap = Heap::new(16);
        let (ctx, clock) = leased_ctx(&heap, 8);
        for i in 0..20u64 {
            ctx.local_step();
            assert_eq!(ctx.now(), i, "solo leased timestamps are still consecutive");
        }
        // 20 steps with block 8: exactly ceil(20/8) = 3 lease claims.
        assert_eq!(clock.load(Ordering::SeqCst), 24, "clock advanced by whole leases");
    }

    #[test]
    fn leased_block_zero_is_normalized() {
        let heap = Heap::new(16);
        let (ctx, _) = leased_ctx(&heap, 0);
        ctx.local_step();
        let t1 = ctx.now();
        ctx.local_step();
        assert!(ctx.now() > t1, "degenerate lease must still be monotonic");
    }

    #[test]
    fn stop_flag_is_visible() {
        let heap = Heap::new(16);
        let (ctx, _, stop) = test_ctx(&heap);
        assert!(!ctx.stop_requested());
        stop.store(true, Ordering::SeqCst);
        assert!(ctx.stop_requested());
    }

    #[test]
    fn rand_streams_are_deterministic_per_pid_and_seed() {
        let heap = Heap::new(16);
        let clock: &'static AtomicU64 = Box::leak(Box::new(AtomicU64::new(0)));
        let stop: &'static AtomicBool = Box::leak(Box::new(AtomicBool::new(false)));
        let mk = |pid: usize| {
            Ctx::new(&heap, pid, 4, 99, None, clock, stop, None, None, ClockMode::Precise, OrderTier::SeqCst)
        };
        let c1 = mk(3);
        let c2 = mk(3);
        assert_eq!(c1.rand_u64(), c2.rand_u64());
        let c3 = mk(2);
        assert_ne!(c1.rand_u64(), c3.rand_u64());
    }
}
