//! Per-process execution context: step-counted shared-memory operations.
//!
//! All algorithm code in this repository is written against [`Ctx`] and runs
//! unchanged under both drivers (real threads and the deterministic
//! simulator). Every operation — shared reads/writes/CAS, allocation,
//! invocation/response markers, and explicit local steps — counts exactly
//! one *own step* of the process, matching the paper's cost model in which
//! delays ("stall until `T0` own steps have been taken") are measured in the
//! process's own instructions.

use crate::gate::Gate;
use crate::heap::{Addr, Heap};
use crate::history::{Event, PendingOp};
use crate::rng::Pcg;
use parking_lot::Mutex;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// A command sent to a process by the (adaptive) player adversary, encoded
/// as a boxed word slice; workloads define the encoding.
pub type Command = Box<[u64]>;

/// A per-process mailbox, written by the simulator controller between steps
/// and polled by the process as a gated step.
pub type Mailbox = Mutex<VecDeque<Command>>;

/// Per-process execution context.
///
/// A `Ctx` is created by a driver for exactly one process (thread) and must
/// not be shared across threads (it is `!Sync` by construction).
pub struct Ctx<'h> {
    heap: &'h Heap,
    pid: usize,
    nprocs: usize,
    gate: Option<&'h Gate>,
    clock: &'h AtomicU64,
    stop: &'h AtomicBool,
    mailbox: Option<&'h Mailbox>,
    steps: Cell<u64>,
    last_now: Cell<u64>,
    rng: RefCell<Pcg>,
    events: RefCell<Vec<Event>>,
    pending: RefCell<Option<PendingOp>>,
}

impl std::fmt::Debug for Ctx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx")
            .field("pid", &self.pid)
            .field("steps", &self.steps.get())
            .field("simulated", &self.gate.is_some())
            .finish()
    }
}

impl<'h> Ctx<'h> {
    /// Creates a context. Drivers call this; algorithm code receives `&Ctx`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        heap: &'h Heap,
        pid: usize,
        nprocs: usize,
        seed: u64,
        gate: Option<&'h Gate>,
        clock: &'h AtomicU64,
        stop: &'h AtomicBool,
        mailbox: Option<&'h Mailbox>,
    ) -> Ctx<'h> {
        Ctx {
            heap,
            pid,
            nprocs,
            gate,
            clock,
            stop,
            mailbox,
            steps: Cell::new(0),
            last_now: Cell::new(0),
            rng: RefCell::new(Pcg::new(seed, pid as u64 + 1)),
            events: RefCell::new(Vec::new()),
            pending: RefCell::new(None),
        }
    }

    /// Executes `f` as one step: counts it, and in simulated mode blocks
    /// until the oblivious scheduler grants the step.
    #[inline]
    fn stepped<T>(&self, f: impl FnOnce() -> T) -> T {
        self.steps.set(self.steps.get() + 1);
        match self.gate {
            Some(gate) => {
                gate.request();
                self.last_now.set(gate.now());
                let r = f();
                gate.complete();
                r
            }
            None => {
                let t = self.clock.fetch_add(1, Ordering::SeqCst);
                self.last_now.set(t);
                f()
            }
        }
    }

    /// Process id in `0..nprocs`.
    #[inline]
    pub fn pid(&self) -> usize {
        self.pid
    }

    /// Total number of processes in the system (the paper's `P`).
    #[inline]
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// Number of own steps this process has taken so far.
    #[inline]
    pub fn steps(&self) -> u64 {
        self.steps.get()
    }

    /// Global logical time of this process's most recent step.
    #[inline]
    pub fn now(&self) -> u64 {
        self.last_now.get()
    }

    /// The underlying heap (for address arithmetic only; going around the
    /// step accounting in algorithm code invalidates the experiments).
    #[inline]
    pub fn heap(&self) -> &'h Heap {
        self.heap
    }

    /// Whether the driver has requested cooperative shutdown. Workload
    /// loops must poll this between attempts.
    #[inline]
    pub fn stop_requested(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    // ----- shared-memory operations (one step each) -----

    /// Atomic read of a shared word.
    #[inline]
    pub fn read(&self, a: Addr) -> u64 {
        self.stepped(|| self.heap.word(a).load(Ordering::SeqCst))
    }

    /// Atomic write of a shared word.
    #[inline]
    pub fn write(&self, a: Addr, v: u64) {
        self.stepped(|| self.heap.word(a).store(v, Ordering::SeqCst))
    }

    /// Atomic compare-and-swap; returns the *previous* value. The CAS
    /// succeeded iff the return value equals `old`.
    #[inline]
    pub fn cas_val(&self, a: Addr, old: u64, new: u64) -> u64 {
        self.stepped(|| {
            match self.heap.word(a).compare_exchange(old, new, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(prev) => prev,
                Err(prev) => prev,
            }
        })
    }

    /// Atomic compare-and-swap; returns whether it succeeded.
    #[inline]
    pub fn cas_bool(&self, a: Addr, old: u64, new: u64) -> bool {
        self.cas_val(a, old, new) == old
    }

    /// Allocates `n` words from the shared bump allocator (one step; the
    /// model treats allocation as a constant-time primitive, see DESIGN.md).
    #[inline]
    pub fn alloc(&self, n: usize) -> Addr {
        self.stepped(|| self.heap.alloc_root(n))
    }

    // ----- local operations (one step each) -----

    /// A private step with no shared-memory effect. Used to implement the
    /// paper's fixed delays.
    #[inline]
    pub fn local_step(&self) {
        self.stepped(|| ())
    }

    /// Stalls (taking local steps) until this process has taken at least
    /// `target` own steps in total. This is the paper's `Delay until ...
    /// total steps taken` primitive; the stall length is a deterministic
    /// function of the process's own step count, never of other processes.
    pub fn stall_until_steps(&self, target: u64) {
        while self.steps.get() < target {
            self.local_step();
        }
    }

    /// Draws 64 random bits from this process's private deterministic
    /// stream (one local step).
    #[inline]
    pub fn rand_u64(&self) -> u64 {
        self.stepped(|| self.rng.borrow_mut().next_u64())
    }

    /// Draws a uniform value in `0..bound` (one local step).
    #[inline]
    pub fn rand_below(&self, bound: u64) -> u64 {
        self.stepped(|| self.rng.borrow_mut().below(bound))
    }

    /// Polls this process's mailbox for a command from the player adversary
    /// (one step). Returns `None` when the mailbox is empty or the driver
    /// has no mailboxes (real mode).
    pub fn poll_mailbox(&self) -> Option<Command> {
        self.stepped(|| self.mailbox.and_then(|m| m.lock().pop_front()))
    }

    // ----- history recording -----

    /// Marks the invocation of a high-level operation (one step). Must be
    /// matched by [`Ctx::respond`].
    ///
    /// # Panics
    /// Panics if an operation is already pending on this process.
    pub fn invoke(&self, op: u32, a: u64, b: u64) {
        self.stepped(|| ());
        let mut p = self.pending.borrow_mut();
        assert!(p.is_none(), "nested invoke on process {}", self.pid);
        *p = Some(PendingOp { op, a, b, invoke: self.last_now.get() });
    }

    /// Marks the response of the pending operation (one step), recording a
    /// history [`Event`].
    ///
    /// # Panics
    /// Panics if no operation is pending.
    pub fn respond(&self, result: u64, mut result_set: Vec<u64>) {
        self.stepped(|| ());
        let p = self.pending.borrow_mut().take().expect("respond without invoke");
        result_set.sort_unstable();
        self.events.borrow_mut().push(Event {
            pid: self.pid,
            op: p.op,
            a: p.a,
            b: p.b,
            result,
            result_set,
            invoke: p.invoke,
            response: self.last_now.get(),
        });
    }

    /// Drains the recorded events (drivers call this after the body runs).
    pub(crate) fn take_events(&self) -> Vec<Event> {
        std::mem::take(&mut self.events.borrow_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_ctx(heap: &Heap) -> (Ctx<'_>, &'static AtomicU64, &'static AtomicBool) {
        // Leak tiny statics for test plumbing simplicity.
        let clock: &'static AtomicU64 = Box::leak(Box::new(AtomicU64::new(0)));
        let stop: &'static AtomicBool = Box::leak(Box::new(AtomicBool::new(false)));
        (Ctx::new(heap, 0, 1, 42, None, clock, stop, None), clock, stop)
    }

    #[test]
    fn every_operation_counts_one_step() {
        let heap = Heap::new(64);
        let (ctx, _, _) = test_ctx(&heap);
        let a = ctx.alloc(1);
        assert_eq!(ctx.steps(), 1);
        ctx.write(a, 5);
        assert_eq!(ctx.steps(), 2);
        assert_eq!(ctx.read(a), 5);
        assert_eq!(ctx.steps(), 3);
        assert!(ctx.cas_bool(a, 5, 6));
        assert_eq!(ctx.steps(), 4);
        ctx.local_step();
        assert_eq!(ctx.steps(), 5);
        ctx.rand_u64();
        assert_eq!(ctx.steps(), 6);
    }

    #[test]
    fn cas_val_reports_witness() {
        let heap = Heap::new(64);
        let (ctx, _, _) = test_ctx(&heap);
        let a = ctx.alloc(1);
        ctx.write(a, 10);
        assert_eq!(ctx.cas_val(a, 10, 20), 10);
        assert_eq!(ctx.cas_val(a, 10, 30), 20);
        assert_eq!(ctx.read(a), 20);
    }

    #[test]
    fn stall_until_steps_reaches_exact_target() {
        let heap = Heap::new(16);
        let (ctx, _, _) = test_ctx(&heap);
        ctx.stall_until_steps(100);
        assert_eq!(ctx.steps(), 100);
        // Already past target: no-op.
        ctx.stall_until_steps(50);
        assert_eq!(ctx.steps(), 100);
    }

    #[test]
    fn invoke_respond_records_event() {
        let heap = Heap::new(16);
        let (ctx, _, _) = test_ctx(&heap);
        ctx.invoke(3, 7, 8);
        ctx.local_step();
        ctx.respond(1, vec![5, 2]);
        let evs = ctx.take_events();
        assert_eq!(evs.len(), 1);
        let e = &evs[0];
        assert_eq!((e.op, e.a, e.b, e.result), (3, 7, 8, 1));
        assert_eq!(e.result_set, vec![2, 5], "result sets are sorted");
        assert!(e.invoke < e.response);
    }

    #[test]
    #[should_panic(expected = "respond without invoke")]
    fn respond_without_invoke_panics() {
        let heap = Heap::new(16);
        let (ctx, _, _) = test_ctx(&heap);
        ctx.respond(0, vec![]);
    }

    #[test]
    fn real_mode_clock_advances() {
        let heap = Heap::new(16);
        let (ctx, clock, _) = test_ctx(&heap);
        ctx.local_step();
        let t1 = ctx.now();
        ctx.local_step();
        assert!(ctx.now() > t1);
        assert_eq!(clock.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn stop_flag_is_visible() {
        let heap = Heap::new(16);
        let (ctx, _, stop) = test_ctx(&heap);
        assert!(!ctx.stop_requested());
        stop.store(true, Ordering::SeqCst);
        assert!(ctx.stop_requested());
    }

    #[test]
    fn rand_streams_are_deterministic_per_pid_and_seed() {
        let heap = Heap::new(16);
        let clock: &'static AtomicU64 = Box::leak(Box::new(AtomicU64::new(0)));
        let stop: &'static AtomicBool = Box::leak(Box::new(AtomicBool::new(false)));
        let c1 = Ctx::new(&heap, 3, 4, 99, None, clock, stop, None);
        let c2 = Ctx::new(&heap, 3, 4, 99, None, clock, stop, None);
        assert_eq!(c1.rand_u64(), c2.rand_u64());
        let c3 = Ctx::new(&heap, 2, 4, 99, None, clock, stop, None);
        assert_ne!(c1.rand_u64(), c3.rand_u64());
    }
}
