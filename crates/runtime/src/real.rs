//! Free-running real-threads driver.
//!
//! Runs the same algorithm code as the simulator, but with one OS thread per
//! process and native atomics — no scheduler in the way. Used for
//! throughput benchmarks and stress tests; step counting still works (it is
//! just a thread-local counter), so the paper's delays behave identically.

use crate::ctx::Ctx;
use crate::heap::Heap;
use crate::history::{Event, History};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Result of a real-threads execution.
#[derive(Debug)]
pub struct RealReport {
    /// Per-process own-step counts.
    pub steps: Vec<u64>,
    /// Wall-clock duration of the run.
    pub wall: Duration,
    /// Recorded history (timestamps are approximate in real mode: they are
    /// assigned by a global counter fetched at each step, so they respect
    /// program order per process but interleavings between the fetch and
    /// the operation are possible; use the simulator for exact histories).
    pub history: History,
    /// Panics caught in process bodies: `(pid, message)`.
    pub panics: Vec<(usize, String)>,
}

impl RealReport {
    /// Asserts no process panicked.
    ///
    /// # Panics
    /// Panics with the collected messages if any body panicked.
    pub fn assert_clean(&self) {
        assert!(self.panics.is_empty(), "process panics: {:?}", self.panics);
    }
}

/// Runs `nprocs` bodies on free-running threads until they all return.
///
/// `make_body` is called once per pid on the calling thread; the returned
/// closures run concurrently. If `run_for` is set, the cooperative stop
/// flag is raised after that duration; bodies must poll
/// [`Ctx::stop_requested`] to honor it.
pub fn run_threads<'a, F, G>(
    heap: &Heap,
    nprocs: usize,
    seed: u64,
    run_for: Option<Duration>,
    mut make_body: F,
) -> RealReport
where
    F: FnMut(usize) -> G,
    G: FnOnce(&Ctx<'_>) + Send + 'a,
{
    assert!(nprocs > 0);
    let clock = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    let step_counts: Vec<Mutex<u64>> = (0..nprocs).map(|_| Mutex::new(0)).collect();
    let event_slots: Vec<Mutex<Vec<Event>>> = (0..nprocs).map(|_| Mutex::new(Vec::new())).collect();
    let panic_slots: Vec<Mutex<Option<String>>> = (0..nprocs).map(|_| Mutex::new(None)).collect();
    let bodies: Vec<_> = (0..nprocs).map(&mut make_body).collect();

    let start = Instant::now();
    std::thread::scope(|scope| {
        for (pid, body) in bodies.into_iter().enumerate() {
            let clock = &clock;
            let stop = &stop;
            let steps_out = &step_counts[pid];
            let events_out = &event_slots[pid];
            let panic_out = &panic_slots[pid];
            scope.spawn(move || {
                let ctx = Ctx::new(heap, pid, nprocs, seed, None, clock, stop, None);
                let result =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&ctx)));
                *steps_out.lock() = ctx.steps();
                *events_out.lock() = ctx.take_events();
                if let Err(payload) = result {
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic".to_string());
                    *panic_out.lock() = Some(msg);
                }
            });
        }
        if let Some(d) = run_for {
            std::thread::sleep(d);
            stop.store(true, Ordering::SeqCst);
        }
    });
    let wall = start.elapsed();

    let steps: Vec<u64> = step_counts.iter().map(|m| *m.lock()).collect();
    let events: Vec<Vec<Event>> = event_slots.iter().map(|m| std::mem::take(&mut *m.lock())).collect();
    let panics: Vec<(usize, String)> = panic_slots
        .iter()
        .enumerate()
        .filter_map(|(pid, m)| m.lock().take().map(|msg| (pid, msg)))
        .collect();
    RealReport { steps, wall, history: History::from_parts(events), panics }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concurrent_cas_counter_is_exact() {
        let heap = Heap::new(1 << 10);
        let counter = heap.alloc_root(1);
        let report = run_threads(&heap, 8, 1, None, |_pid| {
            move |ctx: &Ctx| {
                for _ in 0..1000 {
                    loop {
                        let v = ctx.read(counter);
                        if ctx.cas_bool(counter, v, v + 1) {
                            break;
                        }
                    }
                }
            }
        });
        report.assert_clean();
        assert_eq!(heap.peek(counter), 8000);
        assert_eq!(report.steps.len(), 8);
        assert!(report.steps.iter().all(|&s| s >= 2000), "at least read+cas per increment");
    }

    #[test]
    fn timed_run_stops_via_flag() {
        let heap = Heap::new(1 << 10);
        let c = heap.alloc_root(1);
        let report = run_threads(&heap, 2, 1, Some(Duration::from_millis(30)), |_pid| {
            move |ctx: &Ctx| {
                while !ctx.stop_requested() {
                    let v = ctx.read(c);
                    ctx.cas_bool(c, v, v + 1);
                }
            }
        });
        report.assert_clean();
        assert!(heap.peek(c) > 0, "made progress before the stop flag");
    }

    #[test]
    fn panics_are_isolated_per_thread() {
        let heap = Heap::new(1 << 8);
        let report = run_threads(&heap, 2, 1, None, |pid| {
            move |ctx: &Ctx| {
                ctx.local_step();
                if pid == 1 {
                    panic!("thread bug");
                }
            }
        });
        assert_eq!(report.panics.len(), 1);
        assert_eq!(report.panics[0].0, 1);
    }
}
