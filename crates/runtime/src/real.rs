//! Free-running real-threads driver.
//!
//! Runs the same algorithm code as the simulator, but with one OS thread per
//! process and native atomics — no scheduler in the way. Used for
//! throughput benchmarks and stress tests; step counting still works (it is
//! just a thread-local counter), so the paper's delays behave identically.
//!
//! The driver's hot path is configurable via [`RealConfig`]:
//! [`RealConfig::precise`] reproduces the historical behavior (one `SeqCst`
//! `fetch_add` on a shared clock per step, all operations `SeqCst`) and is
//! what [`run_threads`] uses; [`RealConfig::fast`] switches to batched
//! clock leases and the acquire/release ordering tier so that the hot path
//! touches no contended cache line except the ones the algorithm itself
//! contends on. See `DESIGN.md` §2.

use crate::ctx::{ClockMode, Ctx, OrderTier};
use crate::epoch::{EpochState, EpochSync};
use crate::heap::{CachePadded, Heap};
use crate::history::{Event, History};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// How many hardware threads this host can actually run in parallel.
/// Falls back to 1 when the OS refuses to say (the conservative answer:
/// everything is oversubscribed).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Clamps a requested thread count against the host's
/// [`available_parallelism`], keeping `reserved` hardware threads aside
/// for auxiliary machinery (fault injector, adversary controller). Prints
/// a warning to stderr when it clamps, instead of silently oversubscribing
/// a CI runner; never returns less than 2 (a "concurrent" run of one
/// thread would be meaningless) and never raises the request.
pub fn clamp_threads(requested: usize, reserved: usize, what: &str) -> usize {
    let avail = available_parallelism();
    let budget = avail.saturating_sub(reserved).max(2);
    if requested > budget {
        eprintln!(
            "warning: {what}: clamping {requested} threads to {budget} \
             (available_parallelism={avail}, reserved={reserved})"
        );
        budget
    } else {
        requested
    }
}

/// Fault injection for real-threads runs: an injector thread periodically
/// suspends one pseudo-randomly chosen process mid-whatever-it-is-doing
/// (including mid-critical-section) for a configurable quantum. The
/// suspension is the real-threads analogue of the simulator's
/// [`crate::schedule::PeriodicFaults`]: the victim's own steps simply stop
/// advancing (it spins uncounted inside its next step), exactly as if the
/// OS scheduler had preempted it — which is the failure model the paper's
/// helping protocol is built to survive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Wall-clock interval between consecutive fault injections.
    pub period: Duration,
    /// How long each victim stays suspended. Must not exceed `period`.
    pub quantum: Duration,
    /// Seed for the victim sequence (deterministic victim *choice*; the
    /// suspension instants are wall-clock, hence not deterministic).
    pub seed: u64,
}

/// Hot-path configuration of a real-threads run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RealConfig {
    /// How logical timestamps are drawn.
    pub clock: ClockMode,
    /// Which hardware orderings the tiered memory operations use.
    pub order: OrderTier,
    /// Optional fault injection (holder stalls/crashes). `None` keeps the
    /// per-step hot path free of the pauser check.
    pub faults: Option<FaultSpec>,
}

impl RealConfig {
    /// The historical (and conservative) configuration: exact global
    /// timestamps, everything `SeqCst`. Required when recorded history
    /// timestamps must be globally ordered.
    pub fn precise() -> RealConfig {
        RealConfig { clock: ClockMode::Precise, order: OrderTier::SeqCst, faults: None }
    }

    /// The contention-free throughput configuration: clock leases of
    /// [`ClockMode::DEFAULT_LEASE`] timestamps and the acquire/release
    /// ordering tier.
    pub fn fast() -> RealConfig {
        RealConfig {
            clock: ClockMode::Leased(ClockMode::DEFAULT_LEASE),
            order: OrderTier::Tiered,
            faults: None,
        }
    }

    /// This configuration with periodic fault injection armed.
    pub fn with_faults(mut self, faults: FaultSpec) -> RealConfig {
        assert!(
            faults.quantum <= faults.period,
            "fault quantum {:?} exceeds period {:?}",
            faults.quantum,
            faults.period
        );
        self.faults = Some(faults);
        self
    }
}

impl Default for RealConfig {
    fn default() -> Self {
        RealConfig::precise()
    }
}

/// Result of a real-threads execution.
#[derive(Debug)]
pub struct RealReport {
    /// Per-process own-step counts.
    pub steps: Vec<u64>,
    /// Wall-clock duration of the run.
    pub wall: Duration,
    /// Recorded history (timestamps are approximate in real mode: they are
    /// assigned by a global counter fetched at each step, so they respect
    /// program order per process but interleavings between the fetch and
    /// the operation are possible; under [`ClockMode::Leased`] they are
    /// additionally only lease-granular across processes; use the
    /// simulator for exact histories).
    pub history: History,
    /// Panics caught in process bodies: `(pid, message)`.
    pub panics: Vec<(usize, String)>,
    /// Heap lifetimes (epochs) the run spanned: 1 for a plain
    /// [`run_threads_with`] run, the boundary count reported by the
    /// [`EpochState`] for a [`run_threads_epochs`] run.
    pub epochs: u64,
}

impl RealReport {
    /// Asserts no process panicked.
    ///
    /// # Panics
    /// Panics with the collected messages if any body panicked.
    pub fn assert_clean(&self) {
        assert!(self.panics.is_empty(), "process panics: {:?}", self.panics);
    }
}

/// Runs `nprocs` bodies on free-running threads until they all return,
/// with the conservative [`RealConfig::precise`] hot path.
///
/// `make_body` is called once per pid on the calling thread; the returned
/// closures run concurrently. If `run_for` is set, the cooperative stop
/// flag is raised after that duration; bodies must poll
/// [`Ctx::stop_requested`] to honor it.
pub fn run_threads<'a, F, G>(
    heap: &Heap,
    nprocs: usize,
    seed: u64,
    run_for: Option<Duration>,
    make_body: F,
) -> RealReport
where
    F: FnMut(usize) -> G,
    G: FnOnce(&Ctx<'_>) + Send + 'a,
{
    run_threads_with(heap, nprocs, seed, run_for, RealConfig::precise(), make_body)
}

/// Like [`run_threads`], but with an explicit hot-path [`RealConfig`].
pub fn run_threads_with<'a, F, G>(
    heap: &Heap,
    nprocs: usize,
    seed: u64,
    run_for: Option<Duration>,
    cfg: RealConfig,
    mut make_body: F,
) -> RealReport
where
    F: FnMut(usize) -> G,
    G: FnOnce(&Ctx<'_>) + Send + 'a,
{
    assert!(nprocs > 0);
    if cfg.faults.is_some() && nprocs + 1 > available_parallelism() {
        // The injector thread's sleep/store cadence only approximates the
        // configured fault period when it actually gets a core; warn rather
        // than silently letting an oversubscribed runner stretch quanta.
        eprintln!(
            "warning: fault injection with {nprocs} worker threads + 1 injector \
             oversubscribes available_parallelism={} (fault quanta will stretch)",
            available_parallelism()
        );
    }
    // The three shared control words each own a cache line: the clock is
    // written on every step (Precise) or lease claim, while stop/pauser are
    // read on hot paths — packing them together made every stop poll a miss
    // whenever the clock ticked (false-sharing audit, DESIGN.md §1.3).
    let clock = CachePadded(AtomicU64::new(0));
    let stop = CachePadded(AtomicBool::new(false));
    // Fault-injection pauser word: 0 = nobody suspended, otherwise the
    // suspended process's pid + 1. Written only by the injector thread.
    let pauser = CachePadded(AtomicU64::new(0));
    // Per-thread result slots are line-padded: each is written once at body
    // exit, but the epilogue of all threads lands at once and the slots used
    // to share lines 8-to-a-line.
    let step_counts: Vec<CachePadded<Mutex<u64>>> =
        (0..nprocs).map(|_| CachePadded(Mutex::new(0))).collect();
    let event_slots: Vec<Mutex<Vec<Event>>> = (0..nprocs).map(|_| Mutex::new(Vec::new())).collect();
    let panic_slots: Vec<Mutex<Option<String>>> = (0..nprocs).map(|_| Mutex::new(None)).collect();
    let bodies: Vec<_> = (0..nprocs).map(&mut make_body).collect();
    // Completion signal for timed runs: the driver parks on this instead of
    // sleeping the full `run_for`, so a run whose bodies all return early
    // reports the true wall time (`RealReport::wall` is every throughput
    // denominator downstream).
    let finished = Mutex::new(0usize);
    let finished_cv = Condvar::new();

    let start = Instant::now();
    std::thread::scope(|scope| {
        for (pid, body) in bodies.into_iter().enumerate() {
            let clock = &clock.0;
            let stop = &stop.0;
            let steps_out = &step_counts[pid].0;
            let events_out = &event_slots[pid];
            let panic_out = &panic_slots[pid];
            let finished = &finished;
            let finished_cv = &finished_cv;
            let pause_ref = cfg.faults.is_some().then_some(&pauser.0);
            scope.spawn(move || {
                let ctx = Ctx::new(
                    heap, pid, nprocs, seed, None, clock, stop, pause_ref, None, cfg.clock,
                    cfg.order,
                );
                let result =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&ctx)));
                *steps_out.lock() = ctx.steps();
                *events_out.lock() = ctx.take_events();
                if let Err(payload) = result {
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .or_else(|| {
                            payload.downcast_ref::<crate::heap::HeapExhausted>().map(|e| e.to_string())
                        })
                        .unwrap_or_else(|| "non-string panic".to_string());
                    *panic_out.lock() = Some(msg);
                }
                *finished.lock() += 1;
                finished_cv.notify_all();
            });
        }
        if let Some(f) = cfg.faults {
            // The injector: every `period`, suspend one seeded-random
            // victim for `quantum`, then release it. It always releases
            // before re-checking the exit conditions, so no body can be
            // left suspended when the run winds down (the scope join would
            // otherwise deadlock on a spinning victim).
            let (pauser, stop, finished, clock) = (&pauser.0, &stop.0, &finished, &clock.0);
            scope.spawn(move || {
                let mut rng = crate::rng::Pcg::new(f.seed, 0xFA);
                loop {
                    std::thread::sleep(f.period.saturating_sub(f.quantum));
                    if stop.load(Ordering::SeqCst) || *finished.lock() >= nprocs {
                        break;
                    }
                    let victim = rng.below(nprocs as u64);
                    // Fault-window events land on the control ring; the
                    // injector has no Ctx, so `now` is the shared clock's
                    // current reading (lease-granular under Leased mode).
                    wfl_obs::rec::record_ctrl(
                        wfl_obs::EventKind::FaultStart,
                        clock.load(Ordering::Relaxed),
                        victim,
                    );
                    pauser.store(victim + 1, Ordering::Release);
                    std::thread::sleep(f.quantum);
                    pauser.store(0, Ordering::Release);
                    wfl_obs::rec::record_ctrl(
                        wfl_obs::EventKind::FaultEnd,
                        clock.load(Ordering::Relaxed),
                        victim,
                    );
                }
            });
        }
        if let Some(d) = run_for {
            let deadline = start + d;
            let mut done = finished.lock();
            while *done < nprocs {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                finished_cv.wait_for(&mut done, deadline - now);
            }
            drop(done);
            stop.0.store(true, Ordering::SeqCst);
        }
    });
    let wall = start.elapsed();

    let steps: Vec<u64> = step_counts.iter().map(|m| *m.0.lock()).collect();
    let events: Vec<Vec<Event>> = event_slots.iter().map(|m| std::mem::take(&mut *m.lock())).collect();
    let panics: Vec<(usize, String)> = panic_slots
        .iter()
        .enumerate()
        .filter_map(|(pid, m)| m.lock().take().map(|msg| (pid, msg)))
        .collect();
    RealReport { steps, wall, history: History::from_parts(events), panics, epochs: 1 }
}

/// Like [`run_threads_with`], but for **multi-epoch** runs.
///
/// This entry point does not itself rendezvous — the worker bodies **must**
/// drive their batches through [`crate::epoch::run_epoch_worker`] over the
/// same `sync`/`state` pair, with a leader closure that performs the
/// quiescent `EpochState::advance` (heap rewind) and re-roots the workload
/// while everyone else is parked. What this wrapper owns is the contract
/// around that protocol: the barrier must be sized to the process group
/// (asserted below), and the returned report's `epochs` field is stamped
/// from `state` after the run so callers can cross-check it against their
/// own boundary accounting (the workload harness asserts the two agree).
///
/// # Panics
/// Panics if the barrier's membership does not equal `nprocs` (a mis-sized
/// barrier either deadlocks or lets epochs overlap).
#[allow(clippy::too_many_arguments)]
pub fn run_threads_epochs<'a, F, G>(
    heap: &Heap,
    nprocs: usize,
    seed: u64,
    run_for: Option<Duration>,
    cfg: RealConfig,
    state: &EpochState,
    sync: &EpochSync,
    make_body: F,
) -> RealReport
where
    F: FnMut(usize) -> G,
    G: FnOnce(&Ctx<'_>) + Send + 'a,
{
    assert_eq!(
        sync.members(),
        nprocs,
        "epoch barrier sized for {} members but the run has {nprocs} processes",
        sync.members()
    );
    let mut report = run_threads_with(heap, nprocs, seed, run_for, cfg, make_body);
    report.epochs = state.epochs();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::Addr;

    #[test]
    fn concurrent_cas_counter_is_exact() {
        let heap = Heap::new(1 << 10);
        let counter = heap.alloc_root(1);
        let report = run_threads(&heap, 8, 1, None, |_pid| {
            move |ctx: &Ctx| {
                for _ in 0..1000 {
                    loop {
                        let v = ctx.read(counter);
                        if ctx.cas_bool(counter, v, v + 1) {
                            break;
                        }
                    }
                }
            }
        });
        report.assert_clean();
        assert_eq!(heap.peek(counter), 8000);
        assert_eq!(report.steps.len(), 8);
        assert!(report.steps.iter().all(|&s| s >= 2000), "at least read+cas per increment");
    }

    #[test]
    fn fast_config_cas_counter_is_exact() {
        // Same exactness property under leased clocks + the tiered
        // orderings: a single-word CAS loop is ordering-insensitive.
        let heap = Heap::new(1 << 10);
        let counter = heap.alloc_root(1);
        let report = run_threads_with(&heap, 8, 1, None, RealConfig::fast(), |_pid| {
            move |ctx: &Ctx| {
                for _ in 0..1000 {
                    loop {
                        let v = ctx.read_acq(counter);
                        if ctx.cas_bool_sync(counter, v, v + 1) {
                            break;
                        }
                    }
                }
            }
        });
        report.assert_clean();
        assert_eq!(heap.peek(counter), 8000);
    }

    #[test]
    fn timed_run_stops_via_flag() {
        let heap = Heap::new(1 << 10);
        let c = heap.alloc_root(1);
        let report = run_threads(&heap, 2, 1, Some(Duration::from_millis(30)), |_pid| {
            move |ctx: &Ctx| {
                while !ctx.stop_requested() {
                    let v = ctx.read(c);
                    ctx.cas_bool(c, v, v + 1);
                }
            }
        });
        report.assert_clean();
        assert!(heap.peek(c) > 0, "made progress before the stop flag");
    }

    #[test]
    fn timed_run_returns_as_soon_as_all_bodies_finish() {
        // Regression: the driver used to sleep the full `run_for` before
        // joining, inflating `wall` (and deflating every ops/sec number)
        // whenever bodies finished early. Instantly-returning bodies must
        // yield a wall time far below the timer.
        let heap = Heap::new(1 << 8);
        let run_for = Duration::from_secs(5);
        let report = run_threads(&heap, 4, 1, Some(run_for), |_pid| {
            move |ctx: &Ctx| {
                ctx.local_step();
            }
        });
        report.assert_clean();
        assert!(
            report.wall < Duration::from_secs(1),
            "instant bodies took {:?}; driver slept out the timer",
            report.wall
        );
    }

    #[test]
    fn timed_run_still_stops_slow_bodies_at_the_deadline() {
        // The early-return path must not break the timer path: a body that
        // never returns on its own is still cut off by the stop flag.
        let heap = Heap::new(1 << 8);
        let c = heap.alloc_root(1);
        let report = run_threads(&heap, 2, 1, Some(Duration::from_millis(40)), |_pid| {
            move |ctx: &Ctx| {
                while !ctx.stop_requested() {
                    let v = ctx.read(c);
                    ctx.cas_bool(c, v, v + 1);
                }
            }
        });
        report.assert_clean();
        assert!(report.wall >= Duration::from_millis(40));
        assert!(report.wall < Duration::from_secs(5), "stop flag never observed");
    }

    #[test]
    fn fault_injection_makes_progress_and_never_wedges_the_join() {
        // Four threads hammer a CAS counter while the injector repeatedly
        // suspends one of them. The run must still terminate at the timer
        // (the injector always releases its victim before exiting) and the
        // counter stays exact — suspension pauses a thread, it never
        // corrupts its operations.
        let heap = Heap::new(1 << 10);
        let c = heap.alloc_root(1);
        let cfg = RealConfig::fast().with_faults(FaultSpec {
            period: Duration::from_millis(5),
            quantum: Duration::from_millis(2),
            seed: 42,
        });
        let report = run_threads_with(&heap, 4, 1, Some(Duration::from_millis(60)), cfg, |_pid| {
            move |ctx: &Ctx| {
                while !ctx.stop_requested() {
                    let v = ctx.read_acq(c);
                    ctx.cas_bool_sync(c, v, v + 1);
                }
            }
        });
        report.assert_clean();
        assert!(heap.peek(c) > 0, "faulted run still made progress");
        assert!(report.wall < Duration::from_secs(5), "injector wedged the join");
    }

    #[test]
    #[should_panic(expected = "quantum")]
    fn fault_spec_quantum_must_fit_the_period() {
        let _ = RealConfig::fast().with_faults(FaultSpec {
            period: Duration::from_millis(1),
            quantum: Duration::from_millis(2),
            seed: 0,
        });
    }

    #[test]
    fn epoch_run_reports_boundary_count_and_reuses_the_arena() {
        use crate::epoch::{run_epoch_worker, EpochState};

        let heap = Heap::new(1 << 8);
        let persistent = heap.alloc_root(1);
        let state = EpochState::new(&heap);
        let sync = EpochSync::new(3);
        let report = run_threads_epochs(&heap, 3, 1, None, RealConfig::fast(), &state, &sync, |_pid| {
            let (state, sync) = (&state, &sync);
            move |ctx: &Ctx| {
                run_epoch_worker(
                    ctx,
                    sync,
                    |ctx, _epoch| {
                        // Per-epoch transient allocation plus a counted
                        // write: both must be wiped by each boundary.
                        let t = ctx.alloc(4);
                        ctx.write(t, 1);
                    },
                    |ctx, epoch| {
                        let heap = ctx.heap();
                        heap.poke(persistent, heap.peek(persistent) + 1);
                        if epoch < 3 {
                            state.advance(heap);
                            true
                        } else {
                            state.finish(heap);
                            false
                        }
                    },
                );
            }
        });
        report.assert_clean();
        assert_eq!(report.epochs, 4, "three resets plus the final epoch");
        assert_eq!(heap.peek(persistent), 4, "one boundary visit per epoch");
        // Every epoch allocated the same 3x4 transient words; resets
        // recycled them, so per-lane usage never compounds across epochs:
        // 4 words in each worker's lane plus the persistent root word.
        assert_eq!(state.high_water(), 1 + 12);
        let lanes = state.high_water_lanes();
        assert_eq!(&lanes[0..3], &[4, 4, 4], "one transient record per worker lane");
        assert_eq!(lanes[heap.root_lane()], 1, "the persistent root");
    }

    #[test]
    fn clamp_threads_floors_at_two_and_never_raises() {
        let avail = available_parallelism();
        assert!(avail >= 1);
        // A request within budget passes through untouched.
        assert_eq!(clamp_threads(2, 0, "test"), 2);
        // An absurd request is clamped to the hardware budget (floor 2).
        let clamped = clamp_threads(10_000, 1, "test");
        assert!(clamped >= 2);
        assert!(clamped <= avail.max(2));
        // Clamping never *raises* a small request.
        assert_eq!(clamp_threads(3, 0, "test").min(3), clamp_threads(3, 0, "test"));
    }

    #[test]
    fn panics_are_isolated_per_thread() {
        let heap = Heap::new(1 << 8);
        let report = run_threads(&heap, 2, 1, None, |pid| {
            move |ctx: &Ctx| {
                ctx.local_step();
                if pid == 1 {
                    panic!("thread bug");
                }
            }
        });
        assert_eq!(report.panics.len(), 1);
        assert_eq!(report.panics[0].0, 1);
    }

    // ----- clock-lease properties -----

    /// Runs `nprocs` threads that each record every `now()` value of
    /// `steps_per` local steps into a private heap region; returns the
    /// per-process timestamp vectors.
    fn record_ticks(cfg: RealConfig, nprocs: usize, steps_per: usize) -> Vec<Vec<u64>> {
        // 2x the payload: slab rounding and the emergency reserve need
        // headroom beyond the exact record count.
        let heap = Heap::new((2 * (nprocs * steps_per + 1)).next_power_of_two());
        let regions: Vec<Addr> = (0..nprocs).map(|_| heap.alloc_root(steps_per)).collect();
        let regions_ref = &regions;
        let report = run_threads_with(&heap, nprocs, 7, None, cfg, |pid| {
            move |ctx: &Ctx| {
                let base = regions_ref[pid];
                for i in 0..steps_per {
                    ctx.local_step();
                    // Record via an uncounted poke so recording does not
                    // perturb the tick stream under test.
                    ctx.heap().poke(base.off(i as u32), ctx.now());
                }
            }
        });
        report.assert_clean();
        (0..nprocs)
            .map(|pid| (0..steps_per).map(|i| heap.peek(regions[pid].off(i as u32))).collect())
            .collect()
    }

    #[test]
    fn leased_now_is_strictly_monotonic_per_process_under_8_threads() {
        let ticks = record_ticks(RealConfig::fast(), 8, 2000);
        for (pid, ts) in ticks.iter().enumerate() {
            for w in ts.windows(2) {
                assert!(w[0] < w[1], "pid {pid}: now() went {} -> {}", w[0], w[1]);
            }
        }
    }

    #[test]
    fn leased_timestamps_are_globally_unique_and_block_aligned() {
        let block = ClockMode::DEFAULT_LEASE;
        let ticks = record_ticks(RealConfig::fast(), 4, 1000);
        // Global uniqueness: leases are disjoint blocks of the shared
        // counter, so no timestamp may ever repeat across threads.
        let mut all: Vec<u64> = ticks.iter().flatten().copied().collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "duplicate timestamps across leases");
        // Lease-boundary structure: within one process, consecutive
        // timestamps either increment by one (same lease) or jump to a
        // fresh block-aligned base (new lease).
        for (pid, ts) in ticks.iter().enumerate() {
            assert_eq!(ts[0] % block, 0, "pid {pid}: first lease not block-aligned");
            for w in ts.windows(2) {
                let same_lease = w[1] == w[0] + 1;
                let new_lease = w[1] % block == 0 && w[1] > w[0];
                assert!(
                    same_lease || new_lease,
                    "pid {pid}: tick {} -> {} is neither a local tick nor a lease claim",
                    w[0],
                    w[1]
                );
            }
        }
    }

    #[test]
    fn precise_mode_reproduces_exact_per_step_timestamps() {
        // Regression for the pre-lease behavior: in `ClockMode::Precise`
        // the timestamps of all processes form exactly 0..total_steps, and
        // a solo process sees the consecutive sequence 0, 1, 2, ...
        let solo = record_ticks(RealConfig::precise(), 1, 500);
        assert_eq!(solo[0], (0..500).collect::<Vec<u64>>());

        let ticks = record_ticks(RealConfig::precise(), 4, 500);
        let mut all: Vec<u64> = ticks.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..2000).collect::<Vec<u64>>(), "precise ticks are a permutation of 0..N");
    }
}
