//! The deterministic asynchronous-shared-memory simulator.
//!
//! [`Sim`] executes a set of process bodies under an oblivious
//! [`Schedule`](crate::Schedule), granting shared-memory steps one at a time.
//! Executions are bit-for-bit reproducible given the same (schedule,
//! workload) seeds, which makes adversarial executions replayable and lets
//! property tests shrink failing interleavings.
//!
//! # Phases
//!
//! 1. **Scheduled phase**: steps are granted according to the schedule until
//!    either all processes finish or `max_steps` slots have elapsed.
//! 2. **Drain phase**: if processes remain, the driver sets the cooperative
//!    stop flag and round-robins grants so that processes can finish their
//!    current bounded attempt and observe the flag. For wait-free algorithms
//!    this always terminates quickly; a drain that exceeds its cap is
//!    evidence of unbounded blocking (e.g. a baseline spinning on a crashed
//!    lock holder), which the simulator resolves by *poisoning* the stuck
//!    processes — they unwind and are reported in
//!    [`SimReport::poisoned`] rather than hanging the host.
//!
//! # The player adversary
//!
//! A [`Controller`] is invoked after every granted step with read access to
//! the quiesced heap — it sees the full history, exactly the paper's
//! *adaptive player adversary* — and communicates with processes through
//! per-process mailboxes, polled by processes as gated steps.

use crate::ctx::{ClockMode, Command, Ctx, Mailbox, OrderTier};
use crate::gate::{Gate, GrantOutcome, PoisonToken};
use crate::heap::Heap;
use crate::history::{Event, History};
use crate::schedule::Schedule;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64};

/// Handle for sending commands to processes, passed to the [`Controller`].
pub struct Mailboxes<'a> {
    boxes: &'a [Mailbox],
}

impl Mailboxes<'_> {
    /// Enqueues a command for process `pid`.
    pub fn send(&self, pid: usize, cmd: Command) {
        self.boxes[pid].lock().push_back(cmd);
    }

    /// Number of processes.
    pub fn len(&self) -> usize {
        self.boxes.len()
    }

    /// Whether there are no processes.
    pub fn is_empty(&self) -> bool {
        self.boxes.is_empty()
    }

    /// Number of commands currently queued for `pid` (not yet polled).
    pub fn queued(&self, pid: usize) -> usize {
        self.boxes[pid].lock().len()
    }
}

/// The adaptive player adversary hook: observes the quiesced heap after
/// every step and may feed commands to processes.
pub trait Controller: Send {
    /// Called after the step at time `t` completes. `heap` is quiescent (no
    /// operation in flight).
    fn on_step(&mut self, t: u64, heap: &Heap, mail: &Mailboxes<'_>);
}

/// A controller that does nothing (pure workload-driven runs).
#[derive(Debug, Default, Clone)]
pub struct NoController;

impl Controller for NoController {
    fn on_step(&mut self, _t: u64, _heap: &Heap, _mail: &Mailboxes<'_>) {}
}

/// Result of a simulated execution.
#[derive(Debug)]
pub struct SimReport {
    /// True if every process finished within the scheduled phase.
    pub completed: bool,
    /// Steps actually granted and executed in the scheduled phase.
    pub granted: u64,
    /// Schedule slots wasted (process finished, stalled, or `None` slots).
    pub wasted: u64,
    /// Steps granted during the drain phase.
    pub drain_steps: u64,
    /// Per-process own-step counts.
    pub steps: Vec<u64>,
    /// Processes that had to be poisoned because they did not terminate
    /// within the drain cap (evidence of unbounded blocking).
    pub poisoned: Vec<usize>,
    /// Genuine panics caught in process bodies: `(pid, message)`.
    pub panics: Vec<(usize, String)>,
    /// The recorded history (all processes' events merged).
    pub history: History,
}

impl SimReport {
    /// Asserts the run was clean: no poisoned processes, no panics.
    ///
    /// # Panics
    /// Panics with diagnostics if any process was poisoned or panicked.
    pub fn assert_clean(&self) {
        assert!(
            self.poisoned.is_empty(),
            "processes failed to terminate (wait-freedom violation?): {:?}",
            self.poisoned
        );
        assert!(self.panics.is_empty(), "process panics: {:?}", self.panics);
    }
}

type Body<'a> = Box<dyn FnOnce(&Ctx<'_>) + Send + 'a>;

/// Builder for a simulated execution.
pub struct SimBuilder<'h, 'a> {
    heap: &'h Heap,
    nprocs: usize,
    seed: u64,
    schedule: Box<dyn Schedule + 'a>,
    controller: Box<dyn Controller + 'a>,
    max_steps: u64,
    drain_cap: u64,
    bodies: Vec<Body<'a>>,
}

impl<'h: 'a, 'a> SimBuilder<'h, 'a> {
    /// Starts building a simulation of `nprocs` processes over `heap`.
    pub fn new(heap: &'h Heap, nprocs: usize) -> SimBuilder<'h, 'a> {
        assert!(nprocs > 0);
        SimBuilder {
            heap,
            nprocs,
            seed: 0,
            schedule: Box::new(crate::schedule::RoundRobin::new(nprocs)),
            controller: Box::new(NoController),
            max_steps: 1_000_000,
            drain_cap: 50_000_000,
            bodies: Vec::new(),
        }
    }

    /// Sets the workload seed (drives per-process RNG streams).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the oblivious schedule (default: round-robin).
    pub fn schedule(mut self, s: impl Schedule + 'a) -> Self {
        self.schedule = Box::new(s);
        self
    }

    /// Sets the oblivious schedule from a boxed trait object (for callers
    /// that choose the schedule family at run time).
    pub fn schedule_box(mut self, s: Box<dyn Schedule + 'a>) -> Self {
        self.schedule = s;
        self
    }

    /// Sets the player-adversary controller (default: none).
    pub fn controller(mut self, c: impl Controller + 'a) -> Self {
        self.controller = Box::new(c);
        self
    }

    /// Sets the scheduled-phase length in schedule slots (default 10^6).
    pub fn max_steps(mut self, n: u64) -> Self {
        self.max_steps = n;
        self
    }

    /// Sets the drain-phase cap in grants (default 5*10^7).
    pub fn drain_cap(mut self, n: u64) -> Self {
        self.drain_cap = n;
        self
    }

    /// Adds one process body (processes get pids in insertion order).
    pub fn spawn(mut self, body: impl FnOnce(&Ctx<'_>) + Send + 'a) -> Self {
        assert!(self.bodies.len() < self.nprocs, "more bodies than processes");
        self.bodies.push(Box::new(body));
        self
    }

    /// Adds a body for every process, built from its pid.
    pub fn spawn_all<F, G>(mut self, mut make: F) -> Self
    where
        F: FnMut(usize) -> G,
        G: FnOnce(&Ctx<'_>) + Send + 'a,
    {
        while self.bodies.len() < self.nprocs {
            let pid = self.bodies.len();
            self.bodies.push(Box::new(make(pid)));
        }
        self
    }

    /// Runs the simulation to completion and returns the report.
    ///
    /// # Panics
    /// Panics if fewer bodies than processes were provided.
    pub fn run(self) -> SimReport {
        assert_eq!(self.bodies.len(), self.nprocs, "every process needs a body");
        let SimBuilder { heap, nprocs, seed, mut schedule, mut controller, max_steps, drain_cap, bodies } =
            self;

        let gates: Vec<Gate> = (0..nprocs).map(|_| Gate::new()).collect();
        let mailboxes: Vec<Mailbox> = (0..nprocs).map(|_| Mutex::new(VecDeque::new())).collect();
        let clock = AtomicU64::new(0);
        let stop = AtomicBool::new(false);
        let step_counts: Vec<Mutex<u64>> = (0..nprocs).map(|_| Mutex::new(0)).collect();
        let event_slots: Vec<Mutex<Vec<Event>>> = (0..nprocs).map(|_| Mutex::new(Vec::new())).collect();
        let panic_slots: Vec<Mutex<Option<String>>> = (0..nprocs).map(|_| Mutex::new(None)).collect();

        let mut granted = 0u64;
        let mut wasted = 0u64;
        let mut drain_steps = 0u64;
        let mut completed = false;
        let mut poisoned: Vec<usize> = Vec::new();

        std::thread::scope(|scope| {
            for (pid, body) in bodies.into_iter().enumerate() {
                let gate = &gates[pid];
                let mailbox = &mailboxes[pid];
                let clock = &clock;
                let stop = &stop;
                let steps_out = &step_counts[pid];
                let events_out = &event_slots[pid];
                let panic_out = &panic_slots[pid];
                scope.spawn(move || {
                    // The simulator always runs Precise + SeqCst: its gate
                    // serializes steps anyway, and keeping the strongest
                    // tier means determinism and histories are untouched by
                    // the real driver's hot-path configuration.
                    let ctx = Ctx::new(
                        heap,
                        pid,
                        nprocs,
                        seed,
                        Some(gate),
                        clock,
                        stop,
                        None,
                        Some(mailbox),
                        ClockMode::Precise,
                        OrderTier::SeqCst,
                    );
                    let result = catch_unwind(AssertUnwindSafe(|| body(&ctx)));
                    *steps_out.lock() = ctx.steps();
                    *events_out.lock() = ctx.take_events();
                    if let Err(payload) = result {
                        if !payload.is::<PoisonToken>() {
                            let msg = payload
                                .downcast_ref::<&str>()
                                .map(|s| s.to_string())
                                .or_else(|| payload.downcast_ref::<String>().cloned())
                                .or_else(|| {
                                    payload
                                        .downcast_ref::<crate::heap::HeapExhausted>()
                                        .map(|e| e.to_string())
                                })
                                .unwrap_or_else(|| "non-string panic".to_string());
                            *panic_out.lock() = Some(msg);
                        }
                    }
                    gate.finish();
                });
            }

            // --- scheduled phase ---
            let mail = Mailboxes { boxes: &mailboxes };
            let all_done = |gates: &[Gate]| gates.iter().all(|g| g.is_done());
            let mut t = 0u64;
            while t < max_steps {
                if all_done(&gates) {
                    completed = true;
                    break;
                }
                match schedule.next(t) {
                    Some(pid) if pid < nprocs => match gates[pid].grant(t) {
                        GrantOutcome::Stepped => granted += 1,
                        GrantOutcome::WasDone => wasted += 1,
                    },
                    _ => wasted += 1,
                }
                t += 1;
                controller.on_step(t, heap, &mail);
            }
            if !completed && all_done(&gates) {
                completed = true;
            }

            // --- drain phase ---
            if !completed {
                stop.store(true, std::sync::atomic::Ordering::SeqCst);
                let mut d = 0u64;
                while !all_done(&gates) && d < drain_cap {
                    let pid = (d % nprocs as u64) as usize;
                    if gates[pid].grant(t + d) == GrantOutcome::Stepped {
                        drain_steps += 1;
                    }
                    d += 1;
                }
                if !all_done(&gates) {
                    for (pid, gate) in gates.iter().enumerate() {
                        if !gate.is_done() {
                            poisoned.push(pid);
                            gate.poison_flag();
                        }
                    }
                }
            }
        });

        let steps: Vec<u64> = step_counts.iter().map(|m| *m.lock()).collect();
        let events: Vec<Vec<Event>> = event_slots.iter().map(|m| std::mem::take(&mut *m.lock())).collect();
        let panics: Vec<(usize, String)> = panic_slots
            .iter()
            .enumerate()
            .filter_map(|(pid, m)| m.lock().take().map(|msg| (pid, msg)))
            .collect();

        SimReport {
            completed,
            granted,
            wasted,
            drain_steps,
            steps,
            poisoned,
            panics,
            history: History::from_parts(events),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{FromSeq, RoundRobin, SeededRandom, StallWindow, Stalls};

    #[test]
    fn counter_increments_sum_correctly() {
        let heap = Heap::new(1 << 10);
        let counter = heap.alloc_root(1);
        let report = SimBuilder::new(&heap, 4)
            .schedule(SeededRandom::new(4, 99))
            .max_steps(1_000_000)
            .spawn_all(|_pid| {
                move |ctx: &Ctx| {
                    for _ in 0..50 {
                        loop {
                            let v = ctx.read(counter);
                            if ctx.cas_bool(counter, v, v + 1) {
                                break;
                            }
                        }
                    }
                }
            })
            .run();
        report.assert_clean();
        assert!(report.completed);
        assert_eq!(heap.peek(counter), 200);
    }

    #[test]
    fn executions_are_deterministic() {
        let run = || {
            let heap = Heap::new(1 << 12);
            let cells = heap.alloc_root(8);
            let report = SimBuilder::new(&heap, 3)
                .seed(7)
                .schedule(SeededRandom::new(3, 123))
                .spawn_all(|pid| {
                    move |ctx: &Ctx| {
                        for i in 0..40u64 {
                            let slot = cells.off((ctx.rand_below(8)) as u32);
                            let v = ctx.read(slot);
                            ctx.write(slot, v.wrapping_mul(31).wrapping_add(pid as u64 + i));
                        }
                    }
                })
                .run();
            report.assert_clean();
            (heap.fingerprint(), report.steps)
        };
        let (f1, s1) = run();
        let (f2, s2) = run();
        assert_eq!(f1, f2, "heap fingerprints differ between identical runs");
        assert_eq!(s1, s2, "step counts differ between identical runs");
    }

    #[test]
    fn round_robin_interleaves_exactly() {
        // Two processes each claim 3 log slots with CAS; every slot gets
        // claimed exactly once and each process gets exactly 3.
        let heap = Heap::new(64);
        let log = heap.alloc_root(6);
        let report = SimBuilder::new(&heap, 2)
            .schedule(RoundRobin::new(2))
            .spawn_all(|pid| {
                move |ctx: &Ctx| {
                    let mut claimed = 0;
                    let mut i = 0u32;
                    while claimed < 3 {
                        if ctx.cas_bool(log.off(i), 0, pid as u64 + 1) {
                            claimed += 1;
                        }
                        i += 1;
                    }
                }
            })
            .run();
        report.assert_clean();
        assert!(report.completed);
        let written: Vec<u64> = (0..6).map(|i| heap.peek(log.off(i))).collect();
        assert_eq!(written.iter().filter(|&&v| v == 1).count(), 3);
        assert_eq!(written.iter().filter(|&&v| v == 2).count(), 3);
    }

    #[test]
    fn stalled_process_gets_no_steps_but_drain_finishes_it() {
        let heap = Heap::new(64);
        let a = heap.alloc_root(2);
        let report = SimBuilder::new(&heap, 2)
            .schedule(Stalls::new(RoundRobin::new(2), vec![StallWindow::crash(1, 0)]))
            .max_steps(100)
            .spawn(move |ctx: &Ctx| ctx.write(a, 1))
            .spawn(move |ctx: &Ctx| ctx.write(a.off(1), 1))
            .run();
        report.assert_clean();
        // Process 1 ran only in the drain phase.
        assert!(report.drain_steps > 0);
        assert_eq!(heap.peek(a.off(1)), 1);
    }

    #[test]
    fn genuine_panic_is_caught_and_reported() {
        let heap = Heap::new(64);
        let report = SimBuilder::new(&heap, 2)
            .max_steps(100)
            .spawn(|ctx: &Ctx| {
                ctx.local_step();
                panic!("boom");
            })
            .spawn(|ctx: &Ctx| ctx.local_step())
            .run();
        assert_eq!(report.panics.len(), 1);
        assert_eq!(report.panics[0].0, 0);
        assert!(report.panics[0].1.contains("boom"));
    }

    #[test]
    fn nonterminating_process_is_poisoned_not_hung() {
        let heap = Heap::new(64);
        let cell = heap.alloc_root(1);
        let report = SimBuilder::new(&heap, 1)
            .max_steps(100)
            .drain_cap(1000)
            .spawn(move |ctx: &Ctx| {
                // Spin forever on a value that never arrives, ignoring stop:
                // models a blocking algorithm waiting on a crashed holder.
                while ctx.read(cell) == 0 {}
            })
            .run();
        assert_eq!(report.poisoned, vec![0]);
        assert!(report.panics.is_empty(), "poison must not look like a real panic");
    }

    #[test]
    fn controller_commands_reach_processes() {
        struct Starter;
        impl Controller for Starter {
            fn on_step(&mut self, t: u64, _heap: &Heap, mail: &Mailboxes<'_>) {
                if t == 5 {
                    mail.send(0, vec![42].into_boxed_slice());
                }
            }
        }
        let heap = Heap::new(64);
        let out = heap.alloc_root(1);
        let report = SimBuilder::new(&heap, 1)
            .schedule(RoundRobin::new(1))
            .controller(Starter)
            .max_steps(100)
            .spawn(move |ctx: &Ctx| loop {
                if let Some(cmd) = ctx.poll_mailbox() {
                    ctx.write(out, cmd[0]);
                    break;
                }
            })
            .run();
        report.assert_clean();
        assert_eq!(heap.peek(out), 42);
    }

    #[test]
    fn history_events_are_collected_across_processes() {
        let heap = Heap::new(64);
        let report = SimBuilder::new(&heap, 2)
            .schedule(FromSeq::new(vec![0, 0, 0, 1, 1, 1], true))
            .max_steps(50)
            .spawn_all(|pid| {
                move |ctx: &Ctx| {
                    ctx.invoke(1, pid as u64, 0);
                    ctx.local_step();
                    ctx.respond(pid as u64, vec![]);
                }
            })
            .run();
        report.assert_clean();
        assert_eq!(report.history.len(), 2);
        for e in &report.history.events {
            assert!(e.invoke < e.response);
            assert_eq!(e.result, e.pid as u64);
        }
    }
}
