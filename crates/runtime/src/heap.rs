//! The shared word heap: a fixed arena of `u64` words with a wait-free bump
//! allocator.
//!
//! All shared data structures (lock descriptors, active-set slots, snapshot
//! cons cells, idempotence logs) are laid out as small records of words and
//! addressed by [`Addr`] handles (word indices). This representation lets an
//! arbitrary number of processes concurrently read and CAS the same records
//! — the helping pattern at the heart of the paper — without reference
//! counting or epoch reclamation. Memory is reclaimed wholesale at quiescent
//! points with [`Heap::reset_to`] (see `DESIGN.md` §1.1).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Index of a word in a [`Heap`]. `Addr(0)` is the reserved null address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Addr(pub u32);

/// The reserved null address. Word 0 of every heap is never allocated.
pub const NULL: Addr = Addr(0);

impl Addr {
    /// Address of the word `off` places after `self`.
    ///
    /// # Panics
    /// Panics if the offset overflows 32-bit addressing — a corrupted
    /// record (e.g. a bad snapshot offset) must fail loudly here instead
    /// of silently wrapping into the reserved null word 0.
    #[inline]
    pub fn off(self, off: u32) -> Addr {
        match self.0.checked_add(off) {
            Some(a) => Addr(a),
            None => panic!("Addr::off overflow: base {:#x} + offset {:#x} exceeds u32 addressing", self.0, off),
        }
    }

    /// Whether this is the null address.
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Packs the address into a `u64` value (for storing pointers in cells).
    #[inline]
    pub fn to_word(self) -> u64 {
        self.0 as u64
    }

    /// Recovers an address previously packed with [`Addr::to_word`].
    ///
    /// # Panics
    /// Panics if the word does not fit in 32 bits (i.e. is not a packed
    /// address).
    #[inline]
    pub fn from_word(w: u64) -> Addr {
        assert!(w <= u32::MAX as u64, "word {w:#x} is not a packed Addr");
        Addr(w as u32)
    }
}

/// A fixed-capacity arena of atomic `u64` words with a bump allocator.
///
/// The allocator is wait-free (`fetch_add`), satisfying the model's
/// requirement that every instruction of a tryLock attempt is bounded.
/// Allocation never reuses memory during a run; the harness reclaims
/// transient allocations at quiescent points via [`Heap::mark`] /
/// [`Heap::reset_to`].
pub struct Heap {
    words: Box<[AtomicU64]>,
    bump: AtomicUsize,
}

impl std::fmt::Debug for Heap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Heap")
            .field("capacity", &self.words.len())
            .field("used", &self.bump.load(Ordering::Relaxed))
            .finish()
    }
}

impl Heap {
    /// Creates a heap with `capacity` words (all zero). Word 0 is reserved
    /// as the null address.
    ///
    /// # Panics
    /// Panics if `capacity` is 0 or exceeds `u32::MAX` words.
    pub fn new(capacity: usize) -> Heap {
        assert!(capacity > 0, "heap capacity must be positive");
        assert!(
            capacity <= u32::MAX as usize,
            "heap capacity must fit 32-bit addressing"
        );
        let mut v = Vec::with_capacity(capacity);
        v.resize_with(capacity, || AtomicU64::new(0));
        Heap {
            words: v.into_boxed_slice(),
            bump: AtomicUsize::new(1), // word 0 reserved for NULL
        }
    }

    /// Number of words in the heap.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.words.len()
    }

    /// Number of words currently allocated (including the reserved word 0).
    #[inline]
    pub fn used(&self) -> usize {
        self.bump.load(Ordering::SeqCst)
    }

    /// Allocates `n` zeroed... words from the bump allocator, returning the
    /// address of the first. Wait-free.
    ///
    /// The returned words are zero unless they were recycled by
    /// [`Heap::reset_to`] without re-zeroing (the harness always re-zeroes).
    ///
    /// # Panics
    /// Panics when the heap is exhausted; experiments size heaps generously
    /// and reset between batches.
    #[inline]
    pub fn alloc_root(&self, n: usize) -> Addr {
        // Relaxed: disjointness comes from RMW atomicity alone, and records
        // are published through release CAS/stores, never through the bump
        // pointer.
        let base = self.bump.fetch_add(n, Ordering::Relaxed);
        assert!(
            base + n <= self.words.len(),
            "heap exhausted: capacity {} words, requested {} at {}",
            self.words.len(),
            n,
            base
        );
        Addr(base as u32)
    }

    /// Reads a word without counting a step (harness/controller use only;
    /// algorithm code must go through [`crate::Ctx::read`]).
    #[inline]
    pub fn peek(&self, a: Addr) -> u64 {
        self.words[a.0 as usize].load(Ordering::SeqCst)
    }

    /// Writes a word without counting a step (harness setup only).
    #[inline]
    pub fn poke(&self, a: Addr, v: u64) {
        self.words[a.0 as usize].store(v, Ordering::SeqCst);
    }

    /// Raw CAS without counting a step (harness setup only). Returns the
    /// previous value; the CAS succeeded iff it equals `old`.
    #[inline]
    pub fn cas_raw(&self, a: Addr, old: u64, new: u64) -> u64 {
        match self.words[a.0 as usize].compare_exchange(
            old,
            new,
            Ordering::SeqCst,
            Ordering::SeqCst,
        ) {
            Ok(prev) => prev,
            Err(prev) => prev,
        }
    }

    // ----- ordering-parameterized accessors (used by `Ctx`'s tiers) -----

    /// Atomic load with an explicit ordering (step accounting is the
    /// caller's responsibility — this is the `Ctx` backend).
    #[inline]
    pub(crate) fn load(&self, a: Addr, ord: Ordering) -> u64 {
        self.words[a.0 as usize].load(ord)
    }

    /// Atomic store with an explicit ordering.
    #[inline]
    pub(crate) fn store(&self, a: Addr, v: u64, ord: Ordering) {
        self.words[a.0 as usize].store(v, ord);
    }

    /// Atomic CAS with explicit success/failure orderings; returns the
    /// previous value (success iff it equals `old`).
    #[inline]
    pub(crate) fn cas_ord(&self, a: Addr, old: u64, new: u64, ok: Ordering, fail: Ordering) -> u64 {
        match self.words[a.0 as usize].compare_exchange(old, new, ok, fail) {
            Ok(prev) => prev,
            Err(prev) => prev,
        }
    }

    /// Returns the current allocation watermark, for later [`Heap::reset_to`].
    pub fn mark(&self) -> usize {
        self.bump.load(Ordering::SeqCst)
    }

    /// Rolls the allocator back to `mark` and zeroes every word allocated
    /// after it.
    ///
    /// # Safety (logical)
    /// This is only sound at *quiescent points*: no process may be running,
    /// and no live structure below `mark` may still point above `mark`
    /// (callers such as the active set re-initialize their snapshot pointers
    /// after a reset). The `&mut self` receiver enforces exclusivity.
    pub fn reset_to(&mut self, mark: usize) {
        let used = *self.bump.get_mut();
        assert!(mark <= used, "reset mark {mark} beyond used {used}");
        for w in &mut self.words[mark..used] {
            *w.get_mut() = 0;
        }
        *self.bump.get_mut() = mark;
    }

    /// Like [`Heap::reset_to`], but callable through a shared reference —
    /// the form the epoch protocol needs, where the resetting thread is one
    /// of the worker threads and cannot hold `&mut Heap`.
    ///
    /// # Safety (logical)
    /// Only sound at *quiescent points*: every other thread must be parked
    /// at an epoch barrier (see [`crate::epoch::EpochSync`]) whose release
    /// happens-after this call returns. The barrier's lock provides the
    /// happens-before edges in both directions: the workers' final writes of
    /// the old epoch are visible to the resetter (they arrived through the
    /// barrier's mutex before it ran), and the zeroing below is visible to
    /// every worker the barrier releases afterwards. Violating quiescence
    /// (any thread still running algorithm code) corrupts live records.
    pub fn reset_to_quiescent(&self, mark: usize) {
        let used = self.bump.load(Ordering::SeqCst);
        assert!(mark <= used, "reset mark {mark} beyond used {used}");
        for w in &self.words[mark..used] {
            // Relaxed would suffice (the barrier publishes the zeroes), but
            // this is a cold path — keep the conservative ordering.
            w.store(0, Ordering::SeqCst);
        }
        self.bump.store(mark, Ordering::SeqCst);
    }

    /// A 64-bit FNV-1a hash of the allocated portion of the heap. Used by
    /// tests to assert that simulated executions are deterministic.
    pub fn fingerprint(&self) -> u64 {
        let used = self.used();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for w in &self.words[..used] {
            let v = w.load(Ordering::SeqCst);
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_disjoint_and_null_reserved() {
        let heap = Heap::new(64);
        let a = heap.alloc_root(4);
        let b = heap.alloc_root(4);
        assert!(!a.is_null());
        assert_eq!(a.0, 1, "first allocation starts after the null word");
        assert_eq!(b.0, a.0 + 4);
    }

    #[test]
    fn peek_poke_roundtrip() {
        let heap = Heap::new(16);
        let a = heap.alloc_root(1);
        heap.poke(a, 0xdead_beef);
        assert_eq!(heap.peek(a), 0xdead_beef);
    }

    #[test]
    fn cas_raw_reports_previous_value() {
        let heap = Heap::new(16);
        let a = heap.alloc_root(1);
        heap.poke(a, 7);
        assert_eq!(heap.cas_raw(a, 7, 9), 7);
        assert_eq!(heap.peek(a), 9);
        assert_eq!(heap.cas_raw(a, 7, 11), 9, "failed CAS returns actual");
        assert_eq!(heap.peek(a), 9);
    }

    #[test]
    fn reset_zeroes_transient_region_only() {
        let mut heap = Heap::new(64);
        let root = heap.alloc_root(1);
        heap.poke(root, 42);
        let mark = heap.mark();
        let t = heap.alloc_root(2);
        heap.poke(t, 5);
        heap.poke(t.off(1), 6);
        heap.reset_to(mark);
        assert_eq!(heap.peek(root), 42, "root survives reset");
        assert_eq!(heap.used(), mark);
        let t2 = heap.alloc_root(2);
        assert_eq!(t2, t, "bump rolled back");
        assert_eq!(heap.peek(t2), 0, "transient region re-zeroed");
        assert_eq!(heap.peek(t2.off(1)), 0);
    }

    #[test]
    fn quiescent_reset_matches_exclusive_reset() {
        let heap = Heap::new(64);
        let root = heap.alloc_root(1);
        heap.poke(root, 7);
        let mark = heap.mark();
        let t = heap.alloc_root(3);
        heap.poke(t.off(2), 9);
        heap.reset_to_quiescent(mark);
        assert_eq!(heap.used(), mark);
        assert_eq!(heap.peek(root), 7, "pre-mark words survive");
        let t2 = heap.alloc_root(3);
        assert_eq!(t2, t, "bump rolled back");
        assert_eq!(heap.peek(t2.off(2)), 0, "transient region re-zeroed");
    }

    #[test]
    fn fingerprint_changes_with_content() {
        let heap = Heap::new(16);
        let a = heap.alloc_root(1);
        let f0 = heap.fingerprint();
        heap.poke(a, 1);
        assert_ne!(heap.fingerprint(), f0);
    }

    #[test]
    #[should_panic(expected = "heap exhausted")]
    fn alloc_past_capacity_panics() {
        let heap = Heap::new(4);
        heap.alloc_root(16);
    }

    #[test]
    #[should_panic(expected = "Addr::off overflow")]
    fn addr_off_overflow_panics_instead_of_wrapping() {
        let _ = Addr(u32::MAX - 2).off(8);
    }

    #[test]
    fn addr_word_packing_roundtrip() {
        let a = Addr(12345);
        assert_eq!(Addr::from_word(a.to_word()), a);
        assert!(NULL.is_null());
        assert!(!Addr(1).is_null());
    }
}
