//! The shared word heap: a fixed arena of `u64` words with a sharded,
//! wait-free bump allocator.
//!
//! All shared data structures (lock descriptors, active-set slots, snapshot
//! cons cells, idempotence logs) are laid out as small records of words and
//! addressed by [`Addr`] handles (word indices). This representation lets an
//! arbitrary number of processes concurrently read and CAS the same records
//! — the helping pattern at the heart of the paper — without reference
//! counting or epoch reclamation. Memory is reclaimed wholesale at quiescent
//! points with [`Heap::reset_to`] (see `DESIGN.md` §1.1).
//!
//! # Allocation lanes (DESIGN.md §1.1.2)
//!
//! The historical allocator was a single global `fetch_add` cursor: one
//! shared hot word that every cons cell, descriptor and idempotence-log
//! record of every thread serialized through — exactly the steady-state
//! coherence bottleneck the long-execution literature predicts. Under
//! [`AllocMode::Laned`] (the default) the arena is instead carved into
//! cache-line-aligned **slabs**; each process id owns a private **lane**
//! and bumps a plain, uncontended cursor inside its current slab, touching
//! the shared slab cursor only once per slab (or once per multi-slab grab
//! for records larger than a slab). Records allocated by different lanes
//! therefore never share a cache line, and the contended RMW amortizes
//! from once-per-record to once-per-slab. [`AllocMode::Global`] keeps the
//! historical single-cursor behavior for A/B comparison (experiment E13).
//!
//! A small **emergency reserve** at the top of the arena lets an attempt
//! that exhausts the slab region finish cleanly: [`crate::Ctx::alloc`]
//! falls back to the reserve and latches the context's `heap_low` flag so
//! the caller can end its batch at the next epoch boundary instead of
//! aborting mid-attempt (see [`HeapExhausted`] and `retry.rs`).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Index of a word in a [`Heap`]. `Addr(0)` is the reserved null address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Addr(pub u32);

/// The reserved null address. Word 0 of every heap is never allocated.
pub const NULL: Addr = Addr(0);

impl Addr {
    /// Address of the word `off` places after `self`.
    ///
    /// # Panics
    /// Panics if the offset overflows 32-bit addressing — a corrupted
    /// record (e.g. a bad snapshot offset) must fail loudly here instead
    /// of silently wrapping into the reserved null word 0.
    #[inline]
    pub fn off(self, off: u32) -> Addr {
        match self.0.checked_add(off) {
            Some(a) => Addr(a),
            None => panic!("Addr::off overflow: base {:#x} + offset {:#x} exceeds u32 addressing", self.0, off),
        }
    }

    /// Whether this is the null address.
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Packs the address into a `u64` value (for storing pointers in cells).
    #[inline]
    pub fn to_word(self) -> u64 {
        self.0 as u64
    }

    /// Recovers an address previously packed with [`Addr::to_word`].
    ///
    /// # Panics
    /// Panics if the word does not fit in 32 bits (i.e. is not a packed
    /// address).
    #[inline]
    pub fn from_word(w: u64) -> Addr {
        assert!(w <= u32::MAX as u64, "word {w:#x} is not a packed Addr");
        Addr(w as u32)
    }
}

/// Words per hardware cache line (64 bytes of `u64`s).
pub const LINE_WORDS: usize = 8;

/// One cache line of arena words; the explicit alignment is what makes
/// slab boundaries (multiples of [`LINE_WORDS`]) genuine cache-line
/// boundaries, so lanes never false-share.
#[repr(C, align(64))]
struct Line([AtomicU64; LINE_WORDS]);

impl Line {
    fn zeroed() -> Line {
        Line([const { AtomicU64::new(0) }; LINE_WORDS])
    }
}

/// Per-lane allocation state, padded to its own cache line so one lane's
/// bump never invalidates another's.
#[repr(C, align(64))]
#[derive(Debug)]
struct Lane {
    /// Next free word inside the lane's current slab. Only the owning
    /// process advances it (Relaxed suffices: single-writer, and records
    /// are published through release CAS/stores, never through cursors).
    cur: AtomicUsize,
    /// One past the last word of the current slab (0 = no slab yet).
    end: AtomicUsize,
    /// Words handed out by this lane since the last rewind (the per-lane
    /// usage the epoch high-water accounting reads at quiescence).
    used: AtomicUsize,
}

impl Lane {
    fn empty() -> Lane {
        Lane { cur: AtomicUsize::new(0), end: AtomicUsize::new(0), used: AtomicUsize::new(0) }
    }
}

/// How a [`Heap`] hands out words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocMode {
    /// The historical allocator: one shared bump cursor, one `fetch_add`
    /// per record. Kept for A/B comparison (E13's `global-vs-laned` cell).
    Global,
    /// Sharded per-process lanes over cache-line-aligned slabs (see the
    /// module docs). `0` for either field means "auto": [`DEFAULT_LANES`]
    /// lanes, and a slab size scaled to the arena (at most
    /// [`MAX_SLAB_WORDS`], at least one cache line).
    Laned {
        /// Number of process lanes (pids `0..lanes`); a root lane for
        /// uncounted setup allocations is added on top.
        lanes: usize,
        /// Slab size in words (rounded up to a cache-line multiple).
        slab_words: usize,
    },
}

impl AllocMode {
    /// The default sharded mode with auto-sized lanes and slabs.
    pub fn laned() -> AllocMode {
        AllocMode::Laned { lanes: 0, slab_words: 0 }
    }

    /// Short label for tables and JSON ("global" / "laned").
    pub fn label(&self) -> &'static str {
        match self {
            AllocMode::Global => "global",
            AllocMode::Laned { .. } => "laned",
        }
    }
}

impl Default for AllocMode {
    fn default() -> Self {
        AllocMode::laned()
    }
}

/// How setup-time shared records (lock words, active-set slot arrays) are
/// placed relative to cache lines. Orthogonal to [`AllocMode`]: the
/// allocator shards *who allocates*, placement shards *what neighbors
/// what*.
///
/// Placement is pure address arithmetic — it changes which words a record
/// occupies, never the counted step sequence of any operation — so the
/// simulator replays identically under either mode (the E13 A/B contract).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Placement {
    /// The historical layout: records allocated back-to-back, so up to
    /// [`LINE_WORDS`] unrelated hot words share one cache line. Kept for
    /// the E13 packed-vs-padded A/B cell and for tests that pin absolute
    /// addresses.
    Packed,
    /// Cache-line-isolated layout: each hot record (a baseline lock word,
    /// an active-set slot) is strided to own a full 64B line, and record
    /// bases are line-aligned, so operations on disjoint records touch
    /// disjoint lines.
    #[default]
    Padded,
}

impl Placement {
    /// Short label for tables and JSON ("packed" / "padded").
    pub fn label(&self) -> &'static str {
        match self {
            Placement::Packed => "packed",
            Placement::Padded => "padded",
        }
    }
}

/// Pads and aligns `T` to a cache line so adjacent values in an array (or
/// adjacent stack slots) never false-share. Used for the real-threads
/// driver's shared control words (clock, stop flag, pauser) and per-thread
/// result slots; the heap-resident analogue is [`Placement::Padded`].
#[repr(C, align(64))]
#[derive(Debug, Default)]
pub struct CachePadded<T>(pub T);

/// Default number of process lanes (pids) a laned heap supports. Far above
/// any experiment's thread count; the per-lane state costs one cache line
/// each, so the headroom is ~4 KiB.
pub const DEFAULT_LANES: usize = 64;

/// Largest auto-selected slab: 512 words = 4 KiB.
pub const MAX_SLAB_WORDS: usize = 512;

/// Recoverable allocation failure: the slab region (or, in global mode,
/// the bump region) is exhausted. Callers on the attempt path receive this
/// through [`Heap::alloc`] / the [`crate::Ctx::heap_low`] latch and give
/// up cleanly at the next epoch boundary, where a quiescent
/// [`Heap::reset_to_quiescent`] rewinds every lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeapExhausted {
    /// Lane that failed (lane count = root lane, `usize::MAX` = global).
    pub lane: usize,
    /// Words requested by the failing allocation.
    pub requested: usize,
}

impl std::fmt::Display for HeapExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "heap exhausted: lane {} could not allocate {} words", self.lane, self.requested)
    }
}

impl std::error::Error for HeapExhausted {}

/// Per-lane rewind point captured by [`Heap::mark`]: the lane's cursor,
/// slab end and usage counter at the mark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LaneMark {
    cur: usize,
    end: usize,
    used: usize,
}

/// A full-allocator rewind point: the shared slab (or global bump) cursor,
/// the reserve cursor, and every lane's state. Captured by [`Heap::mark`]
/// and consumed by [`Heap::reset_to`] / [`Heap::reset_to_quiescent`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeapMark {
    cursor: usize,
    reserve: usize,
    lanes: Vec<LaneMark>,
}

/// A fixed-capacity arena of atomic `u64` words with a sharded bump
/// allocator (see the module docs).
///
/// The allocator is wait-free in both modes (plain bump or `fetch_add`),
/// satisfying the model's requirement that every instruction of a tryLock
/// attempt is bounded. Allocation never reuses memory during an epoch; the
/// harness reclaims transient allocations at quiescent points via
/// [`Heap::mark`] / [`Heap::reset_to`].
pub struct Heap {
    lines: Box<[Line]>,
    /// Usable words (word indices `0..capacity`; `capacity` may be below
    /// the line-rounded storage).
    capacity: usize,
    /// Slab size in words (cache-line multiple; meaningless in global
    /// mode).
    slab_words: usize,
    /// First word of the emergency reserve region (== `capacity` when the
    /// arena is too small to carry a reserve).
    reserve_base: usize,
    /// Laned: next unassigned slab's first word (always a slab multiple).
    /// Global: the classic bump cursor (starts at 1; word 0 is NULL).
    /// The only cross-lane contended word, touched once per slab.
    cursor: AtomicUsize,
    /// Next free word of the emergency reserve.
    reserve: AtomicUsize,
    /// Per-pid lanes plus one trailing root lane (empty in global mode).
    lanes: Box<[Lane]>,
    global: bool,
}

impl std::fmt::Debug for Heap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Heap")
            .field("capacity", &self.capacity)
            .field("mode", if self.global { &"global" } else { &"laned" })
            .field("slab_words", &self.slab_words)
            .field("used", &self.used())
            .finish()
    }
}

impl Heap {
    /// Creates a laned heap with `capacity` words (all zero) and auto-sized
    /// lanes/slabs. Word 0 is reserved as the null address.
    ///
    /// # Panics
    /// Panics if `capacity` is 0 or exceeds `u32::MAX` words.
    pub fn new(capacity: usize) -> Heap {
        Heap::with_mode(capacity, AllocMode::laned())
    }

    /// Creates a heap with an explicit [`AllocMode`].
    ///
    /// # Panics
    /// Panics if `capacity` is 0 or exceeds `u32::MAX` words.
    pub fn with_mode(capacity: usize, mode: AllocMode) -> Heap {
        assert!(capacity > 0, "heap capacity must be positive");
        assert!(
            capacity <= u32::MAX as usize,
            "heap capacity must fit 32-bit addressing"
        );
        let nlines = capacity.div_ceil(LINE_WORDS);
        let mut v = Vec::with_capacity(nlines);
        v.resize_with(nlines, Line::zeroed);
        let lines = v.into_boxed_slice();

        match mode {
            AllocMode::Global => {
                let reserve_base = Self::reserve_base_for(capacity, MAX_SLAB_WORDS.min(capacity));
                Heap {
                    lines,
                    capacity,
                    slab_words: 0,
                    reserve_base,
                    cursor: AtomicUsize::new(1), // word 0 reserved for NULL
                    reserve: AtomicUsize::new(reserve_base),
                    lanes: Box::new([]),
                    global: true,
                }
            }
            AllocMode::Laned { lanes, slab_words } => {
                let nlanes = if lanes == 0 { DEFAULT_LANES } else { lanes };
                let slab = Self::effective_slab(capacity, slab_words);
                let reserve_base = Self::reserve_base_for(capacity, slab);
                let mut lane_vec = Vec::with_capacity(nlanes + 1);
                lane_vec.resize_with(nlanes + 1, Lane::empty);
                let heap = Heap {
                    lines,
                    capacity,
                    slab_words: slab,
                    reserve_base,
                    // Slab 0 is pre-assigned to the root lane below.
                    cursor: AtomicUsize::new(slab.min(reserve_base)),
                    reserve: AtomicUsize::new(reserve_base),
                    lanes: lane_vec.into_boxed_slice(),
                    global: false,
                };
                // The root lane starts inside slab 0, past the NULL word,
                // so the first root allocation is `Addr(1)` as it always
                // was.
                let root = &heap.lanes[nlanes];
                root.cur.store(1, Ordering::Relaxed);
                root.end.store(slab.min(reserve_base), Ordering::Relaxed);
                heap
            }
        }
    }

    /// Auto slab size: scale with the arena (aim for ~64 slabs) but stay
    /// within one cache line and [`MAX_SLAB_WORDS`]; always a cache-line
    /// multiple so slab boundaries are cache-line boundaries.
    fn effective_slab(capacity: usize, requested: usize) -> usize {
        let slab = if requested == 0 {
            (capacity / 64).next_power_of_two().clamp(LINE_WORDS, MAX_SLAB_WORDS)
        } else {
            requested.max(LINE_WORDS)
        };
        slab.div_ceil(LINE_WORDS) * LINE_WORDS
    }

    /// Reserve sizing: up to 8 slabs (capped at an eighth of the arena);
    /// arenas under 32 slabs carry no reserve — they are unit-test sized,
    /// and a hard failure there is a sizing bug worth hearing about.
    fn reserve_base_for(capacity: usize, slab: usize) -> usize {
        if capacity < 32 * slab {
            return capacity;
        }
        let reserve = (capacity / 8).min(8 * slab);
        capacity - reserve
    }

    #[inline]
    fn word(&self, i: usize) -> &AtomicU64 {
        &self.lines[i / LINE_WORDS].0[i % LINE_WORDS]
    }

    /// Number of words in the heap.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The configured slab size in words (0 in global mode).
    #[inline]
    pub fn slab_words(&self) -> usize {
        self.slab_words
    }

    /// The allocation mode label ("global" / "laned").
    pub fn mode_label(&self) -> &'static str {
        if self.global { "global" } else { "laned" }
    }

    /// Number of lanes the allocator accounts (1 in global mode; process
    /// lanes plus the trailing root lane in laned mode).
    pub fn lane_count(&self) -> usize {
        if self.global { 1 } else { self.lanes.len() }
    }

    /// Index of the root lane (uncounted setup allocations).
    pub fn root_lane(&self) -> usize {
        if self.global { 0 } else { self.lanes.len() - 1 }
    }

    /// Words handed out by `lane` since the last rewind. In global mode
    /// lane 0 reports the whole arena's usage.
    pub fn lane_used(&self, lane: usize) -> usize {
        if self.global {
            assert_eq!(lane, 0, "global mode has a single lane");
            self.used()
        } else {
            self.lanes[lane].used.load(Ordering::SeqCst)
        }
    }

    /// Arena footprint in words: every word of every slab handed out (or,
    /// in global mode, the bump watermark) plus the consumed reserve.
    /// Includes per-lane slack, so it is the number that must stay within
    /// [`Heap::capacity`].
    #[inline]
    pub fn used(&self) -> usize {
        let region = self.cursor.load(Ordering::SeqCst).min(self.reserve_base);
        let reserve = self.reserve.load(Ordering::SeqCst).min(self.capacity) - self.reserve_base;
        region + reserve
    }

    /// A conservative lower bound on the words still available to `lane`
    /// without touching the reserve: its current slab's remainder plus the
    /// unassigned slab region.
    pub fn lane_remaining(&self, lane: usize) -> usize {
        let region = self.reserve_base.saturating_sub(self.cursor.load(Ordering::SeqCst));
        if self.global {
            return region;
        }
        let l = &self.lanes[lane];
        let slack = l.end.load(Ordering::Relaxed).saturating_sub(l.cur.load(Ordering::Relaxed));
        region + slack
    }

    /// Allocates `n` zeroed words from `lane`'s private cursor, taking new
    /// slab(s) from the shared slab cursor only on exhaustion. Wait-free:
    /// a plain bump on the hot path, one `fetch_add` per slab handoff.
    ///
    /// In laned mode `lane` must be the calling process's pid (lanes are
    /// single-writer: two threads allocating through the same lane race);
    /// in global mode `lane` is ignored and the shared cursor is used.
    ///
    /// # Errors
    /// [`HeapExhausted`] when the slab region cannot satisfy the request;
    /// the lane is left unchanged so the caller can retry after a quiescent
    /// rewind.
    ///
    /// # Panics
    /// Panics if `n` is zero or `lane` is out of range (laned mode).
    #[inline]
    pub fn alloc(&self, lane: usize, n: usize) -> Result<Addr, HeapExhausted> {
        // Hard assert (not debug): a zero-word allocation would return an
        // address aliasing the lane's next record.
        assert!(n > 0, "zero-word allocation");
        if self.global {
            // Relaxed: disjointness comes from RMW atomicity alone, and
            // records are published through release CAS/stores, never
            // through the bump cursor.
            let base = self.cursor.fetch_add(n, Ordering::Relaxed);
            if base + n > self.reserve_base {
                return Err(HeapExhausted { lane: usize::MAX, requested: n });
            }
            return Ok(Addr(base as u32));
        }
        assert!(
            lane < self.lanes.len(),
            "lane {lane} out of range: this heap has {} process lanes \
             (build it with Heap::with_mode(cap, AllocMode::Laned {{ lanes, .. }}))",
            self.lanes.len() - 1
        );
        let l = &self.lanes[lane];
        let cur = l.cur.load(Ordering::Relaxed);
        let end = l.end.load(Ordering::Relaxed);
        if cur + n <= end {
            // The uncontended hot path: a plain single-writer bump.
            l.cur.store(cur + n, Ordering::Relaxed);
            l.used.store(l.used.load(Ordering::Relaxed) + n, Ordering::Relaxed);
            return Ok(Addr(cur as u32));
        }
        // Slab handoff: abandon the current slab's tail and take enough
        // contiguous slabs for `n` in one shared RMW.
        let take = n.div_ceil(self.slab_words) * self.slab_words;
        let base = self.cursor.fetch_add(take, Ordering::Relaxed);
        if base + n > self.reserve_base {
            // Leave the lane untouched (its old slab tail is still valid)
            // so the epoch boundary can rewind and the lane can go on.
            return Err(HeapExhausted { lane, requested: n });
        }
        l.cur.store(base + n, Ordering::Relaxed);
        l.end.store((base + take).min(self.reserve_base), Ordering::Relaxed);
        l.used.store(l.used.load(Ordering::Relaxed) + n, Ordering::Relaxed);
        Ok(Addr(base as u32))
    }

    /// Allocates `n` words from the emergency reserve (shared `fetch_add`;
    /// cold — only reached when a lane has already failed). This is what
    /// lets an in-flight attempt run to completion after exhaustion so it
    /// is never abandoned in a half-published state; the caller must stop
    /// opening new work until a quiescent rewind (see
    /// [`crate::Ctx::heap_low`]).
    ///
    /// # Panics
    /// Panics (with a [`HeapExhausted`] payload) when the reserve itself
    /// is dry — a genuine sizing bug.
    pub fn alloc_reserve(&self, lane: usize, n: usize) -> Addr {
        let base = self.reserve.fetch_add(n, Ordering::Relaxed);
        if base + n > self.capacity {
            std::panic::panic_any(HeapExhausted { lane, requested: n });
        }
        // Reserve words still bill the requesting lane's usage, so the
        // high-water accounting covers pressure runs too (global mode has
        // no lanes — `used()` already includes the consumed reserve there).
        if let Some(l) = self.lanes.get(lane) {
            l.used.store(l.used.load(Ordering::Relaxed) + n, Ordering::Relaxed);
        }
        Addr(base as u32)
    }

    /// Allocates `n` zeroed words for setup-time roots (harness and epoch
    /// re-rooting; uncounted). Uses the dedicated root lane in laned mode.
    ///
    /// # Panics
    /// Panics when the heap is exhausted; root creation failing is a
    /// sizing bug, not a recoverable condition — experiments size heaps
    /// generously and reset between batches.
    #[inline]
    pub fn alloc_root(&self, n: usize) -> Addr {
        match self.alloc(self.root_lane(), n) {
            Ok(a) => a,
            Err(e) => panic!(
                "heap exhausted: capacity {} words, requested {} for a root ({e})",
                self.capacity, n
            ),
        }
    }

    /// Like [`Heap::alloc_root`], but the returned base is rounded up to a
    /// [`LINE_WORDS`] multiple, i.e. the record starts on a 64B cache-line
    /// boundary (the backing array is itself line-aligned). Over-allocates
    /// at most `LINE_WORDS - 1` words of setup-time slack; fully
    /// deterministic, so sim replays are unaffected by which placement
    /// requested it.
    ///
    /// # Panics
    /// Panics when the heap is exhausted, like [`Heap::alloc_root`].
    pub fn alloc_root_aligned(&self, n: usize) -> Addr {
        let raw = self.alloc_root(n + LINE_WORDS - 1);
        let base = (raw.0 as usize).next_multiple_of(LINE_WORDS);
        Addr(base as u32)
    }

    /// Reads a word without counting a step (harness/controller use only;
    /// algorithm code must go through [`crate::Ctx::read`]).
    #[inline]
    pub fn peek(&self, a: Addr) -> u64 {
        self.word(a.0 as usize).load(Ordering::SeqCst)
    }

    /// Writes a word without counting a step (harness setup only).
    #[inline]
    pub fn poke(&self, a: Addr, v: u64) {
        self.word(a.0 as usize).store(v, Ordering::SeqCst);
    }

    /// Raw CAS without counting a step (harness setup only). Returns the
    /// previous value; the CAS succeeded iff it equals `old`.
    #[inline]
    pub fn cas_raw(&self, a: Addr, old: u64, new: u64) -> u64 {
        match self.word(a.0 as usize).compare_exchange(
            old,
            new,
            Ordering::SeqCst,
            Ordering::SeqCst,
        ) {
            Ok(prev) => prev,
            Err(prev) => prev,
        }
    }

    // ----- ordering-parameterized accessors (used by `Ctx`'s tiers) -----

    /// Atomic load with an explicit ordering (step accounting is the
    /// caller's responsibility — this is the `Ctx` backend).
    #[inline]
    pub(crate) fn load(&self, a: Addr, ord: Ordering) -> u64 {
        self.word(a.0 as usize).load(ord)
    }

    /// Atomic store with an explicit ordering.
    #[inline]
    pub(crate) fn store(&self, a: Addr, v: u64, ord: Ordering) {
        self.word(a.0 as usize).store(v, ord);
    }

    /// Atomic CAS with explicit success/failure orderings; returns the
    /// previous value (success iff it equals `old`).
    #[inline]
    pub(crate) fn cas_ord(&self, a: Addr, old: u64, new: u64, ok: Ordering, fail: Ordering) -> u64 {
        match self.word(a.0 as usize).compare_exchange(old, new, ok, fail) {
            Ok(prev) => prev,
            Err(prev) => prev,
        }
    }

    /// Captures the whole allocator state (shared cursors plus every
    /// lane's position) for a later [`Heap::reset_to`].
    pub fn mark(&self) -> HeapMark {
        HeapMark {
            cursor: self.cursor.load(Ordering::SeqCst),
            reserve: self.reserve.load(Ordering::SeqCst),
            lanes: self
                .lanes
                .iter()
                .map(|l| LaneMark {
                    cur: l.cur.load(Ordering::SeqCst),
                    end: l.end.load(Ordering::SeqCst),
                    used: l.used.load(Ordering::SeqCst),
                })
                .collect(),
        }
    }

    /// Zeroes and rewinds everything allocated after `mark` through a
    /// store-based sweep (shared by the `&mut` and quiescent reset forms;
    /// soundness is the caller's obligation, see [`Heap::reset_to`]).
    fn rewind(&self, mark: &HeapMark) {
        let cursor = self.cursor.load(Ordering::SeqCst).min(self.reserve_base);
        assert!(mark.cursor <= cursor, "reset mark {} beyond cursor {cursor}", mark.cursor);
        // Whole slabs (or, in global mode, the bump region) handed out
        // after the mark.
        for i in mark.cursor..cursor {
            self.word(i).store(0, Ordering::SeqCst);
        }
        // Each lane's partially-used slab at mark time: everything from
        // the marked cursor to that slab's end is post-mark allocation
        // (the lane may have bumped past it before moving on).
        for (l, m) in self.lanes.iter().zip(&mark.lanes) {
            for i in m.cur..m.end {
                self.word(i).store(0, Ordering::SeqCst);
            }
            l.cur.store(m.cur, Ordering::SeqCst);
            l.end.store(m.end, Ordering::SeqCst);
            l.used.store(m.used, Ordering::SeqCst);
        }
        // The consumed reserve.
        let reserve = self.reserve.load(Ordering::SeqCst).min(self.capacity);
        for i in mark.reserve..reserve {
            self.word(i).store(0, Ordering::SeqCst);
        }
        self.reserve.store(mark.reserve, Ordering::SeqCst);
        self.cursor.store(mark.cursor, Ordering::SeqCst);
    }

    /// Rolls the allocator back to `mark` and zeroes every word allocated
    /// after it — the shared slab region, every lane's partial slab, and
    /// the consumed reserve.
    ///
    /// # Safety (logical)
    /// This is only sound at *quiescent points*: no process may be running,
    /// and no live structure below `mark` may still point above `mark`
    /// (callers such as the active set re-initialize their snapshot pointers
    /// after a reset). The `&mut self` receiver enforces exclusivity.
    ///
    /// # Panics
    /// Panics if `mark` is ahead of the current allocation state.
    pub fn reset_to(&mut self, mark: &HeapMark) {
        self.rewind(mark);
    }

    /// Like [`Heap::reset_to`], but callable through a shared reference —
    /// the form the epoch protocol needs, where the resetting thread is one
    /// of the worker threads and cannot hold `&mut Heap`.
    ///
    /// # Safety (logical)
    /// Only sound at *quiescent points*: every other thread must be parked
    /// at an epoch barrier (see [`crate::epoch::EpochSync`]) whose release
    /// happens-after this call returns. The barrier's lock provides the
    /// happens-before edges in both directions: the workers' final writes
    /// (including their lanes' Relaxed cursor bumps) are visible to the
    /// resetter, and the zeroing and lane rewinds below are visible to
    /// every worker the barrier releases afterwards. Violating quiescence
    /// (any thread still running algorithm code) corrupts live records.
    pub fn reset_to_quiescent(&self, mark: &HeapMark) {
        self.rewind(mark);
    }

    /// A 64-bit FNV-1a hash of the allocated portion of the heap (the slab
    /// footprint plus the consumed reserve). Used by tests to assert that
    /// simulated executions are deterministic.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let feed = |i: usize, h: &mut u64| {
            let v = self.word(i).load(Ordering::SeqCst);
            for b in v.to_le_bytes() {
                *h ^= b as u64;
                *h = h.wrapping_mul(0x1000_0000_01b3);
            }
        };
        let region = self.cursor.load(Ordering::SeqCst).min(self.reserve_base);
        for i in 0..region {
            feed(i, &mut h);
        }
        let reserve = self.reserve.load(Ordering::SeqCst).min(self.capacity);
        for i in self.reserve_base..reserve {
            feed(i, &mut h);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_disjoint_and_null_reserved() {
        let heap = Heap::new(64);
        let a = heap.alloc_root(3);
        let b = heap.alloc_root(3);
        assert!(!a.is_null());
        assert_eq!(a.0, 1, "first allocation starts after the null word");
        assert_eq!(b.0, a.0 + 3, "same lane allocates contiguously inside a slab");
    }

    #[test]
    fn aligned_root_allocs_start_on_line_boundaries() {
        let heap = Heap::new(1 << 10);
        let a = heap.alloc_root_aligned(3);
        let b = heap.alloc_root_aligned(10);
        assert_eq!(a.0 as usize % LINE_WORDS, 0);
        assert_eq!(b.0 as usize % LINE_WORDS, 0);
        assert!(b.0 >= a.0 + 3, "aligned allocations are disjoint");
        // Zeroed like any root allocation.
        for off in 0..10 {
            assert_eq!(heap.peek(b.off(off)), 0);
        }
    }

    #[test]
    fn placement_labels_and_default() {
        assert_eq!(Placement::Packed.label(), "packed");
        assert_eq!(Placement::Padded.label(), "padded");
        assert_eq!(Placement::default(), Placement::Padded);
    }

    #[test]
    fn cache_padded_occupies_a_full_line() {
        assert_eq!(std::mem::size_of::<CachePadded<u64>>(), 64);
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 64);
    }

    #[test]
    fn peek_poke_roundtrip() {
        let heap = Heap::new(16);
        let a = heap.alloc_root(1);
        heap.poke(a, 0xdead_beef);
        assert_eq!(heap.peek(a), 0xdead_beef);
    }

    #[test]
    fn cas_raw_reports_previous_value() {
        let heap = Heap::new(16);
        let a = heap.alloc_root(1);
        heap.poke(a, 7);
        assert_eq!(heap.cas_raw(a, 7, 9), 7);
        assert_eq!(heap.peek(a), 9);
        assert_eq!(heap.cas_raw(a, 7, 11), 9, "failed CAS returns actual");
        assert_eq!(heap.peek(a), 9);
    }

    #[test]
    fn lanes_allocate_from_disjoint_cache_aligned_slabs() {
        let heap = Heap::new(1 << 12);
        let slab = heap.slab_words();
        assert_eq!(slab % LINE_WORDS, 0, "slabs must be cache-line multiples");
        let a = heap.alloc(0, 3).unwrap();
        let b = heap.alloc(1, 3).unwrap();
        let r = heap.alloc_root(3);
        assert_eq!(a.0 as usize % slab, 0, "a fresh lane starts on a slab boundary");
        assert_eq!(b.0 as usize % slab, 0);
        // Three different lanes: pairwise different slabs.
        let slabs: Vec<usize> = [a, b, r].iter().map(|x| x.0 as usize / slab).collect();
        let mut dedup = slabs.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 3, "lanes must not share a slab: {slabs:?}");
        // Within a lane the bump is contiguous and stays inside the slab.
        let a2 = heap.alloc(0, 2).unwrap();
        assert_eq!(a2.0, a.0 + 3);
    }

    #[test]
    fn oversized_allocation_takes_contiguous_slabs() {
        let heap = Heap::new(1 << 12);
        let slab = heap.slab_words();
        let big = heap.alloc(2, 3 * slab + 5).unwrap();
        assert_eq!(big.0 as usize % slab, 0, "multi-slab grabs start slab-aligned");
        // The lane keeps bumping inside the tail of the last grabbed slab.
        let next = heap.alloc(2, 1).unwrap();
        assert_eq!(next.0 as usize, big.0 as usize + 3 * slab + 5);
    }

    #[test]
    fn global_mode_reproduces_the_single_cursor_layout() {
        let heap = Heap::with_mode(256, AllocMode::Global);
        assert_eq!(heap.mode_label(), "global");
        assert_eq!(heap.lane_count(), 1);
        let a = heap.alloc(7, 4).unwrap(); // lane ignored
        let b = heap.alloc(3, 4).unwrap();
        assert_eq!(a.0, 1);
        assert_eq!(b.0, 5);
        assert_eq!(heap.used(), 9);
    }

    #[test]
    fn exhausted_lane_reports_error_and_reserve_completes() {
        // 64 slabs of 8 words and a reserve: exhaust the slab region, then
        // verify the recoverable error plus the reserve fallback.
        let heap = Heap::with_mode(64 * 8, AllocMode::Laned { lanes: 2, slab_words: 8 });
        assert!(heap.capacity() > heap.lane_remaining(0), "a reserve must exist here");
        let mut last = 0;
        while let Ok(a) = heap.alloc(0, 8) {
            last = a.0;
        }
        let err = heap.alloc(0, 8).unwrap_err();
        assert_eq!(err.lane, 0);
        assert_eq!(err.requested, 8);
        assert!(last > 0);
        // The reserve still hands out completion memory.
        let r = heap.alloc_reserve(0, 4);
        assert!(r.0 as usize >= heap.reserve_base);
        heap.poke(r, 9);
        assert_eq!(heap.peek(r), 9);
    }

    #[test]
    fn reset_zeroes_transient_region_only() {
        let mut heap = Heap::new(64);
        let root = heap.alloc_root(1);
        heap.poke(root, 42);
        let mark = heap.mark();
        let used_at_mark = heap.used();
        let t = heap.alloc_root(2);
        heap.poke(t, 5);
        heap.poke(t.off(1), 6);
        heap.reset_to(&mark);
        assert_eq!(heap.peek(root), 42, "root survives reset");
        assert_eq!(heap.used(), used_at_mark, "footprint rewound to the mark");
        let t2 = heap.alloc_root(2);
        assert_eq!(t2, t, "bump rolled back");
        assert_eq!(heap.peek(t2), 0, "transient region re-zeroed");
        assert_eq!(heap.peek(t2.off(1)), 0);
    }

    #[test]
    fn quiescent_reset_matches_exclusive_reset() {
        let heap = Heap::new(64);
        let root = heap.alloc_root(1);
        heap.poke(root, 7);
        let mark = heap.mark();
        let t = heap.alloc_root(3);
        heap.poke(t.off(2), 9);
        heap.reset_to_quiescent(&mark);
        assert_eq!(heap.peek(root), 7, "pre-mark words survive");
        let t2 = heap.alloc_root(3);
        assert_eq!(t2, t, "bump rolled back");
        assert_eq!(heap.peek(t2.off(2)), 0, "transient region re-zeroed");
    }

    #[test]
    fn reset_rewinds_every_lane_and_the_reserve() {
        let heap = Heap::with_mode(64 * 8, AllocMode::Laned { lanes: 3, slab_words: 8 });
        let keep = heap.alloc(1, 2).unwrap();
        heap.poke(keep, 11);
        let mark = heap.mark();
        let used_at_mark = heap.used();
        // Dirty several lanes, a multi-slab grab, and the reserve.
        for lane in 0..3 {
            let a = heap.alloc(lane, 5).unwrap();
            heap.poke(a, lane as u64 + 1);
        }
        let big = heap.alloc(2, 20).unwrap();
        heap.poke(big.off(19), 99);
        let r = heap.alloc_reserve(0, 2);
        heap.poke(r, 77);
        assert!(heap.used() > used_at_mark);

        heap.reset_to_quiescent(&mark);
        assert_eq!(heap.used(), used_at_mark, "footprint rewound to the mark");
        assert_eq!(heap.peek(keep), 11, "pre-mark words survive");
        for lane in 0..3 {
            assert_eq!(
                heap.lane_used(lane),
                mark.lanes[lane].used,
                "lane {lane} usage rewound"
            );
        }
        // Identical allocations land on identical addresses and read zero.
        for lane in 0..3 {
            let a = heap.alloc(lane, 5).unwrap();
            assert_eq!(heap.peek(a), 0, "lane {lane} transients re-zeroed");
        }
        let big2 = heap.alloc(2, 20).unwrap();
        assert_eq!(big2, big, "slab cursor rewound");
        assert_eq!(heap.peek(big2.off(19)), 0);
        let r2 = heap.alloc_reserve(0, 2);
        assert_eq!(r2, r, "reserve cursor rewound");
        assert_eq!(heap.peek(r2), 0);
    }

    #[test]
    fn fingerprint_changes_with_content() {
        let heap = Heap::new(16);
        let a = heap.alloc_root(1);
        let f0 = heap.fingerprint();
        heap.poke(a, 1);
        assert_ne!(heap.fingerprint(), f0);
    }

    #[test]
    #[should_panic(expected = "heap exhausted")]
    fn alloc_past_capacity_panics() {
        let heap = Heap::new(4);
        heap.alloc_root(16);
    }

    #[test]
    #[should_panic(expected = "Addr::off overflow")]
    fn addr_off_overflow_panics_instead_of_wrapping() {
        let _ = Addr(u32::MAX - 2).off(8);
    }

    #[test]
    fn addr_word_packing_roundtrip() {
        let a = Addr(12345);
        assert_eq!(Addr::from_word(a.to_word()), a);
        assert!(NULL.is_null());
        assert!(!Addr(1).is_null());
    }

    #[test]
    fn concurrent_lane_allocations_never_overlap() {
        // 8 threads, each on its own lane, racing the shared slab cursor:
        // every returned region must be pairwise disjoint and, for
        // sub-slab sizes, never straddle a slab boundary.
        let heap = Heap::with_mode(1 << 17, AllocMode::Laned { lanes: 8, slab_words: 64 });
        let slab = heap.slab_words();
        let regions: Vec<std::sync::Mutex<Vec<(usize, usize)>>> =
            (0..8).map(|_| std::sync::Mutex::new(Vec::new())).collect();
        std::thread::scope(|scope| {
            for (lane, out) in regions.iter().enumerate() {
                let heap = &heap;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    for i in 0..200usize {
                        let n = 1 + (lane * 31 + i * 7) % 48;
                        let a = heap.alloc(lane, n).expect("arena sized generously");
                        local.push((a.0 as usize, n));
                    }
                    *out.lock().unwrap() = local;
                });
            }
        });
        let mut all: Vec<(usize, usize)> = regions
            .iter()
            .flat_map(|m| m.lock().unwrap().clone())
            .collect();
        all.sort_unstable();
        for w in all.windows(2) {
            assert!(w[0].0 + w[0].1 <= w[1].0, "overlap: {:?} then {:?}", w[0], w[1]);
        }
        for &(base, n) in &all {
            if n <= slab {
                assert_eq!(
                    base / slab,
                    (base + n - 1) / slab,
                    "sub-slab allocation [{base}, {}) straddles a slab boundary",
                    base + n
                );
            }
        }
    }
}
