//! Oblivious adversarial schedules.
//!
//! A [`Schedule`] is the paper's *scheduler adversary*: a function from the
//! global time step to the process that runs an instruction at that step,
//! fixed before the execution begins. Because `next` receives only the time
//! `t` (never any execution state), every implementation is oblivious by
//! construction.
//!
//! Returning `None` wastes the slot — no process runs — which models the
//! scheduler delaying every process, and composes with [`Stalls`] to model
//! arbitrarily long delays or crashes of specific processes.

use crate::rng::Pcg;

/// An oblivious schedule: a predetermined assignment of time steps to
/// processes.
pub trait Schedule: Send {
    /// The process granted the step at time `t`, or `None` if the slot is
    /// deliberately wasted (all processes delayed at this instant).
    fn next(&mut self, t: u64) -> Option<usize>;
}

/// Fair round-robin over `n` processes: `0, 1, ..., n-1, 0, 1, ...`.
#[derive(Debug, Clone)]
pub struct RoundRobin {
    n: usize,
}

impl RoundRobin {
    /// A round-robin schedule over `n` processes.
    pub fn new(n: usize) -> RoundRobin {
        assert!(n > 0);
        RoundRobin { n }
    }
}

impl Schedule for RoundRobin {
    fn next(&mut self, t: u64) -> Option<usize> {
        Some((t % self.n as u64) as usize)
    }
}

/// Uniformly random schedule from a seed (an oblivious adversary that fixed
/// its coin flips in advance).
#[derive(Debug, Clone)]
pub struct SeededRandom {
    n: usize,
    rng: Pcg,
}

impl SeededRandom {
    /// A seeded uniform schedule over `n` processes.
    pub fn new(n: usize, seed: u64) -> SeededRandom {
        assert!(n > 0);
        SeededRandom { n, rng: Pcg::new(seed, 0x5eed) }
    }
}

impl Schedule for SeededRandom {
    fn next(&mut self, _t: u64) -> Option<usize> {
        Some(self.rng.below(self.n as u64) as usize)
    }
}

/// Bursty schedule: picks a process and grants it a run of consecutive
/// steps before switching. Models large speed differences between
/// processes, which the paper's delay mechanism must absorb.
#[derive(Debug, Clone)]
pub struct Bursty {
    n: usize,
    burst: u64,
    rng: Pcg,
    cur: usize,
    remaining: u64,
}

impl Bursty {
    /// A bursty schedule over `n` processes with bursts of length `burst`.
    pub fn new(n: usize, burst: u64, seed: u64) -> Bursty {
        assert!(n > 0 && burst > 0);
        Bursty { n, burst, rng: Pcg::new(seed, 0xB), cur: 0, remaining: 0 }
    }
}

impl Schedule for Bursty {
    fn next(&mut self, _t: u64) -> Option<usize> {
        if self.remaining == 0 {
            self.cur = self.rng.below(self.n as u64) as usize;
            self.remaining = 1 + self.rng.below(self.burst);
        }
        self.remaining -= 1;
        Some(self.cur)
    }
}

/// Weighted random schedule: process `i` is granted each step with
/// probability proportional to `weights[i]`. Zero-weight processes are
/// never scheduled (a crash from the start).
#[derive(Debug, Clone)]
pub struct Weighted {
    cumulative: Vec<u64>,
    total: u64,
    rng: Pcg,
}

impl Weighted {
    /// A weighted schedule. `weights` must contain at least one nonzero
    /// entry.
    pub fn new(weights: &[u64], seed: u64) -> Weighted {
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut total = 0u64;
        for &w in weights {
            total += w;
            cumulative.push(total);
        }
        assert!(total > 0, "at least one weight must be nonzero");
        Weighted { cumulative, total, rng: Pcg::new(seed, 0x11) }
    }
}

impl Schedule for Weighted {
    fn next(&mut self, _t: u64) -> Option<usize> {
        let x = self.rng.below(self.total);
        Some(self.cumulative.partition_point(|&c| c <= x))
    }
}

/// An explicit finite schedule, cycled if `repeat` is set. Useful for
/// exhaustive small-case tests.
#[derive(Debug, Clone)]
pub struct FromSeq {
    seq: Vec<usize>,
    repeat: bool,
}

impl FromSeq {
    /// A schedule that replays `seq` (then wastes every slot, unless
    /// `repeat`).
    pub fn new(seq: Vec<usize>, repeat: bool) -> FromSeq {
        FromSeq { seq, repeat }
    }
}

impl Schedule for FromSeq {
    fn next(&mut self, t: u64) -> Option<usize> {
        if self.seq.is_empty() {
            return None;
        }
        let i = t as usize;
        if i < self.seq.len() {
            Some(self.seq[i])
        } else if self.repeat {
            Some(self.seq[i % self.seq.len()])
        } else {
            None
        }
    }
}

/// A stall window: process `pid` receives no steps during `[from, until)`.
/// `until = u64::MAX` models a crash (arbitrary unbounded delay).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallWindow {
    /// The delayed process.
    pub pid: usize,
    /// First stalled time step.
    pub from: u64,
    /// First time step after the stall (exclusive bound).
    pub until: u64,
}

impl StallWindow {
    /// A crash: `pid` never runs again from time `from` on.
    pub fn crash(pid: usize, from: u64) -> StallWindow {
        StallWindow { pid, from, until: u64::MAX }
    }

    fn covers(&self, pid: usize, t: u64) -> bool {
        self.pid == pid && t >= self.from && t < self.until
    }
}

/// Composes an inner schedule with stall windows: whenever the inner
/// schedule picks a stalled process, the slot is wasted. The composite is
/// still a fixed function of time, hence still oblivious.
pub struct Stalls<S> {
    inner: S,
    windows: Vec<StallWindow>,
}

impl<S: Schedule> Stalls<S> {
    /// Wraps `inner` with the given stall windows.
    pub fn new(inner: S, windows: Vec<StallWindow>) -> Stalls<S> {
        Stalls { inner, windows }
    }
}

impl<S: Schedule> Schedule for Stalls<S> {
    fn next(&mut self, t: u64) -> Option<usize> {
        let pid = self.inner.next(t)?;
        if self.windows.iter().any(|w| w.covers(pid, t)) {
            None
        } else {
            Some(pid)
        }
    }
}

/// Deterministic periodic fault injection, the simulator half of the
/// overload/fault harness (experiment E16). Time is cut into windows of
/// `period` steps; in each window one pseudo-randomly chosen process (a
/// fixed hash of the window index, so the composite stays a pure function
/// of `t` — oblivious by construction) is the *victim* and receives no
/// steps during the window's first `quantum` slots. A victim that was
/// paused mid-critical-section models a holder stall/crash: competitors
/// must help its descriptor to completion to make progress.
pub struct PeriodicFaults<S> {
    inner: S,
    n: usize,
    period: u64,
    quantum: u64,
    seed: u64,
}

impl<S: Schedule> PeriodicFaults<S> {
    /// Wraps `inner` (over `n` processes) with periodic faults: each
    /// `period`-step window stalls one seeded-random victim for its first
    /// `quantum` steps.
    pub fn new(inner: S, n: usize, period: u64, quantum: u64, seed: u64) -> PeriodicFaults<S> {
        assert!(n > 0 && period > 0);
        assert!(quantum <= period, "quantum {quantum} exceeds period {period}");
        PeriodicFaults { inner, n, period, quantum, seed }
    }

    /// The window's victim: a splitmix64 hash of (seed, window index), so
    /// `next` stays stateless in `t` and replays identically from any
    /// point.
    pub fn victim_of_window(&self, window: u64) -> usize {
        let mut z = self.seed ^ window.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z % self.n as u64) as usize
    }
}

impl<S: Schedule> Schedule for PeriodicFaults<S> {
    fn next(&mut self, t: u64) -> Option<usize> {
        // Flight-recorder fault windows: the scheduled-phase loop calls
        // `next` exactly once per slot `t`, so the control ring stays
        // single-writer and the emitted window sequence is a pure
        // function of the seed (bit-identical across replays). The close
        // event is skipped when `quantum == period` (back-to-back
        // windows never close; the exporter renders the open as an
        // instant).
        let phase = t % self.period;
        if phase == 0 && self.quantum > 0 {
            wfl_obs::rec::record_ctrl(
                wfl_obs::EventKind::FaultStart,
                t,
                self.victim_of_window(t / self.period) as u64,
            );
        } else if phase == self.quantum {
            wfl_obs::rec::record_ctrl(
                wfl_obs::EventKind::FaultEnd,
                t,
                self.victim_of_window(t / self.period) as u64,
            );
        }
        let pid = self.inner.next(t)?;
        if phase < self.quantum && self.victim_of_window(t / self.period) == pid {
            None
        } else {
            Some(pid)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles() {
        let mut s = RoundRobin::new(3);
        let picks: Vec<_> = (0..6).map(|t| s.next(t).unwrap()).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn seeded_random_is_deterministic_and_in_range() {
        let mut a = SeededRandom::new(5, 7);
        let mut b = SeededRandom::new(5, 7);
        for t in 0..100 {
            let x = a.next(t).unwrap();
            assert_eq!(Some(x), b.next(t));
            assert!(x < 5);
        }
    }

    #[test]
    fn bursty_produces_runs() {
        let mut s = Bursty::new(4, 8, 3);
        let picks: Vec<_> = (0..200).map(|t| s.next(t).unwrap()).collect();
        // There is at least one run of length >= 2 (overwhelmingly likely),
        // and all picks are in range.
        assert!(picks.windows(2).any(|w| w[0] == w[1]));
        assert!(picks.iter().all(|&p| p < 4));
    }

    #[test]
    fn weighted_zero_weight_never_runs() {
        let mut s = Weighted::new(&[1, 0, 3], 11);
        for t in 0..500 {
            assert_ne!(s.next(t), Some(1));
        }
    }

    #[test]
    fn weighted_respects_ratios_roughly() {
        let mut s = Weighted::new(&[1, 3], 13);
        let mut counts = [0u32; 2];
        for t in 0..40_000 {
            counts[s.next(t).unwrap()] += 1;
        }
        let ratio = counts[1] as f64 / counts[0] as f64;
        assert!((2.5..3.5).contains(&ratio), "ratio {ratio} not near 3");
    }

    #[test]
    fn from_seq_exhausts_then_wastes() {
        let mut s = FromSeq::new(vec![2, 0, 1], false);
        assert_eq!(s.next(0), Some(2));
        assert_eq!(s.next(1), Some(0));
        assert_eq!(s.next(2), Some(1));
        assert_eq!(s.next(3), None);
    }

    #[test]
    fn from_seq_repeat_cycles() {
        let mut s = FromSeq::new(vec![1, 0], true);
        assert_eq!(s.next(5), Some(0));
        assert_eq!(s.next(4), Some(1));
    }

    #[test]
    fn stalls_waste_slots_in_window() {
        let mut s = Stalls::new(RoundRobin::new(2), vec![StallWindow { pid: 1, from: 0, until: 4 }]);
        assert_eq!(s.next(0), Some(0));
        assert_eq!(s.next(1), None); // pid 1 stalled
        assert_eq!(s.next(2), Some(0));
        assert_eq!(s.next(3), None);
        assert_eq!(s.next(4), Some(0));
        assert_eq!(s.next(5), Some(1)); // window over
    }

    #[test]
    fn periodic_faults_stall_exactly_the_victim_quantum() {
        let n = 4;
        let mut s = PeriodicFaults::new(RoundRobin::new(n), n, 8, 3, 77);
        let probe = PeriodicFaults::new(RoundRobin::new(n), n, 8, 3, 77);
        for t in 0..160 {
            let inner_pick = (t % n as u64) as usize;
            let in_quantum = t % 8 < 3;
            let victim = probe.victim_of_window(t / 8);
            let expect =
                if in_quantum && inner_pick == victim { None } else { Some(inner_pick) };
            assert_eq!(s.next(t), expect, "t={t}");
        }
    }

    #[test]
    fn periodic_faults_are_deterministic_and_rotate_victims() {
        let mk = || PeriodicFaults::new(SeededRandom::new(5, 3), 5, 16, 16, 9);
        let mut a = mk();
        let mut b = mk();
        let mut victims = std::collections::HashSet::new();
        for t in 0..2000 {
            assert_eq!(a.next(t), b.next(t), "oblivious schedules must replay identically");
            victims.insert(a.victim_of_window(t / 16));
        }
        assert!(victims.len() > 1, "the victim must rotate across windows");
        assert!(victims.iter().all(|&v| v < 5));
    }

    #[test]
    #[should_panic(expected = "quantum")]
    fn periodic_faults_reject_quantum_longer_than_period() {
        let _ = PeriodicFaults::new(RoundRobin::new(2), 2, 4, 5, 0);
    }

    #[test]
    fn crash_window_is_permanent() {
        let w = StallWindow::crash(3, 100);
        assert!(!w.covers(3, 99));
        assert!(w.covers(3, 100));
        assert!(w.covers(3, u64::MAX - 1));
        assert!(!w.covers(2, 200));
    }
}
