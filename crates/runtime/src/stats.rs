//! Small statistics helpers for the experiment harness: summaries,
//! percentiles, confidence bounds, and log-log exponent fitting (used to
//! check that measured step curves grow no faster than the theorem
//! exponents).

use std::sync::OnceLock;

/// Streaming summary of a sequence of `u64` samples.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    samples: Vec<u64>,
    /// Sorted copy of `samples`, built lazily on the first percentile query
    /// and reused by subsequent ones (the bench binaries ask for several
    /// percentiles per configuration). Invalidated by `push`.
    sorted: OnceLock<Vec<u64>>,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Summary {
        Summary::default()
    }

    /// Adds one sample.
    pub fn push(&mut self, x: u64) {
        self.samples.push(x);
        if self.sorted.get().is_some() {
            self.sorted = OnceLock::new();
        }
    }

    /// Appends every sample of `other` (used by the epoch harness to fold
    /// per-epoch summaries into a whole-run summary). Invalidates the
    /// cached sorted copy like [`Summary::push`].
    pub fn merge(&mut self, other: &Summary) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = OnceLock::new();
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// The raw samples, in insertion order (the bench binaries re-bucket
    /// them into histograms with workload-specific bucket edges).
    pub fn samples(&self) -> &[u64] {
        &self.samples
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|&x| x as f64).sum::<f64>() / self.samples.len() as f64
    }

    /// Maximum sample (0 if empty).
    pub fn max(&self) -> u64 {
        self.samples.iter().copied().max().unwrap_or(0)
    }

    /// Minimum sample (0 if empty).
    pub fn min(&self) -> u64 {
        self.samples.iter().copied().min().unwrap_or(0)
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by nearest-rank. The samples are sorted
    /// once on the first query and the sorted copy is cached, so repeated
    /// percentile calls cost O(1) sorts total rather than one sort each.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.samples.is_empty() {
            return 0;
        }
        let v = self.sorted.get_or_init(|| {
            let mut v = self.samples.clone();
            v.sort_unstable();
            v
        });
        let rank = ((v.len() as f64 - 1.0) * q).round() as usize;
        v[rank.min(v.len() - 1)]
    }

    /// Sample standard deviation (0 if fewer than 2 samples).
    pub fn stddev(&self) -> f64 {
        let n = self.samples.len();
        if n < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var = self.samples.iter().map(|&x| (x as f64 - m).powi(2)).sum::<f64>() / (n - 1) as f64;
        var.sqrt()
    }
}

/// A Bernoulli success-rate estimate with a Wilson score lower bound,
/// used to compare empirical success probabilities against the paper's
/// analytic `1/(κL)`-style bounds.
#[derive(Debug, Clone, Copy, Default)]
pub struct Bernoulli {
    /// Number of successes observed.
    pub successes: u64,
    /// Number of trials observed.
    pub trials: u64,
}

impl Bernoulli {
    /// Records one trial.
    pub fn record(&mut self, success: bool) {
        self.trials += 1;
        if success {
            self.successes += 1;
        }
    }

    /// Point estimate of the success probability (0 if no trials).
    pub fn rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.successes as f64 / self.trials as f64
        }
    }

    /// Wilson score interval lower bound at confidence `z` (e.g. 2.58 for
    /// 99%). Conservative: suitable for asserting `rate >= bound`.
    pub fn wilson_lower(&self, z: f64) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        let n = self.trials as f64;
        let p = self.rate();
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let center = p + z2 / (2.0 * n);
        let margin = z * ((p * (1.0 - p) + z2 / (4.0 * n)) / n).sqrt();
        ((center - margin) / denom).max(0.0)
    }
}

/// Least-squares fit of `ln y = b ln x + ln a` over points with positive
/// coordinates; returns the exponent `b`. Used to verify that measured
/// step counts scale like `κ^b` with `b` at most the theorem's exponent.
pub fn loglog_slope(points: &[(f64, f64)]) -> f64 {
    let pts: Vec<(f64, f64)> =
        points.iter().filter(|(x, y)| *x > 0.0 && *y > 0.0).map(|&(x, y)| (x.ln(), y.ln())).collect();
    let n = pts.len() as f64;
    if pts.len() < 2 {
        return 0.0;
    }
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return 0.0;
    }
    (n * sxy - sx * sy) / denom
}

/// Formats a markdown-style table row (used by the experiment binaries).
pub fn table_row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let mut s = Summary::new();
        for x in [4u64, 1, 9, 16, 25] {
            s.push(x);
        }
        assert_eq!(s.len(), 5);
        assert_eq!(s.max(), 25);
        assert_eq!(s.min(), 1);
        assert!((s.mean() - 11.0).abs() < 1e-9);
        assert_eq!(s.percentile(0.5), 9);
        assert_eq!(s.percentile(1.0), 25);
        assert!(s.stddev() > 0.0);
    }

    #[test]
    fn empty_summary_is_zeroes() {
        let s = Summary::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.percentile(0.9), 0);
    }

    #[test]
    fn repeated_percentile_calls_agree_and_survive_pushes() {
        let mut s = Summary::new();
        for x in [9u64, 1, 7, 3, 5] {
            s.push(x);
        }
        // Repeated queries hit the cached sorted copy and must agree with
        // each other (and with the nearest-rank definition).
        for _ in 0..3 {
            assert_eq!(s.percentile(0.0), 1);
            assert_eq!(s.percentile(0.5), 5);
            assert_eq!(s.percentile(1.0), 9);
        }
        // A push after a query must invalidate the cache.
        s.push(100);
        assert_eq!(s.percentile(1.0), 100);
        assert_eq!(s.percentile(0.0), 1);
        // Cloned summaries answer identically.
        let c = s.clone();
        assert_eq!(c.percentile(0.5), s.percentile(0.5));
    }

    #[test]
    fn merge_concatenates_samples_and_invalidates_cache() {
        let mut a = Summary::new();
        let mut b = Summary::new();
        for x in [1u64, 3, 5] {
            a.push(x);
        }
        for x in [2u64, 100] {
            b.push(x);
        }
        assert_eq!(a.percentile(1.0), 5, "prime the sorted cache");
        a.merge(&b);
        assert_eq!(a.len(), 5);
        assert_eq!(a.percentile(1.0), 100, "merge must invalidate the cache");
        assert_eq!(a.min(), 1);
        a.merge(&Summary::new());
        assert_eq!(a.len(), 5, "merging an empty summary is a no-op");
    }

    #[test]
    fn bernoulli_wilson_bound_is_below_rate() {
        let mut b = Bernoulli::default();
        for i in 0..1000 {
            b.record(i % 4 == 0);
        }
        assert!((b.rate() - 0.25).abs() < 0.01);
        let lo = b.wilson_lower(2.58);
        assert!(lo < b.rate());
        assert!(lo > 0.2, "1000 trials should give a tight bound, got {lo}");
    }

    #[test]
    fn loglog_slope_recovers_exponent() {
        // y = 3 x^2
        let pts: Vec<(f64, f64)> = (1..=10).map(|i| (i as f64, 3.0 * (i * i) as f64)).collect();
        let b = loglog_slope(&pts);
        assert!((b - 2.0).abs() < 1e-9, "slope {b}");
    }

    #[test]
    fn loglog_slope_ignores_nonpositive_points() {
        let pts = vec![(0.0, 5.0), (1.0, 2.0), (2.0, 4.0), (4.0, 8.0)];
        let b = loglog_slope(&pts);
        assert!((b - 1.0).abs() < 1e-9, "slope {b}");
    }
}
