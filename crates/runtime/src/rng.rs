//! Deterministic per-process random number streams.
//!
//! The simulator needs randomness that is (a) reproducible from a single
//! experiment seed and (b) independent across processes, so that the
//! oblivious scheduler provably cannot observe priorities (the schedule is
//! fixed before any random bit is drawn). We use a small, self-contained
//! PCG-XSH-RR generator seeded per process by SplitMix64, avoiding any
//! dependence on `rand`'s version-specific stream definitions in the
//! algorithm itself (`rand` is still used by workloads and tests).

/// SplitMix64 step: used to derive well-mixed seeds from `(seed, pid)`.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A PCG-XSH-RR 64/32 generator (O'Neill 2014): 64-bit state, 32-bit output.
/// Two outputs are combined for [`Pcg::next_u64`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcg {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6_364_136_223_846_793_005;

impl Pcg {
    /// Creates a generator from a seed and a stream id; distinct stream ids
    /// yield statistically independent sequences.
    pub fn new(seed: u64, stream: u64) -> Pcg {
        let mut sm = seed ^ stream.wrapping_mul(0xa076_1d64_78bd_642f);
        let init_state = splitmix64(&mut sm);
        let init_inc = splitmix64(&mut sm) | 1; // must be odd
        let mut pcg = Pcg { state: 0, inc: init_inc };
        pcg.state = init_state.wrapping_add(pcg.inc);
        pcg.next_u32();
        pcg
    }

    /// Next 32 random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        ((self.next_u32() as u64) << 32) | self.next_u32() as u64
    }

    /// Uniform sample in `0..bound` (Lemire's method, unbiased enough for
    /// scheduling; `bound` must be nonzero).
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // 128-bit multiply-shift; bias is < 2^-64 per draw, negligible for
        // scheduling and priority purposes.
        let x = self.next_u64() as u128;
        ((x * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Pcg::new(42, 7);
        let mut b = Pcg::new(42, 7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn streams_differ() {
        let mut a = Pcg::new(42, 0);
        let mut b = Pcg::new(42, 1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Pcg::new(1, 1);
        for _ in 0..10_000 {
            assert!(r.below(10) < 10);
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = Pcg::new(3, 9);
        let mut counts = [0u32; 8];
        let n = 80_000;
        for _ in 0..n {
            counts[r.below(8) as usize] += 1;
        }
        for c in counts {
            let expected = n as f64 / 8.0;
            assert!(
                (c as f64 - expected).abs() < expected * 0.1,
                "bucket count {c} too far from {expected}"
            );
        }
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = Pcg::new(5, 5);
        for _ in 0..1000 {
            let x = r.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
