//! Recording of operation histories for linearizability checking.
//!
//! Algorithm code (under test) brackets each high-level operation with
//! [`crate::Ctx::invoke`] / [`crate::Ctx::respond`]; the driver collects the
//! per-process event lists into a single [`History`] whose timestamps are
//! global logical step numbers. The `wfl-lincheck` crate consumes these
//! histories.

/// One completed high-level operation in a concurrent history.
///
/// The meaning of `op`, `a`, `b` and `result` is defined by the sequential
/// specification used by the checker (e.g. for the active set spec,
/// `op = 0` is `insert(a)`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Process that executed the operation.
    pub pid: usize,
    /// Operation code, interpreted by the spec.
    pub op: u32,
    /// First argument.
    pub a: u64,
    /// Second argument.
    pub b: u64,
    /// Result value (sets are encoded as sorted `Vec<u64>` in `result_set`).
    pub result: u64,
    /// Result set for set-valued operations (empty otherwise), sorted.
    pub result_set: Vec<u64>,
    /// Global logical time at invocation.
    pub invoke: u64,
    /// Global logical time at response (`>= invoke`).
    pub response: u64,
}

/// A complete concurrent history: all events from all processes.
#[derive(Debug, Clone, Default)]
pub struct History {
    /// Events, in no particular global order (the checker sorts as needed).
    pub events: Vec<Event>,
}

impl History {
    /// Builds a history from per-process event lists.
    pub fn from_parts(parts: Vec<Vec<Event>>) -> History {
        let mut events: Vec<Event> = parts.into_iter().flatten().collect();
        events.sort_by_key(|e| (e.invoke, e.response, e.pid));
        History { events }
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the history has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// True if event `i` finished before event `j` began (the happens-before
    /// / real-time order that linearizability must respect).
    pub fn precedes(&self, i: usize, j: usize) -> bool {
        self.events[i].response < self.events[j].invoke
    }
}

/// An in-flight operation being recorded on one process.
#[derive(Debug, Clone)]
pub struct PendingOp {
    pub(crate) op: u32,
    pub(crate) a: u64,
    pub(crate) b: u64,
    pub(crate) invoke: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(pid: usize, invoke: u64, response: u64) -> Event {
        Event { pid, op: 0, a: 0, b: 0, result: 0, result_set: vec![], invoke, response }
    }

    #[test]
    fn from_parts_sorts_by_invocation() {
        let h = History::from_parts(vec![vec![ev(0, 5, 6)], vec![ev(1, 1, 9), ev(1, 10, 11)]]);
        assert_eq!(h.len(), 3);
        assert_eq!(h.events[0].invoke, 1);
        assert_eq!(h.events[1].invoke, 5);
        assert!(!h.is_empty());
    }

    #[test]
    fn precedes_uses_real_time_order() {
        let h = History::from_parts(vec![vec![ev(0, 0, 2), ev(0, 3, 8)], vec![ev(1, 4, 5)]]);
        assert!(h.precedes(0, 1)); // [0,2] before [3,8]
        assert!(h.precedes(0, 2)); // [0,2] before [4,5]
        assert!(!h.precedes(1, 2)); // [3,8] overlaps [4,5]
        assert!(!h.precedes(2, 1));
    }
}
