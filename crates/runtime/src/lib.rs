//! Asynchronous shared-memory substrate for the wait-free lock algorithms.
//!
//! This crate provides the machine model of Ben-David & Blelloch (PODC 2022):
//! a set of asynchronous processes operating on shared memory with `Read`,
//! `Write` and `CAS`, whose steps are interleaved by an **oblivious
//! adversarial scheduler**, and whose per-process *own-step* counts drive the
//! fixed delays of the lock algorithm.
//!
//! Two execution drivers run the same algorithm code:
//!
//! * [`real::run_threads`] — one free-running OS thread per process, native
//!   atomics. Used for throughput benchmarks.
//! * [`sim::Sim`] — a deterministic simulator. Each process is an OS thread
//!   gated so that shared-memory steps occur one at a time, in exactly the
//!   order dictated by a [`Schedule`] fixed before the execution begins
//!   (the oblivious adversary). Given the same seeds, executions are
//!   bit-for-bit reproducible. An optional [`sim::Controller`] models the
//!   *adaptive player adversary*: it observes the quiesced heap between steps
//!   and feeds commands to processes through mailboxes.
//!
//! All shared state lives in a [`Heap`]: a fixed arena of `u64` words with a
//! wait-free **sharded** bump allocator — per-process lanes over
//! cache-line-aligned slabs, so the hot path is an uncontended bump and the
//! shared slab cursor is touched once per slab (see `heap.rs` and DESIGN.md
//! §1.1.2). Algorithm code accesses it through a per-process
//! [`Ctx`], which counts every operation (shared and local) so that the
//! paper's delay mechanism ("stall until `T0` own steps") is exact.
//!
//! # Example
//!
//! ```
//! use wfl_runtime::{Heap, sim::SimBuilder, schedule::RoundRobin};
//!
//! let heap = Heap::new(1 << 12);
//! let counter = heap.alloc_root(1);
//! let report = SimBuilder::new(&heap, 4)
//!     .schedule(RoundRobin::new(4))
//!     .max_steps(10_000)
//!     .spawn_all(|_pid| {
//!         move |ctx: &wfl_runtime::Ctx| {
//!             // Each process increments the counter 100 times with CAS.
//!             for _ in 0..100 {
//!                 loop {
//!                     let v = ctx.read(counter);
//!                     if ctx.cas_bool(counter, v, v + 1) {
//!                         break;
//!                     }
//!                 }
//!             }
//!         }
//!     })
//!     .run();
//! assert!(report.completed);
//! assert_eq!(heap.peek(counter), 400);
//! ```

pub mod ctx;
pub mod epoch;
pub mod gate;
pub mod heap;
pub mod history;
pub mod real;
pub mod rng;
pub mod schedule;
pub mod sim;
pub mod stats;
pub mod trace;

pub use ctx::{ClockMode, Ctx, OrderTier};
pub use epoch::{run_epoch_worker, Arrival, EpochState, EpochSync};
pub use heap::{
    Addr, AllocMode, CachePadded, Heap, HeapExhausted, HeapMark, Placement, LINE_WORDS, NULL,
};
pub use history::{Event, History};
pub use real::{
    available_parallelism, clamp_threads, run_threads, run_threads_epochs, run_threads_with,
    RealConfig,
};
pub use schedule::Schedule;
