//! Lightweight execution tracing for debugging adversarial interleavings.
//!
//! The deterministic simulator makes failures replayable; this module
//! makes them *readable*: enable tracing, re-run the failing seed, and
//! dump a causally-ordered log of the lock algorithm's decisions
//! (reveals, comparisons, eliminations, decides, celebrations).
//!
//! Tracing is process-wide and intended for single-test debugging; the
//! fast path when disabled is one relaxed atomic load.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

static ENABLED: AtomicBool = AtomicBool::new(false);
static LOG: Mutex<Vec<String>> = Mutex::new(Vec::new());

/// Starts capturing trace events (clears any previous log).
pub fn enable() {
    LOG.lock().unwrap().clear();
    ENABLED.store(true, Ordering::SeqCst);
}

/// Stops capturing and returns the captured events.
pub fn disable() -> Vec<String> {
    ENABLED.store(false, Ordering::SeqCst);
    std::mem::take(&mut *LOG.lock().unwrap())
}

/// Records an event; the closure runs only when tracing is enabled.
///
/// The closure is evaluated *before* the log lock is taken: trace closures
/// may perform gated simulator steps (e.g. reading a status word), and
/// holding the log lock across a step gate would deadlock the scheduler.
#[inline]
pub fn emit(f: impl FnOnce() -> String) {
    if ENABLED.load(Ordering::Relaxed) {
        let line = f();
        LOG.lock().unwrap().push(line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_capture_roundtrip() {
        emit(|| "dropped".to_string());
        enable();
        emit(|| "kept".to_string());
        let log = disable();
        assert_eq!(log, vec!["kept".to_string()]);
        emit(|| "dropped again".to_string());
        enable();
        assert!(disable().is_empty());
    }
}
