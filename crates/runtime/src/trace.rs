//! Lightweight execution tracing for debugging adversarial interleavings.
//!
//! The deterministic simulator makes failures replayable; this module
//! makes them *readable*: enable tracing, re-run the failing seed, and
//! dump a causally-ordered log of the lock algorithm's decisions
//! (reveals, comparisons, eliminations, decides, celebrations).
//!
//! Tracing is process-wide and intended for single-test debugging; the
//! fast path when disabled is one relaxed atomic load. The sink is a
//! bounded [`wfl_obs::TextRing`] rather than an unbounded `Vec` — a
//! trace left enabled across a soak overwrites its own oldest lines
//! instead of growing without limit, and [`disable`] reports how many
//! lines were lost that way.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use wfl_obs::TextRing;

/// Retained lines; older ones are overwritten once the ring is full.
pub const TRACE_CAPACITY: usize = 4096;

static ENABLED: AtomicBool = AtomicBool::new(false);
static RING: OnceLock<TextRing> = OnceLock::new();

fn ring() -> &'static TextRing {
    RING.get_or_init(|| TextRing::new(TRACE_CAPACITY))
}

/// Starts capturing trace events (clears any previous log).
pub fn enable() {
    ring().clear();
    ENABLED.store(true, Ordering::SeqCst);
}

/// Stops capturing and returns the captured events (the newest
/// [`TRACE_CAPACITY`]; older lines were overwritten).
pub fn disable() -> Vec<String> {
    ENABLED.store(false, Ordering::SeqCst);
    ring().drain()
}

/// Lines lost to the ring's bound since [`enable`] (0 unless the trace
/// outgrew [`TRACE_CAPACITY`]).
pub fn dropped() -> u64 {
    RING.get().map_or(0, TextRing::dropped)
}

/// Records an event; the closure runs only when tracing is enabled.
///
/// The closure is evaluated *before* the ring lock is taken: trace closures
/// may perform gated simulator steps (e.g. reading a status word), and
/// holding the lock across a step gate would deadlock the scheduler.
#[inline]
pub fn emit(f: impl FnOnce() -> String) {
    if ENABLED.load(Ordering::Relaxed) {
        let line = f();
        ring().push(line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_capture_roundtrip() {
        emit(|| "dropped".to_string());
        enable();
        emit(|| "kept".to_string());
        assert_eq!(dropped(), 0);
        let log = disable();
        assert_eq!(log, vec!["kept".to_string()]);
        emit(|| "dropped again".to_string());
        enable();
        assert!(disable().is_empty());
    }
}
