//! Epoch lifecycle for the shared arena: quiescent batch resets that make
//! timed runs unbounded by the tag space.
//!
//! The tagged-write idempotence scheme guarantees at-most-once application
//! *per heap lifetime*, and the per-process attempt counters that back it
//! are finite (see `wfl_idem::tag`). A run that should last longer than one
//! tag space therefore proceeds in **epochs**: batches of attempts
//! separated by quiescent points at which one thread rewinds the heap
//! ([`Heap::reset_to_quiescent`]) and the per-process tag counters are
//! rewound (`TagSource::reset`), after which the workload's root records
//! are re-created from scratch.
//!
//! Rewinding tags is sound exactly because the reset is quiescent: every
//! record a helper could still be poised to apply — descriptors, frames,
//! operation logs — lives above the epoch mark and is zeroed, and every
//! worker is parked at the barrier, so no pre-reset observation survives
//! into the new epoch. See `DESIGN.md` §1.1.
//!
//! Two pieces implement the protocol:
//!
//! * [`EpochState`] — the heap watermark to rewind to, plus the epoch
//!   counter and the arena high-water mark (both reported by benchmarks).
//! * [`EpochSync`] — the rendezvous: every worker calls
//!   [`EpochSync::arrive`] at the end of its batch; the last arrival
//!   becomes the *leader*, performs the boundary work (aggregate outcomes,
//!   check safety, reset, re-root) while everyone else is parked, and
//!   [`EpochSync::release`]s them with a continue/stop decision.
//!
//! [`run_epoch_worker`] packages the per-worker loop (batch → rendezvous →
//! maybe-lead → resume) so drivers only supply the batch body and the
//! leader's boundary closure.

use crate::ctx::Ctx;
use crate::heap::{Heap, HeapMark};
use parking_lot::{Condvar, Mutex};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// The heap rewind point and per-run epoch accounting shared by all
/// workers. High-water marks are tracked **per allocation lane** (one per
/// process plus the root lane; a single lane in
/// [`crate::heap::AllocMode::Global`] mode), so arena-pressure reports show
/// where the words went, not just how many.
#[derive(Debug)]
pub struct EpochState {
    mark: HeapMark,
    epochs: AtomicU64,
    /// Max over boundaries of the words handed out at that boundary,
    /// summed over lanes — a single epoch's peak, so it can never exceed
    /// the arena capacity.
    total_high: AtomicUsize,
    /// Per-lane maxima (each lane's own peak, possibly from different
    /// epochs — their sum can exceed [`EpochState::high_water`]).
    high_water: Box<[AtomicUsize]>,
}

impl EpochState {
    /// Captures the current allocator state (shared cursors plus every
    /// lane's position) as the epoch mark. Create this **before**
    /// allocating any per-epoch roots: everything above the mark is wiped
    /// at each boundary.
    pub fn new(heap: &Heap) -> EpochState {
        let mark = heap.mark();
        let mut hw = Vec::with_capacity(heap.lane_count());
        hw.resize_with(heap.lane_count(), || AtomicUsize::new(0));
        EpochState {
            mark,
            epochs: AtomicU64::new(0),
            total_high: AtomicUsize::new(0),
            high_water: hw.into_boxed_slice(),
        }
    }

    /// The rewind point epochs return to.
    pub fn mark(&self) -> &HeapMark {
        &self.mark
    }

    /// Number of epochs completed so far (boundary crossings, including the
    /// final boundary recorded by [`EpochState::finish`]).
    pub fn epochs(&self) -> u64 {
        self.epochs.load(Ordering::SeqCst)
    }

    /// Highest usage observed at any single epoch boundary (words handed
    /// out, summed over every lane at that boundary) — bounded by the
    /// arena capacity.
    pub fn high_water(&self) -> usize {
        self.total_high.load(Ordering::SeqCst)
    }

    /// Per-lane high-water marks (index = lane = pid; the trailing entry is
    /// the root lane's setup/re-root allocations). Each entry is that
    /// lane's own peak — possibly from different epochs, so the vector may
    /// sum past [`EpochState::high_water`].
    pub fn high_water_lanes(&self) -> Vec<usize> {
        self.high_water.iter().map(|w| w.load(Ordering::SeqCst)).collect()
    }

    /// Records every lane's current usage into its high-water mark, and
    /// this boundary's total into the scalar high water.
    pub fn observe(&self, heap: &Heap) {
        let mut total = 0;
        for (lane, hw) in self.high_water.iter().enumerate() {
            let used = heap.lane_used(lane);
            hw.fetch_max(used, Ordering::SeqCst);
            total += used;
        }
        self.total_high.fetch_max(total, Ordering::SeqCst);
    }

    /// Closes an epoch with a reset: records the high-water mark, rewinds
    /// the heap to the mark, and counts the epoch. Leader-only, and only
    /// while every other worker is parked at the [`EpochSync`] barrier (see
    /// [`Heap::reset_to_quiescent`] for the quiescence contract).
    pub fn advance(&self, heap: &Heap) {
        self.observe(heap);
        heap.reset_to_quiescent(&self.mark);
        self.epochs.fetch_add(1, Ordering::SeqCst);
    }

    /// Closes the final epoch without a reset (the run is over; the heap is
    /// left intact for post-run inspection).
    pub fn finish(&self, heap: &Heap) {
        self.observe(heap);
        self.epochs.fetch_add(1, Ordering::SeqCst);
    }
}

/// What [`EpochSync::arrive`] resolved to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arrival {
    /// This caller arrived last: it must perform the boundary work and then
    /// [`EpochSync::release`] the others.
    Leader,
    /// Another caller led; the payload is the leader's continue decision
    /// (`false` = the run is over, do not start another epoch).
    Follower(bool),
}

#[derive(Debug)]
struct SyncState {
    expected: usize,
    arrived: usize,
    departed: usize,
    generation: u64,
    decision: bool,
    /// Set when any member departs (normal exit or unwind). All subsequent
    /// decisions are forced to "stop" so the surviving workers wind down
    /// instead of waiting for a member that will never arrive.
    aborted: bool,
}

/// The epoch rendezvous barrier (see module docs).
///
/// Built on a mutex + condvar rather than a spinning sense-reversal
/// barrier: epoch boundaries are cold (one per thousands of attempts), and
/// the mutex doubles as the happens-before edge that makes the leader's
/// quiescent heap reset sound.
#[derive(Debug)]
pub struct EpochSync {
    state: Mutex<SyncState>,
    cv: Condvar,
}

impl EpochSync {
    /// A barrier for `members` workers.
    ///
    /// # Panics
    /// Panics if `members` is zero.
    pub fn new(members: usize) -> EpochSync {
        assert!(members > 0, "an epoch barrier needs at least one member");
        EpochSync {
            state: Mutex::new(SyncState {
                expected: members,
                arrived: 0,
                departed: 0,
                generation: 0,
                decision: false,
                aborted: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Number of members the barrier was created for.
    pub fn members(&self) -> usize {
        self.state.lock().expected
    }

    /// Rendezvous at an epoch boundary. The last live member to arrive
    /// returns [`Arrival::Leader`] immediately (the others stay parked
    /// until it calls [`EpochSync::release`]); everyone else blocks and
    /// returns [`Arrival::Follower`] with the leader's decision.
    pub fn arrive(&self) -> Arrival {
        let mut s = self.state.lock();
        s.arrived += 1;
        if s.arrived >= s.expected.saturating_sub(s.departed) {
            return Arrival::Leader;
        }
        let gen = s.generation;
        while s.generation == gen {
            self.cv.wait(&mut s);
        }
        Arrival::Follower(s.decision)
    }

    /// Leader-only: publishes the continue/stop decision and wakes every
    /// follower. Returns the *effective* decision, which is forced to
    /// `false` if any member has departed.
    pub fn release(&self, cont: bool) -> bool {
        let mut s = self.state.lock();
        let effective = cont && !s.aborted;
        s.decision = effective;
        s.arrived = 0;
        s.generation += 1;
        self.cv.notify_all();
        effective
    }

    /// Registers the caller as a barrier member for the duration of the
    /// returned guard. Dropping the guard (normal return *or* unwind)
    /// departs the member, so a worker that dies can never strand the
    /// others at the barrier.
    pub fn member(&self) -> EpochMember<'_> {
        EpochMember { sync: self }
    }

    fn depart(&self) {
        let mut s = self.state.lock();
        s.departed += 1;
        s.aborted = true;
        if s.arrived > 0 && s.arrived >= s.expected.saturating_sub(s.departed) {
            // Everyone still present is already parked waiting: nobody is
            // left to become leader, so close the cycle with a stop
            // decision on their behalf.
            s.decision = false;
            s.arrived = 0;
            s.generation += 1;
            self.cv.notify_all();
        }
    }
}

/// RAII membership in an [`EpochSync`]; see [`EpochSync::member`].
#[derive(Debug)]
pub struct EpochMember<'a> {
    sync: &'a EpochSync,
}

impl Drop for EpochMember<'_> {
    fn drop(&mut self) {
        self.sync.depart();
    }
}

/// One worker's epoch loop: run `epoch_body` for the current epoch,
/// rendezvous, have exactly one worker run `boundary` (returning whether to
/// open another epoch), and resume or exit accordingly.
///
/// `boundary` runs while every other worker is parked — it is the one place
/// where [`EpochState::advance`] / [`Heap::reset_to_quiescent`] and root
/// re-creation are sound. If it panics (a failed safety check, an exhausted
/// heap), the followers are released with a stop decision before the panic
/// propagates, so the run ends loudly instead of hanging.
pub fn run_epoch_worker(
    ctx: &Ctx<'_>,
    sync: &EpochSync,
    mut epoch_body: impl FnMut(&Ctx<'_>, u64),
    boundary: impl Fn(&Ctx<'_>, u64) -> bool,
) {
    let _member = sync.member();
    let mut epoch = 0u64;
    loop {
        epoch_body(ctx, epoch);
        let cont = match sync.arrive() {
            Arrival::Leader => match std::panic::catch_unwind(AssertUnwindSafe(|| boundary(ctx, epoch))) {
                Ok(c) => sync.release(c),
                Err(payload) => {
                    sync.release(false);
                    std::panic::resume_unwind(payload);
                }
            },
            Arrival::Follower(c) => c,
        };
        if !cont {
            break;
        }
        epoch += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn state_tracks_mark_epochs_and_high_water() {
        let heap = Heap::new(256);
        let _persistent = heap.alloc_root(4);
        let state = EpochState::new(&heap);
        let used_at_mark = heap.used();
        assert_eq!(state.epochs(), 0);

        let t = heap.alloc_root(32);
        heap.poke(t, 11);
        state.advance(&heap);
        assert_eq!(state.epochs(), 1);
        // High water is per-lane words handed out: the root lane carried
        // the persistent root plus the transient.
        assert_eq!(state.high_water(), 4 + 32);
        let lanes = state.high_water_lanes();
        assert_eq!(lanes[heap.root_lane()], 4 + 32, "root lane carries all of it");
        assert!(lanes[..heap.root_lane()].iter().all(|&w| w == 0));
        assert_eq!(heap.used(), used_at_mark, "advance rewinds to the mark");
        assert_eq!(heap.peek(t), 0, "transient region zeroed");

        heap.alloc_root(8);
        state.finish(&heap);
        assert_eq!(state.epochs(), 2);
        assert_eq!(state.high_water(), 4 + 32, "high water keeps the maximum");
        assert!(heap.used() > used_at_mark, "finish does not reset");
    }

    #[test]
    fn barrier_elects_one_leader_per_generation_and_delivers_decisions() {
        let sync = EpochSync::new(4);
        let leaders = AtomicUsize::new(0);
        let continues = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for round in 0..3 {
                        let cont = match sync.arrive() {
                            Arrival::Leader => {
                                leaders.fetch_add(1, Ordering::SeqCst);
                                sync.release(round < 2)
                            }
                            Arrival::Follower(c) => c,
                        };
                        assert_eq!(cont, round < 2, "round {round}");
                        if cont {
                            continues.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                });
            }
        });
        assert_eq!(leaders.load(Ordering::SeqCst), 3, "exactly one leader per generation");
        assert_eq!(continues.load(Ordering::SeqCst), 8, "4 workers x 2 continue rounds");
    }

    #[test]
    fn departed_member_does_not_strand_waiters() {
        let sync = EpochSync::new(3);
        std::thread::scope(|scope| {
            for _ in 0..2 {
                scope.spawn(|| {
                    // Both survivors arrive; the third member departs
                    // instead. Whoever completes the cycle must deliver a
                    // stop decision everywhere.
                    let cont = match sync.arrive() {
                        Arrival::Leader => sync.release(true),
                        Arrival::Follower(c) => c,
                    };
                    assert!(!cont, "departure must force a stop decision");
                });
            }
            scope.spawn(|| {
                let member = sync.member();
                std::thread::sleep(std::time::Duration::from_millis(20));
                drop(member); // departs without ever arriving
            });
        });
    }

    #[test]
    fn worker_loop_runs_boundary_once_per_epoch() {
        let heap = Heap::new(1 << 10);
        let state = EpochState::new(&heap);
        let sync = EpochSync::new(2);
        let bodies = AtomicUsize::new(0);
        let boundaries = AtomicUsize::new(0);
        let report = crate::real::run_threads(&heap, 2, 1, None, |_pid| {
            let (sync, state, bodies, boundaries) = (&sync, &state, &bodies, &boundaries);
            move |ctx: &Ctx| {
                run_epoch_worker(
                    ctx,
                    sync,
                    |ctx, _epoch| {
                        ctx.alloc(16);
                        bodies.fetch_add(1, Ordering::SeqCst);
                    },
                    |ctx, epoch| {
                        boundaries.fetch_add(1, Ordering::SeqCst);
                        if epoch < 2 {
                            state.advance(ctx.heap());
                            true
                        } else {
                            state.finish(ctx.heap());
                            false
                        }
                    },
                );
            }
        });
        report.assert_clean();
        assert_eq!(bodies.load(Ordering::SeqCst), 6, "2 workers x 3 epochs");
        assert_eq!(boundaries.load(Ordering::SeqCst), 3, "one leader per epoch");
        assert_eq!(state.epochs(), 3);
        // Each epoch allocated 2x16 words above the (empty) mark; resets
        // rewound them, so the high water is one epoch's worth: 16 words in
        // each worker's lane, nothing in the root lane.
        assert_eq!(state.high_water(), 32);
        let lanes = state.high_water_lanes();
        assert_eq!((lanes[0], lanes[1]), (16, 16), "one slabful of usage per worker lane");
        assert_eq!(lanes[heap.root_lane()], 0);
    }

    #[test]
    fn leader_panic_releases_followers_with_stop() {
        let heap = Heap::new(1 << 8);
        let sync = EpochSync::new(2);
        let report = crate::real::run_threads(&heap, 2, 1, None, |_pid| {
            let sync = &sync;
            move |ctx: &Ctx| {
                run_epoch_worker(
                    ctx,
                    sync,
                    |_ctx, _epoch| {},
                    |_ctx, _epoch| panic!("boundary check failed"),
                );
            }
        });
        // Exactly one worker (the leader) panicked; the follower exited
        // cleanly instead of hanging at the barrier.
        assert_eq!(report.panics.len(), 1);
        assert!(report.panics[0].1.contains("boundary check failed"));
    }
}
