//! Active set objects (§5 of Ben-David & Blelloch, PODC 2022).
//!
//! Each lock in the lock algorithm is represented by an **active set**
//! object (Algorithm 1): a linearizable set supporting `insert`, `remove`
//! and `getSet`, adaptive to the set size — `insert`/`remove` take `O(k)`
//! steps for `k` concurrent members, and publishing a snapshot pointer
//! makes `getSet` cheap.
//!
//! The system of locks is a **multi active set** (Algorithm 2): an item is
//! inserted into several sets at once, with a per-item *flag* (in the lock
//! algorithm, the descriptor's priority word) turning membership visible
//! atomically-enough: the multi active set is not linearizable but **set
//! regular** (Theorem 5.1), which §6.1 shows suffices for the fairness
//! argument.
//!
//! # Example
//!
//! ```
//! use wfl_runtime::{Heap, sim::SimBuilder, Ctx};
//! use wfl_activeset::ActiveSet;
//!
//! let heap = Heap::new(1 << 12);
//! let set = ActiveSet::create_root(&heap, 4);
//! let report = SimBuilder::new(&heap, 2)
//!     .spawn(move |ctx: &Ctx| {
//!         let slot = set.insert(ctx, 77);
//!         let mut out = Vec::new();
//!         set.get_set(ctx, &mut out);
//!         assert!(out.contains(&77));
//!         set.remove(ctx, slot);
//!     })
//!     .spawn(move |ctx: &Ctx| {
//!         let slot = set.insert(ctx, 88);
//!         set.remove(ctx, slot);
//!     })
//!     .run();
//! report.assert_clean();
//! ```

pub mod active_set;
pub mod multi;
pub mod shard;

pub use active_set::ActiveSet;
pub use multi::{get_members, get_members_by, multi_insert, multi_insert_into, multi_remove, Flag};
pub use shard::{create_sharded_roots, ShardMap};
