//! Algorithm 1: the linearizable active set.
//!
//! An announcements array of `C` slots (plus a permanent sentinel slot `C`
//! that resolves the pseudocode's off-by-one corner case, see DESIGN.md
//! §1.5). Each slot holds an `owner` word (the member item, or 0) and a
//! `set` word (a pointer to an immutable snapshot list of the members at
//! this slot and above). `insert` claims the first ownerless slot by CAS
//! and *climbs*: at every slot from its own down to 0, twice, it recomputes
//! `set(j) := set(j+1) ∪ owner(j)` and installs the result with CAS, so
//! membership information propagates to slot 0 where `getSet` reads it.
//!
//! Snapshot lists are cons cells in the shared arena. Every climb
//! installation allocates a **fresh** head node — installed pointers never
//! repeat — so a climb CAS can only succeed if the slot is unchanged since
//! it was read; stale climbers can never overwrite newer snapshots (the
//! pointer-reuse ABA that a literal reading of the pseudocode would allow).

use wfl_runtime::{Addr, Ctx, Heap, Placement, LINE_WORDS};

/// Handle to an active set object in the shared heap.
///
/// The handle is plain data (`Copy`) and can be freely shared; all state
/// lives in the heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActiveSet {
    base: Addr,
    capacity: u32,
    /// Words between consecutive slot bases: [`SLOT_WORDS`] packed (the
    /// historical back-to-back layout, 4 slots per cache line), or
    /// [`LINE_WORDS`] padded (each slot — and with it the hot owner word
    /// and its snapshot pointer — owns a full 64B line). The stride is
    /// pure address arithmetic: step sequences are identical either way.
    stride: u32,
}

/// List node: `[elem, next]`. `elem == 0` marks a copy-of-empty head node.
const NODE_WORDS: usize = 2;
const SLOT_WORDS: u32 = 2;

impl ActiveSet {
    /// Number of heap words an active set with `capacity` slots occupies
    /// in the packed layout.
    pub fn words(capacity: usize) -> usize {
        Self::words_placed(capacity, Placement::Packed)
    }

    /// Number of heap words an active set with `capacity` slots occupies
    /// under `placement` (excluding alignment slack).
    pub fn words_placed(capacity: usize, placement: Placement) -> usize {
        let stride = match placement {
            Placement::Packed => SLOT_WORDS as usize,
            Placement::Padded => LINE_WORDS,
        };
        (capacity + 1) * stride
    }

    /// Creates an active set with room for `capacity` concurrent members
    /// (the paper sizes this at the contention bound `κ`, or at the number
    /// of processes `P` for the unknown-bounds variant). Harness setup.
    /// Packed layout (kept byte-compatible for address-pinned tests); the
    /// harness default goes through [`ActiveSet::create_root_placed`].
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn create_root(heap: &Heap, capacity: usize) -> ActiveSet {
        Self::create_root_placed(heap, capacity, Placement::Packed)
    }

    /// Creates an active set under an explicit [`Placement`]. Padded sets
    /// get a line-aligned base and one cache line per slot, so concurrent
    /// claims of different slots (and the sentinel) never false-share.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn create_root_placed(heap: &Heap, capacity: usize, placement: Placement) -> ActiveSet {
        assert!(capacity > 0, "active set capacity must be positive");
        let words = Self::words_placed(capacity, placement);
        // All words zero: every owner empty, every snapshot pointer empty,
        // including the sentinel slot `capacity`.
        let (base, stride) = match placement {
            Placement::Packed => (heap.alloc_root(words), SLOT_WORDS),
            Placement::Padded => (heap.alloc_root_aligned(words), LINE_WORDS as u32),
        };
        ActiveSet { base, capacity: capacity as u32, stride }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity as usize
    }

    /// The placement this set was created under.
    pub fn placement(&self) -> Placement {
        if self.stride == SLOT_WORDS {
            Placement::Packed
        } else {
            Placement::Padded
        }
    }

    /// The heap address of the first slot (tests and shard accounting).
    pub fn base(&self) -> Addr {
        self.base
    }

    #[inline]
    fn owner_addr(&self, slot: u32) -> Addr {
        self.base.off(slot * self.stride)
    }

    #[inline]
    fn set_addr(&self, slot: u32) -> Addr {
        self.base.off(slot * self.stride + 1)
    }

    /// Inserts `item` (nonzero), returning the slot index to pass to
    /// [`ActiveSet::remove`]. Takes `O(k)` steps where `k` bounds the
    /// concurrent members plus in-flight inserts.
    ///
    /// # Panics
    /// Panics if `item` is zero or no slot is free (point contention
    /// exceeded the configured capacity — a misconfigured `κ`).
    pub fn insert(&self, ctx: &Ctx<'_>, item: u64) -> usize {
        assert!(item != 0, "item 0 is reserved for empty slots");
        for i in 0..self.capacity {
            // The claim CAS is the publication point of `item`'s record
            // (AcqRel under the tiered ordering); the scan is Acquire.
            if ctx.read_acq(self.owner_addr(i)) == 0
                && ctx.cas_bool_sync(self.owner_addr(i), 0, item)
            {
                self.climb(ctx, i);
                return i as usize;
            }
        }
        panic!(
            "active set of capacity {} is full: point contention exceeded the configured bound",
            self.capacity
        );
    }

    /// Removes the item previously inserted at `slot`.
    ///
    /// # Panics
    /// Panics if `slot` is out of range.
    pub fn remove(&self, ctx: &Ctx<'_>, slot: usize) {
        assert!(slot < self.capacity as usize, "slot {slot} out of range");
        ctx.write_rel(self.owner_addr(slot as u32), 0);
        self.climb(ctx, slot as u32);
    }

    /// Reads the current membership snapshot into `out` (deduplicated,
    /// unordered). The snapshot pointer read is a single step; walking
    /// costs `O(k)`.
    pub fn get_set(&self, ctx: &Ctx<'_>, out: &mut Vec<u64>) {
        out.clear();
        // Acquire loads: the snapshot pointer was installed by a Release
        // CAS, so chasing it observes fully-initialized cons cells.
        let mut node = ctx.read_acq(self.set_addr(0));
        while node != 0 {
            let a = Addr::from_word(node);
            let elem = ctx.read_acq(a);
            if elem != 0 && !out.contains(&elem) {
                out.push(elem);
            }
            node = ctx.read_acq(a.off(1));
        }
    }

    /// Uncounted inspection of the current slot owners (harness,
    /// controllers, and debugging; not part of the algorithm).
    pub fn peek_owners(&self, heap: &Heap) -> Vec<u64> {
        (0..self.capacity)
            .map(|i| heap.peek(self.owner_addr(i)))
            .filter(|&o| o != 0)
            .collect()
    }

    /// Propagates ownership changes from `slot` down to slot 0 (two passes
    /// per level, as in Algorithm 1).
    fn climb(&self, ctx: &Ctx<'_>, slot: u32) {
        for j in (0..=slot).rev() {
            for _pass in 0..2 {
                let cur = ctx.read_acq(self.set_addr(j));
                // Slot j+1 is either a real slot or the permanent sentinel.
                let above = ctx.read_acq(self.set_addr(j + 1));
                let owner = ctx.read_acq(self.owner_addr(j));
                // Build a FRESH head so installed pointers never repeat.
                let new = if owner != 0 {
                    cons(ctx, owner, above)
                } else if above != 0 {
                    // Copy the head of `above` (sharing its immutable tail).
                    let a = Addr::from_word(above);
                    let elem = ctx.read_acq(a);
                    let next = ctx.read_acq(a.off(1));
                    cons(ctx, elem, next)
                } else {
                    // Empty result: a fresh empty-marker node.
                    cons(ctx, 0, 0)
                };
                // The install CAS releases the freshly-written node to
                // every future Acquire reader of the snapshot pointer.
                ctx.cas_bool_sync(self.set_addr(j), cur, new);
            }
        }
    }
}

/// Allocates an immutable list node. The node is private until the climb's
/// install CAS publishes it, so Release writes suffice for its fields.
fn cons(ctx: &Ctx<'_>, elem: u64, next: u64) -> u64 {
    let n = ctx.alloc(NODE_WORDS);
    ctx.write_rel(n, elem);
    ctx.write_rel(n.off(1), next);
    n.to_word()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfl_runtime::schedule::{RoundRobin, SeededRandom};
    use wfl_runtime::sim::SimBuilder;

    fn with_one_proc(capacity: usize, body: impl FnOnce(&Ctx<'_>, ActiveSet) + Send) -> Heap {
        let heap = Heap::new(1 << 16);
        let set = ActiveSet::create_root(&heap, capacity);
        let report = SimBuilder::new(&heap, 1).spawn(move |ctx: &Ctx| body(ctx, set)).run();
        report.assert_clean();
        heap
    }

    #[test]
    fn insert_then_getset_sees_item() {
        with_one_proc(4, |ctx, set| {
            set.insert(ctx, 42);
            let mut out = Vec::new();
            set.get_set(ctx, &mut out);
            assert_eq!(out, vec![42]);
        });
    }

    #[test]
    fn remove_clears_membership() {
        with_one_proc(4, |ctx, set| {
            let s = set.insert(ctx, 42);
            set.remove(ctx, s);
            let mut out = Vec::new();
            set.get_set(ctx, &mut out);
            assert!(out.is_empty(), "got {out:?}");
        });
    }

    #[test]
    fn multiple_members_all_visible() {
        with_one_proc(8, |ctx, set| {
            for item in [5u64, 6, 7] {
                set.insert(ctx, item);
            }
            let mut out = Vec::new();
            set.get_set(ctx, &mut out);
            out.sort_unstable();
            assert_eq!(out, vec![5, 6, 7]);
        });
    }

    #[test]
    fn slots_are_reused_after_remove() {
        with_one_proc(2, |ctx, set| {
            // Capacity 2 suffices for 100 sequential insert/remove pairs.
            for i in 0..100u64 {
                let s = set.insert(ctx, i + 1);
                assert_eq!(s, 0, "sequential inserts reuse slot 0");
                set.remove(ctx, s);
            }
        });
    }

    #[test]
    fn interleaved_insert_remove_pairs() {
        with_one_proc(4, |ctx, set| {
            let s1 = set.insert(ctx, 1);
            let s2 = set.insert(ctx, 2);
            assert_ne!(s1, s2);
            set.remove(ctx, s1);
            let s3 = set.insert(ctx, 3);
            let mut out = Vec::new();
            set.get_set(ctx, &mut out);
            out.sort_unstable();
            assert_eq!(out, vec![2, 3]);
            set.remove(ctx, s2);
            set.remove(ctx, s3);
        });
    }

    #[test]
    fn concurrent_inserts_get_distinct_slots_and_all_become_visible() {
        for seed in 0..25 {
            let heap = Heap::new(1 << 16);
            let set = ActiveSet::create_root(&heap, 8);
            let slots = heap.alloc_root(4);
            let report = SimBuilder::new(&heap, 4)
                .schedule(SeededRandom::new(4, seed))
                .spawn_all(|pid| {
                    move |ctx: &Ctx| {
                        let s = set.insert(ctx, pid as u64 + 1);
                        ctx.write(slots.off(pid as u32), s as u64 + 1);
                    }
                })
                .run();
            report.assert_clean();
            // Distinct slots.
            let mut claimed: Vec<u64> = (0..4).map(|i| heap.peek(slots.off(i))).collect();
            claimed.sort_unstable();
            claimed.dedup();
            assert_eq!(claimed.len(), 4, "seed {seed}: duplicate slots {claimed:?}");
            // After quiescence, slot 0's snapshot contains all four.
            let snapshot_probe = SimBuilder::new(&heap, 1)
                .spawn(move |ctx: &Ctx| {
                    let mut out = Vec::new();
                    set.get_set(ctx, &mut out);
                    out.sort_unstable();
                    assert_eq!(out, vec![1, 2, 3, 4], "completed inserts must be visible");
                })
                .run();
            snapshot_probe.assert_clean();
        }
    }

    #[test]
    fn insert_steps_are_bounded_by_capacity_factor() {
        // Theorem 5.2: O(κ) steps per operation (κ = capacity here).
        for &cap in &[2usize, 4, 8, 16] {
            let heap = Heap::new(1 << 18);
            let set = ActiveSet::create_root(&heap, cap);
            let report = SimBuilder::new(&heap, 1)
                .schedule(RoundRobin::new(1))
                .spawn(move |ctx: &Ctx| {
                    let s = set.insert(ctx, 9);
                    set.remove(ctx, s);
                })
                .run();
            report.assert_clean();
            let steps = report.steps[0];
            // insert+remove with empty set: climb from slot 0 both times.
            // Must not scale with capacity when the set is near-empty.
            assert!(steps < 80, "cap {cap}: insert+remove took {steps} steps");
        }
    }

    #[test]
    fn padded_placement_isolates_slots_on_distinct_lines() {
        let heap = Heap::new(1 << 12);
        let set = ActiveSet::create_root_placed(&heap, 4, Placement::Padded);
        assert_eq!(set.placement(), Placement::Padded);
        assert_eq!(set.base().0 as usize % LINE_WORDS, 0, "base is line-aligned");
        for i in 0..=4u32 {
            // Slot i (including the sentinel) starts on its own line.
            let owner = set.owner_addr(i).0 as usize;
            assert_eq!(owner % LINE_WORDS, 0, "slot {i} owner not line-aligned");
            assert_eq!(owner / LINE_WORDS, set.base().0 as usize / LINE_WORDS + i as usize);
        }
    }

    #[test]
    fn padded_placement_preserves_semantics() {
        let heap = Heap::new(1 << 16);
        let set = ActiveSet::create_root_placed(&heap, 4, Placement::Padded);
        let report = SimBuilder::new(&heap, 1)
            .spawn(move |ctx: &Ctx| {
                let s1 = set.insert(ctx, 1);
                let s2 = set.insert(ctx, 2);
                let mut out = Vec::new();
                set.get_set(ctx, &mut out);
                out.sort_unstable();
                assert_eq!(out, vec![1, 2]);
                set.remove(ctx, s1);
                set.get_set(ctx, &mut out);
                assert_eq!(out, vec![2]);
                set.remove(ctx, s2);
            })
            .run();
        report.assert_clean();
    }

    #[test]
    fn placement_does_not_change_counted_steps() {
        // The E13 A/B contract: placement is pure address arithmetic, so a
        // deterministic schedule takes the identical step sequence under
        // either layout.
        let steps_for = |placement: Placement| {
            let heap = Heap::new(1 << 16);
            let set = ActiveSet::create_root_placed(&heap, 4, placement);
            let report = SimBuilder::new(&heap, 2)
                .schedule(SeededRandom::new(2, 77))
                .spawn_all(|pid| {
                    move |ctx: &Ctx| {
                        for round in 0..10u64 {
                            let s = set.insert(ctx, (pid as u64) * 100 + round + 1);
                            let mut out = Vec::new();
                            set.get_set(ctx, &mut out);
                            set.remove(ctx, s);
                        }
                    }
                })
                .run();
            report.assert_clean();
            report.steps
        };
        assert_eq!(steps_for(Placement::Packed), steps_for(Placement::Padded));
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn zero_item_rejected() {
        let heap = Heap::new(1 << 10);
        let set = ActiveSet::create_root(&heap, 2);
        let report = SimBuilder::new(&heap, 1)
            .spawn(move |ctx: &Ctx| {
                set.insert(ctx, 0);
            })
            .run();
        // insert panics inside the body; surface it.
        if let Some((_pid, msg)) = report.panics.first() {
            panic!("{}", msg);
        }
    }

    #[test]
    fn overflow_reports_misconfigured_contention() {
        let heap = Heap::new(1 << 12);
        let set = ActiveSet::create_root(&heap, 2);
        let report = SimBuilder::new(&heap, 1)
            .spawn(move |ctx: &Ctx| {
                set.insert(ctx, 1);
                set.insert(ctx, 2);
                set.insert(ctx, 3); // third concurrent member: over capacity
            })
            .run();
        assert_eq!(report.panics.len(), 1);
        assert!(report.panics[0].1.contains("point contention"));
    }
}
