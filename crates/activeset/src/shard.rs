//! Lock-neighborhood sharding of the multi active set.
//!
//! A multi active set over `N` locks used to allocate its per-lock sets
//! back-to-back, so slot arrays and snapshot pointers of *unrelated* locks
//! shared cache lines: insert/remove traffic on lock `i` invalidated reads
//! on lock `i±1` even with zero logical contention. Sharding groups the
//! lock ids into contiguous *neighborhoods* and gives each neighborhood a
//! line-aligned block of the arena, fronted by a metadata/guard line, so
//! operations on locks in different shards touch disjoint cache lines.
//!
//! Routing is a **pure function of the lock id** (`id / per_shard`): it
//! consults no runtime state, so sim replays are deterministic and epoch
//! re-rooting reproduces the same geometry every time (the shard blocks
//! are simply re-allocated in the same order after the quiescent rewind,
//! exactly like the unsharded roots were).

use crate::active_set::ActiveSet;
use wfl_runtime::{Heap, Placement, LINE_WORDS};

/// The routing geometry of a sharded multi active set: which of `nshards`
/// contiguous neighborhoods each lock id belongs to.
///
/// Plain `Copy` data; safe to capture in process bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    nsets: usize,
    nshards: usize,
    per_shard: usize,
}

impl ShardMap {
    /// Builds the routing map for `nsets` lock ids over (at most)
    /// `nshards` neighborhoods. The shard count is clamped to `nsets`
    /// (an empty shard would be a wasted guard line), and the effective
    /// count is recomputed from the rounded-up neighborhood width so
    /// every shard is non-empty.
    ///
    /// # Panics
    /// Panics if `nsets` or `nshards` is zero.
    pub fn new(nsets: usize, nshards: usize) -> ShardMap {
        assert!(nsets > 0, "a multi active set needs at least one set");
        assert!(nshards > 0, "at least one shard required");
        let per_shard = nsets.div_ceil(nshards.min(nsets));
        let nshards = nsets.div_ceil(per_shard);
        ShardMap { nsets, nshards, per_shard }
    }

    /// The shard owning lock `id`. Pure arithmetic — no heap reads, no
    /// state — so routing is identical on every replay and across both
    /// execution backends.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[inline]
    pub fn shard_of(&self, id: usize) -> usize {
        assert!(id < self.nsets, "lock id {id} out of range (nsets {})", self.nsets);
        id / self.per_shard
    }

    /// Number of sets routed through this map.
    pub fn nsets(&self) -> usize {
        self.nsets
    }

    /// Effective number of (non-empty) shards.
    pub fn nshards(&self) -> usize {
        self.nshards
    }

    /// Lock ids belonging to `shard`, as a contiguous range.
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    pub fn members(&self, shard: usize) -> std::ops::Range<usize> {
        assert!(shard < self.nshards, "shard {shard} out of range");
        let start = shard * self.per_shard;
        start..((start + self.per_shard).min(self.nsets))
    }
}

/// Allocates `nsets` active sets of `capacity` slots grouped into the
/// neighborhoods of a [`ShardMap`], returning the map and the sets indexed
/// by lock id. Each shard's block starts with a line-aligned metadata line
/// (`[shard_index + 1, member_count, 0...]`) that doubles as a guard: even
/// under [`Placement::Packed`] within a shard, adjacent shards never share
/// a boundary cache line.
///
/// Called at harness setup and again by the epoch leader after each
/// quiescent rewind (re-rooting); allocation order is deterministic, so
/// the geometry is identical every epoch and every replay.
///
/// # Panics
/// Panics on a zero `nsets`/`capacity`/`nshards`, or on heap exhaustion.
pub fn create_sharded_roots(
    heap: &Heap,
    nsets: usize,
    capacity: usize,
    placement: Placement,
    nshards: usize,
) -> (ShardMap, Vec<ActiveSet>) {
    let map = ShardMap::new(nsets, nshards);
    let mut sets = Vec::with_capacity(nsets);
    for shard in 0..map.nshards() {
        let members = map.members(shard);
        // The metadata/guard line. Uncounted pokes: this is setup, and the
        // words are only read by `peek`-style diagnostics afterwards.
        let meta = heap.alloc_root_aligned(LINE_WORDS);
        heap.poke(meta, shard as u64 + 1);
        heap.poke(meta.off(1), members.len() as u64);
        for _id in members {
            sets.push(ActiveSet::create_root_placed(heap, capacity, placement));
        }
    }
    (map, sets)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_covers_every_id_contiguously() {
        for nsets in 1..40 {
            for nshards in 1..10 {
                let map = ShardMap::new(nsets, nshards);
                assert!(map.nshards() <= nshards.min(nsets));
                // Every id routes to exactly the shard whose member range
                // contains it, and shards tile 0..nsets without gaps.
                let mut covered = 0;
                for s in 0..map.nshards() {
                    let r = map.members(s);
                    assert_eq!(r.start, covered, "gap before shard {s}");
                    assert!(!r.is_empty(), "empty shard {s}");
                    for id in r.clone() {
                        assert_eq!(map.shard_of(id), s);
                    }
                    covered = r.end;
                }
                assert_eq!(covered, nsets);
            }
        }
    }

    #[test]
    fn routing_is_pure_and_stable() {
        let map = ShardMap::new(16, 4);
        let first: Vec<usize> = (0..16).map(|id| map.shard_of(id)).collect();
        // A copy of the map (it is plain data) routes identically, and
        // repeated queries never change the answer.
        let copy = map;
        for (id, &shard) in first.iter().enumerate() {
            assert_eq!(copy.shard_of(id), shard);
            assert_eq!(map.shard_of(id), shard);
        }
    }

    #[test]
    fn sharded_roots_isolate_neighborhoods_by_cache_line() {
        let heap = Heap::new(1 << 16);
        let (map, sets) = create_sharded_roots(&heap, 8, 2, Placement::Padded, 4);
        assert_eq!(sets.len(), 8);
        // No two sets in different shards may overlap a cache line.
        let line_range = |set: &ActiveSet| {
            let lo = set.base().0 as usize / LINE_WORDS;
            let words = ActiveSet::words_placed(set.capacity(), Placement::Padded);
            let hi = (set.base().0 as usize + words - 1) / LINE_WORDS;
            lo..=hi
        };
        for a in 0..sets.len() {
            for b in (a + 1)..sets.len() {
                if map.shard_of(a) == map.shard_of(b) {
                    continue;
                }
                let (ra, rb) = (line_range(&sets[a]), line_range(&sets[b]));
                assert!(
                    ra.end() < rb.start() || rb.end() < ra.start(),
                    "sets {a} and {b} share a cache line across shards"
                );
            }
        }
    }

    #[test]
    fn packed_shards_still_have_guard_lines_between_them() {
        let heap = Heap::new(1 << 16);
        let (map, sets) = create_sharded_roots(&heap, 8, 2, Placement::Packed, 2);
        // The last set of shard 0 and the first set of shard 1 must sit on
        // different cache lines (the metadata line separates them).
        let end0 = map.members(0).end - 1;
        let start1 = map.members(1).start;
        let last_word_0 =
            sets[end0].base().0 as usize + ActiveSet::words_placed(2, Placement::Packed) - 1;
        let first_word_1 = sets[start1].base().0 as usize;
        assert!(
            last_word_0 / LINE_WORDS < first_word_1 / LINE_WORDS,
            "shard boundary shares a line: {last_word_0} vs {first_word_1}"
        );
    }

    #[test]
    fn geometry_reproduces_after_rewind() {
        // Epoch re-rooting contract: rewinding the heap and re-running the
        // same creation sequence yields byte-identical geometry.
        let heap = Heap::new(1 << 16);
        let mark = heap.mark();
        let (_, first) = create_sharded_roots(&heap, 6, 2, Placement::Padded, 3);
        let bases: Vec<u32> = first.iter().map(|s| s.base().0).collect();
        heap.reset_to_quiescent(&mark);
        let (_, second) = create_sharded_roots(&heap, 6, 2, Placement::Padded, 3);
        let bases2: Vec<u32> = second.iter().map(|s| s.base().0).collect();
        assert_eq!(bases, bases2);
    }
}
