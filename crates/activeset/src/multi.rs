//! Algorithm 2: the set-regular multi active set.
//!
//! A `multiInsert` inserts an item into several active sets and then raises
//! the item's *flag*; `multiRemove` lowers the flag and removes it from the
//! sets; a multi-`getSet` reads one active set's snapshot and filters it by
//! the flags. The flag makes the multi-insert appear atomic at the flag
//! write: any getSet starting after it sees the item in every set, any
//! getSet finishing before it sees it in none — **set regularity**
//! (Theorem 5.1; Theorem 5.2 gives `O(κ)` steps per set).
//!
//! The flag is abstracted as a [`Flag`] strategy because the lock algorithm
//! reuses the descriptor's priority word as the flag (clear = priority
//! `-1`, set = draw a random priority), and wraps the paper's fixed delay
//! inside the flag-raise; see `wfl-core`.

use crate::active_set::ActiveSet;
use wfl_runtime::Ctx;

/// Strategy for an item's visibility flag.
///
/// Implementations operate on whatever per-item word doubles as the flag
/// (a dedicated boolean, or the lock descriptor's priority field).
pub trait Flag {
    /// Lowers the flag of `item` (membership becomes invisible).
    fn clear(&self, ctx: &Ctx<'_>, item: u64);
    /// Raises the flag of `item` (membership becomes visible). In the lock
    /// algorithm this is the *reveal step* and includes the `T0` delay.
    fn set(&self, ctx: &Ctx<'_>, item: u64);
    /// Reads the flag of `item`.
    fn get(&self, ctx: &Ctx<'_>, item: u64) -> bool;
}

/// Inserts `item` into every set in `sets`, then raises its flag.
/// Returns the slot indices (one per set) to pass to [`multi_remove`].
///
/// Takes `O(κ)` steps per set (Theorem 5.2), plus the flag-raise cost.
/// Allocates the slot vector; hot paths use [`multi_insert_into`] with a
/// reused buffer instead.
pub fn multi_insert<F: Flag>(ctx: &Ctx<'_>, flag: &F, item: u64, sets: &[ActiveSet]) -> Vec<usize> {
    let mut slots = Vec::with_capacity(sets.len());
    multi_insert_into(ctx, flag, item, sets, &mut slots);
    slots
}

/// Allocation-free [`multi_insert`]: writes the slot indices into
/// `slots_out` (cleared first). The counted step sequence is identical.
pub fn multi_insert_into<F: Flag>(
    ctx: &Ctx<'_>,
    flag: &F,
    item: u64,
    sets: &[ActiveSet],
    slots_out: &mut Vec<usize>,
) {
    flag.clear(ctx, item);
    slots_out.clear();
    slots_out.extend(sets.iter().map(|s| s.insert(ctx, item)));
    flag.set(ctx, item);
}

/// Lowers `item`'s flag and removes it from every set (`slots` as returned
/// by the matching [`multi_insert`]).
///
/// # Panics
/// Panics if `slots` and `sets` have different lengths.
pub fn multi_remove<F: Flag>(ctx: &Ctx<'_>, flag: &F, item: u64, sets: &[ActiveSet], slots: &[usize]) {
    assert_eq!(sets.len(), slots.len(), "slots must match the multi_insert");
    flag.clear(ctx, item);
    for (set, &slot) in sets.iter().zip(slots) {
        set.remove(ctx, slot);
    }
}

/// Multi-active-set `getSet`: the members of `set` whose flags are raised.
pub fn get_members<F: Flag>(ctx: &Ctx<'_>, flag: &F, set: &ActiveSet, out: &mut Vec<u64>) {
    get_members_by(ctx, |ctx, item| flag.get(ctx, item), set, out);
}

/// Multi-active-set `getSet` with an arbitrary visibility predicate (the
/// lock algorithm filters by "priority revealed" or "participating",
/// which are two views of the same flag word).
pub fn get_members_by(
    ctx: &Ctx<'_>,
    keep: impl Fn(&Ctx<'_>, u64) -> bool,
    set: &ActiveSet,
    out: &mut Vec<u64>,
) {
    set.get_set(ctx, out);
    out.retain(|&item| keep(ctx, item));
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfl_runtime::schedule::SeededRandom;
    use wfl_runtime::sim::SimBuilder;
    use wfl_runtime::{Addr, Heap};

    /// Test flag: one heap word per item, at the item's address.
    struct WordFlag;
    impl Flag for WordFlag {
        fn clear(&self, ctx: &Ctx<'_>, item: u64) {
            ctx.write(Addr::from_word(item), 0);
        }
        fn set(&self, ctx: &Ctx<'_>, item: u64) {
            ctx.write(Addr::from_word(item), 1);
        }
        fn get(&self, ctx: &Ctx<'_>, item: u64) -> bool {
            ctx.read(Addr::from_word(item)) != 0
        }
    }

    #[test]
    fn insert_makes_item_visible_in_all_sets_remove_hides_it() {
        let heap = Heap::new(1 << 14);
        let sets = [ActiveSet::create_root(&heap, 4), ActiveSet::create_root(&heap, 4)];
        let item = heap.alloc_root(1).to_word();
        let report = SimBuilder::new(&heap, 1)
            .spawn(move |ctx: &Ctx| {
                let slots = multi_insert(ctx, &WordFlag, item, &sets);
                let mut out = Vec::new();
                for s in &sets {
                    get_members(ctx, &WordFlag, s, &mut out);
                    assert_eq!(out, vec![item], "visible in every set");
                }
                multi_remove(ctx, &WordFlag, item, &sets, &slots);
                for s in &sets {
                    get_members(ctx, &WordFlag, s, &mut out);
                    assert!(out.is_empty(), "hidden after remove");
                }
            })
            .run();
        report.assert_clean();
    }

    #[test]
    fn unflagged_member_is_filtered() {
        let heap = Heap::new(1 << 14);
        let set = ActiveSet::create_root(&heap, 4);
        let item = heap.alloc_root(1).to_word();
        let report = SimBuilder::new(&heap, 1)
            .spawn(move |ctx: &Ctx| {
                WordFlag.clear(ctx, item);
                set.insert(ctx, item); // inserted but flag not yet raised
                let mut out = Vec::new();
                get_members(ctx, &WordFlag, &set, &mut out);
                assert!(out.is_empty(), "pre-reveal member must be invisible");
                WordFlag.set(ctx, item);
                get_members(ctx, &WordFlag, &set, &mut out);
                assert_eq!(out, vec![item]);
            })
            .run();
        report.assert_clean();
    }

    /// Set-regularity smoke test over concurrent executions: recorded as a
    /// history and validated with the interval-based checker.
    #[test]
    fn concurrent_history_is_set_regular() {
        use wfl_lincheck::regular::{assert_set_regular, MS_GETSET, MS_INSERT, MS_REMOVE};
        for seed in 0..20 {
            let heap = Heap::new(1 << 18);
            let nsets = 2usize;
            let sets = [ActiveSet::create_root(&heap, 6), ActiveSet::create_root(&heap, 6)];
            let items: Vec<u64> = (0..3).map(|_| heap.alloc_root(1).to_word()).collect();
            let items2 = items.clone();
            let report = SimBuilder::new(&heap, 4)
                .schedule(SeededRandom::new(4, 7000 + seed))
                // Three writers doing insert/remove cycles on their item.
                .spawn_all(move |pid| {
                    let items = items2.clone();
                    move |ctx: &Ctx| {
                        if pid < 3 {
                            let item = items[pid];
                            for _round in 0..3 {
                                // Record the insert on every set it covers.
                                ctx.invoke(MS_INSERT, item, 0);
                                let slots = multi_insert(ctx, &WordFlag, item, &sets);
                                ctx.respond(0, vec![]);
                                ctx.invoke(MS_REMOVE, item, 0);
                                multi_remove(ctx, &WordFlag, item, &sets, &slots);
                                ctx.respond(0, vec![]);
                            }
                        } else {
                            // A reader polling both sets.
                            let mut out = Vec::new();
                            for round in 0..10 {
                                let set_id = round % nsets;
                                ctx.invoke(MS_GETSET, 0, set_id as u64);
                                get_members(ctx, &WordFlag, &sets[set_id], &mut out);
                                ctx.respond(0, out.clone());
                            }
                        }
                    }
                })
                .run();
            report.assert_clean();
            // The history records inserts/removes with set id 0 only (the
            // recording wraps the whole multi op); expand to per-set events.
            let mut expanded = report.history.clone();
            let mut extra = Vec::new();
            for e in &mut expanded.events {
                if e.op == MS_INSERT || e.op == MS_REMOVE {
                    // Covered both sets: duplicate for set 1.
                    let mut dup = e.clone();
                    dup.b = 1;
                    extra.push(dup);
                    e.b = 0;
                }
            }
            expanded.events.extend(extra);
            assert_set_regular(&expanded);
        }
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn mismatched_slots_rejected() {
        let heap = Heap::new(1 << 12);
        let sets = [ActiveSet::create_root(&heap, 2)];
        let item = heap.alloc_root(1).to_word();
        let report = SimBuilder::new(&heap, 1)
            .spawn(move |ctx: &Ctx| {
                multi_remove(ctx, &WordFlag, item, &sets, &[0, 1]);
            })
            .run();
        if let Some((_pid, msg)) = report.panics.first() {
            panic!("{}", msg);
        }
    }
}
