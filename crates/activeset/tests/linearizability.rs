//! Linearizability validation of Algorithm 1 (the active set) against the
//! sequential spec, across many adversarial schedules.
//!
//! The paper proves linearizability in its full version; here we validate
//! the implementation behaviorally: record complete concurrent histories
//! in the deterministic simulator and run the Wing–Gong checker.

use wfl_activeset::ActiveSet;
use wfl_lincheck::specs::{ActiveSetSpec, AS_GETSET, AS_INSERT, AS_REMOVE};
use wfl_lincheck::{assert_linearizable, check_linearizable};
use wfl_runtime::schedule::{Bursty, SeededRandom, Weighted};
use wfl_runtime::sim::SimBuilder;
use wfl_runtime::{Ctx, Heap};

/// Runs `nprocs` processes doing insert/remove cycles (with distinct items
/// per round) and one observer doing getSets; checks the recorded history.
fn run_and_check(nprocs: usize, rounds: usize, schedule_seed: u64, schedule_kind: usize) {
    let heap = Heap::new(1 << 20);
    let set = ActiveSet::create_root(&heap, nprocs + 1);
    let mut builder = SimBuilder::new(&heap, nprocs + 1).seed(schedule_seed);
    builder = match schedule_kind {
        0 => builder.schedule(SeededRandom::new(nprocs + 1, schedule_seed)),
        1 => builder.schedule(Bursty::new(nprocs + 1, 12, schedule_seed)),
        _ => builder.schedule(Weighted::new(
            &(0..nprocs as u64 + 1).map(|i| 1 + i * 3).collect::<Vec<_>>(),
            schedule_seed,
        )),
    };
    let report = builder
        .spawn_all(|pid| {
            move |ctx: &Ctx| {
                if pid < nprocs {
                    for round in 0..rounds {
                        // Unique item per (process, round); nonzero.
                        let item = 1 + (pid * rounds + round) as u64;
                        ctx.invoke(AS_INSERT, item, 0);
                        let slot = set.insert(ctx, item);
                        ctx.respond(0, vec![]);
                        ctx.invoke(AS_REMOVE, item, 0);
                        set.remove(ctx, slot);
                        ctx.respond(0, vec![]);
                    }
                } else {
                    let mut out = Vec::new();
                    for _ in 0..2 * rounds {
                        ctx.invoke(AS_GETSET, 0, 0);
                        set.get_set(ctx, &mut out);
                        ctx.respond(0, out.clone());
                    }
                }
            }
        })
        .run();
    report.assert_clean();
    assert!(
        report.history.len() <= 40,
        "history too large for the checker; shrink the test"
    );
    assert_linearizable(&report.history, &ActiveSetSpec);
}

#[test]
fn linearizable_under_random_schedules() {
    for seed in 0..40 {
        run_and_check(2, 3, seed, 0);
    }
}

#[test]
fn linearizable_under_bursty_schedules() {
    for seed in 0..25 {
        run_and_check(3, 2, 1000 + seed, 1);
    }
}

#[test]
fn linearizable_under_skewed_schedules() {
    for seed in 0..25 {
        run_and_check(3, 2, 2000 + seed, 2);
    }
}

#[test]
fn checker_would_catch_a_broken_set() {
    // Sanity check that the harness has teeth: a deliberately broken
    // history (getSet missing a completed insert) must be rejected.
    use wfl_runtime::{Event, History};
    let h = History::from_parts(vec![
        vec![Event {
            pid: 0,
            op: AS_INSERT,
            a: 9,
            b: 0,
            result: 0,
            result_set: vec![],
            invoke: 0,
            response: 1,
        }],
        vec![Event {
            pid: 1,
            op: AS_GETSET,
            a: 0,
            b: 0,
            result: 0,
            result_set: vec![],
            invoke: 2,
            response: 3,
        }],
    ]);
    assert!(!check_linearizable(&h, &ActiveSetSpec).is_ok());
}
