//! B2 — wall-clock cost of active set operations (insert/remove/getSet)
//! at varying capacity, single-threaded on the real driver.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wfl_activeset::ActiveSet;
use wfl_runtime::{real::run_threads, Ctx, Heap};

fn bench_activeset(c: &mut Criterion) {
    let mut group = c.benchmark_group("activeset_insert_remove");
    for capacity in [4usize, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(capacity), &capacity, |b, &cap| {
            b.iter(|| {
                let heap = Heap::new(1 << 24);
                let set = ActiveSet::create_root(&heap, cap);
                let report = run_threads(&heap, 1, 1, None, |_pid| {
                    move |ctx: &Ctx<'_>| {
                        let mut buf = Vec::new();
                        for i in 0..500u64 {
                            let slot = set.insert(ctx, i + 1);
                            set.get_set(ctx, &mut buf);
                            set.remove(ctx, slot);
                        }
                    }
                });
                report.assert_clean();
                heap.used()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_activeset);
criterion_main!(benches);
