//! B3 — wall-clock overhead of idempotent execution vs raw execution of
//! the same thunk (Theorem 4.2's constant factor, in nanoseconds).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wfl_idem::{Frame, IdemRun, Registry, TagSource, Thunk};
use wfl_runtime::{real::run_threads, Addr, Ctx, Heap};

struct ManyWrites(usize);
impl Thunk for ManyWrites {
    fn run(&self, run: &mut IdemRun<'_, '_>) {
        let base = Addr::from_word(run.arg(0));
        for i in 0..self.0 {
            run.write(base.off(i as u32), i as u32);
        }
    }
    fn max_ops(&self) -> usize {
        self.0
    }
}

fn bench_idem(c: &mut Criterion) {
    let mut group = c.benchmark_group("thunk_execution");
    for &k in &[16usize, 64] {
        for mode in ["raw", "idem"] {
            group.bench_with_input(BenchmarkId::new(mode, k), &k, |b, &k| {
                b.iter(|| {
                    let mut registry = Registry::new();
                    let id = registry.register(ManyWrites(k));
                    let heap = Heap::new(1 << 22);
                    let base = heap.alloc_root(k);
                    let mut tags = TagSource::new(0);
                    let frame =
                        Frame::create_root(&heap, &registry, id, tags.next_base(), &[base.to_word()]);
                    let reg = &registry;
                    let report = run_threads(&heap, 1, 1, None, |_pid| {
                        move |ctx: &Ctx<'_>| {
                            if mode == "raw" {
                                frame.run_raw(ctx, reg);
                            } else {
                                frame.help(ctx, reg);
                            }
                        }
                    });
                    report.assert_clean();
                    heap.used()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_idem);
criterion_main!(benches);
