//! B4 — wall-clock throughput of the philosophers workload under the
//! real-threads driver, paper's algorithm vs baselines (delays disabled:
//! the delay padding is a simulator-model cost, not a wall-clock one).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wfl_baselines::{LockAlgo, NaiveTryLock, TspLock, WflKnown};
use wfl_core::{LockConfig, LockSpace};
use wfl_idem::{Registry, TagSource};
use wfl_runtime::{real::run_threads, Ctx, Heap};
use wfl_workloads::philosophers::Table;

fn bench_philosophers(c: &mut Criterion) {
    let mut group = c.benchmark_group("philosophers_real_threads");
    group.sample_size(10);
    for algo_name in ["wfl", "tsp", "naive"] {
        group.bench_with_input(BenchmarkId::new(algo_name, 4), &algo_name, |b, &name| {
            b.iter(|| {
                let n = 4;
                let mut registry = Registry::new();
                let heap = Heap::new(1 << 24);
                let table = Table::create_root(&heap, &mut registry, n);
                let space = LockSpace::create_root(&heap, n, n);
                let wfl = WflKnown {
                    space: &space,
                    registry: &registry,
                    cfg: LockConfig::new(n, 2, 2).without_delays(),
                };
                let tsp = TspLock::create_root(&heap, &registry, n);
                let naive = NaiveTryLock::create_root(&heap, &registry, n);
                let algo: &dyn LockAlgo = match name {
                    "wfl" => &wfl,
                    "tsp" => &tsp,
                    _ => &naive,
                };
                let table_ref = &table;
                let report = run_threads(&heap, n, 7, None, |pid| {
                    move |ctx: &Ctx<'_>| {
                        let mut tags = TagSource::new(pid);
                        let mut scratch = wfl_core::Scratch::new();
                        for _ in 0..200 {
                            table_ref.attempt_eat(ctx, algo, &mut tags, &mut scratch, pid);
                        }
                    }
                });
                report.assert_clean();
                heap.used()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_philosophers);
criterion_main!(benches);
