//! B1 — wall-clock cost of the uncontended tryLock hot path (descriptor
//! creation, helping scan, multiInsert, run, multiRemove), real-threads
//! driver, delays disabled.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wfl_core::{try_locks, LockConfig, LockId, LockSpace, Scratch, TryLockRequest};
use wfl_idem::{IdemRun, Registry, TagSource, Thunk};
use wfl_runtime::{real::run_threads, Addr, Ctx, Heap};

struct Touch;
impl Thunk for Touch {
    fn run(&self, run: &mut IdemRun<'_, '_>) {
        let c = Addr::from_word(run.arg(0));
        let v = run.read(c);
        run.write(c, v + 1);
    }
    fn max_ops(&self) -> usize {
        2
    }
}

fn bench_trylock(c: &mut Criterion) {
    let mut group = c.benchmark_group("uncontended_trylock");
    for &l in &[1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(l), &l, |b, &l| {
            b.iter(|| {
                let mut registry = Registry::new();
                let touch = registry.register(Touch);
                let heap = Heap::new(1 << 24);
                let space = LockSpace::create_root(&heap, l, 2);
                let counter = heap.alloc_root(1);
                let cfg = LockConfig::new(2, l, 2).without_delays();
                let (space_ref, reg_ref, cfg_ref) = (&space, &registry, &cfg);
                let locks: Vec<LockId> = (0..l as u32).map(LockId).collect();
                let report = run_threads(&heap, 1, 1, None, |_pid| {
                    let locks = locks.clone();
                    move |ctx: &Ctx<'_>| {
                        let mut tags = TagSource::new(0);
                        let mut scratch = Scratch::new();
                        for _ in 0..500 {
                            let req = TryLockRequest {
                                locks: &locks,
                                thunk: touch,
                                args: &[counter.to_word()],
                            };
                            let m = try_locks(ctx, space_ref, reg_ref, cfg_ref, &mut tags, &mut scratch, req);
                            assert!(m.won);
                        }
                    }
                });
                report.assert_clean();
                heap.used()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_trylock);
criterion_main!(benches);
