//! E14 — the workload matrix: every workload × every algorithm × thread
//! counts, on **both** execution backends of the unified harness
//! (deterministic simulator and free-running real threads).
//!
//! Every cell runs its workload's built-in safety check — lock counters,
//! meal counters, money conservation, list snapshots, graph update
//! counters, all derived from the recorded per-attempt outcomes — so this
//! binary is simultaneously a benchmark sweep and a mutual-exclusion
//! test matrix. A safety violation in any cell aborts the run.
//!
//! Emits `BENCH_workloads.json` with one record per cell (including each
//! cell's `epochs` and `heap_high_water`, so the JSON tracks arena
//! pressure across the perf trajectory).
//!
//! Usage: `e14_workload_matrix [--smoke] [--soak] [--algos a,b,c] [--trace out.json]`
//!   --smoke : CI-sized matrix (1–2 threads, tiny attempt counts, short
//!             timed budget) so the real-threads harness path cannot rot.
//!             The smoke matrix runs the **extended roster** — the five
//!             standard kinds plus wfl+combine, blocking-cohort, fc and
//!             ccsynch — so every algorithm the harness can instantiate is
//!             safety-checked on every workload in CI.
//!   --algos : narrow the roster to the named algorithms (any
//!             [`AlgoKind::all_extended`] label).
//!   --trace : export one recorded deterministic random-conflict wfl sim
//!             cell as Chrome/Perfetto `trace_event` JSON (plus a
//!             `<path>.metrics.json` sidecar; standard matrix only).
//!   --soak  : the **multi-epoch soak** matrix instead of the standard one:
//!             timed real cells with a deliberately small heap and short
//!             epoch batches, so every cell crosses several quiescent
//!             resets (heap rewind + tag rewind + re-root). Each cell must
//!             complete >= 3 epochs, run for its full wall budget (within
//!             10%), and pass every safety check aggregated across epochs.
//!             Sim cells run the same lifecycle deterministically. Emits
//!             `BENCH_soak.json`.

use std::fmt::Write as _;
use std::time::Duration;
use wfl_workloads::harness::{
    run_bank_mode, run_graph_mode, run_list_mode, run_philosophers_mode,
    run_random_conflict_mode, AlgoKind, ExecMode, HarnessReport, SchedKind, SimSpec,
};

#[derive(Clone, Copy)]
struct MatrixParams {
    thread_counts: &'static [usize],
    /// Attempt/round counts per process per workload.
    conflict_attempts: usize,
    phil_attempts: usize,
    bank_rounds: usize,
    list_keys: usize,
    graph_rounds: usize,
    /// Scheduled-phase budget for sim cells.
    sim_steps: u64,
    /// Wall-clock budget for timed real cells (attempt caps usually finish
    /// first; the budget is the backstop).
    real_budget: Duration,
    heap_words: usize,
}

const FULL: MatrixParams = MatrixParams {
    thread_counts: &[2, 4, 8],
    conflict_attempts: 400,
    phil_attempts: 400,
    bank_rounds: 400,
    list_keys: 24,
    graph_rounds: 400,
    sim_steps: 600_000_000,
    real_budget: Duration::from_millis(900),
    heap_words: 1 << 24,
};

const SMOKE: MatrixParams = MatrixParams {
    thread_counts: &[1, 2],
    conflict_attempts: 40,
    phil_attempts: 40,
    bank_rounds: 40,
    list_keys: 6,
    graph_rounds: 40,
    sim_steps: 200_000_000,
    real_budget: Duration::from_millis(500),
    heap_words: 1 << 22,
};

/// Soak sizing: the heap is deliberately small and the epoch batches short,
/// so the wall budget forces many quiescent resets. `rounds` caps a single
/// epoch (the timed run keeps opening epochs until the deadline); the sim
/// leg runs `sim_total_rounds` split into the same epoch length.
#[derive(Clone, Copy)]
struct SoakParams {
    thread_counts: &'static [usize],
    real_budget: Duration,
    epoch_rounds: usize,
    list_epoch_keys: usize,
    sim_total_rounds: usize,
    sim_steps: u64,
    heap_words: usize,
}

const FULL_SOAK: SoakParams = SoakParams {
    thread_counts: &[2, 4, 8],
    real_budget: Duration::from_millis(800),
    epoch_rounds: 48,
    list_epoch_keys: 12,
    sim_total_rounds: 96,
    sim_steps: 600_000_000,
    heap_words: 1 << 21,
};

const SMOKE_SOAK: SoakParams = SoakParams {
    thread_counts: &[2],
    real_budget: Duration::from_millis(300),
    epoch_rounds: 24,
    list_epoch_keys: 6,
    sim_total_rounds: 48,
    sim_steps: 200_000_000,
    heap_words: 1 << 20,
};

const WORKLOADS: [&str; 5] = ["random_conflict", "philosophers", "bank", "list", "graph"];

/// The matrix's algorithm set. Wfl runs without delays: the delay padding
/// is a simulator-model cost whose curves E1–E6/E11 validate; the matrix
/// is about safety coverage and wall-clock throughput. The `extended`
/// roster (the `--smoke` matrix, so CI exercises it on every workload)
/// adds the combining fast path, the cohort spin discipline and both
/// delegation baselines; `--algos` narrows either roster.
fn algos(threads: usize, extended: bool, filter: Option<&Vec<String>>) -> Vec<AlgoKind> {
    let mut roster = vec![
        AlgoKind::Wfl { kappa: threads.max(2), delays: false, helping: true },
        AlgoKind::WflUnknown,
        AlgoKind::Tsp,
        AlgoKind::Blocking,
        AlgoKind::Naive,
    ];
    if extended || filter.is_some() {
        roster.extend([
            AlgoKind::WflCombine { kappa: threads.max(2) },
            AlgoKind::BlockingCohort,
            AlgoKind::FlatCombining,
            AlgoKind::CcSynch,
        ]);
    }
    wfl_bench::retain_algos(roster, |k| k.label(), filter)
}

struct CellShape {
    conflict_attempts: usize,
    phil_attempts: usize,
    bank_rounds: usize,
    list_keys: usize,
    graph_rounds: usize,
    heap_words: usize,
}

fn run_cell(
    workload: &str,
    algo: AlgoKind,
    threads: usize,
    p: &CellShape,
    mode: &ExecMode,
) -> HarnessReport {
    let seed = 42;
    match workload {
        "random_conflict" => {
            let mut spec = SimSpec::new(threads, p.conflict_attempts, (2 * threads).max(3), 2);
            spec.seed = seed;
            spec.heap_words = p.heap_words;
            run_random_conflict_mode(&spec, algo, mode)
        }
        "philosophers" => {
            // A table needs >= 2 seats, so `cell_procs` already widened a
            // 1-thread row to a 2-philosopher cell (and the row is labeled
            // with the widened count — a 2-seat table fully contends).
            run_philosophers_mode(threads, p.phil_attempts, seed, algo, p.heap_words, mode)
        }
        "bank" => run_bank_mode(
            threads,
            (threads + 2).max(4),
            p.bank_rounds,
            100,
            seed,
            algo,
            p.heap_words,
            mode,
        ),
        "list" => run_list_mode(threads, p.list_keys, seed, algo, p.heap_words, mode),
        "graph" => run_graph_mode(
            threads,
            (2 * threads).max(4).max(3),
            p.graph_rounds,
            seed,
            algo,
            p.heap_words,
            mode,
        ),
        other => unreachable!("unknown workload {other}"),
    }
}

/// The process count a workload actually runs at for a sweep row —
/// philosophers pin it to the table size, which needs at least 2 seats.
/// Cells are labeled with this count, never the raw row value.
fn cell_procs(workload: &str, threads: usize) -> usize {
    if workload == "philosophers" {
        threads.max(2)
    } else {
        threads
    }
}

fn json_cell(
    rows: &mut wfl_bench::Rows,
    workload: &str,
    algo: AlgoKind,
    threads: usize,
    mode_label: &str,
    r: &HarnessReport,
) {
    let lanes_json = r
        .compact_high_water_lanes()
        .iter()
        .map(|w| w.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    rows.push(
        &[
            ("workload", workload.to_string()),
            ("algo", algo.label().to_string()),
            ("mode", mode_label.to_string()),
        ],
        &[
            ("threads", threads.to_string()),
            ("heap_high_water", r.heap_high_water.to_string()),
            ("heap_high_water_lanes", format!("[{lanes_json}]")),
            ("safety_ok", "true".to_string()),
        ],
        &r.metrics(),
    );
}

fn run_matrix(p: &MatrixParams, smoke: bool) {
    let algo_filter = wfl_bench::parse_algos(&std::env::args().collect::<Vec<_>>());
    println!("# E14: workload matrix — algos x workloads x threads, sim + real");
    println!("(every cell doubles as a mutual-exclusion test; smoke = {smoke})");
    println!();

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"e14_workload_matrix\",");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let mut rows = wfl_bench::Rows::new();

    let shape = CellShape {
        conflict_attempts: p.conflict_attempts,
        phil_attempts: p.phil_attempts,
        bank_rounds: p.bank_rounds,
        list_keys: p.list_keys,
        graph_rounds: p.graph_rounds,
        heap_words: p.heap_words,
    };

    let mut cells = 0u64;
    for workload in WORKLOADS {
        wfl_bench::header(&["cell", "mode", "attempts", "wins", "success", "p99 steps", "wall (s)", "safety"]);
        for &row_threads in p.thread_counts {
            let threads = cell_procs(workload, row_threads);
            if threads != row_threads && p.thread_counts.contains(&threads) {
                continue; // widened cell already covered by its own row
            }
            for algo in algos(threads, smoke, algo_filter.as_ref()) {
                let modes = [
                    ExecMode::sim(SchedKind::Random, p.sim_steps),
                    ExecMode::real_timed(threads, p.real_budget),
                ];
                for mode in &modes {
                    let r = run_cell(workload, algo, threads, &shape, mode);
                    assert!(
                        r.safety_ok,
                        "SAFETY VIOLATION: {workload}/{}/{}t/{}",
                        algo.label(),
                        threads,
                        mode.label()
                    );
                    cells += 1;
                    let wall = r.wall.map_or(0.0, |w| w.as_secs_f64());
                    wfl_bench::row(&[
                        format!("{workload}/{}/{}t", algo.label(), threads),
                        mode.label().to_string(),
                        r.attempts.to_string(),
                        r.wins.to_string(),
                        format!("{:.3}", r.success.rate()),
                        r.steps.percentile(0.99).to_string(),
                        format!("{wall:.4}"),
                        "ok".to_string(),
                    ]);
                    json_cell(&mut rows, workload, algo, threads, mode.label(), &r);
                }
            }
        }
        println!();
    }
    json.push_str("  \"cells\": ");
    json.push_str(&rows.finish());
    json.push_str(",\n");
    let _ = writeln!(json, "  \"cells_total\": {cells}");
    json.push_str("}\n");

    std::fs::write("BENCH_workloads.json", &json).expect("write BENCH_workloads.json");
    println!("all {cells} cells passed their safety checks");
    println!("wrote BENCH_workloads.json");

    // --trace: export one recorded deterministic cell (random-conflict,
    // wfl, top of the thread sweep, sim backend).
    if let Some(path) = wfl_bench::parse_trace(&std::env::args().collect::<Vec<_>>()) {
        let threads = *p.thread_counts.last().unwrap();
        let algo = AlgoKind::Wfl { kappa: threads.max(2), delays: false, helping: true };
        let mode = ExecMode::sim(SchedKind::Random, p.sim_steps).with_recorder();
        let r = run_cell("random_conflict", algo, threads, &shape, &mode);
        assert!(r.safety_ok, "traced cell failed its safety check");
        let meta = [
            ("bench", "e14_workload_matrix".to_string()),
            ("workload", "random_conflict".to_string()),
            ("algo", algo.label().to_string()),
            ("mode", "sim".to_string()),
            ("threads", threads.to_string()),
        ];
        let snap = r.trace.as_ref().expect("recorded run carries a trace");
        wfl_bench::write_trace(&path, snap, &r.metrics(), &meta);
    }
}

fn run_soak(p: &SoakParams, smoke: bool) {
    let algo_filter = wfl_bench::parse_algos(&std::env::args().collect::<Vec<_>>());
    println!("# E14 --soak: multi-epoch soak — quiescent resets under wall-clock pressure");
    println!(
        "(heap {} words, {} rounds/epoch, real budget {:?}; every real cell must cross >= 3 epochs; smoke = {smoke})",
        p.heap_words, p.epoch_rounds, p.real_budget
    );
    println!();

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"e14_workload_matrix_soak\",");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"heap_words\": {},", p.heap_words);
    let _ = writeln!(json, "  \"epoch_rounds\": {},", p.epoch_rounds);
    let _ = writeln!(json, "  \"real_budget_secs\": {:.3},", p.real_budget.as_secs_f64());
    let mut rows = wfl_bench::Rows::new();

    // In soak cells the per-workload round counts are the *epoch* batch
    // size; timed real cells keep opening epochs until the deadline.
    let shape = CellShape {
        conflict_attempts: p.epoch_rounds,
        phil_attempts: p.epoch_rounds,
        bank_rounds: p.epoch_rounds,
        list_keys: p.list_epoch_keys,
        graph_rounds: p.epoch_rounds,
        heap_words: p.heap_words,
    };
    // The sim leg runs a fixed multi-epoch total with the same batch size,
    // so the epoch-crossing path is also exercised deterministically.
    let sim_shape = CellShape {
        conflict_attempts: p.sim_total_rounds,
        phil_attempts: p.sim_total_rounds,
        bank_rounds: p.sim_total_rounds,
        list_keys: 2 * p.list_epoch_keys,
        graph_rounds: p.sim_total_rounds,
        heap_words: p.heap_words,
    };

    let mut cells = 0u64;
    for workload in WORKLOADS {
        wfl_bench::header(&["cell", "mode", "attempts", "wins", "epochs", "high water", "wall (s)", "safety"]);
        for &row_threads in p.thread_counts {
            let threads = cell_procs(workload, row_threads);
            if threads != row_threads && p.thread_counts.contains(&threads) {
                continue;
            }
            for algo in algos(threads, false, algo_filter.as_ref()) {
                // The list workload uses a smaller epoch (each round may
                // draw up to 64 retry tags, so its batch must stay well
                // inside the per-process tag space).
                let epoch_len = if workload == "list" { p.list_epoch_keys } else { p.epoch_rounds };
                let modes = [
                    (
                        ExecMode::sim(SchedKind::Random, p.sim_steps).with_epoch_rounds(epoch_len),
                        &sim_shape,
                    ),
                    (
                        ExecMode::real_timed(threads, p.real_budget).with_epoch_rounds(epoch_len),
                        &shape,
                    ),
                ];
                for (mode, cell_shape) in &modes {
                    let r = run_cell(workload, algo, threads, cell_shape, mode);
                    let cell = format!("{workload}/{}/{}t/{}", algo.label(), threads, mode.label());
                    assert!(r.safety_ok, "SAFETY VIOLATION across epochs: {cell}");
                    if let ExecMode::Real { run_for: Some(budget), .. } = mode {
                        // The acceptance criteria of the epoch lifecycle:
                        // several boundaries crossed, the full wall budget
                        // used (within 10% plus scheduling slack), the
                        // arena never grew past its small capacity.
                        assert!(r.epochs >= 3, "{cell}: only {} epochs", r.epochs);
                        let wall = r.wall.expect("real cells report wall");
                        let lo = budget.mul_f64(0.9);
                        let hi = *budget + budget.mul_f64(0.10).max(Duration::from_millis(250));
                        assert!(
                            wall >= lo && wall <= hi,
                            "{cell}: wall {wall:?} not within 10% of requested {budget:?}"
                        );
                    } else {
                        assert!(r.epochs >= 2, "{cell}: sim soak must cross an epoch boundary");
                    }
                    assert!(
                        r.heap_high_water <= p.heap_words,
                        "{cell}: high water {} exceeds the arena",
                        r.heap_high_water
                    );
                    cells += 1;
                    let wall = r.wall.map_or(0.0, |w| w.as_secs_f64());
                    wfl_bench::row(&[
                        cell,
                        mode.label().to_string(),
                        r.attempts.to_string(),
                        r.wins.to_string(),
                        r.epochs.to_string(),
                        r.heap_high_water.to_string(),
                        format!("{wall:.4}"),
                        "ok".to_string(),
                    ]);
                    json_cell(&mut rows, workload, algo, threads, mode.label(), &r);
                }
            }
        }
        println!();
    }
    json.push_str("  \"cells\": ");
    json.push_str(&rows.finish());
    json.push_str(",\n");
    let _ = writeln!(json, "  \"cells_total\": {cells}");
    json.push_str("}\n");

    std::fs::write("BENCH_soak.json", &json).expect("write BENCH_soak.json");
    println!("all {cells} soak cells crossed their epoch boundaries safely");
    println!("wrote BENCH_soak.json");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let soak = std::env::args().any(|a| a == "--soak");
    if soak {
        run_soak(if smoke { &SMOKE_SOAK } else { &FULL_SOAK }, smoke);
    } else {
        run_matrix(if smoke { &SMOKE } else { &FULL }, smoke);
    }
}
