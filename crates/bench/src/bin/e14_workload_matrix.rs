//! E14 — the workload matrix: every workload × every algorithm × thread
//! counts, on **both** execution backends of the unified harness
//! (deterministic simulator and free-running real threads).
//!
//! Every cell runs its workload's built-in safety check — lock counters,
//! meal counters, money conservation, list snapshots, graph update
//! counters, all derived from the recorded per-attempt outcomes — so this
//! binary is simultaneously a benchmark sweep and a mutual-exclusion
//! test matrix. A safety violation in any cell aborts the run.
//!
//! Emits `BENCH_workloads.json` with one record per cell.
//!
//! Usage: `e14_workload_matrix [--smoke]`
//!   --smoke : CI-sized matrix (1–2 threads, tiny attempt counts, short
//!             timed budget) so the real-threads harness path cannot rot.

use std::fmt::Write as _;
use std::time::Duration;
use wfl_workloads::harness::{
    run_bank_mode, run_graph_mode, run_list_mode, run_philosophers_mode,
    run_random_conflict_mode, AlgoKind, ExecMode, HarnessReport, SchedKind, SimSpec,
};

#[derive(Clone, Copy)]
struct MatrixParams {
    thread_counts: &'static [usize],
    /// Attempt/round counts per process per workload.
    conflict_attempts: usize,
    phil_attempts: usize,
    bank_rounds: usize,
    list_keys: usize,
    graph_rounds: usize,
    /// Scheduled-phase budget for sim cells.
    sim_steps: u64,
    /// Wall-clock budget for timed real cells (attempt caps usually finish
    /// first; the budget is the backstop).
    real_budget: Duration,
    heap_words: usize,
}

const FULL: MatrixParams = MatrixParams {
    thread_counts: &[2, 4, 8],
    conflict_attempts: 400,
    phil_attempts: 400,
    bank_rounds: 400,
    list_keys: 24,
    graph_rounds: 400,
    sim_steps: 600_000_000,
    real_budget: Duration::from_millis(900),
    heap_words: 1 << 24,
};

const SMOKE: MatrixParams = MatrixParams {
    thread_counts: &[1, 2],
    conflict_attempts: 40,
    phil_attempts: 40,
    bank_rounds: 40,
    list_keys: 6,
    graph_rounds: 40,
    sim_steps: 200_000_000,
    real_budget: Duration::from_millis(500),
    heap_words: 1 << 22,
};

const WORKLOADS: [&str; 5] = ["random_conflict", "philosophers", "bank", "list", "graph"];

/// The matrix's algorithm set. Wfl runs without delays: the delay padding
/// is a simulator-model cost whose curves E1–E6/E11 validate; the matrix
/// is about safety coverage and wall-clock throughput.
fn algos(threads: usize) -> [AlgoKind; 5] {
    [
        AlgoKind::Wfl { kappa: threads.max(2), delays: false, helping: true },
        AlgoKind::WflUnknown,
        AlgoKind::Tsp,
        AlgoKind::Blocking,
        AlgoKind::Naive,
    ]
}

fn run_cell(
    workload: &str,
    algo: AlgoKind,
    threads: usize,
    p: &MatrixParams,
    mode: &ExecMode,
) -> HarnessReport {
    let seed = 42;
    match workload {
        "random_conflict" => {
            let mut spec = SimSpec::new(threads, p.conflict_attempts, (2 * threads).max(3), 2);
            spec.seed = seed;
            spec.heap_words = p.heap_words;
            run_random_conflict_mode(&spec, algo, mode)
        }
        "philosophers" => {
            // A table needs >= 2 seats, so `cell_procs` already widened a
            // 1-thread row to a 2-philosopher cell (and the row is labeled
            // with the widened count — a 2-seat table fully contends).
            run_philosophers_mode(threads, p.phil_attempts, seed, algo, p.heap_words, mode)
        }
        "bank" => run_bank_mode(
            threads,
            (threads + 2).max(4),
            p.bank_rounds,
            100,
            seed,
            algo,
            p.heap_words,
            mode,
        ),
        "list" => run_list_mode(threads, p.list_keys, seed, algo, p.heap_words, mode),
        "graph" => run_graph_mode(
            threads,
            (2 * threads).max(4).max(3),
            p.graph_rounds,
            seed,
            algo,
            p.heap_words,
            mode,
        ),
        other => unreachable!("unknown workload {other}"),
    }
}

/// The process count a workload actually runs at for a sweep row —
/// philosophers pin it to the table size, which needs at least 2 seats.
/// Cells are labeled with this count, never the raw row value.
fn cell_procs(workload: &str, threads: usize) -> usize {
    if workload == "philosophers" {
        threads.max(2)
    } else {
        threads
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let p = if smoke { SMOKE } else { FULL };

    println!("# E14: workload matrix — algos x workloads x threads, sim + real");
    println!("(every cell doubles as a mutual-exclusion test; smoke = {smoke})");
    println!();

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"e14_workload_matrix\",");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    json.push_str("  \"cells\": [\n");

    let mut cells = 0u64;
    let mut first = true;
    for workload in WORKLOADS {
        wfl_bench::header(&["cell", "mode", "attempts", "wins", "success", "p99 steps", "wall (s)", "safety"]);
        for &row_threads in p.thread_counts {
            let threads = cell_procs(workload, row_threads);
            if threads != row_threads && p.thread_counts.contains(&threads) {
                continue; // widened cell already covered by its own row
            }
            for algo in algos(threads) {
                let modes = [
                    ExecMode::Sim(SchedKind::Random, p.sim_steps),
                    ExecMode::Real {
                        threads,
                        run_for: Some(p.real_budget),
                        cfg: wfl_runtime::RealConfig::fast(),
                    },
                ];
                for mode in &modes {
                    let r = run_cell(workload, algo, threads, &p, mode);
                    assert!(
                        r.safety_ok,
                        "SAFETY VIOLATION: {workload}/{}/{}t/{}",
                        algo.label(),
                        threads,
                        mode.label()
                    );
                    cells += 1;
                    let wall = r.wall.map_or(0.0, |w| w.as_secs_f64());
                    wfl_bench::row(&[
                        format!("{workload}/{}/{}t", algo.label(), threads),
                        mode.label().to_string(),
                        r.attempts.to_string(),
                        r.wins.to_string(),
                        format!("{:.3}", r.success.rate()),
                        r.steps.percentile(0.99).to_string(),
                        format!("{wall:.4}"),
                        "ok".to_string(),
                    ]);
                    if !first {
                        json.push_str(",\n");
                    }
                    first = false;
                    let _ = write!(
                        json,
                        "    {{\"workload\": \"{workload}\", \"algo\": \"{}\", \"threads\": {threads}, \
                         \"mode\": \"{}\", \"attempts\": {}, \"wins\": {}, \"success_rate\": {:.4}, \
                         \"mean_steps\": {:.1}, \"p99_steps\": {}, \"wall_secs\": {:.6}, \
                         \"wins_per_sec\": {:.1}, \"safety_ok\": true}}",
                        algo.label(),
                        mode.label(),
                        r.attempts,
                        r.wins,
                        r.success.rate(),
                        r.steps.mean(),
                        r.steps.percentile(0.99),
                        wall,
                        r.wins_per_sec().unwrap_or(0.0),
                    );
                }
            }
        }
        println!();
    }
    json.push_str("\n  ],\n");
    let _ = writeln!(json, "  \"cells_total\": {cells}");
    json.push_str("}\n");

    std::fs::write("BENCH_workloads.json", &json).expect("write BENCH_workloads.json");
    println!("all {cells} cells passed their safety checks");
    println!("wrote BENCH_workloads.json");
}
