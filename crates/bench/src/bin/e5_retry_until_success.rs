//! E5 — corollary of Theorem 1.1: retry-until-success acquires the locks
//! in expected `O(κ³L³T)` steps, with the attempt count dominated by a
//! geometric distribution of mean ≤ `κL`.

use wfl_bench::{header, row};
use wfl_core::{lock_and_run, LockConfig, LockId, LockSpace, Scratch, TryLockRequest};
use wfl_idem::{IdemRun, Registry, TagSource, Thunk};
use wfl_runtime::schedule::SeededRandom;
use wfl_runtime::sim::SimBuilder;
use wfl_runtime::stats::Summary;
use wfl_runtime::{Addr, Ctx, Heap};

struct Touch;
impl Thunk for Touch {
    fn run(&self, run: &mut IdemRun<'_, '_>) {
        let c = Addr::from_word(run.arg(0));
        let v = run.read(c);
        run.write(c, v + 1);
    }
    fn max_ops(&self) -> usize {
        2
    }
}

fn main() {
    println!("# E5: retry-until-success — attempts and steps to acquisition");
    header(&[
        "kappa",
        "acquisitions",
        "mean attempts",
        "p99 attempts",
        "mean kL (bound)",
        "mean steps",
        "kappa^3 L^3 T scale",
        "attempts bound held",
    ]);
    let l = 1usize;
    for &kappa in &[2usize, 4, 8] {
        let mut registry = Registry::new();
        let touch = registry.register(Touch);
        let heap = Heap::new(1 << 25);
        let space = LockSpace::create_root(&heap, l, kappa);
        let counter = heap.alloc_root(1);
        let rounds = 60usize;
        let attempts_out = heap.alloc_root(kappa * rounds);
        let steps_out = heap.alloc_root(kappa * rounds);
        let cfg = LockConfig::new(kappa, l, 2);
        let (space_ref, reg_ref, cfg_ref) = (&space, &registry, &cfg);
        let report = SimBuilder::new(&heap, kappa)
            .seed(kappa as u64)
            .schedule(SeededRandom::new(kappa, 55 + kappa as u64))
            .max_steps(3_000_000_000)
            .spawn_all(|pid| {
                move |ctx: &Ctx| {
                    let mut tags = TagSource::new(pid);
                    let mut scratch = Scratch::new();
                    for round in 0..rounds {
                        let req = TryLockRequest {
                            locks: &[LockId(0)],
                            thunk: touch,
                            args: &[counter.to_word()],
                        };
                        let m = lock_and_run(ctx, space_ref, reg_ref, cfg_ref, &mut tags, &mut scratch, req);
                        let idx = (pid * rounds + round) as u32;
                        ctx.write(attempts_out.off(idx), m.attempts);
                        ctx.write(steps_out.off(idx), m.steps);
                        let think = ctx.rand_below(64);
                        for _ in 0..think {
                            ctx.local_step();
                        }
                    }
                }
            })
            .run();
        report.assert_clean();
        let mut attempts = Summary::new();
        let mut steps = Summary::new();
        for i in 0..(kappa * rounds) as u32 {
            attempts.push(heap.peek(attempts_out.off(i)));
            steps.push(heap.peek(steps_out.off(i)));
        }
        // Wait-freedom means every lock_and_run returned; the counter must
        // equal the total number of acquisitions.
        assert_eq!(
            wfl_idem::cell::value(heap.peek(counter)) as usize,
            kappa * rounds,
            "exactly-once violation"
        );
        let bound = (kappa * l) as f64;
        let ok = attempts.mean() <= bound;
        row(&[
            kappa.to_string(),
            attempts.len().to_string(),
            format!("{:.2}", attempts.mean()),
            attempts.percentile(0.99).to_string(),
            format!("{bound:.0}"),
            format!("{:.0}", steps.mean()),
            (kappa.pow(3) * l.pow(3) * 2).to_string(),
            wfl_bench::verdict(ok).to_string(),
        ]);
    }
    println!();
    println!("every lock_and_run returned (wait-free) and ran its critical section exactly once");
}
