//! E3 — Theorem 6.9: each attempt succeeds with probability ≥ `1/C_p`
//! (≥ `1/(κL)`).
//!
//! Grid over (κ, L): κ processes all contending on the *same* L locks, so
//! the point contention of each lock is exactly κ and `C_p = κL`. Delays
//! are enabled (they are part of the fairness mechanism); the Wilson 99%
//! lower bound of the measured rate is compared against `1/(κL)`.

use wfl_bench::{fmt_success, header, row, verdict};
use wfl_workloads::harness::{run_random_conflict, AlgoKind, SchedKind, SimSpec};

fn main() {
    println!("# E3: per-attempt success probability vs the 1/(kappa*L) bound");
    header(&["kappa", "L", "attempts", "success rate (99% lb)", "bound 1/(kL)", "bound held"]);
    let mut all_ok = true;
    for &(kappa, l) in &[(2usize, 1usize), (2, 2), (4, 1), (4, 2), (8, 1)] {
        let mut spec = SimSpec::new(kappa, 150, l, l); // nlocks = L: everyone takes all locks
        spec.seed = 31;
        spec.sched = SchedKind::Random;
        spec.think_max = 32;
        spec.heap_words = 1 << 25;
        spec.max_steps = 2_000_000_000;
        let r = run_random_conflict(&spec, AlgoKind::Wfl { kappa, delays: true, helping: true });
        assert!(r.safety_ok, "safety violated at kappa={kappa} L={l}");
        let bound = 1.0 / (kappa * l) as f64;
        let ok = r.success.wilson_lower(2.58) >= bound;
        all_ok &= ok;
        row(&[
            kappa.to_string(),
            l.to_string(),
            r.attempts.to_string(),
            fmt_success(&r.success),
            format!("{bound:.3}"),
            verdict(ok).to_string(),
        ]);
    }
    println!();
    println!("Theorem 6.9 fairness bound: {}", verdict(all_ok));
}
