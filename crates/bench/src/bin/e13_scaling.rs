//! E13 — real-threads scaling, and the proof obligations for the three
//! contention-free hot paths:
//!
//! * **legacy vs fast** (since PR 1): the historical driver configuration
//!   (global per-step `SeqCst` clock `fetch_add`, all-`SeqCst` memory
//!   operations — [`RealConfig::precise`]) against batched clock leases +
//!   the acquire/release ordering tier ([`RealConfig::fast`]), on the
//!   philosophers workload.
//! * **global vs laned** (since PR 4): the historical single-bump-cursor
//!   arena ([`AllocMode::Global`] — one shared `fetch_add` per cons cell,
//!   descriptor and log record) against the sharded per-process allocation
//!   lanes ([`AllocMode::laned`] — a plain uncontended bump, one shared
//!   RMW per slab), on the allocation-heavy random-conflict workload.
//! * **packed+unified vs padded+sharded** (since PR 8): the historical
//!   memory layout (lock words and active-set slots allocated
//!   back-to-back, one neighborhood) against the cache-line-isolated
//!   layout ([`SpaceLayout`]: one 64B line per hot record, locks grouped
//!   into shard neighborhoods with guard lines), per algorithm — including
//!   the cohort-backoff blocking baseline so the high-thread comparison
//!   measures algorithms, not a spin-loop strawman. The padded+sharded
//!   series also yields each algorithm's **scaling knee**: the first
//!   swept thread count whose marginal goodput per added thread drops
//!   below 50% of the base (lowest-thread-count) slope.
//!
//! Since PR 2 this binary is a thin client of the **unified workload
//! harness**, so every timed cell also runs its workload's safety check,
//! and the wall clock ends when the bodies do. The default sweep runs past
//! typical physical core counts into oversubscription (every JSON row
//! records `available_parallelism` so oversubscribed cells are
//! distinguishable), prints ops/sec tables, and emits `BENCH_scaling.json`.
//!
//! Usage: `e13_scaling [--smoke] [--threads N,N,...]`
//!   --smoke   : CI-sized sweep (2 and 4 threads, small attempt counts).
//!               The smoke run **gates** two refactors: the laned arena
//!               must keep >= 0.8x of the global cursor's wins/s, and the
//!               padded+sharded layout must keep >= 0.95x of
//!               packed+unified at the low thread count and strictly beat
//!               it at the top of the sweep (the strict half only where
//!               `available_parallelism > 1` — on a single hardware
//!               thread, cross-core cache traffic cannot manifest).
//!   --threads : comma-separated sweep list (default 2,4,8,16; smoke 2,4).

use std::fmt::Write as _;
use wfl_core::SpaceLayout;
use wfl_runtime::real::RealConfig;
use wfl_runtime::{available_parallelism, AllocMode, Placement};
use wfl_workloads::harness::{
    run_philosophers_mode, run_random_conflict_mode, AlgoKind, ExecMode, HarnessReport, SimSpec,
};

const REPEATS: usize = 3;

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// Pre-change hot path: precise global clock, SeqCst tier.
    Legacy,
    /// Contention-free hot path: leased clock, tiered orderings.
    Fast,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::Legacy => "legacy",
            Mode::Fast => "fast",
        }
    }

    fn real_config(self) -> RealConfig {
        match self {
            Mode::Legacy => RealConfig::precise(),
            Mode::Fast => RealConfig::fast(),
        }
    }
}

struct Sample {
    /// Successful acquisitions (critical sections run) per second — the
    /// useful-throughput metric; failed attempts are not counted, so a
    /// mode cannot look faster by failing faster.
    ops_per_sec: f64,
    wall_secs: f64,
    wins: u64,
    attempts: u64,
    /// Heap lifetimes spanned (1: this bench stays single-epoch so its
    /// trajectory remains comparable across PRs).
    epochs: u64,
    /// Arena pressure: highest usage at any epoch boundary, in words.
    heap_high_water: usize,
    /// The per-lane breakdown (workers first, root lane last; a single
    /// entry under the global cursor), already compacted to the lanes
    /// this run used.
    heap_high_water_lanes: Vec<usize>,
}

impl Sample {
    fn from_report(r: &HarnessReport) -> Sample {
        let wall = r.wall.expect("real runs report wall time").as_secs_f64();
        Sample {
            ops_per_sec: r.wins as f64 / wall,
            wall_secs: wall,
            wins: r.wins,
            attempts: r.attempts,
            epochs: r.epochs,
            heap_high_water: r.heap_high_water,
            heap_high_water_lanes: r.compact_high_water_lanes(),
        }
    }

    fn better_of(self, other: Option<Sample>) -> Sample {
        match other {
            Some(b) if b.ops_per_sec > self.ops_per_sec => b,
            _ => self,
        }
    }
}

fn algo_kind(name: &str, threads: usize) -> AlgoKind {
    match name {
        // E13 wfl runs without delays (the delay padding is a simulator
        // -model cost); every other label resolves through the shared
        // extended roster, so `--algos` accepts wfl+combine/fc/ccsynch too.
        "wfl" => AlgoKind::Wfl { kappa: threads.max(2), delays: false, helping: true },
        _ => AlgoKind::from_label(name, threads)
            .unwrap_or_else(|| panic!("unknown algorithm {name:?}")),
    }
}

/// One timed run: `threads` philosophers each make `attempts` eating
/// attempts through the unified harness. Returns the best of `REPEATS`
/// runs (least-noise estimate on a shared machine); the harness's
/// meal-count safety check is asserted on every run.
fn run_config(algo_name: &str, mode: Mode, threads: usize, attempts: usize) -> Sample {
    let mut best: Option<Sample> = None;
    for _ in 0..REPEATS {
        let exec = ExecMode::Real {
            threads,
            run_for: None,
            cfg: mode.real_config(),
            epoch_rounds: None,
            deadline_steps: None,
        };
        let r = run_philosophers_mode(threads, attempts, 42, algo_kind(algo_name, 2), 1 << 23, &exec);
        assert!(
            r.safety_ok,
            "{algo_name}/{}/{threads}t: philosopher meal counters diverged",
            mode.name()
        );
        best = Some(Sample::from_report(&r).better_of(best));
    }
    best.expect("at least one repeat")
}

/// One allocator cell: the random-conflict workload (every attempt
/// allocates a frame, a descriptor and active-set cons cells — the
/// allocation-heaviest path we have) under an explicit [`AllocMode`].
fn run_alloc_cell(alloc: AllocMode, threads: usize, attempts: usize, repeats: usize) -> Sample {
    let mut best: Option<Sample> = None;
    for _ in 0..repeats {
        let mut spec = SimSpec::new(threads, attempts, (2 * threads).max(3), 2);
        spec.seed = 42;
        spec.think_max = 0; // back-to-back attempts: allocator pressure
        spec.heap_words = 1 << 23;
        spec.alloc = alloc;
        let algo = AlgoKind::Wfl { kappa: threads.max(2), delays: false, helping: true };
        let r = run_random_conflict_mode(&spec, algo, &ExecMode::real(threads));
        assert!(
            r.safety_ok,
            "random_conflict/{}/{threads}t: safety check failed",
            alloc.label()
        );
        best = Some(Sample::from_report(&r).better_of(best));
    }
    best.expect("at least one repeat")
}

/// One layout cell: the random-conflict workload under an explicit
/// [`SpaceLayout`]. Back-to-back attempts over a lock pool sized at two
/// locks per thread keep per-lock contention low and cross-lock traffic
/// high — exactly the regime where false sharing, not the algorithm,
/// dominates; the layout A/B isolates it.
fn run_layout_cell(
    algo_name: &str,
    layout: SpaceLayout,
    threads: usize,
    attempts: usize,
    repeats: usize,
) -> Sample {
    let mut best: Option<Sample> = None;
    for _ in 0..repeats {
        let mut spec = SimSpec::new(threads, attempts, (2 * threads).max(3), 2);
        spec.seed = 42;
        spec.think_max = 0;
        spec.heap_words = 1 << 23;
        spec.layout = layout;
        let r = run_random_conflict_mode(&spec, algo_kind(algo_name, threads), &ExecMode::real(threads));
        assert!(
            r.safety_ok,
            "random_conflict/{algo_name}/{}/{threads}t: safety check failed",
            layout.label()
        );
        best = Some(Sample::from_report(&r).better_of(best));
    }
    best.expect("at least one repeat")
}

/// The scaling knee of a `(threads, wins/s)` series: the first thread
/// count whose **marginal** goodput per added thread falls below 50% of
/// the base slope (wins/s per thread at the lowest swept count). 0 when
/// the series never kneels inside the sweep.
fn knee_threads(series: &[(usize, f64)]) -> usize {
    let Some(&(t0, ops0)) = series.first() else {
        return 0;
    };
    let base_slope = ops0 / t0 as f64;
    for w in series.windows(2) {
        let (ta, opsa) = w[0];
        let (tb, opsb) = w[1];
        let marginal = (opsb - opsa) / (tb - ta) as f64;
        if marginal < 0.5 * base_slope {
            return tb;
        }
    }
    0
}

fn parse_threads(args: &[String]) -> Option<Vec<usize>> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let list = if let Some(rest) = a.strip_prefix("--threads=") {
            rest.to_string()
        } else if a == "--threads" {
            it.next().expect("--threads needs a comma-separated list").clone()
        } else {
            continue;
        };
        let counts: Vec<usize> = list
            .split(',')
            .map(|t| t.trim().parse().unwrap_or_else(|_| panic!("bad thread count {t:?}")))
            .collect();
        assert!(!counts.is_empty(), "--threads list is empty");
        assert!(counts.iter().all(|&t| t >= 2), "philosophers need >= 2 threads");
        return Some(counts);
    }
    None
}

fn json_lanes(lanes: &[usize]) -> String {
    let mut s = String::from("[");
    for (i, w) in lanes.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "{w}");
    }
    s.push(']');
    s
}

#[allow(clippy::too_many_arguments)]
fn json_row(
    json: &mut String,
    first: &mut bool,
    workload: &str,
    algo: &str,
    mode: &str,
    allocator: &str,
    layout: &str,
    threads: usize,
    s: &Sample,
) {
    if !*first {
        json.push_str(",\n");
    }
    *first = false;
    let _ = write!(
        json,
        "    {{\"workload\": \"{workload}\", \"algo\": \"{algo}\", \"mode\": \"{mode}\", \
         \"allocator\": \"{allocator}\", \"layout\": \"{layout}\", \"threads\": {threads}, \
         \"available_parallelism\": {}, \
         \"ops_per_sec\": {:.1}, \"wall_secs\": {:.6}, \"wins\": {}, \"attempts\": {}, \
         \"epochs\": {}, \"heap_high_water\": {}, \"heap_high_water_lanes\": {}}}",
        available_parallelism(),
        s.ops_per_sec,
        s.wall_secs,
        s.wins,
        s.attempts,
        s.epochs,
        s.heap_high_water,
        json_lanes(&s.heap_high_water_lanes)
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let avail = available_parallelism();
    // Philosophers need a table of >= 2, so the sweep starts at 2 threads;
    // the default full sweep runs past typical core counts into
    // oversubscription on purpose (the knee is the point).
    let thread_counts: Vec<usize> = parse_threads(&args)
        .unwrap_or_else(|| if smoke { vec![2, 4] } else { vec![2, 4, 8, 16] });
    let top_threads = *thread_counts.last().unwrap();
    let phil_attempts = if smoke { 300 } else { 2000 };
    let conflict_attempts = if smoke { 400 } else { 2000 };
    // `--algos` narrows (or, with extended labels, replaces) both rosters;
    // requested names are validated against the full extended label set.
    let algo_filter = wfl_bench::parse_algos(&args);
    let known: Vec<String> =
        AlgoKind::all_extended(2).iter().map(|k| k.label().to_string()).collect();
    if let Some(names) = &algo_filter {
        for n in names {
            assert!(
                known.iter().any(|k| k == n),
                "--algos: unknown algorithm {n:?} (known: {})",
                known.join(", ")
            );
        }
    }
    let pick = |defaults: &[&'static str]| -> Vec<String> {
        match &algo_filter {
            Some(names) => names.clone(),
            None => defaults.iter().map(|s| s.to_string()).collect(),
        }
    };
    let algos = pick(&["wfl", "tsp", "naive"]);
    let layout_algos = pick(&["wfl", "tsp", "naive", "blocking", "blocking-cohort"]);
    println!("# E13: real-threads scaling — hot-path, allocator and layout A/B cells (smoke = {smoke})");
    println!(
        "(unified harness; philosophers {phil_attempts} attempts/thread, random-conflict \
         {conflict_attempts} attempts/thread, best of {REPEATS}; threads {thread_counts:?}, \
         available_parallelism {avail})"
    );
    println!();

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"e13_scaling\",");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"available_parallelism\": {avail},");
    let _ = writeln!(json, "  \"attempts_per_thread\": {phil_attempts},");
    let _ = writeln!(json, "  \"repeats\": {REPEATS},");
    json.push_str("  \"results\": [\n");

    // --- legacy vs fast (philosophers; arena stays the default laned) ---
    let mut wfl_speedup_at_max = 0.0f64;
    let mut first = true;
    for algo in &algos {
        let algo = algo.as_str();
        wfl_bench::header(&["threads", "legacy wins/s", "fast wins/s", "speedup"]);
        for &threads in &thread_counts {
            let legacy = run_config(algo, Mode::Legacy, threads, phil_attempts);
            let fast = run_config(algo, Mode::Fast, threads, phil_attempts);
            let speedup = fast.ops_per_sec / legacy.ops_per_sec;
            if algo == "wfl" && threads == top_threads {
                wfl_speedup_at_max = speedup;
            }
            wfl_bench::row(&[
                format!("{algo} x{threads}"),
                format!("{:.0}", legacy.ops_per_sec),
                format!("{:.0}", fast.ops_per_sec),
                format!("{speedup:.2}x"),
            ]);
            for (mode_name, s) in [("legacy", &legacy), ("fast", &fast)] {
                json_row(
                    &mut json,
                    &mut first,
                    "philosophers",
                    algo,
                    mode_name,
                    "laned",
                    "padded+sharded",
                    threads,
                    s,
                );
            }
        }
        println!();
    }

    // --- global vs laned (random-conflict; hot path stays fast) ---
    println!("## allocator: global bump cursor vs sharded lanes");
    wfl_bench::header(&["threads", "global wins/s", "laned wins/s", "speedup"]);
    let mut laned_over_global_at_max = 0.0f64;
    // The smoke gates compare millisecond-scale runs on a shared CI
    // runner: take the best of more repeats there so a single noisy
    // neighbor on one side cannot fake a regression.
    let gate_repeats = if smoke { 7 } else { REPEATS };
    for &threads in &thread_counts {
        let global = run_alloc_cell(AllocMode::Global, threads, conflict_attempts, gate_repeats);
        let laned = run_alloc_cell(AllocMode::laned(), threads, conflict_attempts, gate_repeats);
        let speedup = laned.ops_per_sec / global.ops_per_sec;
        if threads == top_threads {
            laned_over_global_at_max = speedup;
        }
        wfl_bench::row(&[
            format!("wfl x{threads}"),
            format!("{:.0}", global.ops_per_sec),
            format!("{:.0}", laned.ops_per_sec),
            format!("{speedup:.2}x"),
        ]);
        for (alloc_name, s) in [("global", &global), ("laned", &laned)] {
            json_row(
                &mut json,
                &mut first,
                "random_conflict",
                "wfl",
                "fast",
                alloc_name,
                "padded+sharded",
                threads,
                s,
            );
        }
        if smoke {
            // The CI gate: the sharded allocator must not cost throughput.
            assert!(
                laned.ops_per_sec >= 0.8 * global.ops_per_sec,
                "laned allocator regresses >20% at {threads} threads: \
                 {:.0} laned vs {:.0} global wins/s",
                laned.ops_per_sec,
                global.ops_per_sec
            );
        }
    }
    println!();

    // --- packed+unified vs padded+sharded, per algorithm ---
    println!("## layout: packed+unified vs padded+sharded (random-conflict)");
    // Longer cells than the allocator A/B: the layout effect is a few
    // percent, so full runs stretch each cell (still under the 4095
    // rounds/process tag-space cap of a single epoch) to push scheduler
    // noise below it.
    let layout_attempts = if smoke { conflict_attempts } else { 4000 };
    // Best-of-9 in full runs: with cells this short, the quantity of
    // interest is each layout's noise-free ceiling, and the max of more
    // repeats converges to it from below.
    let layout_repeats = if smoke { gate_repeats } else { 9 };
    let packed_unified = SpaceLayout::packed_unified();
    let padded_sharded = SpaceLayout::default();
    let mut layout_speedup_at_max = 0.0f64;
    let mut knees: Vec<(&str, usize)> = Vec::new();
    for algo in &layout_algos {
        let algo = algo.as_str();
        wfl_bench::header(&["threads", "packed+unified", "padded+sharded", "speedup"]);
        let mut padded_series: Vec<(usize, f64)> = Vec::new();
        for &threads in &thread_counts {
            let packed = run_layout_cell(algo, packed_unified, threads, layout_attempts, layout_repeats);
            let padded = run_layout_cell(algo, padded_sharded, threads, layout_attempts, layout_repeats);
            let speedup = padded.ops_per_sec / packed.ops_per_sec;
            padded_series.push((threads, padded.ops_per_sec));
            if algo == "wfl" && threads == top_threads {
                layout_speedup_at_max = speedup;
            }
            wfl_bench::row(&[
                format!("{algo} x{threads}"),
                format!("{:.0}", packed.ops_per_sec),
                format!("{:.0}", padded.ops_per_sec),
                format!("{speedup:.2}x"),
            ]);
            for (layout, s) in [(&packed_unified, &packed), (&padded_sharded, &padded)] {
                json_row(
                    &mut json,
                    &mut first,
                    "random_conflict",
                    algo,
                    "fast",
                    "laned",
                    &layout.label(),
                    threads,
                    s,
                );
            }
            if algo == "wfl" {
                // The off-diagonal cells: which half of the layout change
                // carries the win?
                for layout in [
                    SpaceLayout { placement: Placement::Padded, shards: 1 },
                    SpaceLayout { placement: Placement::Packed, shards: 0 },
                ] {
                    let s = run_layout_cell(algo, layout, threads, layout_attempts, REPEATS);
                    json_row(
                        &mut json,
                        &mut first,
                        "random_conflict",
                        algo,
                        "fast",
                        "laned",
                        &layout.label(),
                        threads,
                        &s,
                    );
                }
            }
            if smoke && algo == "wfl" {
                // The layout gate. Floor everywhere: padded+sharded must
                // never cost more than 5% of packed+unified.
                assert!(
                    padded.ops_per_sec >= 0.95 * packed.ops_per_sec,
                    "padded+sharded regresses >5% at {threads} threads: \
                     {:.0} vs {:.0} wins/s",
                    padded.ops_per_sec,
                    packed.ops_per_sec
                );
                // Strictly better at the top of the sweep — but only where
                // more than one hardware thread exists: with every thread
                // multiplexed onto one core, cross-core cache-line traffic
                // (the thing the layout removes) cannot manifest, and the
                // comparison is a coin flip.
                if threads == top_threads {
                    if avail > 1 {
                        assert!(
                            padded.ops_per_sec > packed.ops_per_sec,
                            "padded+sharded not ahead at the top of the sweep \
                             ({threads} threads): {:.0} vs {:.0} wins/s",
                            padded.ops_per_sec,
                            packed.ops_per_sec
                        );
                    } else {
                        println!(
                            "(skipping strict top-of-sweep layout gate: \
                             available_parallelism = 1)"
                        );
                    }
                }
            }
        }
        let knee = knee_threads(&padded_series);
        knees.push((algo, knee));
        if knee == 0 {
            println!("{algo}: no scaling knee inside the sweep");
        } else {
            println!("{algo}: scaling knee at {knee} threads");
        }
        println!();
    }

    json.push_str("\n  ],\n");
    let _ = writeln!(json, "  \"wfl_fast_over_legacy_at_max_threads\": {wfl_speedup_at_max:.3},");
    let _ = writeln!(json, "  \"laned_over_global_at_max_threads\": {laned_over_global_at_max:.3},");
    let _ = writeln!(
        json,
        "  \"padded_sharded_over_packed_unified_at_max_threads\": {layout_speedup_at_max:.3},"
    );
    json.push_str("  \"knee_threads\": {");
    for (i, (algo, knee)) in knees.iter().enumerate() {
        if i > 0 {
            json.push_str(", ");
        }
        let _ = write!(json, "\"{algo}\": {knee}");
    }
    json.push_str("}\n");
    json.push_str("}\n");

    std::fs::write("BENCH_scaling.json", &json).expect("write BENCH_scaling.json");
    println!("wfl fast/legacy at {top_threads} threads: {wfl_speedup_at_max:.2}x");
    println!("wfl laned/global at {top_threads} threads: {laned_over_global_at_max:.2}x");
    println!("wfl padded+sharded/packed+unified at {top_threads} threads: {layout_speedup_at_max:.2}x");
    println!("wrote BENCH_scaling.json");
}
