//! E13 — real-threads scaling, and the proof obligations for the three
//! contention-free hot paths:
//!
//! * **legacy vs fast** (since PR 1): the historical driver configuration
//!   (global per-step `SeqCst` clock `fetch_add`, all-`SeqCst` memory
//!   operations — [`RealConfig::precise`]) against batched clock leases +
//!   the acquire/release ordering tier ([`RealConfig::fast`]), on the
//!   philosophers workload.
//! * **global vs laned** (since PR 4): the historical single-bump-cursor
//!   arena ([`AllocMode::Global`] — one shared `fetch_add` per cons cell,
//!   descriptor and log record) against the sharded per-process allocation
//!   lanes ([`AllocMode::laned`] — a plain uncontended bump, one shared
//!   RMW per slab), on the allocation-heavy random-conflict workload.
//! * **packed+unified vs padded+sharded** (since PR 8): the historical
//!   memory layout (lock words and active-set slots allocated
//!   back-to-back, one neighborhood) against the cache-line-isolated
//!   layout ([`SpaceLayout`]: one 64B line per hot record, locks grouped
//!   into shard neighborhoods with guard lines), per algorithm — including
//!   the cohort-backoff blocking baseline so the high-thread comparison
//!   measures algorithms, not a spin-loop strawman. The padded+sharded
//!   series also yields each algorithm's **scaling knee**: the first
//!   swept thread count whose marginal goodput per added thread drops
//!   below 50% of the base (lowest-thread-count) slope.
//!
//! Since PR 2 this binary is a thin client of the **unified workload
//! harness**, so every timed cell also runs its workload's safety check,
//! and the wall clock ends when the bodies do. The default sweep runs past
//! typical physical core counts into oversubscription (every JSON row
//! records `available_parallelism` so oversubscribed cells are
//! distinguishable), prints ops/sec tables, and emits `BENCH_scaling.json`.
//!
//! Usage: `e13_scaling [--smoke] [--threads N,N,...] [--trace out.json]`
//!   --smoke   : CI-sized sweep (2 and 4 threads, small attempt counts).
//!               The smoke run **gates** two refactors: the laned arena
//!               must keep >= 0.8x of the global cursor's wins/s, and the
//!               padded+sharded layout must keep >= 0.95x of
//!               packed+unified at the low thread count and strictly beat
//!               it at the top of the sweep, and the flight recorder must
//!               cost <= 3% disabled / <= 10% enabled of wfl wins/s at the
//!               top of the sweep. The strict layout half and the tight
//!               margins arm only where `available_parallelism > 1`: on a
//!               single hardware thread cross-core cache traffic cannot
//!               manifest and identical binaries measure ±10% apart, so
//!               1-core floors only catch catastrophic regressions.
//!   --threads : comma-separated sweep list (default 2,4,8,16; smoke 2,4).
//!   --trace   : export one recorded top-of-sweep wfl cell as
//!               Chrome/Perfetto `trace_event` JSON (plus a
//!               `<path>.metrics.json` sidecar).

use std::fmt::Write as _;
use wfl_core::SpaceLayout;
use wfl_runtime::real::RealConfig;
use wfl_runtime::{available_parallelism, AllocMode, Placement};
use wfl_workloads::harness::{
    run_philosophers_mode, run_random_conflict_mode, AlgoKind, ExecMode, HarnessReport, SimSpec,
};

const REPEATS: usize = 3;

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// Pre-change hot path: precise global clock, SeqCst tier.
    Legacy,
    /// Contention-free hot path: leased clock, tiered orderings.
    Fast,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::Legacy => "legacy",
            Mode::Fast => "fast",
        }
    }

    fn real_config(self) -> RealConfig {
        match self {
            Mode::Legacy => RealConfig::precise(),
            Mode::Fast => RealConfig::fast(),
        }
    }
}

struct Sample {
    /// Successful acquisitions (critical sections run) per second — the
    /// useful-throughput metric; failed attempts are not counted, so a
    /// mode cannot look faster by failing faster.
    ops_per_sec: f64,
    /// Arena pressure: highest usage at any epoch boundary, in words.
    heap_high_water: usize,
    /// The per-lane breakdown (workers first, root lane last; a single
    /// entry under the global cursor), already compacted to the lanes
    /// this run used.
    heap_high_water_lanes: Vec<usize>,
    /// The uniform metrics fold the shared row writer serializes.
    metrics: wfl_obs::MetricsSnapshot,
}

impl Sample {
    fn from_report(r: &HarnessReport) -> Sample {
        let wall = r.wall.expect("real runs report wall time").as_secs_f64();
        Sample {
            ops_per_sec: r.wins as f64 / wall,
            heap_high_water: r.heap_high_water,
            heap_high_water_lanes: r.compact_high_water_lanes(),
            metrics: r.metrics(),
        }
    }

    fn better_of(self, other: Option<Sample>) -> Sample {
        match other {
            Some(b) if b.ops_per_sec > self.ops_per_sec => b,
            _ => self,
        }
    }
}

fn algo_kind(name: &str, threads: usize) -> AlgoKind {
    match name {
        // E13 wfl runs without delays (the delay padding is a simulator
        // -model cost); every other label resolves through the shared
        // extended roster, so `--algos` accepts wfl+combine/fc/ccsynch too.
        "wfl" => AlgoKind::Wfl { kappa: threads.max(2), delays: false, helping: true },
        _ => AlgoKind::from_label(name, threads)
            .unwrap_or_else(|| panic!("unknown algorithm {name:?}")),
    }
}

/// One timed run: `threads` philosophers each make `attempts` eating
/// attempts through the unified harness. Returns the best of `REPEATS`
/// runs (least-noise estimate on a shared machine); the harness's
/// meal-count safety check is asserted on every run.
fn run_config(algo_name: &str, mode: Mode, threads: usize, attempts: usize) -> Sample {
    let mut best: Option<Sample> = None;
    for _ in 0..REPEATS {
        let exec = ExecMode::Real {
            threads,
            run_for: None,
            cfg: mode.real_config(),
            epoch_rounds: None,
            deadline_steps: None,
            recorder: false,
        };
        let r = run_philosophers_mode(threads, attempts, 42, algo_kind(algo_name, 2), 1 << 23, &exec);
        assert!(
            r.safety_ok,
            "{algo_name}/{}/{threads}t: philosopher meal counters diverged",
            mode.name()
        );
        best = Some(Sample::from_report(&r).better_of(best));
    }
    best.expect("at least one repeat")
}

/// One allocator cell: the random-conflict workload (every attempt
/// allocates a frame, a descriptor and active-set cons cells — the
/// allocation-heaviest path we have) under an explicit [`AllocMode`].
fn run_alloc_cell(alloc: AllocMode, threads: usize, attempts: usize, repeats: usize) -> Sample {
    let mut best: Option<Sample> = None;
    for _ in 0..repeats {
        let mut spec = SimSpec::new(threads, attempts, (2 * threads).max(3), 2);
        spec.seed = 42;
        spec.think_max = 0; // back-to-back attempts: allocator pressure
        spec.heap_words = 1 << 23;
        spec.alloc = alloc;
        let algo = AlgoKind::Wfl { kappa: threads.max(2), delays: false, helping: true };
        let r = run_random_conflict_mode(&spec, algo, &ExecMode::real(threads));
        assert!(
            r.safety_ok,
            "random_conflict/{}/{threads}t: safety check failed",
            alloc.label()
        );
        best = Some(Sample::from_report(&r).better_of(best));
    }
    best.expect("at least one repeat")
}

/// One layout cell: the random-conflict workload under an explicit
/// [`SpaceLayout`]. Back-to-back attempts over a lock pool sized at two
/// locks per thread keep per-lock contention low and cross-lock traffic
/// high — exactly the regime where false sharing, not the algorithm,
/// dominates; the layout A/B isolates it.
fn run_layout_cell(
    algo_name: &str,
    layout: SpaceLayout,
    threads: usize,
    attempts: usize,
    repeats: usize,
) -> Sample {
    let mut best: Option<Sample> = None;
    for _ in 0..repeats {
        let mut spec = SimSpec::new(threads, attempts, (2 * threads).max(3), 2);
        spec.seed = 42;
        spec.think_max = 0;
        spec.heap_words = 1 << 23;
        spec.layout = layout;
        let r = run_random_conflict_mode(&spec, algo_kind(algo_name, threads), &ExecMode::real(threads));
        assert!(
            r.safety_ok,
            "random_conflict/{algo_name}/{}/{threads}t: safety check failed",
            layout.label()
        );
        best = Some(Sample::from_report(&r).better_of(best));
    }
    best.expect("at least one repeat")
}

/// One flight-recorder overhead cell: the wfl philosophers cell on the
/// fast hot path, with the recorder in an explicit state. The caller
/// cycles the global recorder to prepare the "steady disabled" state.
fn run_recorder_cell(threads: usize, attempts: usize, repeats: usize, recorder: bool) -> Sample {
    let mut best: Option<Sample> = None;
    for _ in 0..repeats {
        let mut exec = ExecMode::Real {
            threads,
            run_for: None,
            cfg: Mode::Fast.real_config(),
            epoch_rounds: None,
            deadline_steps: None,
            recorder: false,
        };
        if recorder {
            exec = exec.with_recorder();
        }
        let r = run_philosophers_mode(threads, attempts, 42, algo_kind("wfl", 2), 1 << 23, &exec);
        assert!(r.safety_ok, "recorder cell: philosopher meal counters diverged");
        best = Some(Sample::from_report(&r).better_of(best));
    }
    best.expect("at least one repeat")
}

/// The scaling knee of a `(threads, wins/s)` series: the first thread
/// count whose **marginal** goodput per added thread falls below 50% of
/// the base slope (wins/s per thread at the lowest swept count). 0 when
/// the series never kneels inside the sweep.
fn knee_threads(series: &[(usize, f64)]) -> usize {
    let Some(&(t0, ops0)) = series.first() else {
        return 0;
    };
    let base_slope = ops0 / t0 as f64;
    for w in series.windows(2) {
        let (ta, opsa) = w[0];
        let (tb, opsb) = w[1];
        let marginal = (opsb - opsa) / (tb - ta) as f64;
        if marginal < 0.5 * base_slope {
            return tb;
        }
    }
    0
}

fn parse_threads(args: &[String]) -> Option<Vec<usize>> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let list = if let Some(rest) = a.strip_prefix("--threads=") {
            rest.to_string()
        } else if a == "--threads" {
            it.next().expect("--threads needs a comma-separated list").clone()
        } else {
            continue;
        };
        let counts: Vec<usize> = list
            .split(',')
            .map(|t| t.trim().parse().unwrap_or_else(|_| panic!("bad thread count {t:?}")))
            .collect();
        assert!(!counts.is_empty(), "--threads list is empty");
        assert!(counts.iter().all(|&t| t >= 2), "philosophers need >= 2 threads");
        return Some(counts);
    }
    None
}

fn json_lanes(lanes: &[usize]) -> String {
    let mut s = String::from("[");
    for (i, w) in lanes.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "{w}");
    }
    s.push(']');
    s
}

#[allow(clippy::too_many_arguments)]
fn json_row(
    rows: &mut wfl_bench::Rows,
    workload: &str,
    algo: &str,
    mode: &str,
    allocator: &str,
    layout: &str,
    threads: usize,
    s: &Sample,
) {
    rows.push(
        &[
            ("workload", workload.to_string()),
            ("algo", algo.to_string()),
            ("mode", mode.to_string()),
            ("allocator", allocator.to_string()),
            ("layout", layout.to_string()),
        ],
        &[
            ("threads", threads.to_string()),
            ("available_parallelism", available_parallelism().to_string()),
            ("ops_per_sec", format!("{:.1}", s.ops_per_sec)),
            ("heap_high_water", s.heap_high_water.to_string()),
            ("heap_high_water_lanes", json_lanes(&s.heap_high_water_lanes)),
        ],
        &s.metrics,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let avail = available_parallelism();
    // Philosophers need a table of >= 2, so the sweep starts at 2 threads;
    // the default full sweep runs past typical core counts into
    // oversubscription on purpose (the knee is the point).
    let thread_counts: Vec<usize> = parse_threads(&args)
        .unwrap_or_else(|| if smoke { vec![2, 4] } else { vec![2, 4, 8, 16] });
    let top_threads = *thread_counts.last().unwrap();
    let phil_attempts = if smoke { 300 } else { 2000 };
    let conflict_attempts = if smoke { 400 } else { 2000 };
    // `--algos` narrows (or, with extended labels, replaces) both rosters;
    // requested names are validated against the full extended label set.
    let algo_filter = wfl_bench::parse_algos(&args);
    let known: Vec<String> =
        AlgoKind::all_extended(2).iter().map(|k| k.label().to_string()).collect();
    if let Some(names) = &algo_filter {
        for n in names {
            assert!(
                known.iter().any(|k| k == n),
                "--algos: unknown algorithm {n:?} (known: {})",
                known.join(", ")
            );
        }
    }
    let pick = |defaults: &[&'static str]| -> Vec<String> {
        match &algo_filter {
            Some(names) => names.clone(),
            None => defaults.iter().map(|s| s.to_string()).collect(),
        }
    };
    let algos = pick(&["wfl", "tsp", "naive"]);
    let layout_algos = pick(&["wfl", "tsp", "naive", "blocking", "blocking-cohort"]);
    println!("# E13: real-threads scaling — hot-path, allocator and layout A/B cells (smoke = {smoke})");
    println!(
        "(unified harness; philosophers {phil_attempts} attempts/thread, random-conflict \
         {conflict_attempts} attempts/thread, best of {REPEATS}; threads {thread_counts:?}, \
         available_parallelism {avail})"
    );
    println!();

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"e13_scaling\",");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"available_parallelism\": {avail},");
    let _ = writeln!(json, "  \"attempts_per_thread\": {phil_attempts},");
    let _ = writeln!(json, "  \"repeats\": {REPEATS},");
    let mut rows = wfl_bench::Rows::new();

    // --- legacy vs fast (philosophers; arena stays the default laned) ---
    let mut wfl_speedup_at_max = 0.0f64;
    for algo in &algos {
        let algo = algo.as_str();
        wfl_bench::header(&["threads", "legacy wins/s", "fast wins/s", "speedup"]);
        for &threads in &thread_counts {
            let legacy = run_config(algo, Mode::Legacy, threads, phil_attempts);
            let fast = run_config(algo, Mode::Fast, threads, phil_attempts);
            let speedup = fast.ops_per_sec / legacy.ops_per_sec;
            if algo == "wfl" && threads == top_threads {
                wfl_speedup_at_max = speedup;
            }
            wfl_bench::row(&[
                format!("{algo} x{threads}"),
                format!("{:.0}", legacy.ops_per_sec),
                format!("{:.0}", fast.ops_per_sec),
                format!("{speedup:.2}x"),
            ]);
            for (mode_name, s) in [("legacy", &legacy), ("fast", &fast)] {
                json_row(
                    &mut rows,
                    "philosophers",
                    algo,
                    mode_name,
                    "laned",
                    "padded+sharded",
                    threads,
                    s,
                );
            }
        }
        println!();
    }

    // --- global vs laned (random-conflict; hot path stays fast) ---
    println!("## allocator: global bump cursor vs sharded lanes");
    wfl_bench::header(&["threads", "global wins/s", "laned wins/s", "speedup"]);
    let mut laned_over_global_at_max = 0.0f64;
    // The smoke gates compare millisecond-scale runs on a shared CI
    // runner: take the best of more repeats there so a single noisy
    // neighbor on one side cannot fake a regression.
    let gate_repeats = if smoke { 7 } else { REPEATS };
    for &threads in &thread_counts {
        let global = run_alloc_cell(AllocMode::Global, threads, conflict_attempts, gate_repeats);
        let laned = run_alloc_cell(AllocMode::laned(), threads, conflict_attempts, gate_repeats);
        let speedup = laned.ops_per_sec / global.ops_per_sec;
        if threads == top_threads {
            laned_over_global_at_max = speedup;
        }
        wfl_bench::row(&[
            format!("wfl x{threads}"),
            format!("{:.0}", global.ops_per_sec),
            format!("{:.0}", laned.ops_per_sec),
            format!("{speedup:.2}x"),
        ]);
        for (alloc_name, s) in [("global", &global), ("laned", &laned)] {
            json_row(
                &mut rows,
                "random_conflict",
                "wfl",
                "fast",
                alloc_name,
                "padded+sharded",
                threads,
                s,
            );
        }
        if smoke {
            // The CI gate: the sharded allocator must not cost throughput.
            assert!(
                laned.ops_per_sec >= 0.8 * global.ops_per_sec,
                "laned allocator regresses >20% at {threads} threads: \
                 {:.0} laned vs {:.0} global wins/s",
                laned.ops_per_sec,
                global.ops_per_sec
            );
        }
    }
    println!();

    // --- packed+unified vs padded+sharded, per algorithm ---
    println!("## layout: packed+unified vs padded+sharded (random-conflict)");
    // Longer cells than the allocator A/B: the layout effect is a few
    // percent, so full runs stretch each cell (still under the 4095
    // rounds/process tag-space cap of a single epoch) to push scheduler
    // noise below it.
    // Smoke cells still need enough length to gate on: a 400-attempt cell
    // lasts ~1.5ms at these rates, and single-core scheduling noise alone
    // can breach a 5% floor at that duration.
    let layout_attempts = if smoke { 2000 } else { 4000 };
    // Best-of-9 in full runs: with cells this short, the quantity of
    // interest is each layout's noise-free ceiling, and the max of more
    // repeats converges to it from below.
    let layout_repeats = if smoke { gate_repeats } else { 9 };
    let packed_unified = SpaceLayout::packed_unified();
    let padded_sharded = SpaceLayout::default();
    let mut layout_speedup_at_max = 0.0f64;
    let mut knees: Vec<(&str, usize)> = Vec::new();
    for algo in &layout_algos {
        let algo = algo.as_str();
        wfl_bench::header(&["threads", "packed+unified", "padded+sharded", "speedup"]);
        let mut padded_series: Vec<(usize, f64)> = Vec::new();
        for &threads in &thread_counts {
            // Interleave the two layouts with alternating order instead of
            // running each as one block: this box's throughput drifts ±10%
            // at the ~10ms scale, and each cell touches a fresh 64MB
            // arena, so both drift windows and within-pair position bias
            // land on whichever layout runs second. The speedup ratio is
            // taken over aggregate Σwins/Σwall per layout (the whole
            // gate's drift profile), while the best single samples still
            // feed the JSON rows.
            let mut packed: Option<Sample> = None;
            let mut padded: Option<Sample> = None;
            let mut packed_tot = (0u64, 0f64);
            let mut padded_tot = (0u64, 0f64);
            for i in 0..layout_repeats {
                let one = |layout, tot: &mut (u64, f64), best: &mut Option<Sample>| {
                    let s = run_layout_cell(algo, layout, threads, layout_attempts, 1);
                    tot.0 += s.metrics.wins;
                    tot.1 += s.metrics.wall_secs.expect("real runs report wall time");
                    *best = Some(s.better_of(best.take()));
                };
                if i % 2 == 0 {
                    one(packed_unified, &mut packed_tot, &mut packed);
                    one(padded_sharded, &mut padded_tot, &mut padded);
                } else {
                    one(padded_sharded, &mut padded_tot, &mut padded);
                    one(packed_unified, &mut packed_tot, &mut packed);
                }
            }
            let (packed, padded) = (packed.unwrap(), padded.unwrap());
            let speedup = (padded_tot.0 as f64 / padded_tot.1) / (packed_tot.0 as f64 / packed_tot.1);
            padded_series.push((threads, padded.ops_per_sec));
            if algo == "wfl" && threads == top_threads {
                layout_speedup_at_max = speedup;
            }
            wfl_bench::row(&[
                format!("{algo} x{threads}"),
                format!("{:.0}", packed.ops_per_sec),
                format!("{:.0}", padded.ops_per_sec),
                format!("{speedup:.2}x"),
            ]);
            for (layout, s) in [(&packed_unified, &packed), (&padded_sharded, &padded)] {
                json_row(
                    &mut rows,
                    "random_conflict",
                    algo,
                    "fast",
                    "laned",
                    &layout.label(),
                    threads,
                    s,
                );
            }
            if algo == "wfl" {
                // The off-diagonal cells: which half of the layout change
                // carries the win?
                for layout in [
                    SpaceLayout { placement: Placement::Padded, shards: 1 },
                    SpaceLayout { placement: Placement::Packed, shards: 0 },
                ] {
                    let s = run_layout_cell(algo, layout, threads, layout_attempts, REPEATS);
                    json_row(
                        &mut rows,
                        "random_conflict",
                        algo,
                        "fast",
                        "laned",
                        &layout.label(),
                        threads,
                        &s,
                    );
                }
            }
            if smoke && algo == "wfl" {
                // The layout gate. Floor everywhere: padded+sharded must
                // never cost more than 5% of packed+unified (on the
                // interleaved aggregate ratio, not single best samples).
                // On a single multiplexed core the measured gap between
                // IDENTICAL configurations is ±10%+ (drift, stalls, per
                // -cell 64MB-arena page luck), so there the floor only
                // arms against catastrophic regressions.
                let floor = if avail > 1 { 0.95 } else { 0.80 };
                assert!(
                    speedup >= floor,
                    "padded+sharded regresses below {floor}x at {threads} threads: \
                     aggregate ratio {speedup:.3}"
                );
                // Strictly better at the top of the sweep — but only where
                // more than one hardware thread exists: with every thread
                // multiplexed onto one core, cross-core cache-line traffic
                // (the thing the layout removes) cannot manifest, and the
                // comparison is a coin flip.
                if threads == top_threads {
                    if avail > 1 {
                        assert!(
                            speedup > 1.0,
                            "padded+sharded not ahead at the top of the sweep \
                             ({threads} threads): aggregate ratio {speedup:.3}"
                        );
                    } else {
                        println!(
                            "(skipping strict top-of-sweep layout gate: \
                             available_parallelism = 1)"
                        );
                    }
                }
            }
        }
        let knee = knee_threads(&padded_series);
        knees.push((algo, knee));
        if knee == 0 {
            println!("{algo}: no scaling knee inside the sweep");
        } else {
            println!("{algo}: scaling knee at {knee} threads");
        }
        println!();
    }

    // --- flight-recorder overhead at the top of the sweep ---
    println!("## flight recorder: overhead at {top_threads} threads (wfl philosophers)");
    wfl_bench::header(&["config", "wins/s", "vs baseline"]);
    // Overhead ratios need longer cells than the scaling sweep (at ~1M
    // wins/s a 300-attempt smoke cell lasts ~1ms and timer noise alone
    // breaches a 3% gate) and a drift-immune estimator: this box is a
    // single virtualized core whose throughput drifts ±10% at the
    // ~10ms scale, so both best-of-N-vs-best-of-N and per-round paired
    // ratios measure the drift, not the recorder (a cell pair cannot
    // share a drift window the size of one cell). What does average the
    // drift out is total aggregate throughput: interleave the three
    // configs round-robin and ratio Σwins/Σwall per config across every
    // round — each config's denominator then samples the whole gate's
    // drift profile instead of one window of it. The first baseline
    // covers the never-enabled cold state; after it the recorder is
    // cycled once so "disabled" cells measure the steady disabled state
    // (rings touched, flag cleared).
    // gate_attempts is capped by the 4095 rounds/process tag space of a
    // single epoch.
    let gate_attempts = phil_attempts.max(4000);
    let gate_rounds = gate_repeats.max(12);
    // Per config (baseline, disabled, enabled): best sample for the JSON
    // rows and (Σ wins, Σ wall seconds) for the gated aggregate.
    let mut best: [Option<Sample>; 3] = [None, None, None];
    let mut totals = [(0u64, 0f64); 3];
    let run_cfg = |cfg: usize, best: &mut [Option<Sample>; 3], totals: &mut [(u64, f64); 3]| {
        let s = run_recorder_cell(top_threads, gate_attempts, 1, cfg == 2);
        totals[cfg].0 += s.metrics.wins;
        totals[cfg].1 += s.metrics.wall_secs.expect("real runs report wall time");
        best[cfg] = Some(s.better_of(best[cfg].take()));
    };
    // Round 0 in fixed order: the baseline cell covers the never-enabled
    // cold state, then the recorder is cycled once so every "disabled"
    // cell measures the steady disabled state (rings touched, flag
    // cleared).
    run_cfg(0, &mut best, &mut totals);
    wfl_obs::rec::enable();
    wfl_obs::rec::disable();
    run_cfg(1, &mut best, &mut totals);
    run_cfg(2, &mut best, &mut totals);
    // Later rounds rotate the order so every config samples every
    // within-round position equally (each cell touches a fresh 64MB
    // arena, so later positions in a round systematically pay more
    // reclaim than the first).
    const ROTATIONS: [[usize; 3]; 3] = [[0, 1, 2], [1, 2, 0], [2, 0, 1]];
    for round in 1..gate_rounds {
        for &cfg in &ROTATIONS[round % 3] {
            run_cfg(cfg, &mut best, &mut totals);
        }
    }
    let [baseline, disabled, enabled] = best.map(|s| s.unwrap());
    let agg = |(wins, wall): (u64, f64)| wins as f64 / wall;
    let rec_disabled_ratio = agg(totals[1]) / agg(totals[0]);
    let rec_enabled_ratio = agg(totals[2]) / agg(totals[0]);
    for (name, s, ratio) in [
        ("baseline", &baseline, 1.0),
        ("rec_disabled", &disabled, rec_disabled_ratio),
        ("rec_enabled", &enabled, rec_enabled_ratio),
    ] {
        wfl_bench::row(&[
            name.to_string(),
            format!("{:.0}", s.ops_per_sec),
            format!("{ratio:.2}x"),
        ]);
        json_row(
            &mut rows,
            "philosophers",
            "wfl",
            &format!("fast+{name}"),
            "laned",
            "padded+sharded",
            top_threads,
            s,
        );
    }
    println!();
    // --trace: export one recorded top-of-sweep wfl philosophers cell.
    if let Some(path) = wfl_bench::parse_trace(&args) {
        let exec = ExecMode::Real {
            threads: top_threads,
            run_for: None,
            cfg: Mode::Fast.real_config(),
            epoch_rounds: None,
            deadline_steps: None,
            recorder: false,
        }
        .with_recorder();
        let r = run_philosophers_mode(top_threads, phil_attempts, 42, algo_kind("wfl", 2), 1 << 23, &exec);
        assert!(r.safety_ok, "traced cell: philosopher meal counters diverged");
        let meta = [
            ("bench", "e13_scaling".to_string()),
            ("workload", "philosophers".to_string()),
            ("algo", "wfl".to_string()),
            ("mode", "fast".to_string()),
            ("threads", top_threads.to_string()),
        ];
        let snap = r.trace.as_ref().expect("recorded run carries a trace");
        wfl_bench::write_trace(&path, snap, &r.metrics(), &meta);
    }
    if smoke {
        // The observability gates: recording must be effectively free when
        // off and cheap when on, on the interleaved aggregate ratios. The
        // tight margins (<=3% disabled, <=10% enabled) arm only where more
        // than one hardware thread exists: on a single multiplexed core
        // the measured gap between IDENTICAL binaries is ±10%+, so there
        // the floors only catch the disabled path growing real work (a
        // lock, an allocation, a syscall — an order-of-magnitude hit, not
        // a marginal one).
        let (disabled_floor, enabled_floor) = if avail > 1 { (0.97, 0.90) } else { (0.85, 0.80) };
        if avail == 1 {
            println!("(single hardware thread: recorder overhead floors relaxed to catastrophic-only)");
        }
        assert!(
            rec_disabled_ratio >= disabled_floor,
            "disabled flight recorder costs too much wfl wins/s at {top_threads} threads: \
             aggregate ratio {rec_disabled_ratio:.3} < {disabled_floor}"
        );
        assert!(
            rec_enabled_ratio >= enabled_floor,
            "enabled flight recorder costs too much wfl wins/s at {top_threads} threads: \
             aggregate ratio {rec_enabled_ratio:.3} < {enabled_floor}"
        );
    }

    json.push_str("  \"results\": ");
    json.push_str(&rows.finish());
    json.push_str(",\n");
    let _ = writeln!(json, "  \"recorder_disabled_over_baseline\": {rec_disabled_ratio:.3},");
    let _ = writeln!(json, "  \"recorder_enabled_over_baseline\": {rec_enabled_ratio:.3},");
    let _ = writeln!(json, "  \"wfl_fast_over_legacy_at_max_threads\": {wfl_speedup_at_max:.3},");
    let _ = writeln!(json, "  \"laned_over_global_at_max_threads\": {laned_over_global_at_max:.3},");
    let _ = writeln!(
        json,
        "  \"padded_sharded_over_packed_unified_at_max_threads\": {layout_speedup_at_max:.3},"
    );
    json.push_str("  \"knee_threads\": {");
    for (i, (algo, knee)) in knees.iter().enumerate() {
        if i > 0 {
            json.push_str(", ");
        }
        let _ = write!(json, "\"{algo}\": {knee}");
    }
    json.push_str("}\n");
    json.push_str("}\n");

    std::fs::write("BENCH_scaling.json", &json).expect("write BENCH_scaling.json");
    println!("wfl fast/legacy at {top_threads} threads: {wfl_speedup_at_max:.2}x");
    println!("wfl laned/global at {top_threads} threads: {laned_over_global_at_max:.2}x");
    println!("wfl padded+sharded/packed+unified at {top_threads} threads: {layout_speedup_at_max:.2}x");
    println!("wrote BENCH_scaling.json");
}
