//! E13 — real-threads scaling, and the proof obligations for the two
//! contention-free hot paths:
//!
//! * **legacy vs fast** (since PR 1): the historical driver configuration
//!   (global per-step `SeqCst` clock `fetch_add`, all-`SeqCst` memory
//!   operations — [`RealConfig::precise`]) against batched clock leases +
//!   the acquire/release ordering tier ([`RealConfig::fast`]), on the
//!   philosophers workload.
//! * **global vs laned** (since PR 4): the historical single-bump-cursor
//!   arena ([`AllocMode::Global`] — one shared `fetch_add` per cons cell,
//!   descriptor and log record) against the sharded per-process allocation
//!   lanes ([`AllocMode::laned`] — a plain uncontended bump, one shared
//!   RMW per slab), on the allocation-heavy random-conflict workload.
//!
//! Since PR 2 this binary is a thin client of the **unified workload
//! harness**, so every timed cell also runs its workload's safety check,
//! and the wall clock ends when the bodies do. Sweeps 2..=8 threads,
//! prints ops/sec tables, and emits `BENCH_scaling.json` (rows carry an
//! `allocator` tag and the per-lane high-water vector) so future changes
//! have a perf trajectory to compare against.
//!
//! Usage: `e13_scaling [--smoke]`
//!   --smoke : CI-sized sweep (2 threads, small attempt counts). The
//!             smoke run **gates** the allocator refactor: it fails if the
//!             laned arena regresses successful acquisitions/sec by more
//!             than 20% against the global cursor at the smoke thread
//!             count.

use std::fmt::Write as _;
use wfl_runtime::real::RealConfig;
use wfl_runtime::AllocMode;
use wfl_workloads::harness::{
    run_philosophers_mode, run_random_conflict_mode, AlgoKind, ExecMode, HarnessReport, SimSpec,
};

const REPEATS: usize = 3;

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// Pre-change hot path: precise global clock, SeqCst tier.
    Legacy,
    /// Contention-free hot path: leased clock, tiered orderings.
    Fast,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::Legacy => "legacy",
            Mode::Fast => "fast",
        }
    }

    fn real_config(self) -> RealConfig {
        match self {
            Mode::Legacy => RealConfig::precise(),
            Mode::Fast => RealConfig::fast(),
        }
    }
}

struct Sample {
    /// Successful acquisitions (critical sections run) per second — the
    /// useful-throughput metric; failed attempts are not counted, so a
    /// mode cannot look faster by failing faster.
    ops_per_sec: f64,
    wall_secs: f64,
    wins: u64,
    attempts: u64,
    /// Heap lifetimes spanned (1: this bench stays single-epoch so its
    /// trajectory remains comparable across PRs).
    epochs: u64,
    /// Arena pressure: highest usage at any epoch boundary, in words.
    heap_high_water: usize,
    /// The per-lane breakdown (workers first, root lane last; a single
    /// entry under the global cursor), already compacted to the lanes
    /// this run used.
    heap_high_water_lanes: Vec<usize>,
}

impl Sample {
    fn from_report(r: &HarnessReport) -> Sample {
        let wall = r.wall.expect("real runs report wall time").as_secs_f64();
        Sample {
            ops_per_sec: r.wins as f64 / wall,
            wall_secs: wall,
            wins: r.wins,
            attempts: r.attempts,
            epochs: r.epochs,
            heap_high_water: r.heap_high_water,
            heap_high_water_lanes: r.compact_high_water_lanes(),
        }
    }

    fn better_of(self, other: Option<Sample>) -> Sample {
        match other {
            Some(b) if b.ops_per_sec > self.ops_per_sec => b,
            _ => self,
        }
    }
}

fn algo_kind(name: &str) -> AlgoKind {
    match name {
        "wfl" => AlgoKind::Wfl { kappa: 2, delays: false, helping: true },
        "tsp" => AlgoKind::Tsp,
        _ => AlgoKind::Naive,
    }
}

/// One timed run: `threads` philosophers each make `attempts` eating
/// attempts through the unified harness. Returns the best of `REPEATS`
/// runs (least-noise estimate on a shared machine); the harness's
/// meal-count safety check is asserted on every run.
fn run_config(algo_name: &str, mode: Mode, threads: usize, attempts: usize) -> Sample {
    let mut best: Option<Sample> = None;
    for _ in 0..REPEATS {
        let exec = ExecMode::Real {
            threads,
            run_for: None,
            cfg: mode.real_config(),
            epoch_rounds: None,
            deadline_steps: None,
        };
        let r = run_philosophers_mode(threads, attempts, 42, algo_kind(algo_name), 1 << 23, &exec);
        assert!(
            r.safety_ok,
            "{algo_name}/{}/{threads}t: philosopher meal counters diverged",
            mode.name()
        );
        best = Some(Sample::from_report(&r).better_of(best));
    }
    best.expect("at least one repeat")
}

/// One allocator cell: the random-conflict workload (every attempt
/// allocates a frame, a descriptor and active-set cons cells — the
/// allocation-heaviest path we have) under an explicit [`AllocMode`].
fn run_alloc_cell(alloc: AllocMode, threads: usize, attempts: usize, repeats: usize) -> Sample {
    let mut best: Option<Sample> = None;
    for _ in 0..repeats {
        let mut spec = SimSpec::new(threads, attempts, (2 * threads).max(3), 2);
        spec.seed = 42;
        spec.think_max = 0; // back-to-back attempts: allocator pressure
        spec.heap_words = 1 << 23;
        spec.alloc = alloc;
        let algo = AlgoKind::Wfl { kappa: threads.max(2), delays: false, helping: true };
        let r = run_random_conflict_mode(&spec, algo, &ExecMode::real(threads));
        assert!(
            r.safety_ok,
            "random_conflict/{}/{threads}t: safety check failed",
            alloc.label()
        );
        best = Some(Sample::from_report(&r).better_of(best));
    }
    best.expect("at least one repeat")
}

fn json_lanes(lanes: &[usize]) -> String {
    let mut s = String::from("[");
    for (i, w) in lanes.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "{w}");
    }
    s.push(']');
    s
}

#[allow(clippy::too_many_arguments)]
fn json_row(
    json: &mut String,
    first: &mut bool,
    workload: &str,
    algo: &str,
    mode: &str,
    allocator: &str,
    threads: usize,
    s: &Sample,
) {
    if !*first {
        json.push_str(",\n");
    }
    *first = false;
    let _ = write!(
        json,
        "    {{\"workload\": \"{workload}\", \"algo\": \"{algo}\", \"mode\": \"{mode}\", \
         \"allocator\": \"{allocator}\", \"threads\": {threads}, \
         \"ops_per_sec\": {:.1}, \"wall_secs\": {:.6}, \"wins\": {}, \"attempts\": {}, \
         \"epochs\": {}, \"heap_high_water\": {}, \"heap_high_water_lanes\": {}}}",
        s.ops_per_sec,
        s.wall_secs,
        s.wins,
        s.attempts,
        s.epochs,
        s.heap_high_water,
        json_lanes(&s.heap_high_water_lanes)
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // Philosophers need a table of >= 2, so the sweep starts at 2 threads.
    let thread_counts: &[usize] = if smoke { &[2] } else { &[2, 4, 8] };
    let phil_attempts = if smoke { 300 } else { 2000 };
    let conflict_attempts = if smoke { 400 } else { 2000 };
    let algos = ["wfl", "tsp", "naive"];
    println!("# E13: real-threads scaling — hot-path and allocator A/B cells (smoke = {smoke})");
    println!("(unified harness; philosophers {phil_attempts} attempts/thread, random-conflict {conflict_attempts} attempts/thread, best of {REPEATS})");
    println!();

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"e13_scaling\",");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"attempts_per_thread\": {phil_attempts},");
    let _ = writeln!(json, "  \"repeats\": {REPEATS},");
    json.push_str("  \"results\": [\n");

    // --- legacy vs fast (philosophers; arena stays the default laned) ---
    let mut wfl_speedup_at_max = 0.0f64;
    let mut first = true;
    for &algo in &algos {
        wfl_bench::header(&["threads", "legacy wins/s", "fast wins/s", "speedup"]);
        for &threads in thread_counts {
            let legacy = run_config(algo, Mode::Legacy, threads, phil_attempts);
            let fast = run_config(algo, Mode::Fast, threads, phil_attempts);
            let speedup = fast.ops_per_sec / legacy.ops_per_sec;
            if algo == "wfl" && threads == *thread_counts.last().unwrap() {
                wfl_speedup_at_max = speedup;
            }
            wfl_bench::row(&[
                format!("{algo} x{threads}"),
                format!("{:.0}", legacy.ops_per_sec),
                format!("{:.0}", fast.ops_per_sec),
                format!("{speedup:.2}x"),
            ]);
            for (mode_name, s) in [("legacy", &legacy), ("fast", &fast)] {
                json_row(&mut json, &mut first, "philosophers", algo, mode_name, "laned", threads, s);
            }
        }
        println!();
    }

    // --- global vs laned (random-conflict; hot path stays fast) ---
    println!("## allocator: global bump cursor vs sharded lanes");
    wfl_bench::header(&["threads", "global wins/s", "laned wins/s", "speedup"]);
    let mut laned_over_global_at_max = 0.0f64;
    // The smoke gate compares millisecond-scale runs on a shared CI
    // runner: take the best of more repeats there so a single noisy
    // neighbor on one side cannot fake a >20% regression.
    let alloc_repeats = if smoke { 7 } else { REPEATS };
    for &threads in thread_counts {
        let global = run_alloc_cell(AllocMode::Global, threads, conflict_attempts, alloc_repeats);
        let laned = run_alloc_cell(AllocMode::laned(), threads, conflict_attempts, alloc_repeats);
        let speedup = laned.ops_per_sec / global.ops_per_sec;
        if threads == *thread_counts.last().unwrap() {
            laned_over_global_at_max = speedup;
        }
        wfl_bench::row(&[
            format!("wfl x{threads}"),
            format!("{:.0}", global.ops_per_sec),
            format!("{:.0}", laned.ops_per_sec),
            format!("{speedup:.2}x"),
        ]);
        for (alloc_name, s) in [("global", &global), ("laned", &laned)] {
            json_row(&mut json, &mut first, "random_conflict", "wfl", "fast", alloc_name, threads, s);
        }
        if smoke {
            // The CI gate: the sharded allocator must not cost throughput.
            assert!(
                laned.ops_per_sec >= 0.8 * global.ops_per_sec,
                "laned allocator regresses >20% at {threads} threads: \
                 {:.0} laned vs {:.0} global wins/s",
                laned.ops_per_sec,
                global.ops_per_sec
            );
        }
    }
    println!();

    json.push_str("\n  ],\n");
    let _ = writeln!(json, "  \"wfl_fast_over_legacy_at_max_threads\": {wfl_speedup_at_max:.3},");
    let _ = writeln!(json, "  \"laned_over_global_at_max_threads\": {laned_over_global_at_max:.3}");
    json.push_str("}\n");

    std::fs::write("BENCH_scaling.json", &json).expect("write BENCH_scaling.json");
    println!("wfl fast/legacy at {} threads: {wfl_speedup_at_max:.2}x", thread_counts.last().unwrap());
    println!(
        "wfl laned/global at {} threads: {laned_over_global_at_max:.2}x",
        thread_counts.last().unwrap()
    );
    println!("wrote BENCH_scaling.json");
}
