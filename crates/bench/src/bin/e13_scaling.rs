//! E13 — real-threads scaling of the philosophers workload, and the proof
//! obligation for the contention-free hot path: `legacy` is the historical
//! driver configuration (global per-step `SeqCst` clock `fetch_add`,
//! all-`SeqCst` memory operations — [`RealConfig::precise`]), `fast` is the
//! batched clock leases + acquire/release ordering tier
//! ([`RealConfig::fast`]).
//!
//! Since PR 2 this binary is a thin client of the **unified workload
//! harness** ([`run_philosophers_mode`] under [`ExecMode::Real`]) instead
//! of a hand-rolled thread driver, so every timed cell also runs the
//! meal-count safety check, and the wall clock ends when the bodies do
//! (the driver parks on a completion signal rather than sleeping out a
//! timer). Sweeps 2..=N threads for wfl / tsp / naive, prints ops/sec
//! tables, and emits `BENCH_scaling.json` so future changes have a perf
//! trajectory to compare against. Delays are disabled for wfl: they are a
//! simulator-model cost (fixed own-step padding), not a wall-clock one.

use std::fmt::Write as _;
use wfl_runtime::real::RealConfig;
use wfl_workloads::harness::{run_philosophers_mode, AlgoKind, ExecMode, HarnessReport};

const ATTEMPTS_PER_THREAD: usize = 2000;
const REPEATS: usize = 3;

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// Pre-change hot path: precise global clock, SeqCst tier.
    Legacy,
    /// Contention-free hot path: leased clock, tiered orderings.
    Fast,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::Legacy => "legacy",
            Mode::Fast => "fast",
        }
    }

    fn real_config(self) -> RealConfig {
        match self {
            Mode::Legacy => RealConfig::precise(),
            Mode::Fast => RealConfig::fast(),
        }
    }
}

struct Sample {
    /// Successful acquisitions (critical sections run) per second — the
    /// useful-throughput metric; failed attempts are not counted, so a
    /// mode cannot look faster by failing faster.
    ops_per_sec: f64,
    wall_secs: f64,
    wins: u64,
    attempts: u64,
    /// Heap lifetimes spanned (1: this bench stays single-epoch so its
    /// trajectory remains comparable across PRs).
    epochs: u64,
    /// Arena pressure: highest heap usage at any epoch boundary, in words.
    heap_high_water: usize,
}

fn algo_kind(name: &str) -> AlgoKind {
    match name {
        "wfl" => AlgoKind::Wfl { kappa: 2, delays: false, helping: true },
        "tsp" => AlgoKind::Tsp,
        _ => AlgoKind::Naive,
    }
}

/// One timed run: `threads` philosophers each make `ATTEMPTS_PER_THREAD`
/// eating attempts through the unified harness. Returns the best of
/// `REPEATS` runs (least-noise estimate on a shared machine); the
/// harness's meal-count safety check is asserted on every run.
fn run_config(algo_name: &str, mode: Mode, threads: usize) -> Sample {
    let mut best: Option<Sample> = None;
    for _ in 0..REPEATS {
        let exec = ExecMode::Real {
            threads,
            run_for: None,
            cfg: mode.real_config(),
            epoch_rounds: None,
        };
        let r: HarnessReport = run_philosophers_mode(
            threads,
            ATTEMPTS_PER_THREAD,
            42,
            algo_kind(algo_name),
            1 << 23,
            &exec,
        );
        assert!(
            r.safety_ok,
            "{algo_name}/{}/{threads}t: philosopher meal counters diverged",
            mode.name()
        );
        let wall = r.wall.expect("real runs report wall time").as_secs_f64();
        let ops = r.wins as f64 / wall;
        if best.as_ref().is_none_or(|b| ops > b.ops_per_sec) {
            best = Some(Sample {
                ops_per_sec: ops,
                wall_secs: wall,
                wins: r.wins,
                attempts: r.attempts,
                epochs: r.epochs,
                heap_high_water: r.heap_high_water,
            });
        }
    }
    best.expect("at least one repeat")
}

fn main() {
    // Philosophers need a table of >= 2, so the sweep starts at 2 threads.
    let thread_counts = [2usize, 4, 8];
    let algos = ["wfl", "tsp", "naive"];
    println!("# E13: real-threads scaling — legacy vs contention-free hot path");
    println!("(philosophers workload via the unified harness, {ATTEMPTS_PER_THREAD} attempts/thread, best of {REPEATS})");
    println!();

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"e13_scaling\",");
    let _ = writeln!(json, "  \"workload\": \"philosophers_real_threads\",");
    let _ = writeln!(json, "  \"attempts_per_thread\": {ATTEMPTS_PER_THREAD},");
    let _ = writeln!(json, "  \"repeats\": {REPEATS},");
    json.push_str("  \"results\": [\n");

    let mut wfl_speedup_at_max = 0.0f64;
    let mut first = true;
    for &algo in &algos {
        wfl_bench::header(&["threads", "legacy wins/s", "fast wins/s", "speedup"]);
        for &threads in &thread_counts {
            let legacy = run_config(algo, Mode::Legacy, threads);
            let fast = run_config(algo, Mode::Fast, threads);
            let speedup = fast.ops_per_sec / legacy.ops_per_sec;
            if algo == "wfl" && threads == *thread_counts.last().unwrap() {
                wfl_speedup_at_max = speedup;
            }
            wfl_bench::row(&[
                format!("{algo} x{threads}"),
                format!("{:.0}", legacy.ops_per_sec),
                format!("{:.0}", fast.ops_per_sec),
                format!("{speedup:.2}x"),
            ]);
            for (mode_name, s) in [("legacy", &legacy), ("fast", &fast)] {
                if !first {
                    json.push_str(",\n");
                }
                first = false;
                let _ = write!(
                    json,
                    "    {{\"algo\": \"{algo}\", \"mode\": \"{mode_name}\", \"threads\": {threads}, \
                     \"ops_per_sec\": {:.1}, \"wall_secs\": {:.6}, \"wins\": {}, \"attempts\": {}, \
                     \"epochs\": {}, \"heap_high_water\": {}}}",
                    s.ops_per_sec, s.wall_secs, s.wins, s.attempts, s.epochs, s.heap_high_water
                );
            }
        }
        println!();
    }
    json.push_str("\n  ],\n");
    let _ = writeln!(json, "  \"wfl_fast_over_legacy_at_8_threads\": {wfl_speedup_at_max:.3}");
    json.push_str("}\n");

    std::fs::write("BENCH_scaling.json", &json).expect("write BENCH_scaling.json");
    println!("wfl fast/legacy at 8 threads: {wfl_speedup_at_max:.2}x");
    println!("wrote BENCH_scaling.json");
}
