//! E13 — real-threads scaling of the philosophers workload, and the proof
//! obligation for the contention-free hot path: `legacy` re-creates the
//! pre-optimization driver configuration (global per-step `SeqCst` clock
//! `fetch_add`, all-`SeqCst` memory operations, and a fresh scratch — i.e.
//! fresh `Vec` allocations — per attempt), while `fast` uses batched clock
//! leases ([`RealConfig::fast`]), the acquire/release ordering tier, and
//! one reused per-process [`Scratch`].
//!
//! Sweeps 1..=N threads for wfl / tsp / naive, prints ops/sec tables, and
//! emits `BENCH_scaling.json` so future changes have a perf trajectory to
//! compare against. Delays are disabled for wfl: they are a simulator-model
//! cost (fixed own-step padding), not a wall-clock one.

use std::fmt::Write as _;
use wfl_baselines::{LockAlgo, NaiveTryLock, TspLock, WflKnown};
use wfl_core::{LockConfig, LockSpace, Scratch};
use wfl_idem::{Registry, TagSource};
use wfl_runtime::real::{run_threads_with, RealConfig};
use wfl_runtime::{Ctx, Heap};
use wfl_workloads::philosophers::Table;

const ATTEMPTS_PER_THREAD: usize = 2000;
const REPEATS: usize = 3;

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// Pre-change hot path: precise global clock, SeqCst tier, per-attempt
    /// scratch (= per-attempt Vec allocations).
    Legacy,
    /// Contention-free hot path: leased clock, tiered orderings, reused
    /// scratch.
    Fast,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::Legacy => "legacy",
            Mode::Fast => "fast",
        }
    }

    fn real_config(self) -> RealConfig {
        match self {
            Mode::Legacy => RealConfig::precise(),
            Mode::Fast => RealConfig::fast(),
        }
    }
}

struct Sample {
    /// Successful acquisitions (critical sections run) per second — the
    /// useful-throughput metric; failed attempts are not counted, so a
    /// mode cannot look faster by failing faster.
    ops_per_sec: f64,
    wall_secs: f64,
    wins: u64,
    attempts: u64,
}

/// One timed run: `threads` philosophers each make `ATTEMPTS_PER_THREAD`
/// eating attempts. Returns the best of `REPEATS` runs (least-noise
/// estimate on a shared machine) with the meal-count safety check applied
/// to every run.
fn run_config(algo_name: &str, mode: Mode, threads: usize) -> Sample {
    let mut best: Option<Sample> = None;
    for _ in 0..REPEATS {
        let n = threads.max(2);
        let mut registry = Registry::new();
        let heap = Heap::new(1 << 23);
        let table = Table::create_root(&heap, &mut registry, n);
        // Construct only the algorithm under test (the others would just
        // churn heap roots).
        let space;
        let wfl;
        let tsp;
        let naive;
        let algo: &dyn LockAlgo = match algo_name {
            "wfl" => {
                space = LockSpace::create_root(&heap, n, 3);
                wfl = WflKnown {
                    space: &space,
                    registry: &registry,
                    cfg: LockConfig::new(2, 2, 2).without_delays(),
                };
                &wfl
            }
            "tsp" => {
                tsp = TspLock::create_root(&heap, &registry, n);
                &tsp
            }
            _ => {
                naive = NaiveTryLock::create_root(&heap, &registry, n);
                &naive
            }
        };
        let wins_out = heap.alloc_root(threads);
        let table_ref = &table;
        let report = run_threads_with(&heap, threads, 42, None, mode.real_config(), |pid| {
            move |ctx: &Ctx<'_>| {
                let mut tags = TagSource::new(pid);
                let mut reused = Scratch::new();
                let mut wins = 0u64;
                for _ in 0..ATTEMPTS_PER_THREAD {
                    let won = if mode == Mode::Legacy {
                        // Fresh buffers every attempt, as the pre-change
                        // code allocated.
                        let mut fresh = Scratch::new();
                        table_ref.attempt_eat(ctx, algo, &mut tags, &mut fresh, pid).won
                    } else {
                        table_ref.attempt_eat(ctx, algo, &mut tags, &mut reused, pid).won
                    };
                    wins += won as u64;
                }
                ctx.heap().poke(wins_out.off(pid as u32), wins);
            }
        });
        report.assert_clean();
        // Safety: meals match wins per philosopher (single-writer per meal
        // cell pair protected by the chopsticks).
        let mut wins_total = 0u64;
        for pid in 0..threads {
            let wins = heap.peek(wins_out.off(pid as u32));
            let meals = table.meals_eaten(&heap, pid) as u64;
            assert_eq!(meals, wins, "{algo_name}/{}/{threads}t: philosopher {pid} meals diverged", mode.name());
            wins_total += wins;
        }
        let wall = report.wall.as_secs_f64();
        let attempts = (threads * ATTEMPTS_PER_THREAD) as u64;
        let ops = wins_total as f64 / wall;
        if best.as_ref().is_none_or(|b| ops > b.ops_per_sec) {
            best = Some(Sample { ops_per_sec: ops, wall_secs: wall, wins: wins_total, attempts });
        }
    }
    best.expect("at least one repeat")
}

fn main() {
    let thread_counts = [1usize, 2, 4, 8];
    let algos = ["wfl", "tsp", "naive"];
    println!("# E13: real-threads scaling — legacy vs contention-free hot path");
    println!("(philosophers workload, {ATTEMPTS_PER_THREAD} attempts/thread, best of {REPEATS})");
    println!();

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"e13_scaling\",");
    let _ = writeln!(json, "  \"workload\": \"philosophers_real_threads\",");
    let _ = writeln!(json, "  \"attempts_per_thread\": {ATTEMPTS_PER_THREAD},");
    let _ = writeln!(json, "  \"repeats\": {REPEATS},");
    json.push_str("  \"results\": [\n");

    let mut wfl_speedup_at_max = 0.0f64;
    let mut first = true;
    for &algo in &algos {
        wfl_bench::header(&["threads", "legacy wins/s", "fast wins/s", "speedup"]);
        for &threads in &thread_counts {
            let legacy = run_config(algo, Mode::Legacy, threads);
            let fast = run_config(algo, Mode::Fast, threads);
            let speedup = fast.ops_per_sec / legacy.ops_per_sec;
            if algo == "wfl" && threads == *thread_counts.last().unwrap() {
                wfl_speedup_at_max = speedup;
            }
            wfl_bench::row(&[
                format!("{algo} x{threads}"),
                format!("{:.0}", legacy.ops_per_sec),
                format!("{:.0}", fast.ops_per_sec),
                format!("{speedup:.2}x"),
            ]);
            for (mode_name, s) in [("legacy", &legacy), ("fast", &fast)] {
                if !first {
                    json.push_str(",\n");
                }
                first = false;
                let _ = write!(
                    json,
                    "    {{\"algo\": \"{algo}\", \"mode\": \"{mode_name}\", \"threads\": {threads}, \
                     \"ops_per_sec\": {:.1}, \"wall_secs\": {:.6}, \"wins\": {}, \"attempts\": {}}}",
                    s.ops_per_sec, s.wall_secs, s.wins, s.attempts
                );
            }
        }
        println!();
    }
    json.push_str("\n  ],\n");
    let _ = writeln!(json, "  \"wfl_fast_over_legacy_at_8_threads\": {wfl_speedup_at_max:.3}");
    json.push_str("}\n");

    std::fs::write("BENCH_scaling.json", &json).expect("write BENCH_scaling.json");
    println!("wfl fast/legacy at 8 threads: {wfl_speedup_at_max:.2}x (target >= 2x)");
    println!("wrote BENCH_scaling.json");
}
