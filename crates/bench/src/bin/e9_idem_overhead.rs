//! E9 — Theorem 4.2: the idempotence construction has constant-factor
//! overhead per operation.
//!
//! A thunk of k writes is executed (a) raw and (b) through the idempotent
//! log, solo; the table shows steps and the ratio, which must be flat in
//! k (constant factor), plus the helped case (4 concurrent helpers) where
//! the *combined* work is shared.

use wfl_bench::{header, row, verdict};
use wfl_idem::{cell, Frame, IdemRun, Registry, TagSource, Thunk};
use wfl_runtime::schedule::SeededRandom;
use wfl_runtime::sim::SimBuilder;
use wfl_runtime::{Addr, Ctx, Heap};

struct ManyWrites(usize);
impl Thunk for ManyWrites {
    fn run(&self, run: &mut IdemRun<'_, '_>) {
        let base = Addr::from_word(run.arg(0));
        for i in 0..self.0 {
            run.write(base.off(i as u32), i as u32 + 1);
        }
    }
    fn max_ops(&self) -> usize {
        self.0
    }
}

fn steps_for(k: usize, raw: bool) -> u64 {
    let mut registry = Registry::new();
    let id = registry.register(ManyWrites(k));
    let heap = Heap::new(1 << 20);
    let base = heap.alloc_root(k);
    let mut tags = TagSource::new(0);
    let frame = Frame::create_root(&heap, &registry, id, tags.next_base(), &[base.to_word()]);
    let reg = &registry;
    let report = SimBuilder::new(&heap, 1)
        .spawn(move |ctx: &Ctx| {
            if raw {
                frame.run_raw(ctx, reg);
            } else {
                frame.help(ctx, reg);
            }
        })
        .run();
    report.assert_clean();
    for i in 0..k {
        assert_eq!(cell::value(heap.peek(base.off(i as u32))), i as u32 + 1);
    }
    report.steps[0]
}

fn helped_steps(k: usize, helpers: usize) -> u64 {
    let mut registry = Registry::new();
    let id = registry.register(ManyWrites(k));
    let heap = Heap::new(1 << 22);
    let base = heap.alloc_root(k);
    let mut tags = TagSource::new(0);
    let frame = Frame::create_root(&heap, &registry, id, tags.next_base(), &[base.to_word()]);
    let reg = &registry;
    let report = SimBuilder::new(&heap, helpers)
        .schedule(SeededRandom::new(helpers, k as u64))
        .spawn_all(|_pid| move |ctx: &Ctx| frame.help(ctx, reg))
        .run();
    report.assert_clean();
    report.steps.iter().sum()
}

fn main() {
    println!("# E9: idempotence overhead (Theorem 4.2: constant factor)");
    header(&["k ops", "raw steps", "idem steps (solo)", "ratio", "combined steps (4 helpers)"]);
    let mut ratios = Vec::new();
    for &k in &[1usize, 4, 16, 64, 128] {
        let raw = steps_for(k, true);
        let idem = steps_for(k, false);
        let helped = helped_steps(k, 4);
        let ratio = idem as f64 / raw as f64;
        ratios.push(ratio);
        row(&[
            k.to_string(),
            raw.to_string(),
            idem.to_string(),
            format!("{ratio:.2}"),
            helped.to_string(),
        ]);
    }
    println!();
    let spread = ratios.iter().cloned().fold(f64::MIN, f64::max)
        / ratios.iter().cloned().fold(f64::MAX, f64::min);
    println!(
        "overhead ratio spread across k: {spread:.2}x — flat ratio = constant factor ... {}",
        verdict(spread < 2.0)
    );
}
