//! E4 — §1 headline: dining philosophers eat with probability ≥ 1/4 per
//! attempt in O(1) steps, **independent of the table size**.
//!
//! κ = L = 2 regardless of n, so both the success bound and the step
//! bound are constants; the table verifies that neither degrades as n
//! grows (the key qualitative difference from O(n) deterministic
//! helping).

use wfl_bench::{fmt_success, header, row, verdict};
use wfl_workloads::harness::{run_philosophers, AlgoKind, SchedKind};

fn main() {
    println!("# E4: dining philosophers — success >= 1/4, steps independent of n");
    header(&["n", "attempts", "success (99% lb)", "mean steps", "max steps", "min meals/phil", ">= 1/4"]);
    let mut all_ok = true;
    let mut step_means = Vec::new();
    for &n in &[3usize, 8, 32, 64] {
        let r = run_philosophers(
            n,
            60,
            41,
            SchedKind::Random,
            AlgoKind::Wfl { kappa: 2, delays: true, helping: true },
            1 << 25,
        );
        assert!(r.safety_ok, "meal counters diverged at n={n}");
        let ok = r.success.wilson_lower(2.58) >= 0.25;
        all_ok &= ok;
        step_means.push(r.steps.mean());
        let min_meals = r.per_pid.iter().map(|&(w, _)| w).min().unwrap_or(0);
        row(&[
            n.to_string(),
            r.attempts.to_string(),
            fmt_success(&r.success),
            format!("{:.1}", r.steps.mean()),
            r.steps.max().to_string(),
            min_meals.to_string(),
            verdict(ok).to_string(),
        ]);
    }
    println!();
    let spread = step_means.iter().cloned().fold(f64::MIN, f64::max)
        / step_means.iter().cloned().fold(f64::MAX, f64::min);
    println!("step-count spread across n: {spread:.2}x (O(1) claim: stays near 1)");
    println!("success bound 1/4 at every n: {}", verdict(all_ok));
}
