//! E10 — Theorem 5.2: active set operations take `O(κ)` steps per set.
//!
//! κ processes concurrently cycle insert/getSet/remove on one active set;
//! per-operation step costs are measured directly and their growth in κ
//! is fitted (theorem: at most linear).

use wfl_bench::{header, row, verdict};
use wfl_activeset::ActiveSet;
use wfl_runtime::schedule::SeededRandom;
use wfl_runtime::sim::SimBuilder;
use wfl_runtime::stats::{loglog_slope, Summary};
use wfl_runtime::{Ctx, Heap};

fn main() {
    println!("# E10: active set step complexity vs contention (Theorem 5.2)");
    header(&["kappa", "ops", "insert mean", "remove mean", "getSet mean", "insert max"]);
    let mut points = Vec::new();
    for &kappa in &[2usize, 4, 8, 16] {
        let heap = Heap::new(1 << 24);
        let set = ActiveSet::create_root(&heap, kappa);
        let rounds = 40usize;
        // 3 measurements per round per proc: insert, remove, getset.
        let out = heap.alloc_root(kappa * rounds * 3);
        let report = SimBuilder::new(&heap, kappa)
            .schedule(SeededRandom::new(kappa, 5 + kappa as u64))
            .max_steps(1_000_000_000)
            .spawn_all(|pid| {
                move |ctx: &Ctx| {
                    let mut buf = Vec::new();
                    for round in 0..rounds {
                        let base = ((pid * rounds + round) * 3) as u32;
                        let s0 = ctx.steps();
                        let slot = set.insert(ctx, (pid + 1) as u64);
                        let s1 = ctx.steps();
                        set.get_set(ctx, &mut buf);
                        let s2 = ctx.steps();
                        set.remove(ctx, slot);
                        let s3 = ctx.steps();
                        ctx.write(out.off(base), s1 - s0);
                        ctx.write(out.off(base + 1), s2 - s1);
                        ctx.write(out.off(base + 2), s3 - s2);
                    }
                }
            })
            .run();
        report.assert_clean();
        let mut ins = Summary::new();
        let mut get = Summary::new();
        let mut rem = Summary::new();
        for i in 0..(kappa * rounds) as u32 {
            ins.push(heap.peek(out.off(i * 3)));
            get.push(heap.peek(out.off(i * 3 + 1)));
            rem.push(heap.peek(out.off(i * 3 + 2)));
        }
        points.push((kappa as f64, ins.mean()));
        row(&[
            kappa.to_string(),
            (kappa * rounds).to_string(),
            format!("{:.1}", ins.mean()),
            format!("{:.1}", rem.mean()),
            format!("{:.1}", get.mean()),
            ins.max().to_string(),
        ]);
    }
    let slope = loglog_slope(&points);
    println!();
    println!(
        "log-log slope of insert cost vs kappa: {slope:.2} (theorem allows <= 1) ... {}",
        verdict(slope <= 1.3)
    );
}
