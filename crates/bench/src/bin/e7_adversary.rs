//! E7 — §2/§6.1: fairness holds against an adaptive player adversary and
//! adversarial oblivious schedules.
//!
//! A victim process attempts on a fixed cadence; an omniscient controller
//! (full heap visibility, including everyone's priorities) floods
//! competitor attempts whenever the victim is in its pending phase. The
//! victim's measured success rate is compared against `1/C_p` with the
//! worst-case contention the adversary can create (κ = nprocs, L = 1).

use wfl_bench::{fmt_success, header, row, verdict};
use wfl_core::LockId;
use wfl_idem::{IdemRun, Registry, TagSource, Thunk};
use wfl_runtime::schedule::RoundRobin;
use wfl_runtime::sim::SimBuilder;
use wfl_runtime::stats::Bernoulli;
use wfl_runtime::{Addr, Ctx, Heap};
use wfl_baselines::WflKnown;
use wfl_core::{LockConfig, LockSpace};
use wfl_workloads::player::{run_player_loop, AdvStrength, TargetedStarter};

struct Touch;
impl Thunk for Touch {
    fn run(&self, run: &mut IdemRun<'_, '_>) {
        let c = Addr::from_word(run.arg(0));
        let v = run.read(c);
        run.write(c, v + 1);
    }
    fn max_ops(&self) -> usize {
        2
    }
}

fn victim_rate(ncompetitors: usize, delays: bool) -> (Bernoulli, bool) {
    let nprocs = 1 + ncompetitors;
    let attempts = 80u64;
    let mut registry = Registry::new();
    let touch = registry.register(Touch);
    let heap = Heap::new(1 << 25);
    let space = LockSpace::create_root(&heap, 1, nprocs);
    let counter = heap.alloc_root(1);
    let results = heap.alloc_root(attempts as usize * nprocs);
    let victim_desc_cell = heap.alloc_root(1);
    let mut cfg = LockConfig::new(nprocs, 1, 2);
    cfg.delays = delays;
    let algo = WflKnown { space: &space, registry: &registry, cfg };
    let adversary = TargetedStarter {
        victim: 0,
        competitors: (1..nprocs).collect(),
        locks: vec![LockId(0)],
        args: vec![counter.to_word()],
        victim_period: 600,
        victim_desc_cell,
        strength: AdvStrength::Targeted,
        issued: 0,
    };
    let algo_ref = &algo;
    let report = SimBuilder::new(&heap, nprocs)
        .schedule(RoundRobin::new(nprocs))
        .controller(adversary)
        .max_steps(300_000_000)
        .spawn_all(|pid| {
            move |ctx: &Ctx| {
                let mut tags = TagSource::new(pid);
                let mut scratch = wfl_core::Scratch::new();
                if pid == 0 {
                    // The victim publishes its in-flight attempt through
                    // the probe cell — this is what the adversary watches.
                    scratch.probe = Some(victim_desc_cell);
                }
                let my_results = results.off((pid as u64 * attempts) as u32);
                run_player_loop(ctx, algo_ref, &mut tags, &mut scratch, touch, my_results, attempts);
            }
        })
        .run();
    report.assert_clean();
    let mut b = Bernoulli::default();
    let mut total_wins = 0u64;
    for pid in 0..nprocs {
        for i in 0..attempts {
            match heap.peek(results.off((pid as u64 * attempts + i) as u32)) {
                0 => break,
                o => {
                    if pid == 0 {
                        b.record(o == 2);
                    }
                    if o == 2 {
                        total_wins += 1;
                    }
                }
            }
        }
    }
    let safety = wfl_idem::cell::value(heap.peek(counter)) as u64 == total_wins;
    (b, safety)
}

fn main() {
    println!("# E7: victim success under an adaptive player adversary (delays ON)");
    header(&["competitors", "victim attempts", "victim rate (99% lb)", "bound 1/(k*L)", "held"]);
    let mut all_ok = true;
    for &nc in &[1usize, 2, 3] {
        let (rate, safety) = victim_rate(nc, true);
        assert!(safety, "counter safety violated");
        let bound = 1.0 / (nc + 1) as f64;
        let ok = rate.wilson_lower(2.58) >= bound;
        all_ok &= ok;
        row(&[
            nc.to_string(),
            rate.trials.to_string(),
            fmt_success(&rate),
            format!("{bound:.3}"),
            verdict(ok).to_string(),
        ]);
    }
    println!();
    println!("Theorem 6.9 under the adaptive adversary: {}", verdict(all_ok));
}
