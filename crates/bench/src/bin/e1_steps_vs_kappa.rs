//! E1 — Theorem 6.1: steps per tryLock attempt are `O(κ²L²T)`.
//!
//! Sweep the contention bound κ (processes all contending on the same two
//! locks) with L = 2 and T = 4 fixed; measure the *actual work* per
//! attempt (delays disabled, so the measurement is the algorithm's real
//! step count, not the delay padding) and fit the log-log slope in κ.
//! The theorem predicts an exponent of at most 2; with delays enabled the
//! attempt length is exactly `T0 + T1 = Θ(κ²L²T)` by construction.

use wfl_bench::{header, row, verdict};
use wfl_runtime::stats::loglog_slope;
use wfl_workloads::harness::{run_random_conflict, AlgoKind, SchedKind, SimSpec};

fn main() {
    println!("# E1: steps per attempt vs kappa (L=2, T=4, delays off => real work)");
    header(&["kappa", "attempts", "mean steps", "p99 steps", "max steps", "bound c0*k^2*L^2*T"]);
    let mut points = Vec::new();
    for &kappa in &[2usize, 4, 8, 16] {
        let mut spec = SimSpec::new(kappa, 60, 2, 2);
        spec.seed = 17;
        spec.sched = SchedKind::Random;
        spec.think_max = 8;
        spec.heap_words = 1 << 25;
        let r = run_random_conflict(&spec, AlgoKind::Wfl { kappa, delays: false, helping: true });
        assert!(r.safety_ok, "safety violated at kappa={kappa}");
        points.push((kappa as f64, r.steps.mean()));
        row(&[
            kappa.to_string(),
            r.attempts.to_string(),
            format!("{:.1}", r.steps.mean()),
            r.steps.percentile(0.99).to_string(),
            r.steps.max().to_string(),
            (40 * kappa * kappa * 2 * 2 * 4).to_string(),
        ]);
    }
    let slope = loglog_slope(&points);
    println!();
    println!(
        "log-log slope of mean steps vs kappa: {slope:.2} (theorem allows <= 2) ... {}",
        verdict(slope <= 2.3)
    );
}
