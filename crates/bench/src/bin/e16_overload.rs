//! E16 — graceful degradation under overload: abortable deadline tryLocks
//! with injected holder stalls.
//!
//! The scenario the abort layer exists for: a closed-loop system (every
//! thread re-arrives the moment its last attempt ends — the random-conflict
//! workload with zero think time) where lock holders are periodically
//! **frozen mid-critical-section** by a fault injector, and every attempt
//! carries a per-round deadline SLO ([`ExecMode::with_deadline_steps`]).
//!
//! What graceful degradation means, measurably:
//!
//! * **goodput** — successful acquisitions per 1k own steps *spent*. The
//!   per-step normalization isolates wasted work: a stalled process spends
//!   no steps, so pure capacity loss does not move the metric; only steps
//!   burned on attempts that then fail do.
//! * **abort latency** — own steps from round start to bailing out, p50/p99
//!   over aborted attempts only ([`HarnessReport::abort_steps`]). An abort
//!   layer that honors its SLO keeps p99 within a small factor of the armed
//!   budget; one that overstays (a poll hole) shows up as a fat tail.
//! * **abandoned-attempt helping rate** — `rescues / aborts`: how often a
//!   competitor's helping completed an attempt its owner had already given
//!   up on. This is the paper's helping mechanism observed from the abort
//!   side: the descriptor an aborter leaves behind stays fully helpable.
//!
//! wfl degrades gracefully on both axes: helping routes around a frozen
//! holder (competitors complete its critical section and move on), so
//! goodput under faults stays close to fault-free. The blocking baseline
//! collapses: contenders spin uselessly against the frozen holder until
//! their deadlines expire, burning steps with no wins.
//!
//! The sim block drives the deterministic fault scheduler
//! ([`SchedKind::RandomFaults`] — replayable, so the gates are stable);
//! the real-threads block arms the wall-clock injector
//! ([`FaultSpec`]) as an end-to-end check of the same path on hardware.
//!
//! Emits `BENCH_overload.json`.
//! Usage: `e16_overload [--smoke] [--algos a,b,c] [--trace out.json]`
//!   --algos : narrow the matrix to the named algorithms (any
//!             [`AlgoKind::all_extended`] label); gates that compare
//!             against a filtered-out algorithm are skipped.
//!   --trace : export the recorded faulted deadline-armed wfl replay cell
//!             as Chrome/Perfetto `trace_event` JSON at the given path
//!             (openable in ui.perfetto.dev), with a
//!             `<path>.metrics.json` sidecar; the document is
//!             parse-validated before it is written.
//!   --smoke : CI-sized cells, and the run **gates**:
//!     (a) wfl goodput under faults stays ≥ 0.8× its fault-free goodput
//!         at the SLO deadline;
//!     (b) abort latency p99 ≤ 2× the armed deadline budget on every
//!         sim cell with a meaningful abort population;
//!     (c) the blocking baseline collapses: its faulted/fault-free
//!         goodput ratio falls measurably below wfl's;
//!     (d) every run's safety audit passes (aborted and rescued attempts
//!         never corrupt holder sequences), and a faulted deadline-armed
//!         wfl cell replays exactly.

use std::fmt::Write as _;
use std::time::Duration;
use wfl_bench::{header, row, verdict};
use wfl_runtime::clamp_threads;
use wfl_runtime::real::{FaultSpec, RealConfig};
use wfl_workloads::harness::{
    run_random_conflict_mode, AlgoKind, ExecMode, HarnessReport, SchedKind, SimSpec,
};

const SEED: u64 = 1312;

/// Deadline that bites mid-attempt: below wfl's mandatory pre-decision
/// delay stall (~82 * kappa^2 own steps at one lock per attempt; both
/// scale with kappa^2 = threads^2), so every armed wfl attempt aborts at
/// the first post-stall poll point — the saturated column that measures
/// the abort path itself rather than the workload.
fn tight(threads: usize) -> u64 {
    75 * (threads * threads) as u64
}

/// Deadline an unobstructed attempt meets comfortably — roughly 10x a
/// fault-free wfl acquisition (~140 * kappa^2 own steps here) — but that a
/// contender pinned behind a frozen holder blows: each fault window denies
/// the victim's lock for 1.5x this many own steps of every survivor.
fn slo(threads: usize) -> u64 {
    1_400 * (threads * threads) as u64
}

/// Sim fault window: in each `period`-slot window the victim is frozen for
/// the window's first `quantum` **global** slots ([`SchedKind::RandomFaults`]
/// counts wall slots, not victim slots), during which a surviving process
/// receives about `quantum / threads` own steps. The quantum is sized so
/// that share is 1.5x the SLO: a blocking contender spinning against a
/// frozen holder blows its deadline with slack before the holder thaws.
/// The period leaves a third of each window fault-free so holders also make
/// progress and the run crosses many windows.
fn fault_window(threads: usize) -> (u64, u64) {
    let quantum = 3 * threads as u64 * slo(threads) / 2;
    (3 * quantum / 2, quantum)
}

/// Rounds per process, per algorithm: per-round costs differ by ~100x
/// (wfl pays its kappa^2-scaled delay stalls every attempt; blocking wins
/// in tens of steps), so equal round counts would give the fast baselines
/// runs too short to even cross one fault window. These spans put every
/// cell at a comparable number of scheduled slots — many windows each —
/// while keeping the simulated-step bill CI-sized.
fn rounds_for(algo: AlgoKind, smoke: bool) -> usize {
    let r = match algo {
        AlgoKind::Wfl { .. } | AlgoKind::WflCombine { .. } => 300,
        AlgoKind::WflUnknown => 330,
        AlgoKind::Tsp => 600,
        AlgoKind::Blocking | AlgoKind::BlockingCohort | AlgoKind::Naive => 600,
        // The combiner applies requests in tens of steps; contenders mostly
        // spin-wait (uncounted), so delegation rounds are blocking-cheap.
        AlgoKind::FlatCombining | AlgoKind::CcSynch => 600,
    };
    // The tag space caps an epoch at 4095 rounds per process.
    if smoke { r } else { (2 * r).min(4_000) }
}

/// The four contenders of the overload matrix, optionally narrowed by
/// `--algos`. (Naive retries are the E8/E14 story; under deadlines it
/// reduces to tsp-without-wins, so the matrix spends its budget on the
/// four informative columns. E17 covers the delegation roster, but
/// `--algos` accepts any extended label here too.)
fn algos(threads: usize, filter: Option<&Vec<String>>) -> Vec<AlgoKind> {
    let roster = if filter.is_some() {
        AlgoKind::all_extended(threads).to_vec()
    } else {
        vec![
            AlgoKind::Wfl { kappa: threads.max(2), delays: true, helping: true },
            AlgoKind::WflUnknown,
            AlgoKind::Tsp,
            AlgoKind::Blocking,
        ]
    };
    wfl_bench::retain_algos(roster, |k| k.label(), filter)
}

struct Cell {
    report: HarnessReport,
    /// Wins per 1k own steps spent across all attempts.
    goodput: f64,
    abort_p50: u64,
    abort_p99: u64,
    /// `rescues / aborts` (0 when nothing aborted).
    help_rate: f64,
}

impl Cell {
    fn from_report(report: HarnessReport) -> Cell {
        let steps_total = report.steps.mean() * report.steps.len() as f64;
        let goodput =
            if steps_total > 0.0 { 1000.0 * report.wins as f64 / steps_total } else { 0.0 };
        let abort_p50 = report.abort_steps.percentile(0.50);
        let abort_p99 = report.abort_steps.percentile(0.99);
        let help_rate = if report.aborts > 0 {
            report.rescues as f64 / report.aborts as f64
        } else {
            0.0
        };
        Cell { report, goodput, abort_p50, abort_p99, help_rate }
    }
}

fn conflict_spec(threads: usize, attempts: usize) -> SimSpec {
    // One lock per attempt over `threads` locks, with long critical
    // sections: every process is mid-critical-section most of its steps
    // (high holder utilization), while fault-free cross-process contention
    // stays light. That shape makes the injector bite — a frozen victim
    // nearly always strands a held lock — without handing the fault arm a
    // contention discount on the surviving processes' rounds.
    let mut spec = SimSpec::new(threads, attempts, threads, 1);
    spec.seed = SEED;
    spec.think_max = 0; // closed loop: re-arrive immediately (overload)
    // Non-trivial critical section: the holder computes for 400 steps with
    // its locks held. This is what the fault injector needs to bite — a
    // frozen victim is then almost always mid-critical-section, and what
    // helping is for: competitors re-execute the padded thunk of a decided
    // attempt instead of waiting out the freeze.
    spec.cs_work = 400;
    spec.heap_words = 1 << 23;
    spec
}

fn run_sim_cell(
    algo: AlgoKind,
    threads: usize,
    attempts: usize,
    deadline: Option<u64>,
    faulted: bool,
    record: bool,
) -> Cell {
    let spec = conflict_spec(threads, attempts);
    let (p, q) = fault_window(threads);
    let sched = if faulted {
        SchedKind::RandomFaults { period: p, quantum: q }
    } else {
        SchedKind::Random
    };
    let mut mode = ExecMode::sim(sched, 2_000_000_000);
    if let Some(d) = deadline {
        mode = mode.with_deadline_steps(d);
    }
    if record {
        mode = mode.with_recorder();
    }
    let r = run_random_conflict_mode(&spec, algo, &mode);
    assert!(
        r.safety_ok,
        "{}/{threads}t/deadline {deadline:?}/faults {faulted}: safety audit failed",
        algo.label()
    );
    Cell::from_report(r)
}

fn run_real_cell(algo: AlgoKind, threads: usize, attempts: usize, deadline: u64, faulted: bool) -> Cell {
    let spec = conflict_spec(threads, attempts);
    let cfg = if faulted {
        RealConfig::fast().with_faults(FaultSpec {
            period: Duration::from_millis(4),
            quantum: Duration::from_millis(2),
            seed: SEED,
        })
    } else {
        RealConfig::fast()
    };
    let mode = ExecMode::Real {
        threads,
        run_for: None,
        cfg,
        epoch_rounds: None,
        deadline_steps: None,
        recorder: false,
    }
    .with_deadline_steps(deadline);
    let r = run_random_conflict_mode(&spec, algo, &mode);
    assert!(
        r.safety_ok,
        "{}/{threads}t/real/faults {faulted}: safety audit failed",
        algo.label()
    );
    Cell::from_report(r)
}

/// One JSON row: experiment-specific fields (the exact-percentile abort
/// latencies keep their own `abort_p50`/`abort_p99` keys — the uniform
/// block's `abort_p99_steps` is the fixed-bucket fold), then the
/// uniform metrics block.
#[allow(clippy::too_many_arguments)]
fn json_cell(
    rows: &mut wfl_bench::Rows,
    backend: &str,
    algo: &str,
    threads: usize,
    deadline: Option<u64>,
    faulted: bool,
    c: &Cell,
) {
    rows.push(
        &[("backend", backend.to_string()), ("algo", algo.to_string())],
        &[
            ("threads", threads.to_string()),
            ("deadline_steps", deadline.map_or("null".to_string(), |d| d.to_string())),
            ("faulted", faulted.to_string()),
            ("goodput_wins_per_kstep", format!("{:.4}", c.goodput)),
            ("abort_p50", c.abort_p50.to_string()),
            ("abort_p99", c.abort_p99.to_string()),
            ("help_rate", format!("{:.4}", c.help_rate)),
        ],
        &c.report.metrics(),
    );
}

fn fmt_deadline(d: Option<u64>) -> String {
    d.map_or("none".into(), |d| d.to_string())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let algo_filter = wfl_bench::parse_algos(&args);
    let thread_counts: &[usize] = if smoke { &[3] } else { &[3, 4] };

    println!("# E16: overload — deadline SLOs x injected holder stalls (smoke = {smoke})");
    println!(
        "(closed-loop random-conflict, 400-step critical sections, 1 of <threads> locks \
         per attempt; sim faults: freeze a random victim for 1.5 x threads x SLO slots \
         of each window)"
    );
    println!();

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"e16_overload\",");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let mut rows = wfl_bench::Rows::new();

    // --- sim block: the deterministic overload matrix, and the gates ---
    let mut gates_ok = true;
    for &threads in thread_counts {
        let (tight_d, slo_d) = (tight(threads), slo(threads));
        // No-deadline cells are omitted: with zero aborts they are
        // step-identical to the SLO column, which doubles as the baseline.
        let deadlines = [Some(tight_d), Some(slo_d)];
        println!("## sim, {threads} procs (tight {tight_d}, SLO {slo_d} own steps)");
        header(&[
            "algo", "deadline", "faults", "goodput/kstep", "wins/att", "aborts",
            "abort p50/p99", "help rate",
        ]);
        // wfl's own faulted/fault-free goodput ratio at the SLO — the
        // yardstick the blocking collapse gate compares against.
        let mut wfl_ratio = 0.0f64;
        for algo in algos(threads, algo_filter.as_ref()) {
            // (fault-free, faulted) goodput at the SLO deadline, for ratios.
            let mut slo_pair = [0.0f64; 2];
            for deadline in deadlines {
                for faulted in [false, true] {
                    let c = run_sim_cell(
                        algo, threads, rounds_for(algo, smoke), deadline, faulted, false,
                    );
                    if deadline == Some(slo_d) {
                        slo_pair[faulted as usize] = c.goodput;
                    }
                    row(&[
                        algo.label().to_string(),
                        fmt_deadline(deadline),
                        if faulted { "inject".into() } else { "-".into() },
                        format!("{:.3}", c.goodput),
                        format!("{}/{}", c.report.wins, c.report.attempts),
                        format!("{}", c.report.aborts),
                        format!("{}/{}", c.abort_p50, c.abort_p99),
                        format!("{:.2}", c.help_rate),
                    ]);
                    json_cell(&mut rows, "sim", algo.label(), threads, deadline, faulted, &c);
                    // Gate (b): the SLO is honored — aborts bail out within
                    // 2x the armed budget. Gated at the SLO only: a budget
                    // below one attempt's mandatory reveal stall (the TIGHT
                    // column) saturates at the first post-stall poll point
                    // by design, and tiny abort populations are noise.
                    if deadline == Some(slo_d) && c.report.aborts >= 20 {
                        let ok = c.abort_p99 <= 2 * slo_d;
                        if !ok {
                            println!(
                                "GATE abort-latency: {}/{threads}t faults={faulted}: \
                                 p99 {} > 2x SLO",
                                algo.label(),
                                c.abort_p99
                            );
                        }
                        gates_ok &= ok;
                    }
                }
            }
            // Gates (a) and (c): degradation ratios at the SLO deadline.
            let ratio = if slo_pair[0] > 0.0 { slo_pair[1] / slo_pair[0] } else { 0.0 };
            println!();
            match algo {
                AlgoKind::Wfl { .. } => {
                    wfl_ratio = ratio;
                    println!(
                        "wfl faulted/fault-free goodput at SLO {slo_d}: {ratio:.3} {}",
                        verdict(ratio >= 0.8)
                    );
                    gates_ok &= ratio >= 0.8;
                }
                // The wfl yardstick only exists when the (earlier) wfl rows
                // ran — under an `--algos` filter that drops wfl the
                // collapse gate is skipped rather than compared against 0.
                AlgoKind::Blocking if wfl_ratio > 0.0 => {
                    // The collapse marker: blocking loses a real fraction of
                    // its fault-free goodput (spinning against frozen
                    // holders is wasted work), and keeps measurably less of
                    // it than wfl keeps of its own.
                    let collapsed = ratio < 0.9 && ratio < 0.9 * wfl_ratio;
                    println!(
                        "blocking faulted/fault-free goodput at SLO {slo_d}: {ratio:.3}; \
                         collapse ({ratio:.3} < 0.9 and < 0.9 x wfl {wfl_ratio:.3}): {}",
                        verdict(collapsed)
                    );
                    gates_ok &= collapsed;
                }
                _ => {
                    println!(
                        "{} faulted/fault-free goodput at SLO {slo_d}: {ratio:.3}",
                        algo.label()
                    );
                }
            }
            println!();
        }
    }

    // Gate (d): a faulted, deadline-armed wfl cell is deterministic —
    // byte-identical outcome books on replay. Both replays run with the
    // flight recorder on, so the gate also covers the full event
    // sequence: same seed, bit-identical trace.
    let t0 = thread_counts[0];
    let replay_algo = AlgoKind::Wfl { kappa: t0.max(2), delays: true, helping: true };
    let a = run_sim_cell(replay_algo, t0, 60, Some(tight(t0)), true, true);
    let b = run_sim_cell(replay_algo, t0, 60, Some(tight(t0)), true, true);
    let replay_ok = a.report.wins == b.report.wins
        && a.report.aborts == b.report.aborts
        && a.report.rescues == b.report.rescues
        && a.report.give_up == b.report.give_up;
    println!("faulted deadline replay determinism: {}", verdict(replay_ok));
    gates_ok &= replay_ok;
    let trace_a = a.report.trace.as_ref().expect("recorded replay cell carries a trace");
    let trace_ok = a.report.trace == b.report.trace && trace_a.total_events() > 0;
    println!(
        "faulted trace replay determinism ({} events): {}",
        trace_a.total_events(),
        verdict(trace_ok)
    );
    gates_ok &= trace_ok;

    // --trace: export the recorded faulted cell as a Chrome/Perfetto
    // trace_event document (plus a metrics sidecar), and parse-validate
    // it before writing — spans must nest, and a faulted deadline-armed
    // cell must show attempts, aborts and fault windows.
    if let Some(path) = wfl_bench::parse_trace(&args) {
        let meta = [
            ("bench", "e16_overload".to_string()),
            ("backend", "sim".to_string()),
            ("algo", replay_algo.label().to_string()),
            ("threads", t0.to_string()),
            ("deadline_steps", tight(t0).to_string()),
            ("faulted", "true".to_string()),
            ("seed", SEED.to_string()),
        ];
        let stats = wfl_bench::write_trace(&path, trace_a, &a.report.metrics(), &meta);
        assert!(stats.attempts > 0, "traced cell shows no attempt spans");
        assert!(stats.aborts > 0, "traced deadline-armed cell shows no aborts");
        assert!(stats.fault_windows > 0, "traced faulted cell shows no fault windows");
    }

    // --- real block: same path on hardware (safety-gated only; timing
    // ratios on a shared machine are reported, not asserted) ---
    // The wall-clock injector needs its own hardware thread to fire on
    // time: clamp the worker count so workers + injector fit the machine
    // (warns and floors at 2 when it bites — e.g. single-core CI).
    let real_threads = clamp_threads(if smoke { 3 } else { 4 }, 1, "e16 real fault block");
    let real_attempts = if smoke { 60 } else { 300 };
    println!();
    println!("## real threads, {real_threads} procs, wall-clock injector (2ms stall / 4ms)");
    header(&["algo", "faults", "wins/att", "aborts", "rescues", "wall ms"]);
    for algo in algos(real_threads, algo_filter.as_ref()) {
        for faulted in [false, true] {
            let c = run_real_cell(algo, real_threads, real_attempts, slo(real_threads), faulted);
            row(&[
                algo.label().to_string(),
                if faulted { "inject".into() } else { "-".into() },
                format!("{}/{}", c.report.wins, c.report.attempts),
                format!("{}", c.report.aborts),
                format!("{}", c.report.rescues),
                format!("{:.1}", c.report.wall.expect("real run").as_secs_f64() * 1e3),
            ]);
            json_cell(
                &mut rows,
                "real",
                algo.label(),
                real_threads,
                Some(slo(real_threads)),
                faulted,
                &c,
            );
        }
    }
    println!();

    json.push_str("  \"results\": ");
    json.push_str(&rows.finish());
    json.push_str(",\n");
    let _ = writeln!(json, "  \"gates_ok\": {gates_ok}");
    json.push_str("}\n");
    std::fs::write("BENCH_overload.json", &json).expect("write BENCH_overload.json");
    println!("wrote BENCH_overload.json");

    if smoke {
        assert!(gates_ok, "E16 smoke gates failed (see GATE lines above)");
        println!("E16 smoke gates: all ok");
    }
}
