//! E2 — Theorem 6.1: steps per tryLock attempt are `O(κ²L²T)`, sweep L.
//!
//! κ = 4 processes; each attempt takes L locks drawn from 2·L locks, with
//! the critical section touching all of them (so T = 2L grows with L as in
//! real multi-lock transactions — the pure-L exponent is measured against
//! the combined L²·T = 2L³... the table reports both the raw slope and the
//! slope after normalizing out T).

use wfl_bench::{header, row, verdict};
use wfl_runtime::stats::loglog_slope;
use wfl_workloads::harness::{run_random_conflict, AlgoKind, SimSpec};

fn main() {
    println!("# E2: steps per attempt vs L (kappa=4, T=2L, delays off => real work)");
    header(&["L", "attempts", "mean steps", "p99 steps", "max steps", "mean/T (normalized)"]);
    let mut raw = Vec::new();
    let mut normalized = Vec::new();
    for &l in &[1usize, 2, 4, 8] {
        let mut spec = SimSpec::new(4, 50, 2 * l, l);
        spec.seed = 23;
        spec.heap_words = 1 << 25;
        let r = run_random_conflict(&spec, AlgoKind::Wfl { kappa: 4, delays: false, helping: true });
        assert!(r.safety_ok, "safety violated at L={l}");
        let t = (2 * l) as f64;
        raw.push((l as f64, r.steps.mean()));
        normalized.push((l as f64, r.steps.mean() / t));
        row(&[
            l.to_string(),
            r.attempts.to_string(),
            format!("{:.1}", r.steps.mean()),
            r.steps.percentile(0.99).to_string(),
            r.steps.max().to_string(),
            format!("{:.1}", r.steps.mean() / t),
        ]);
    }
    let slope_raw = loglog_slope(&raw);
    let slope_norm = loglog_slope(&normalized);
    println!();
    println!("raw slope vs L (includes T=2L growth): {slope_raw:.2}");
    println!(
        "T-normalized slope vs L: {slope_norm:.2} (theorem allows <= 2) ... {}",
        verdict(slope_norm <= 2.3)
    );
}
