//! E8 — §3 comparison: the paper's algorithm vs lock-free locks (TSP /
//! Barnes style), blocking two-phase locking, and a no-helping tryLock.
//!
//! Two tables:
//!
//! 1. **Contended throughput** (random-conflict workload): wins, success
//!    rate, mean and max steps per attempt. Baselines that cannot fail
//!    "win" every attempt but pay unbounded per-attempt step tails; the
//!    paper's algorithm has bounded attempts that may fail.
//! 2. **Crash robustness** (philosophers with a crashed philosopher):
//!    whether the others keep eating, and whether any process ends up
//!    blocked forever (poisoned by the simulator) — the qualitative win
//!    of wait-freedom.

use wfl_bench::{fmt_success, header, row};
use wfl_baselines::{BlockingTpl, LockAlgo, NaiveTryLock, TspLock, WflKnown};
use wfl_core::{LockConfig, LockSpace};
use wfl_idem::{Registry, TagSource};
use wfl_runtime::schedule::{RoundRobin, StallWindow, Stalls};
use wfl_runtime::sim::SimBuilder;
use wfl_runtime::{Ctx, Heap};
use wfl_workloads::harness::{run_random_conflict, AlgoKind, SchedKind, SimSpec};
use wfl_workloads::philosophers::Table;

fn throughput_table() {
    println!("## E8a: contended random-conflict workload (4 procs, 3 locks, L=2)");
    header(&["algo", "wins/attempts", "success (99% lb)", "mean steps", "p99 steps", "max steps"]);
    for (name, algo) in [
        ("wfl", AlgoKind::Wfl { kappa: 4, delays: true, helping: true }),
        ("wfl-unknown", AlgoKind::WflUnknown),
        ("tsp", AlgoKind::Tsp),
        ("blocking", AlgoKind::Blocking),
        ("naive", AlgoKind::Naive),
    ] {
        let mut spec = SimSpec::new(4, 80, 3, 2);
        spec.seed = 77;
        spec.sched = SchedKind::Bursty(30);
        spec.heap_words = 1 << 25;
        spec.max_steps = 2_000_000_000;
        let r = run_random_conflict(&spec, algo);
        assert!(r.safety_ok, "{name}: safety violated");
        row(&[
            name.to_string(),
            format!("{}/{}", r.wins, r.attempts),
            fmt_success(&r.success),
            format!("{:.0}", r.steps.mean()),
            r.steps.percentile(0.99).to_string(),
            r.steps.max().to_string(),
        ]);
    }
    println!();
}

/// Philosophers with philosopher 0 crashed mid-run: who keeps eating?
fn crash_table() {
    println!("## E8b: crash robustness (4 philosophers, philosopher 0 crashes at t=3000)");
    header(&["algo", "meals by survivors", "processes blocked forever", "survivors starved"]);
    for name in ["wfl", "tsp", "blocking", "naive"] {
        let n = 4;
        let mut registry = Registry::new();
        let heap = Heap::new(1 << 25);
        let table = Table::create_root(&heap, &mut registry, n);
        let space = LockSpace::create_root(&heap, n, 2);
        let wfl = WflKnown { space: &space, registry: &registry, cfg: LockConfig::new(2, 2, 2) };
        let blocking = BlockingTpl::create_root(&heap, &registry, n);
        let naive = NaiveTryLock::create_root(&heap, &registry, n);
        let tsp = TspLock::create_root(&heap, &registry, n);
        let algo: &dyn LockAlgo = match name {
            "wfl" => &wfl,
            "tsp" => &tsp,
            "blocking" => &blocking,
            _ => &naive,
        };
        let table_ref = &table;
        let report = SimBuilder::new(&heap, n)
            .schedule(Stalls::new(RoundRobin::new(n), vec![StallWindow::crash(0, 3000)]))
            .max_steps(50_000_000)
            .drain_cap(5_000_000)
            .spawn_all(|pid| {
                move |ctx: &Ctx| {
                    let mut tags = TagSource::new(pid);
                    let mut scratch = wfl_core::Scratch::new();
                    let rounds = if pid == 0 { 1000 } else { 15 };
                    for _ in 0..rounds {
                        if ctx.stop_requested() {
                            break;
                        }
                        table_ref.attempt_eat(ctx, algo, &mut tags, &mut scratch, pid);
                    }
                }
            })
            .run();
        let survivor_meals: u64 = (1..n).map(|i| table.meals_eaten(&heap, i) as u64).sum();
        let starved = (1..n).filter(|&i| table.meals_eaten(&heap, i) == 0).count();
        row(&[
            name.to_string(),
            survivor_meals.to_string(),
            format!("{:?}", report.poisoned),
            starved.to_string(),
        ]);
    }
    println!();
    println!("expected shape: wfl and tsp keep all survivors eating with no one");
    println!("blocked; blocking wedges spinners on the crashed holder's lock until");
    println!("the drain's stop flag bails them out with failed attempts (so their");
    println!("meals stall even though nothing is poisoned); naive leaves locks");
    println!("stuck so neighbors of the crash starve.");
}

fn main() {
    println!("# E8: baseline comparison");
    throughput_table();
    crash_table();
}
