//! E12 — ablation of the pre-insert helping phase (§2).
//!
//! Before revealing, an attempt runs every already-revealed competitor to
//! completion, so nobody whose priority the adversary already knows can
//! compete against it. Without that phase, an adversary that starts the
//! victim exactly when a *known-strong* competitor is active wins those
//! comparisons disproportionately. This experiment uses an omniscient
//! controller that reads the competitor's revealed priority from the heap
//! and starts the victim only when the competitor's priority is in the
//! top half — with helping the victim clears it first; without, the
//! victim's success rate collapses below the fair bound.

use wfl_bench::{fmt_success, header, row, verdict};
use wfl_baselines::{LockAlgo, WflKnown};
use wfl_core::{Desc, LockConfig, LockId, LockSpace};
use wfl_idem::{IdemRun, Registry, TagSource, Thunk};
use wfl_runtime::schedule::RoundRobin;
use wfl_runtime::sim::{Controller, Mailboxes, SimBuilder};
use wfl_runtime::stats::Bernoulli;
use wfl_runtime::{Addr, Ctx, Heap};
use wfl_workloads::player::{encode_attempt, run_player_loop};

struct Touch;
impl Thunk for Touch {
    fn run(&self, run: &mut IdemRun<'_, '_>) {
        let c = Addr::from_word(run.arg(0));
        let v = run.read(c);
        run.write(c, v + 1);
    }
    fn max_ops(&self) -> usize {
        2
    }
}

/// Starts the victim only when some revealed competitor descriptor on the
/// lock has a priority in the top half of the random range — timing the
/// victim into known-strong fields (possible only for an adversary that
/// can read priorities, i.e. the model's adaptive player).
struct StartWhenStrong {
    set_peek: wfl_activeset::ActiveSet,
    locks: Vec<LockId>,
    args: Vec<u64>,
    victim: usize,
    competitor: usize,
    next_competitor_at: u64,
}

impl Controller for StartWhenStrong {
    fn on_step(&mut self, t: u64, heap: &Heap, mail: &Mailboxes<'_>) {
        // Keep the competitor attempting continuously.
        if t >= self.next_competitor_at && mail.queued(self.competitor) == 0 {
            mail.send(self.competitor, encode_attempt(&self.locks, &self.args));
            self.next_competitor_at = t + 50;
        }
        // Start the victim when a revealed strong competitor is present.
        if mail.queued(self.victim) == 0 {
            let strong = self
                .set_peek
                .peek_owners(heap)
                .into_iter()
                .any(|item| {
                    let d = Desc(Addr::from_word(item));
                    let prio = heap.peek(d.prio_addr());
                    // Revealed and in the top half of the 41 random bits.
                    prio > 1 && ((prio >> 62) & 1) == 1
                });
            if strong {
                mail.send(self.victim, encode_attempt(&self.locks, &self.args));
            }
        }
    }
}

fn victim_rate(helping: bool) -> Bernoulli {
    let nprocs = 2;
    let attempts = 70u64;
    let mut registry = Registry::new();
    let touch = registry.register(Touch);
    let heap = Heap::new(1 << 25);
    let space = LockSpace::create_root(&heap, 1, nprocs);
    let counter = heap.alloc_root(1);
    let results = heap.alloc_root(attempts as usize * nprocs);
    let mut cfg = LockConfig::new(nprocs, 1, 2);
    cfg.helping = helping;
    // Delays off isolates the helping mechanism (and keeps the victim's
    // pending window short, which favors the adversary).
    cfg.delays = false;
    let algo = WflKnown { space: &space, registry: &registry, cfg };
    let controller = StartWhenStrong {
        set_peek: *space.set(LockId(0)),
        locks: vec![LockId(0)],
        args: vec![counter.to_word()],
        victim: 0,
        competitor: 1,
        next_competitor_at: 0,
    };
    let algo_ref: &dyn LockAlgo = &algo;
    let report = SimBuilder::new(&heap, nprocs)
        .schedule(RoundRobin::new(nprocs))
        .controller(controller)
        .max_steps(100_000_000)
        .spawn_all(|pid| {
            move |ctx: &Ctx| {
                let mut tags = TagSource::new(pid);
                let mut scratch = wfl_core::Scratch::new();
                let my_results = results.off((pid as u64 * attempts) as u32);
                run_player_loop(ctx, algo_ref, &mut tags, &mut scratch, touch, my_results, attempts);
            }
        })
        .run();
    report.assert_clean();
    let mut b = Bernoulli::default();
    for i in 0..attempts {
        match heap.peek(results.off(i as u32)) {
            0 => break,
            o => b.record(o == 2),
        }
    }
    b
}

fn main() {
    println!("# E12: helping-phase ablation against a priority-reading adversary");
    header(&["helping", "victim attempts", "victim rate (99% lb)", "fair bound 1/2", "held"]);
    for helping in [true, false] {
        let b = victim_rate(helping);
        let ok = b.wilson_lower(2.58) >= 0.5;
        row(&[
            if helping { "on".into() } else { "off".to_string() },
            b.trials.to_string(),
            fmt_success(&b),
            "0.500".to_string(),
            verdict(ok).to_string(),
        ]);
    }
    println!();
    println!("expected shape: with the helping phase the victim first completes");
    println!("the known-strong competitor and stays near/above the fair bound;");
    println!("without it, the adversary times the victim into losing comparisons.");
}
