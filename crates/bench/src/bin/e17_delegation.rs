//! E17 — delegation showdown: flat combining and CCSynch against wfl's
//! combining fast path.
//!
//! Delegation (request combining) is the *other* modern answer to the
//! oversubscribed regime the paper targets: publish your critical section,
//! let one combiner run a batch. It buys very low coherence traffic on the
//! hot path — and gives up exactly what the paper refuses to give up:
//! **wait-freedom** (a frozen combiner wedges every pending request) and
//! per-attempt **fairness guarantees**. wfl's combining fast path
//! ([`LockConfig::combine`]) takes the batching idea without the
//! structural cost: an ordinary tryLock *winner* claims compatible pending
//! descriptors and runs them before releasing, so batching is
//! opportunistic, losers are never parked behind a combiner, and a frozen
//! winner's batch is helpable like any other decided attempt.
//!
//! Two measurement blocks over the five-way roster
//! {wfl, wfl+combine, fc, ccsynch, blocking-cohort}:
//!
//! * **closed-loop** (e13-style, real threads, sweep to 16t on the full
//!   run): every thread re-arrives immediately on a small contended lock
//!   pool. Reports wins/s, the Jain fairness index over per-process wins,
//!   the combined-win share, and the combine batch-size histogram.
//! * **overload** (e16-style, deterministic sim + wall-clock real arms):
//!   per-round deadline SLOs with periodically frozen processes. The key
//!   claim, gated in `--smoke`: under freezes fc and ccsynch **lose
//!   wait-freedom** — their combiner is a single point of failure, so
//!   pending requests blow their deadline budgets spinning on it (aborts
//!   appear, abort p99 reaches the SLO, and goodput degrades below
//!   wfl+combine's faulted/fault-free ratio; fc additionally collapses in
//!   aggregate, ccsynch's slack queue keeps aggregate throughput up while
//!   individual attempts stall past their SLO) — while wfl+combine keeps
//!   zero blown deadlines and >= 0.8x of its fault-free goodput:
//!   combining never traded away wait-freedom.
//!
//! Emits `BENCH_delegation.json`.
//! Usage: `e17_delegation [--smoke] [--algos a,b,c] [--trace out.json]`
//!   --algos : narrow the roster to the named algorithms.
//!   --trace : export the recorded faulted wfl+combine sim cell as
//!             Chrome/Perfetto `trace_event` JSON (plus a
//!             `<path>.metrics.json` sidecar).
//!   --smoke : CI-sized cells, and the run **gates**:
//!     (a) wfl+combine actually combines under sim contention (nonempty
//!         batch histogram) and stays safe doing it;
//!     (b) masked replay: under the plain `Random` family, wfl+combine is
//!         bit-identical to plain wfl (recorded schedules keep replaying),
//!         and a faulted combining cell replays deterministically;
//!     (c) wfl+combine keeps wait-freedom under injected freezes (zero
//!         aborts, >= 0.8x fault-free goodput); fc and ccsynch lose it
//!         (faulted aborts appear with p99 >= the SLO, and their
//!         faulted/fault-free ratio falls below 0.9x of wfl+combine's);
//!     (d) abort latency p99 <= 2x the armed SLO on combining cells with a
//!         meaningful abort population;
//!     (e) closed-loop throughput: wfl+combine >= 0.9x plain wfl at the
//!         top of the sweep everywhere, and >= 1.0x where
//!         `available_parallelism > 1` (on a single hardware thread the
//!         contention combining exploits cannot fully manifest).

use std::fmt::Write as _;
use std::time::Duration;
use wfl_bench::{header, row, verdict};
use wfl_fairness::jain_index;
use wfl_runtime::real::{FaultSpec, RealConfig};
use wfl_runtime::{available_parallelism, clamp_threads};
use wfl_workloads::harness::{
    run_random_conflict_mode, AlgoKind, ExecMode, HarnessReport, SchedKind, SimSpec,
};

const SEED: u64 = 1312;
/// Best-of repeats for the timed closed-loop cells (least-noise estimate
/// on a shared machine; every repeat is safety-checked).
const REPEATS: usize = 3;

/// Deadline an unobstructed attempt meets comfortably (the e16 SLO shape:
/// wfl's per-attempt cost scales with kappa^2 = threads^2), but that a
/// contender pinned behind a frozen process blows.
fn slo(threads: usize) -> u64 {
    1_400 * (threads * threads) as u64
}

/// Sim fault window (the e16 sizing): each `period`-slot window freezes a
/// deterministically chosen victim for its first `quantum` global slots —
/// long enough that a survivor pinned behind the victim burns 1.5x its SLO
/// in own steps before the thaw.
fn fault_window(threads: usize) -> (u64, u64) {
    let quantum = 3 * threads as u64 * slo(threads) / 2;
    (3 * quantum / 2, quantum)
}

/// Rounds per process for the sim overload cells; per-round costs differ
/// by ~100x across the roster (see e16), so spans are per-algorithm.
fn overload_rounds(algo: AlgoKind, smoke: bool) -> usize {
    let r = match algo {
        AlgoKind::Wfl { .. } | AlgoKind::WflCombine { .. } => 300,
        _ => 600,
    };
    if smoke { r } else { (2 * r).min(4_000) }
}

/// The five contenders of the showdown, optionally narrowed by `--algos`.
/// Plain wfl runs **with** delays so it differs from wfl+combine in
/// exactly one bit: [`LockConfig::combine`].
fn roster(threads: usize, filter: Option<&Vec<String>>) -> Vec<AlgoKind> {
    let all = vec![
        AlgoKind::Wfl { kappa: threads.max(2), delays: true, helping: true },
        AlgoKind::WflCombine { kappa: threads.max(2) },
        AlgoKind::FlatCombining,
        AlgoKind::CcSynch,
        AlgoKind::BlockingCohort,
    ];
    wfl_bench::retain_algos(all, |k| k.label(), filter)
}

/// The schedule family for a sim cell: combining algorithms need the
/// opted-in families ([`SchedKind::allows_combining`]) or the fast path
/// stays masked; everything else runs the plain families so their cells
/// replay against the E16 corpus.
fn sched_for(algo: AlgoKind, faulted: bool, threads: usize) -> SchedKind {
    let (period, quantum) = fault_window(threads);
    match (matches!(algo, AlgoKind::WflCombine { .. }), faulted) {
        (true, false) => SchedKind::RandomCombining,
        (true, true) => SchedKind::FaultsCombining { period, quantum },
        (false, false) => SchedKind::Random,
        (false, true) => SchedKind::RandomFaults { period, quantum },
    }
}

struct Cell {
    report: HarnessReport,
    /// Wins per 1k own steps spent across all attempts (sim cells).
    goodput: f64,
    /// Wins per wall second (real cells).
    wins_per_sec: f64,
    /// Jain fairness index over per-process win counts.
    jain: f64,
    /// `combined_wins / wins` (0 when nothing won).
    combined_share: f64,
    abort_p99: u64,
}

impl Cell {
    fn from_report(report: HarnessReport) -> Cell {
        let steps_total = report.steps.mean() * report.steps.len() as f64;
        let goodput =
            if steps_total > 0.0 { 1000.0 * report.wins as f64 / steps_total } else { 0.0 };
        let wins_per_sec = report.wins_per_sec().unwrap_or(0.0);
        let per_pid: Vec<f64> = report.per_pid.iter().map(|&(w, _)| w as f64).collect();
        let jain = jain_index(&per_pid);
        let combined_share = if report.wins > 0 {
            report.combined_wins as f64 / report.wins as f64
        } else {
            0.0
        };
        let abort_p99 = report.abort_steps.percentile(0.99);
        Cell { report, goodput, wins_per_sec, jain, combined_share, abort_p99 }
    }
}

/// Closed-loop conflict shape: a deliberately small lock pool (deep queues
/// at high thread counts — the regime delegation was invented for), one
/// lock per attempt, non-trivial critical sections, zero think time.
fn closed_loop_spec(threads: usize, attempts: usize) -> SimSpec {
    let mut spec = SimSpec::new(threads, attempts, 2.max(threads / 4), 1);
    spec.seed = SEED;
    spec.think_max = 0;
    spec.cs_work = 400;
    spec.heap_words = 1 << 23;
    spec
}

/// Overload conflict shape (the e16 cell): one of `threads` locks per
/// attempt, so a frozen victim nearly always strands a held lock.
fn overload_spec(threads: usize, attempts: usize) -> SimSpec {
    let mut spec = SimSpec::new(threads, attempts, threads, 1);
    spec.seed = SEED;
    spec.think_max = 0;
    spec.cs_work = 400;
    spec.heap_words = 1 << 23;
    spec
}

fn run_sim_overload(
    algo: AlgoKind,
    threads: usize,
    attempts: usize,
    faulted: bool,
    record: bool,
) -> Cell {
    let spec = overload_spec(threads, attempts);
    let mut mode = ExecMode::sim(sched_for(algo, faulted, threads), 2_000_000_000)
        .with_deadline_steps(slo(threads));
    if record {
        mode = mode.with_recorder();
    }
    let r = run_random_conflict_mode(&spec, algo, &mode);
    assert!(
        r.safety_ok,
        "{}/{threads}t/sim/faults {faulted}: safety audit failed",
        algo.label()
    );
    Cell::from_report(r)
}

fn run_closed_loop(algo: AlgoKind, threads: usize, attempts: usize) -> Cell {
    let spec = closed_loop_spec(threads, attempts);
    let mut best: Option<Cell> = None;
    for _ in 0..REPEATS {
        let r = run_random_conflict_mode(&spec, algo, &ExecMode::real(threads));
        assert!(r.safety_ok, "{}/{threads}t/closed-loop: safety audit failed", algo.label());
        let c = Cell::from_report(r);
        best = Some(match best {
            Some(b) if b.wins_per_sec > c.wins_per_sec => b,
            _ => c,
        });
    }
    best.expect("at least one repeat")
}

fn run_real_fault(algo: AlgoKind, threads: usize, attempts: usize, faulted: bool) -> Cell {
    let spec = overload_spec(threads, attempts);
    let cfg = if faulted {
        RealConfig::fast().with_faults(FaultSpec {
            period: Duration::from_millis(4),
            quantum: Duration::from_millis(2),
            seed: SEED,
        })
    } else {
        RealConfig::fast()
    };
    let mode = ExecMode::Real { threads, run_for: None, cfg, epoch_rounds: None, deadline_steps: None, recorder: false }
        .with_deadline_steps(slo(threads));
    let r = run_random_conflict_mode(&spec, algo, &mode);
    assert!(
        r.safety_ok,
        "{}/{threads}t/real/faults {faulted}: safety audit failed",
        algo.label()
    );
    Cell::from_report(r)
}

/// The combine batch-size histogram as a JSON object: batch size (peers
/// per combining winner) -> number of batches.
fn batch_hist_json(r: &HarnessReport) -> String {
    let mut counts: Vec<u64> = Vec::new();
    for &s in r.combine_batch.samples() {
        let i = s as usize;
        if counts.len() <= i {
            counts.resize(i + 1, 0);
        }
        counts[i] += 1;
    }
    let body: Vec<String> = counts
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c > 0)
        .map(|(size, &c)| format!("\"{size}\": {c}"))
        .collect();
    format!("{{{}}}", body.join(", "))
}

/// One JSON row: experiment-specific fields (the exact-percentile abort
/// latency keeps its own `abort_p99` key — the uniform block's
/// `abort_p99_steps` is the fixed-bucket fold), then the uniform
/// metrics block.
#[allow(clippy::too_many_arguments)]
fn json_cell(
    rows: &mut wfl_bench::Rows,
    block: &str,
    backend: &str,
    algo: &str,
    threads: usize,
    faulted: bool,
    c: &Cell,
) {
    let r = &c.report;
    rows.push(
        &[
            ("block", block.to_string()),
            ("backend", backend.to_string()),
            ("algo", algo.to_string()),
        ],
        &[
            ("threads", threads.to_string()),
            ("faulted", faulted.to_string()),
            ("combined_share", format!("{:.4}", c.combined_share)),
            ("combine_batches", r.combine_batch.len().to_string()),
            ("combine_batch_mean", format!("{:.3}", r.combine_batch.mean())),
            ("combine_batch_max", r.combine_batch.max().to_string()),
            ("combine_batch_hist", batch_hist_json(r)),
            ("goodput_wins_per_kstep", format!("{:.4}", c.goodput)),
            ("jain", format!("{:.4}", c.jain)),
            ("abort_p99", c.abort_p99.to_string()),
        ],
        &r.metrics(),
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let algo_filter = wfl_bench::parse_algos(&args);
    let avail = available_parallelism();
    let thread_counts: &[usize] = if smoke { &[2, 4] } else { &[2, 4, 8, 16] };
    let top_threads = *thread_counts.last().unwrap();
    let cl_attempts = if smoke { 150 } else { 300 };
    // The overload arm stays at the calibrated 3-proc cell in both modes
    // (full mode doubles its rounds instead): the wait-freedom gate's
    // goodput-ratio leg is shape-sensitive — at 4+ procs a freeze
    // *discounts contention* for the survivors (§2.6), pushing every
    // faulted/fault-free ratio above 1 and burying the delegation
    // collapse that the 3-proc single-hot-lock shape exposes. The
    // closed-loop sweep is what scales with `--smoke` off.
    let fault_threads = 3;

    println!("# E17: delegation showdown — fc/ccsynch vs wfl's combining fast path (smoke = {smoke})");
    println!(
        "(closed loop: 1 of max(2, threads/4) locks per attempt, 400-step critical sections, \
         zero think time, best of {REPEATS}; overload: e16 fault windows + SLO deadlines; \
         available_parallelism {avail})"
    );
    println!();

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"e17_delegation\",");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"available_parallelism\": {avail},");
    let mut rows = wfl_bench::Rows::new();
    let mut gates_ok = true;

    // --- gate (a): combining fires under deterministic sim contention ---
    // Every process hammers one lock under the opted-in random family; some
    // winner must find claimable ACTIVE peers. This cell is also the
    // checked-in batch histogram's canonical source: fully deterministic.
    {
        let mut spec = closed_loop_spec(4, if smoke { 120 } else { 240 });
        spec.nlocks = 1;
        let mode = ExecMode::sim(SchedKind::RandomCombining, 2_000_000_000);
        let r = run_random_conflict_mode(&spec, AlgoKind::WflCombine { kappa: 4 }, &mode);
        assert!(r.safety_ok, "sim contention cell: safety audit failed");
        let c = Cell::from_report(r);
        println!(
            "## sim contention cell (4 procs, 1 lock): {} combined wins / {} wins, \
             {} batches (mean {:.2}, max {}) {}",
            c.report.combined_wins,
            c.report.wins,
            c.report.combine_batch.len(),
            c.report.combine_batch.mean(),
            c.report.combine_batch.max(),
            verdict(!c.report.combine_batch.is_empty())
        );
        gates_ok &= !c.report.combine_batch.is_empty();
        json_cell(&mut rows, "contention", "sim", "wfl+combine", 4, false, &c);
    }
    println!();

    // --- gate (b), first half: masked replay equivalence ---
    // Under the plain Random family wfl+combine must be bit-identical to
    // plain wfl: recorded schedules from earlier PRs keep replaying.
    {
        let run = |algo: AlgoKind| {
            let spec = overload_spec(3, 60);
            let mode = ExecMode::sim(SchedKind::Random, 2_000_000_000).with_deadline_steps(slo(3));
            let r = run_random_conflict_mode(&spec, algo, &mode);
            (r.wins, r.aborts, r.rescues, r.steps.max(), r.per_pid.clone(), r.combined_wins)
        };
        let plain = run(AlgoKind::Wfl { kappa: 3, delays: true, helping: true });
        let masked = run(AlgoKind::WflCombine { kappa: 3 });
        let identical = plain == masked && masked.5 == 0;
        println!("masked-combining replay identity (plain Random family): {}", verdict(identical));
        gates_ok &= identical;
    }

    // --- sim overload block: the wait-freedom showdown, and gates (b2),
    // (c), (d) ---
    let (fp, fq) = fault_window(fault_threads);
    println!();
    println!(
        "## sim overload, {fault_threads} procs (SLO {} own steps, freeze {fq} of every {fp} slots)",
        slo(fault_threads)
    );
    header(&[
        "algo", "faults", "goodput/kstep", "wins/att", "aborts", "combined", "abort p99", "jain",
    ]);
    let mut combine_ratio = 0.0f64;
    let mut ratios: Vec<(AlgoKind, f64, u64, u64)> = Vec::new();
    for algo in roster(fault_threads, algo_filter.as_ref()) {
        let mut pair = [0.0f64; 2];
        let mut faulted_aborts = 0u64;
        let mut faulted_p99 = 0u64;
        for faulted in [false, true] {
            let c =
                run_sim_overload(algo, fault_threads, overload_rounds(algo, smoke), faulted, false);
            pair[faulted as usize] = c.goodput;
            if faulted {
                faulted_aborts = c.report.aborts;
                faulted_p99 = c.abort_p99;
            }
            row(&[
                algo.label().to_string(),
                if faulted { "inject".into() } else { "-".into() },
                format!("{:.3}", c.goodput),
                format!("{}/{}", c.report.wins, c.report.attempts),
                format!("{}", c.report.aborts),
                format!("{}", c.report.combined_wins),
                format!("{}", c.abort_p99),
                format!("{:.3}", c.jain),
            ]);
            // Gate (d): combining keeps the abort SLO honest.
            if matches!(algo, AlgoKind::WflCombine { .. }) && c.report.aborts >= 20 {
                let ok = c.abort_p99 <= 2 * slo(fault_threads);
                if !ok {
                    println!(
                        "GATE abort-latency: wfl+combine faults={faulted}: p99 {} > 2x SLO",
                        c.abort_p99
                    );
                }
                gates_ok &= ok;
            }
            json_cell(&mut rows, "overload", "sim", algo.label(), fault_threads, faulted, &c);
        }
        let ratio = if pair[0] > 0.0 { pair[1] / pair[0] } else { 0.0 };
        if matches!(algo, AlgoKind::WflCombine { .. }) {
            combine_ratio = ratio;
        }
        ratios.push((algo, ratio, faulted_aborts, faulted_p99));
    }
    println!();
    // Gate (c): the headline claim — freezes cost delegation its
    // wait-freedom (requests pinned behind the frozen combiner blow their
    // SLO) while wfl+combine's batches stay helpable and nobody aborts.
    // fc additionally collapses in aggregate goodput; ccsynch's queue
    // absorbs the freeze in aggregate (the literature's robustness story)
    // but its *individual* attempts stall past the deadline all the same,
    // which is exactly the guarantee the paper refuses to give up.
    let budget = slo(fault_threads);
    for (algo, ratio, faulted_aborts, faulted_p99) in &ratios {
        match algo {
            AlgoKind::WflCombine { .. } => {
                let ok = *ratio >= 0.8 && *faulted_aborts == 0;
                println!(
                    "wfl+combine under freezes: goodput ratio {ratio:.3}, \
                     {faulted_aborts} blown deadlines {}",
                    verdict(ok)
                );
                gates_ok &= ok;
            }
            AlgoKind::FlatCombining | AlgoKind::CcSynch if combine_ratio > 0.0 => {
                let lost_wf = *faulted_aborts > 0
                    && *faulted_p99 >= budget
                    && *ratio < 0.9 * combine_ratio;
                println!(
                    "{} under freezes: goodput ratio {ratio:.3}, {faulted_aborts} blown \
                     deadlines, abort p99 {faulted_p99}; wait-freedom lost (aborts > 0, \
                     p99 >= SLO {budget}, ratio < 0.9 x wfl+combine {combine_ratio:.3}): {}",
                    algo.label(),
                    verdict(lost_wf)
                );
                gates_ok &= lost_wf;
            }
            _ => {
                println!("{} faulted/fault-free goodput: {ratio:.3}", algo.label());
            }
        }
    }

    // Gate (b), second half: a faulted combining cell replays exactly —
    // including its full flight-recorder event sequence (both replays run
    // with the recorder on).
    {
        let combine = AlgoKind::WflCombine { kappa: fault_threads.max(2) };
        let a = run_sim_overload(combine, fault_threads, 60, true, true);
        let b = run_sim_overload(combine, fault_threads, 60, true, true);
        let replay_ok = a.report.wins == b.report.wins
            && a.report.aborts == b.report.aborts
            && a.report.rescues == b.report.rescues
            && a.report.combined_wins == b.report.combined_wins
            && a.report.give_up == b.report.give_up
            && a.report.trace == b.report.trace
            && a.report.trace.as_ref().is_some_and(|t| t.total_events() > 0);
        println!("faulted combining replay determinism (incl. trace): {}", verdict(replay_ok));
        gates_ok &= replay_ok;

        // --trace: export the recorded faulted combining cell.
        if let Some(path) = wfl_bench::parse_trace(&args) {
            let meta = [
                ("bench", "e17_delegation".to_string()),
                ("block", "overload".to_string()),
                ("backend", "sim".to_string()),
                ("algo", combine.label().to_string()),
                ("threads", fault_threads.to_string()),
                ("faulted", "true".to_string()),
                ("seed", SEED.to_string()),
            ];
            let snap = a.report.trace.as_ref().expect("recorded run carries a trace");
            let stats = wfl_bench::write_trace(&path, snap, &a.report.metrics(), &meta);
            assert!(stats.attempts > 0, "traced cell shows no attempt spans");
            assert!(stats.fault_windows > 0, "traced faulted cell shows no fault windows");
        }
    }

    // --- closed-loop block: the throughput sweep, and gate (e) ---
    println!();
    println!("## closed loop, real threads (sweep {thread_counts:?}, {cl_attempts} attempts/thread)");
    header(&["algo", "threads", "wins/s", "combined share", "batches", "jain"]);
    let mut wfl_top = 0.0f64;
    let mut combine_top = 0.0f64;
    for &threads in thread_counts {
        for algo in roster(threads, algo_filter.as_ref()) {
            let c = run_closed_loop(algo, threads, cl_attempts);
            if threads == top_threads {
                match algo {
                    AlgoKind::Wfl { .. } => wfl_top = c.wins_per_sec,
                    AlgoKind::WflCombine { .. } => combine_top = c.wins_per_sec,
                    _ => {}
                }
            }
            row(&[
                algo.label().to_string(),
                threads.to_string(),
                format!("{:.0}", c.wins_per_sec),
                format!("{:.3}", c.combined_share),
                format!("{}", c.report.combine_batch.len()),
                format!("{:.3}", c.jain),
            ]);
            json_cell(&mut rows, "closed_loop", "real", algo.label(), threads, false, &c);
        }
    }
    println!();
    if wfl_top > 0.0 && combine_top > 0.0 {
        let ratio = combine_top / wfl_top;
        // The strict half is armed only off a single hardware thread, like
        // E13's layout gate: serial execution hides the contention the
        // fast path feeds on, so 1-core CI gets the tolerance bound.
        let (bound, armed) = if avail > 1 { (1.0, "strict") } else { (0.9, "tolerance") };
        println!(
            "closed-loop top-of-sweep ({top_threads}t): wfl+combine / wfl = {ratio:.3} \
             (gate {armed}: >= {bound}) {}",
            verdict(ratio >= bound)
        );
        gates_ok &= ratio >= bound;
    }

    // --- real fault arm: the same freeze story on hardware (safety-gated
    // only; timing ratios on a shared machine are reported, not asserted) ---
    let real_threads = clamp_threads(fault_threads, 1, "e17 real fault block");
    let real_attempts = if smoke { 60 } else { 150 };
    println!();
    println!("## real threads, {real_threads} procs, wall-clock injector (2ms stall / 4ms)");
    header(&["algo", "faults", "wins/att", "aborts", "combined", "wall ms"]);
    for algo in roster(real_threads, algo_filter.as_ref()) {
        for faulted in [false, true] {
            let c = run_real_fault(algo, real_threads, real_attempts, faulted);
            row(&[
                algo.label().to_string(),
                if faulted { "inject".into() } else { "-".into() },
                format!("{}/{}", c.report.wins, c.report.attempts),
                format!("{}", c.report.aborts),
                format!("{}", c.report.combined_wins),
                format!("{:.1}", c.report.wall.expect("real run").as_secs_f64() * 1e3),
            ]);
            json_cell(&mut rows, "overload", "real", algo.label(), real_threads, faulted, &c);
        }
    }
    println!();

    json.push_str("  \"results\": ");
    json.push_str(&rows.finish());
    json.push_str(",\n");
    let _ = writeln!(json, "  \"gates_ok\": {gates_ok}");
    json.push_str("}\n");
    std::fs::write("BENCH_delegation.json", &json).expect("write BENCH_delegation.json");
    println!("wrote BENCH_delegation.json");

    if smoke {
        assert!(gates_ok, "E17 smoke gates failed (see GATE lines above)");
        println!("E17 smoke gates: all ok");
    }
}
