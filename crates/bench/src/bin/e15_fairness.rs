//! E15 — fairness under the adaptive player adversary, on real hardware.
//!
//! The paper's Theorem 6.9: no adversary — even one that watches the full
//! history and times competitor starts adaptively — can push a victim's
//! per-attempt success probability below `1/C_p` (here `1/(κL)` with
//! κ = threads, L = 1: everyone fights over one lock). This binary sweeps
//! the `wfl_fairness` adversary across algorithms × threads × adversary
//! strength on the **real-threads backend** (victim success rate, Jain
//! fairness index over per-process success rates, max stretch (tries
//! spent on the worst acquisition),
//! latency tails), plus a **deterministic simulator block** where the
//! targeted adversary creates exact, reproducible contention.
//!
//! What the cells show: wfl's victim rate respects the bound everywhere;
//! the naive baseline has no such floor — under fine-grained (sim)
//! contention its fairness index collapses (some processes livelock while
//! others stream wins), and on oversubscribed hardware a competitor
//! preempted mid-hold starves the victim in whole-epoch bursts (the max
//! stretch blows up), exactly the failure the paper's helping + delay
//! mechanism removes.
//!
//! Emits `BENCH_fairness.json`. Usage: `e15_fairness [--smoke] [--trace out.json]`
//!   --trace : export a recorded deterministic targeted-adversary wfl sim
//!             cell as Chrome/Perfetto `trace_event` JSON (plus a
//!             `<path>.metrics.json` sidecar).
//!   --smoke : CI-sized cells, and the run **gates**:
//!     (a) real backend, each thread count: wfl victim success lower bound
//!         stays above the paper bound minus tolerance;
//!     (b) deterministic sim: wfl victim rate ≥ 1/nprocs while naive's
//!         Jain index sits measurably below wfl's;
//!     (c) real backend: the naive victim shows the degradation marker
//!         (a whole-epoch starvation burst or a measurable rate dip)
//!         that wfl provably cannot show.

use std::fmt::Write as _;
use std::time::Duration;
use wfl_bench::{header, row, verdict};
use wfl_fairness::{run_adversary, AdvStrength, AdversarySpec, FairnessReport};
use wfl_runtime::clamp_threads;
use wfl_workloads::harness::{AlgoKind, ExecMode, SchedKind};

/// Victim attempts per epoch (also the whole-epoch burst size a preempted
/// naive holder inflicts on the victim).
const ROUNDS: usize = 96;
/// Victim think steps between attempts.
const PERIOD: u64 = 400;

fn algo_of(name: &str, threads: usize) -> AlgoKind {
    match name {
        "wfl" => AlgoKind::Wfl { kappa: threads, delays: true, helping: true },
        "wfl-unknown" => AlgoKind::WflUnknown,
        "tsp" => AlgoKind::Tsp,
        _ => AlgoKind::Naive,
    }
}

struct Cell {
    report: FairnessReport,
    threads: usize,
    bound: f64,
}

impl Cell {
    fn victim_rate(&self) -> f64 {
        self.report.victim_success().rate()
    }

    fn victim_lb(&self) -> f64 {
        self.report.victim_success().wilson_lower(2.58)
    }
}

fn run_real_cell(algo: AlgoKind, threads: usize, strength: AdvStrength, budget: Duration) -> Cell {
    let mut spec = AdversarySpec::new(threads, ROUNDS);
    spec.strength = strength;
    spec.victim_period = PERIOD;
    spec.seed = 7;
    let mode = ExecMode::real_timed(threads, budget).with_epoch_rounds(ROUNDS);
    let report = run_adversary(&spec, algo, &mode);
    assert!(
        report.safety_ok,
        "{}/{}t/{}: acquisition counter diverged from recorded wins",
        algo.label(),
        threads,
        strength.label()
    );
    Cell { report, threads, bound: 1.0 / threads as f64 }
}

fn run_sim_cell(algo: AlgoKind, nprocs: usize) -> Cell {
    let mut spec = AdversarySpec::new(nprocs, 80);
    spec.strength = AdvStrength::Targeted;
    spec.heap_words = 1 << 25;
    let report = run_adversary(&spec, algo, &ExecMode::sim(SchedKind::RoundRobin, 300_000_000));
    assert!(report.safety_ok, "{}/sim: safety failed", algo.label());
    Cell { report, threads: nprocs, bound: 1.0 / nprocs as f64 }
}

/// The uniform metrics fold of a fairness cell. [`FairnessReport`] has no
/// retry give-up tallies or per-attempt step summary, so the uniform
/// block carries the per-process acquisition-latency histogram (steps to
/// win, all processes merged) as its step distribution, and the give-up
/// object stays empty.
fn metrics_of(r: &FairnessReport) -> wfl_obs::MetricsSnapshot {
    let mut steps = wfl_obs::FixedHistogram::default();
    for t in &r.per_proc {
        steps.merge(&t.latency);
    }
    let wall_secs = r.wall.map(|w| w.as_secs_f64().max(1e-12));
    wfl_obs::MetricsSnapshot {
        attempts: r.attempts(),
        wins: r.wins(),
        aborts: r.per_proc.iter().map(|t| t.aborts).sum(),
        epochs: r.epochs,
        steps,
        wall_secs,
        wins_per_sec: wall_secs.map(|w| r.wins() as f64 / w),
        ..Default::default()
    }
}

#[allow(clippy::too_many_arguments)]
fn json_cell(
    rows: &mut wfl_bench::Rows,
    backend: &str,
    algo: &str,
    strength: &str,
    cell: &Cell,
) {
    let r = &cell.report;
    let v = r.victim_success();
    let vt = r.victim();
    rows.push(
        &[
            ("backend", backend.to_string()),
            ("algo", algo.to_string()),
            ("strength", strength.to_string()),
        ],
        &[
            ("threads", cell.threads.to_string()),
            ("bound", format!("{:.6}", cell.bound)),
            ("victim_rate", format!("{:.6}", v.rate())),
            ("victim_lb", format!("{:.6}", cell.victim_lb())),
            ("victim_wins", v.successes.to_string()),
            ("victim_attempts", v.trials.to_string()),
            ("jain_index", format!("{:.6}", r.jain_rates())),
            ("victim_max_stretch", vt.max_stretch.to_string()),
            ("victim_latency_p50", vt.latency.percentile(0.5).to_string()),
            ("victim_latency_p99", vt.latency.percentile(0.99).to_string()),
            ("competitor_attempts", (r.attempts() - v.trials).to_string()),
            ("contested", (r.attempts() > v.trials).to_string()),
        ],
        &metrics_of(r),
    );
}

fn print_cell(algo: &str, strength: &str, cell: &Cell) {
    let r = &cell.report;
    let v = r.victim_success();
    let comp = r.attempts() - v.trials;
    row(&[
        format!("{algo} x{}", cell.threads),
        strength.to_string(),
        // An uncontested victim proves nothing about the bound: on few
        // cores the adversary's reaction window can be narrower than a
        // scheduler timeslice, so no competitor ever fires. The marker
        // (and the JSON `contested` field) keeps such cells honest.
        if comp == 0 {
            format!("{:.3} (uncontested)", v.rate())
        } else {
            format!("{:.3} (lb {:.3})", v.rate(), cell.victim_lb())
        },
        format!("{:.3}", cell.bound),
        format!("{:.3}", r.jain_rates()),
        r.victim().max_stretch.to_string(),
        comp.to_string(),
        r.epochs.to_string(),
    ]);
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let budget = Duration::from_millis(if smoke { 150 } else { 200 });
    // The measurement sweep never asks the OS for more threads than the
    // hardware can co-schedule (one slot reserved for the adversary
    // controller): oversubscribed cells measure the kernel scheduler, not
    // the algorithm's fairness bound. `clamp_threads` warns when it bites.
    let thread_counts: Vec<usize> = {
        let mut v: Vec<usize> = [2usize, 4, 8]
            .iter()
            .map(|&t| clamp_threads(t, 1, "e15 adversary sweep"))
            .collect();
        v.dedup();
        v
    };
    let algos: &[&str] =
        if smoke { &["wfl", "naive"] } else { &["wfl", "wfl-unknown", "naive", "tsp"] };
    let strengths: &[AdvStrength] = if smoke {
        &[AdvStrength::Calm, AdvStrength::Flood]
    } else {
        &[AdvStrength::Calm, AdvStrength::Targeted, AdvStrength::Flood]
    };

    println!("# E15: fairness under the adaptive player adversary (smoke = {smoke})");
    println!(
        "(victim attempts in epochs of {ROUNDS}, think {PERIOD}; every cell is also a \
         mutual-exclusion check)"
    );
    println!();

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"e15_fairness\",");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"bound_model\": \"1/(kappa*L), kappa = threads, L = 1\",");
    let _ = writeln!(json, "  \"rounds_per_epoch\": {ROUNDS},");
    let mut rows = wfl_bench::Rows::new();

    // --- real backend: algorithms x threads x strength ---
    println!("## real threads");
    header(&[
        "cell", "adversary", "victim rate", "bound 1/(kL)", "jain", "max stretch",
        "comp attempts", "epochs",
    ]);
    let mut wfl_bound_ok = true;
    for &threads in &thread_counts {
        for &algo_name in algos {
            for &strength in strengths {
                let cell = run_real_cell(algo_of(algo_name, threads), threads, strength, budget);
                print_cell(algo_name, strength.label(), &cell);
                // Gate (a): the theorem bound, with a 40% tolerance for
                // hardware noise (the guarantee is a floor, not a target).
                if algo_name == "wfl" {
                    wfl_bound_ok &= cell.victim_lb() >= cell.bound * 0.6;
                }
                json_cell(&mut rows, "real", algo_name, strength.label(), &cell);
            }
        }
    }
    println!();

    // --- deterministic simulator block: exact, reproducible contention ---
    println!("## simulator (deterministic targeted adversary, 4 processes)");
    header(&[
        "cell", "adversary", "victim rate", "bound 1/(kL)", "jain", "max stretch",
        "comp attempts", "epochs",
    ]);
    let sim_wfl = run_sim_cell(algo_of("wfl", 4), 4);
    let sim_naive = run_sim_cell(algo_of("naive", 4), 4);
    print_cell("wfl", "targeted", &sim_wfl);
    print_cell("naive", "targeted", &sim_naive);
    json_cell(&mut rows, "sim", "wfl", "targeted", &sim_wfl);
    json_cell(&mut rows, "sim", "naive", "targeted", &sim_naive);
    println!();

    // Gate (b): deterministic — identical numbers on every machine. The
    // wfl victim holds the exact bound; naive's fairness index collapses
    // well below wfl's (its competitors livelock unevenly).
    let sim_wfl_holds = sim_wfl.victim_rate() >= sim_wfl.bound;
    let sim_naive_collapses =
        sim_naive.report.jain_rates() + 0.2 <= sim_wfl.report.jain_rates();

    // Gate (c): on real hardware the naive victim shows a degradation
    // marker wfl provably cannot: a whole-epoch starvation burst (a
    // competitor preempted mid-hold walls off the lock: max stretch >=
    // one epoch) or a measurable rate dip. Re-run a few times — the
    // marker is a hardware event, not a constant.
    let mut naive_degrades = false;
    let mut naive_worst_rate = 1.0f64;
    let mut naive_worst_stretch = 0u64;
    for _ in 0..3 {
        // Deliberately NOT clamped: this probe oversubscribes on purpose —
        // the degradation marker it hunts (a competitor preempted mid-hold
        // walling off the lock) *is* a preemption artifact, and forcing
        // preemption is the whole point of asking for 8 threads.
        let cell = run_real_cell(algo_of("naive", 8), 8, AdvStrength::Calm, budget.max(Duration::from_millis(250)));
        let (rate, stretch) = (cell.victim_rate(), cell.report.victim().max_stretch);
        naive_worst_rate = naive_worst_rate.min(rate);
        naive_worst_stretch = naive_worst_stretch.max(stretch);
        if stretch >= ROUNDS as u64 || rate < 0.98 {
            naive_degrades = true;
            break;
        }
    }

    println!("wfl victim bound (real, all cells):     {}", verdict(wfl_bound_ok));
    println!(
        "wfl victim bound (sim, exact):          {} ({:.3} >= {:.3})",
        verdict(sim_wfl_holds),
        sim_wfl.victim_rate(),
        sim_wfl.bound
    );
    println!(
        "naive fairness collapse (sim, exact):   {} (jain {:.3} vs wfl {:.3})",
        verdict(sim_naive_collapses),
        sim_naive.report.jain_rates(),
        sim_wfl.report.jain_rates()
    );
    println!(
        "naive degradation marker (real):        {} (worst rate {:.3}, max stretch {})",
        verdict(naive_degrades),
        naive_worst_rate,
        naive_worst_stretch
    );

    // --trace: the adversary driver bypasses the harness's epoch loop, so
    // the binary cycles the global recorder around one deterministic sim
    // cell itself (the sim arm is quiescent when `run_adversary` returns).
    if let Some(path) = wfl_bench::parse_trace(&std::env::args().collect::<Vec<_>>()) {
        wfl_obs::rec::enable();
        let cell = run_sim_cell(algo_of("wfl", 4), 4);
        wfl_obs::rec::disable();
        let snap = wfl_obs::rec::snapshot();
        let meta = [
            ("bench", "e15_fairness".to_string()),
            ("backend", "sim".to_string()),
            ("algo", "wfl".to_string()),
            ("strength", "targeted".to_string()),
            ("threads", "4".to_string()),
        ];
        wfl_bench::write_trace(&path, &snap, &metrics_of(&cell.report), &meta);
    }

    json.push_str("  \"results\": ");
    json.push_str(&rows.finish());
    json.push_str(",\n");
    let _ = writeln!(json, "  \"gates\": {{");
    let _ = writeln!(json, "    \"wfl_bound_real\": {wfl_bound_ok},");
    let _ = writeln!(json, "    \"wfl_bound_sim\": {sim_wfl_holds},");
    let _ = writeln!(json, "    \"naive_jain_collapse_sim\": {sim_naive_collapses},");
    let _ = writeln!(json, "    \"naive_degrades_real\": {naive_degrades}");
    json.push_str("  }\n}\n");
    std::fs::write("BENCH_fairness.json", &json).expect("write BENCH_fairness.json");
    println!();
    println!("wrote BENCH_fairness.json");

    if smoke {
        assert!(wfl_bound_ok, "wfl victim success fell below the paper bound minus tolerance");
        assert!(sim_wfl_holds, "wfl victim rate below 1/C_p in the deterministic sim cell");
        assert!(
            sim_naive_collapses,
            "naive fairness index failed to collapse below wfl's in the deterministic sim cell"
        );
        assert!(
            naive_degrades,
            "naive victim showed no degradation marker on the real backend \
             (worst rate {naive_worst_rate:.3}, max stretch {naive_worst_stretch})"
        );
        println!("smoke gates passed");
    }
}
