//! E6 — Theorem 6.10: the unknown-bounds variant (§6.2) succeeds with
//! probability ≥ `1/(C_p · log(κLT))`, without knowing κ, L or T.
//!
//! Same contention grid as E3, run under both the known-bounds algorithm
//! and the §6.2 variant; the table compares measured rates against both
//! bounds. Also reports the E6b ablation note: the conservative
//! self-eliminate-on-TBD rule's cost shows up as the gap between the two
//! algorithms' rates under skewed schedules.

use wfl_bench::{fmt_success, header, row, verdict};
use wfl_workloads::harness::{run_random_conflict, AlgoKind, SchedKind, SimSpec};

fn main() {
    println!("# E6: unknown-bounds variant vs Theorem 6.10 bound");
    header(&[
        "kappa",
        "L",
        "sched",
        "known rate",
        "unknown rate",
        "bound 1/(kL log(kLT))",
        "bound held",
    ]);
    let mut all_ok = true;
    for &(kappa, l) in &[(2usize, 1usize), (2, 2), (4, 1)] {
        for sched in [SchedKind::Random, SchedKind::WeightedRamp] {
            let mut spec = SimSpec::new(kappa, 120, l, l);
            spec.seed = 67;
            spec.sched = sched;
            spec.think_max = 32;
            spec.heap_words = 1 << 25;
            spec.max_steps = 2_000_000_000;
            let known =
                run_random_conflict(&spec, AlgoKind::Wfl { kappa, delays: true, helping: true });
            let unknown = run_random_conflict(&spec, AlgoKind::WflUnknown);
            assert!(known.safety_ok && unknown.safety_ok, "safety violated");
            let t = 2 * l;
            let log_factor = ((kappa * l * t) as f64).ln().max(1.0);
            let bound = 1.0 / ((kappa * l) as f64 * log_factor);
            let ok = unknown.success.wilson_lower(2.58) >= bound;
            all_ok &= ok;
            row(&[
                kappa.to_string(),
                l.to_string(),
                format!("{sched:?}"),
                fmt_success(&known.success),
                fmt_success(&unknown.success),
                format!("{bound:.3}"),
                verdict(ok).to_string(),
            ]);
        }
    }
    println!();
    println!("Theorem 6.10 bound: {}", verdict(all_ok));
    println!("(E6b) the known-vs-unknown rate gap under WeightedRamp reflects the");
    println!("conservative self-eliminate-on-TBD reconstruction (DESIGN.md §1.6).");
}
