//! E11 — ablation of the fixed delays (§6 "Delays").
//!
//! The delays make a descriptor's reveal time a fixed function of its
//! start time, denying the adaptive player adversary any
//! priority-dependent timing. This experiment runs the E7 adversary
//! against the victim with delays ON and OFF: with delays the victim's
//! rate respects the `1/C_p` bound; without them the adversary can skew
//! the field (the paper's motivation for paying the delay cost).

use wfl_bench::{fmt_success, header, row, verdict};
use wfl_baselines::WflKnown;
use wfl_core::{LockConfig, LockId, LockSpace};
use wfl_idem::{IdemRun, Registry, TagSource, Thunk};
use wfl_runtime::schedule::RoundRobin;
use wfl_runtime::sim::SimBuilder;
use wfl_runtime::stats::Bernoulli;
use wfl_runtime::{Addr, Ctx, Heap};
use wfl_workloads::player::{run_player_loop, AdvStrength, TargetedStarter};

struct Touch;
impl Thunk for Touch {
    fn run(&self, run: &mut IdemRun<'_, '_>) {
        let c = Addr::from_word(run.arg(0));
        let v = run.read(c);
        run.write(c, v + 1);
    }
    fn max_ops(&self) -> usize {
        2
    }
}

fn victim_rate(delays: bool, seed_period: u64) -> Bernoulli {
    let nprocs = 3;
    let attempts = 70u64;
    let mut registry = Registry::new();
    let touch = registry.register(Touch);
    let heap = Heap::new(1 << 25);
    let space = LockSpace::create_root(&heap, 1, nprocs);
    let counter = heap.alloc_root(1);
    let results = heap.alloc_root(attempts as usize * nprocs);
    let victim_desc_cell = heap.alloc_root(1);
    let mut cfg = LockConfig::new(nprocs, 1, 2);
    cfg.delays = delays;
    let algo = WflKnown { space: &space, registry: &registry, cfg };
    let adversary = TargetedStarter {
        victim: 0,
        competitors: (1..nprocs).collect(),
        locks: vec![LockId(0)],
        args: vec![counter.to_word()],
        victim_period: seed_period,
        victim_desc_cell,
        strength: AdvStrength::Targeted,
        issued: 0,
    };
    let algo_ref = &algo;
    let report = SimBuilder::new(&heap, nprocs)
        .schedule(RoundRobin::new(nprocs))
        .controller(adversary)
        .max_steps(300_000_000)
        .spawn_all(|pid| {
            move |ctx: &Ctx| {
                let mut tags = TagSource::new(pid);
                let mut scratch = wfl_core::Scratch::new();
                if pid == 0 {
                    scratch.probe = Some(victim_desc_cell);
                }
                let my_results = results.off((pid as u64 * attempts) as u32);
                run_player_loop(ctx, algo_ref, &mut tags, &mut scratch, touch, my_results, attempts);
            }
        })
        .run();
    report.assert_clean();
    let mut b = Bernoulli::default();
    for i in 0..attempts {
        match heap.peek(results.off(i as u32)) {
            0 => break,
            o => b.record(o == 2),
        }
    }
    b
}

fn main() {
    println!("# E11: delay ablation under the adaptive adversary (2 competitors)");
    header(&["delays", "victim attempts", "victim rate (99% lb)", "bound 1/3", "held"]);
    for delays in [true, false] {
        let b = victim_rate(delays, 600);
        let ok = b.wilson_lower(2.58) >= 1.0 / 3.0;
        row(&[
            if delays { "on".into() } else { "off".to_string() },
            b.trials.to_string(),
            fmt_success(&b),
            "0.333".to_string(),
            verdict(ok).to_string(),
        ]);
    }
    println!();
    println!("expected shape: with delays the bound holds; without them the");
    println!("adversary's timing games can push the victim's rate down (safety");
    println!("still holds either way — only fairness is at stake).");
}
