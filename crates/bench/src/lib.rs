//! Shared utilities for the experiment binaries (E1–E13).
//!
//! Each binary regenerates one theorem-validation table; see `DESIGN.md`
//! §3 for the experiment index.

use wfl_runtime::stats::Bernoulli;

/// Prints a markdown table header.
pub fn header(cols: &[&str]) {
    println!("| {} |", cols.join(" | "));
    println!("|{}|", cols.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
}

/// Prints a markdown table row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Formats a success estimate as `rate (lower-bound)` using the Wilson
/// 99% lower bound.
pub fn fmt_success(b: &Bernoulli) -> String {
    format!("{:.3} (lb {:.3})", b.rate(), b.wilson_lower(2.58))
}

/// Verdict marker for bound checks.
pub fn verdict(ok: bool) -> &'static str {
    if ok {
        "ok"
    } else {
        "VIOLATED"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_success_shows_rate_and_bound() {
        let mut b = Bernoulli::default();
        for i in 0..100 {
            b.record(i % 2 == 0);
        }
        let s = fmt_success(&b);
        assert!(s.starts_with("0.500"));
        assert!(s.contains("lb"));
    }

    #[test]
    fn verdict_strings() {
        assert_eq!(verdict(true), "ok");
        assert_eq!(verdict(false), "VIOLATED");
    }
}
