//! Shared utilities for the experiment binaries (E1–E13).
//!
//! Each binary regenerates one theorem-validation table; see `DESIGN.md`
//! §3 for the experiment index.

use std::fmt::Write as _;
use wfl_obs::{escape, MetricsSnapshot};
use wfl_runtime::stats::Bernoulli;

/// Prints a markdown table header.
pub fn header(cols: &[&str]) {
    println!("| {} |", cols.join(" | "));
    println!("|{}|", cols.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
}

/// Prints a markdown table row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Formats a success estimate as `rate (lower-bound)` using the Wilson
/// 99% lower bound.
pub fn fmt_success(b: &Bernoulli) -> String {
    format!("{:.3} (lb {:.3})", b.rate(), b.wilson_lower(2.58))
}

/// Verdict marker for bound checks.
pub fn verdict(ok: bool) -> &'static str {
    if ok {
        "ok"
    } else {
        "VIOLATED"
    }
}

/// Accumulates the `"results"` array of a `BENCH_*.json` document — the
/// one row serializer every experiment binary (E13–E17) feeds, replacing
/// the per-binary hand-rolled writers.
///
/// Each row is one object: the caller's string `context` fields
/// (workload/algo/backend labels), its pre-rendered `raw` JSON fields
/// (experiment-specific numbers, arrays, nested objects), and then the
/// **uniform metrics block** rendered from a [`MetricsSnapshot`] —
/// counters, per-reason `give_up` tallies, fixed-bucket step
/// percentiles, and the calibrated `steps_per_sec` / `wins_per_sec`
/// rates (JSON `null` on sim rows, which have no wall clock). The
/// uniform block is what makes every row comparable across experiments.
#[derive(Default)]
pub struct Rows {
    body: String,
    first: bool,
    count: usize,
}

impl Rows {
    pub fn new() -> Rows {
        Rows { body: String::new(), first: true, count: 0 }
    }

    /// Appends one row. `context` values are escaped as JSON strings;
    /// `raw` values are embedded verbatim (the caller renders numbers,
    /// bools, arrays, objects).
    pub fn push(&mut self, context: &[(&str, String)], raw: &[(&str, String)], m: &MetricsSnapshot) {
        if !self.first {
            self.body.push_str(",\n");
        }
        self.first = false;
        self.count += 1;
        self.body.push_str("    {");
        let mut sep = "";
        for (k, v) in context {
            let _ = write!(self.body, "{sep}\"{}\": \"{}\"", escape(k), escape(v));
            sep = ", ";
        }
        for (k, v) in raw {
            let _ = write!(self.body, "{sep}\"{}\": {v}", escape(k));
            sep = ", ";
        }
        self.body.push_str(sep);
        self.body.push_str(&metrics_fields(m));
        self.body.push('}');
    }

    /// Rows appended so far.
    pub fn len(&self) -> usize {
        self.count
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The accumulated array, formatted to sit after a `"results": ` key
    /// at the historical indentation.
    pub fn finish(self) -> String {
        if self.count == 0 {
            return "[]".to_string();
        }
        format!("[\n{}\n  ]", self.body)
    }
}

/// The uniform metrics block of one row (no braces; the row serializer
/// splices it after the caller's fields).
fn metrics_fields(m: &MetricsSnapshot) -> String {
    let opt = |v: Option<f64>, prec: usize| v.map_or("null".to_string(), |x| format!("{x:.prec$}"));
    format!(
        "\"attempts\": {}, \"wins\": {}, \"success_rate\": {:.4}, \"aborts\": {}, \
         \"rescues\": {}, \"combined_wins\": {}, \"epochs\": {}, \"give_up\": {}, \
         \"steps_mean\": {:.1}, \"steps_p50\": {}, \"steps_p99\": {}, \
         \"abort_p99_steps\": {}, \"wall_secs\": {}, \"steps_per_sec\": {}, \
         \"wins_per_sec\": {}",
        m.attempts,
        m.wins,
        m.success_rate(),
        m.aborts,
        m.rescues,
        m.combined_wins,
        m.epochs,
        m.give_up_json(),
        m.steps.mean(),
        m.steps.percentile(0.50),
        m.steps.percentile(0.99),
        m.abort_steps.percentile(0.99),
        opt(m.wall_secs, 6),
        opt(m.steps_per_sec, 1),
        opt(m.wins_per_sec, 1),
    )
}

/// Writes a flight-recorder snapshot as a Chrome/Perfetto `trace_event`
/// document at `path` (openable in ui.perfetto.dev) plus a
/// `<path>.metrics.json` sidecar, parse-validating the document before
/// anything touches disk. `meta` pairs become the trace's process name,
/// per-span args, and the sidecar's context fields. Returns the
/// validator's counts for the caller's presence assertions.
pub fn write_trace(
    path: &str,
    snap: &wfl_obs::TraceSnapshot,
    metrics: &MetricsSnapshot,
    meta: &[(&str, String)],
) -> wfl_obs::perfetto::TraceStats {
    let doc = wfl_obs::perfetto::export(snap, meta);
    let stats = wfl_obs::perfetto::validate(&doc)
        .unwrap_or_else(|e| panic!("exported trace failed validation: {e}"));
    std::fs::write(path, &doc).unwrap_or_else(|e| panic!("write {path}: {e}"));
    let sidecar = format!("{path}.metrics.json");
    std::fs::write(&sidecar, metrics.to_json(meta))
        .unwrap_or_else(|e| panic!("write {sidecar}: {e}"));
    println!(
        "wrote {path} ({} spans, {} instants, {} tracks) and {sidecar}",
        stats.complete_spans, stats.instants, stats.tracks
    );
    stats
}

/// Parses a `--trace out.json` (or `--trace=out.json`) flag: the path the
/// experiment writes its Perfetto trace to, if tracing was requested.
pub fn parse_trace(args: &[String]) -> Option<String> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(rest) = a.strip_prefix("--trace=") {
            return Some(rest.to_string());
        }
        if a == "--trace" {
            return Some(it.next().expect("--trace needs an output path").clone());
        }
    }
    None
}

/// Parses an `--algos a,b,c` (or `--algos=a,b,c`) filter flag into the
/// requested label list, if present. Labels are matched against each
/// binary's roster by [`retain_algos`].
pub fn parse_algos(args: &[String]) -> Option<Vec<String>> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let list = if let Some(rest) = a.strip_prefix("--algos=") {
            rest.to_string()
        } else if a == "--algos" {
            it.next().expect("--algos needs a comma-separated list").clone()
        } else {
            continue;
        };
        let names: Vec<String> = list
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        assert!(!names.is_empty(), "--algos list is empty");
        return Some(names);
    }
    None
}

/// Applies an `--algos` filter to a labeled roster: keeps roster order,
/// panics on a requested label the roster does not know (typos must not
/// silently produce an empty sweep). `None` keeps the full roster.
pub fn retain_algos<T>(
    roster: Vec<T>,
    label: impl Fn(&T) -> &str,
    filter: Option<&Vec<String>>,
) -> Vec<T> {
    let Some(names) = filter else { return roster };
    for n in names {
        assert!(
            roster.iter().any(|t| label(t) == n),
            "--algos: unknown algorithm {n:?} (known: {})",
            roster.iter().map(|t| label(t).to_string()).collect::<Vec<_>>().join(", ")
        );
    }
    roster.into_iter().filter(|t| names.iter().any(|n| n == label(t))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_success_shows_rate_and_bound() {
        let mut b = Bernoulli::default();
        for i in 0..100 {
            b.record(i % 2 == 0);
        }
        let s = fmt_success(&b);
        assert!(s.starts_with("0.500"));
        assert!(s.contains("lb"));
    }

    #[test]
    fn verdict_strings() {
        assert_eq!(verdict(true), "ok");
        assert_eq!(verdict(false), "VIOLATED");
    }

    #[test]
    fn rows_render_the_uniform_metrics_block() {
        let mut rows = Rows::new();
        assert!(rows.is_empty());
        let mut m = MetricsSnapshot {
            attempts: 4,
            wins: 3,
            epochs: 1,
            give_up: vec![("stop", 1), ("deadline", 0)],
            wall_secs: Some(0.5),
            steps_per_sec: Some(2000.0),
            wins_per_sec: Some(6.0),
            ..Default::default()
        };
        m.steps.record(8);
        rows.push(
            &[("algo", "wf\"l".to_string())],
            &[("threads", "4".to_string()), ("faulted", "true".to_string())],
            &m,
        );
        rows.push(&[], &[], &MetricsSnapshot::default());
        assert_eq!(rows.len(), 2);
        let doc = format!("{{\n  \"results\": {}\n}}", rows.finish());
        let v = wfl_obs::JsonValue::parse(&doc).expect("rows must parse");
        let arr = v.get("results").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].get("algo").unwrap().as_str(), Some("wf\"l"));
        assert_eq!(arr[0].get("threads").unwrap().as_num(), Some(4.0));
        assert_eq!(arr[0].get("give_up").unwrap().get("stop").unwrap().as_num(), Some(1.0));
        assert_eq!(arr[0].get("steps_per_sec").unwrap().as_num(), Some(2000.0));
        assert_eq!(arr[0].get("steps_p99").unwrap().as_num(), Some(8.0));
        // Sim-style rows carry the same fields with null rates.
        assert_eq!(arr[1].get("wall_secs"), Some(&wfl_obs::JsonValue::Null));
        assert_eq!(arr[1].get("steps_per_sec"), Some(&wfl_obs::JsonValue::Null));
        assert_eq!(Rows::new().finish(), "[]");
    }

    #[test]
    fn trace_flag_parses_both_spellings() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(parse_trace(&args(&["bench", "--smoke"])), None);
        assert_eq!(parse_trace(&args(&["bench", "--trace", "t.json"])), Some("t.json".into()));
        assert_eq!(parse_trace(&args(&["bench", "--trace=out/t.json"])), Some("out/t.json".into()));
    }

    #[test]
    fn algos_flag_parses_both_spellings() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(parse_algos(&args(&["bench", "--smoke"])), None);
        assert_eq!(
            parse_algos(&args(&["bench", "--algos", "wfl, fc"])),
            Some(vec!["wfl".to_string(), "fc".to_string()])
        );
        assert_eq!(
            parse_algos(&args(&["bench", "--algos=ccsynch"])),
            Some(vec!["ccsynch".to_string()])
        );
    }

    #[test]
    fn retain_algos_filters_in_roster_order() {
        let roster = vec!["wfl", "fc", "ccsynch"];
        let filter = Some(vec!["ccsynch".to_string(), "wfl".to_string()]);
        assert_eq!(retain_algos(roster.clone(), |s| s, filter.as_ref()), vec!["wfl", "ccsynch"]);
        assert_eq!(retain_algos(roster.clone(), |s| s, None), roster);
    }

    #[test]
    #[should_panic(expected = "unknown algorithm")]
    fn retain_algos_rejects_typos() {
        let filter = Some(vec!["wlf".to_string()]);
        retain_algos(vec!["wfl"], |s| s, filter.as_ref());
    }
}
