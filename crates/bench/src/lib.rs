//! Shared utilities for the experiment binaries (E1–E13).
//!
//! Each binary regenerates one theorem-validation table; see `DESIGN.md`
//! §3 for the experiment index.

use wfl_runtime::stats::Bernoulli;

/// Prints a markdown table header.
pub fn header(cols: &[&str]) {
    println!("| {} |", cols.join(" | "));
    println!("|{}|", cols.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
}

/// Prints a markdown table row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Formats a success estimate as `rate (lower-bound)` using the Wilson
/// 99% lower bound.
pub fn fmt_success(b: &Bernoulli) -> String {
    format!("{:.3} (lb {:.3})", b.rate(), b.wilson_lower(2.58))
}

/// Verdict marker for bound checks.
pub fn verdict(ok: bool) -> &'static str {
    if ok {
        "ok"
    } else {
        "VIOLATED"
    }
}

/// Parses an `--algos a,b,c` (or `--algos=a,b,c`) filter flag into the
/// requested label list, if present. Labels are matched against each
/// binary's roster by [`retain_algos`].
pub fn parse_algos(args: &[String]) -> Option<Vec<String>> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let list = if let Some(rest) = a.strip_prefix("--algos=") {
            rest.to_string()
        } else if a == "--algos" {
            it.next().expect("--algos needs a comma-separated list").clone()
        } else {
            continue;
        };
        let names: Vec<String> = list
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        assert!(!names.is_empty(), "--algos list is empty");
        return Some(names);
    }
    None
}

/// Applies an `--algos` filter to a labeled roster: keeps roster order,
/// panics on a requested label the roster does not know (typos must not
/// silently produce an empty sweep). `None` keeps the full roster.
pub fn retain_algos<T>(
    roster: Vec<T>,
    label: impl Fn(&T) -> &str,
    filter: Option<&Vec<String>>,
) -> Vec<T> {
    let Some(names) = filter else { return roster };
    for n in names {
        assert!(
            roster.iter().any(|t| label(t) == n),
            "--algos: unknown algorithm {n:?} (known: {})",
            roster.iter().map(|t| label(t).to_string()).collect::<Vec<_>>().join(", ")
        );
    }
    roster.into_iter().filter(|t| names.iter().any(|n| n == label(t))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_success_shows_rate_and_bound() {
        let mut b = Bernoulli::default();
        for i in 0..100 {
            b.record(i % 2 == 0);
        }
        let s = fmt_success(&b);
        assert!(s.starts_with("0.500"));
        assert!(s.contains("lb"));
    }

    #[test]
    fn verdict_strings() {
        assert_eq!(verdict(true), "ok");
        assert_eq!(verdict(false), "VIOLATED");
    }

    #[test]
    fn algos_flag_parses_both_spellings() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(parse_algos(&args(&["bench", "--smoke"])), None);
        assert_eq!(
            parse_algos(&args(&["bench", "--algos", "wfl, fc"])),
            Some(vec!["wfl".to_string(), "fc".to_string()])
        );
        assert_eq!(
            parse_algos(&args(&["bench", "--algos=ccsynch"])),
            Some(vec!["ccsynch".to_string()])
        );
    }

    #[test]
    fn retain_algos_filters_in_roster_order() {
        let roster = vec!["wfl", "fc", "ccsynch"];
        let filter = Some(vec!["ccsynch".to_string(), "wfl".to_string()]);
        assert_eq!(retain_algos(roster.clone(), |s| s, filter.as_ref()), vec!["wfl", "ccsynch"]);
        assert_eq!(retain_algos(roster.clone(), |s| s, None), roster);
    }

    #[test]
    #[should_panic(expected = "unknown algorithm")]
    fn retain_algos_rejects_typos() {
        let filter = Some(vec!["wlf".to_string()]);
        retain_algos(vec!["wfl"], |s| s, filter.as_ref());
    }
}
