//! GraphLab-style local vertex updates (§1's graph-processing use case).
//!
//! A fixed undirected graph; updating vertex `v` locks `{v} ∪ N(v)` and
//! recomputes `val[v]` from the neighbor values — e.g. one round of
//! "make me one greater than my minimum neighbor". Lock id = vertex id,
//! so `L = deg(v) + 1` and the point contention on a vertex's lock is
//! bounded by the size of its 2-hop neighborhood among concurrent
//! updaters.

use wfl_baselines::LockAlgo;
use wfl_core::{LockId, Scratch, TryLockRequest};
use wfl_idem::{cell, IdemRun, Registry, TagSource, Thunk, ThunkId};
use wfl_runtime::{Addr, Ctx, Heap};

/// The update critical section: `val[v] = min(val[u] for u in N(v)) + 1`
/// (reads each neighbor, one write), plus one read-modify-write on the
/// vertex's update counter. The counter is written only while holding `v`'s
/// lock, so two concurrent relaxations of the same vertex racing on it is a
/// mutual-exclusion violation — this is what lets the harness check graph
/// runs the same way it checks counter workloads.
pub struct RelaxThunk {
    /// Maximum degree in the graph (bounds the op count).
    pub max_degree: usize,
}

impl Thunk for RelaxThunk {
    fn run(&self, run: &mut IdemRun<'_, '_>) {
        let deg = run.arg(0) as usize;
        let target = Addr::from_word(run.arg(1));
        let count = Addr::from_word(run.arg(2));
        let mut min = u32::MAX;
        for i in 0..deg {
            let nb = Addr::from_word(run.arg(3 + i));
            min = min.min(run.read(nb));
        }
        run.write(target, min.saturating_add(1));
        let c = run.read(count);
        run.write(count, c + 1);
    }
    fn max_ops(&self) -> usize {
        self.max_degree + 3
    }
}

/// A fixed undirected graph whose vertices carry values and locks.
#[derive(Debug, Clone)]
pub struct Graph {
    /// Adjacency lists (symmetric).
    pub adj: Vec<Vec<u32>>,
    /// Base address of the per-vertex values (tagged cells).
    pub values: Addr,
    /// Base address of the per-vertex update counters (tagged cells),
    /// each protected by its vertex's lock.
    pub counts: Addr,
    /// The registered relax thunk.
    pub relax: ThunkId,
}

impl Graph {
    /// Builds a ring of `n` vertices (degree 2) with initial values.
    pub fn ring(heap: &Heap, registry: &mut Registry, n: usize, init: &[u32]) -> Graph {
        Self::ring_rooted(heap, n, init, registry.register(RelaxThunk { max_degree: 2 }))
    }

    /// Ring topology against a pre-registered relax thunk (must have been
    /// registered with `max_degree >= 2`) — the epoch-lifecycle hook
    /// (thunks register once per run, heap roots are re-created after
    /// every quiescent reset).
    pub fn ring_rooted(heap: &Heap, n: usize, init: &[u32], relax: ThunkId) -> Graph {
        assert!(n >= 3, "a ring needs at least 3 vertices");
        assert_eq!(init.len(), n);
        let adj: Vec<Vec<u32>> = (0..n as u32)
            .map(|v| vec![(v + n as u32 - 1) % n as u32, (v + 1) % n as u32])
            .collect();
        Self::with_adj_rooted(heap, adj, init, relax)
    }

    /// Builds a 2-D grid graph of `rows × cols` vertices (degree ≤ 4).
    pub fn grid(heap: &Heap, registry: &mut Registry, rows: usize, cols: usize, init: &[u32]) -> Graph {
        assert!(rows >= 1 && cols >= 2);
        let n = rows * cols;
        assert_eq!(init.len(), n);
        let mut adj = vec![Vec::new(); n];
        for r in 0..rows {
            for c in 0..cols {
                let v = r * cols + c;
                if c + 1 < cols {
                    adj[v].push((v + 1) as u32);
                    adj[v + 1].push(v as u32);
                }
                if r + 1 < rows {
                    adj[v].push((v + cols) as u32);
                    adj[v + cols].push(v as u32);
                }
            }
        }
        Self::with_adj(heap, registry, adj, init)
    }

    /// Builds a graph from explicit (symmetric) adjacency lists.
    pub fn with_adj(heap: &Heap, registry: &mut Registry, adj: Vec<Vec<u32>>, init: &[u32]) -> Graph {
        let max_degree = adj.iter().map(Vec::len).max().unwrap_or(0);
        let relax = registry.register(RelaxThunk { max_degree });
        Self::with_adj_rooted(heap, adj, init, relax)
    }

    /// Adjacency-list topology against a pre-registered relax thunk (its
    /// `max_degree` must cover this graph's maximum degree).
    pub fn with_adj_rooted(heap: &Heap, adj: Vec<Vec<u32>>, init: &[u32], relax: ThunkId) -> Graph {
        let n = adj.len();
        let values = heap.alloc_root(n);
        let counts = heap.alloc_root(n);
        for (i, &v) in init.iter().enumerate() {
            heap.poke(values.off(i as u32), cell::untagged(v));
        }
        Graph { adj, values, counts, relax }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// The lock set for updating vertex `v`: `{v} ∪ N(v)`, sorted.
    pub fn lock_set(&self, v: usize) -> Vec<LockId> {
        let mut ids: Vec<u32> = std::iter::once(v as u32).chain(self.adj[v].iter().copied()).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.into_iter().map(LockId).collect()
    }

    /// Fills `args` with the relax-thunk arguments for vertex `v` (the
    /// layout [`RelaxThunk`] decodes). Exposed so drivers can pre-build
    /// request buffers outside their hot loop.
    pub fn relax_args(&self, v: usize, args: &mut Vec<u64>) {
        args.clear();
        args.push(self.adj[v].len() as u64);
        args.push(self.values.off(v as u32).to_word());
        args.push(self.counts.off(v as u32).to_word());
        args.extend(self.adj[v].iter().map(|&u| self.values.off(u).to_word()));
    }

    /// One relax attempt on vertex `v` under `algo`.
    pub fn attempt_relax<A: LockAlgo + ?Sized>(
        &self,
        ctx: &Ctx<'_>,
        algo: &A,
        tags: &mut TagSource,
        scratch: &mut Scratch,
        v: usize,
    ) -> wfl_baselines::AttemptOutcome {
        let locks = self.lock_set(v);
        let mut args = Vec::new();
        self.relax_args(v, &mut args);
        let req = TryLockRequest { locks: &locks, thunk: self.relax, args: &args };
        algo.attempt(ctx, tags, scratch, &req)
    }

    /// Value of vertex `v` (uncounted inspection).
    pub fn value(&self, heap: &Heap, v: usize) -> u32 {
        cell::value(heap.peek(self.values.off(v as u32)))
    }

    /// Number of successful relaxations of vertex `v` (uncounted
    /// inspection of the lock-protected update counter).
    pub fn updates(&self, heap: &Heap, v: usize) -> u32 {
        cell::value(heap.peek(self.counts.off(v as u32)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfl_baselines::WflKnown;
    use wfl_core::{LockConfig, LockSpace};
    use wfl_runtime::schedule::SeededRandom;
    use wfl_runtime::sim::SimBuilder;

    #[test]
    fn ring_and_grid_shapes() {
        let mut registry = Registry::new();
        let heap = Heap::new(1 << 12);
        let g = Graph::ring(&heap, &mut registry, 5, &[0; 5]);
        assert_eq!(g.len(), 5);
        assert_eq!(g.lock_set(0), vec![LockId(0), LockId(1), LockId(4)]);
        let g2 = Graph::grid(&heap, &mut registry, 2, 3, &[0; 6]);
        assert_eq!(g2.adj[0], vec![1, 3]);
        assert_eq!(g2.adj[4].len(), 3);
    }

    #[test]
    fn single_relax_takes_min_plus_one() {
        let mut registry = Registry::new();
        let heap = Heap::new(1 << 20);
        let g = Graph::ring(&heap, &mut registry, 4, &[10, 0, 10, 3]);
        let space = LockSpace::create_root(&heap, 4, 2);
        let algo = WflKnown {
            space: &space,
            registry: &registry,
            cfg: LockConfig::new(2, 3, 5).without_delays(),
        };
        let (g_ref, a_ref) = (&g, &algo);
        let report = SimBuilder::new(&heap, 1)
            .spawn(move |ctx: &Ctx| {
                let mut tags = TagSource::new(0);
                let mut scratch = Scratch::new();
                let out = g_ref.attempt_relax(ctx, a_ref, &mut tags, &mut scratch, 0);
                assert!(out.won);
            })
            .run();
        report.assert_clean();
        // N(0) = {1, 3} with values {0, 3}: min+1 = 1.
        assert_eq!(g.value(&heap, 0), 1);
        assert_eq!(g.updates(&heap, 0), 1, "update counter tracks the successful relax");
        assert_eq!(g.updates(&heap, 1), 0);
    }

    #[test]
    fn concurrent_relaxations_preserve_invariant() {
        // After any number of successful relaxations, every updated vertex
        // value equals (some past min of its neighbors) + 1 and is
        // therefore at most (max initial value + rounds). A lost-update or
        // overlap bug breaks determinism of the counter-style invariant:
        // final values must be reproducible per seed (determinism) and
        // bounded.
        for seed in 0..6 {
            let mut registry = Registry::new();
            let heap = Heap::new(1 << 22);
            let n = 6;
            let init = vec![5u32; n];
            let g = Graph::ring(&heap, &mut registry, n, &init);
            let space = LockSpace::create_root(&heap, n, 4);
            let algo = WflKnown {
                space: &space,
                registry: &registry,
                cfg: LockConfig::new(4, 3, 5).without_delays(),
            };
            let wins = heap.alloc_root(n);
            let (g_ref, a_ref) = (&g, &algo);
            let report = SimBuilder::new(&heap, 3)
                .schedule(SeededRandom::new(3, seed))
                .max_steps(100_000_000)
                .spawn_all(|pid| {
                    move |ctx: &Ctx| {
                        let mut tags = TagSource::new(pid);
                        let mut scratch = Scratch::new();
                        for round in 0..4 {
                            let v = (pid * 2 + round) % 6;
                            if g_ref.attempt_relax(ctx, a_ref, &mut tags, &mut scratch, v).won {
                                // Tally wins per vertex with counted CAS
                                // (vertices are shared across processes).
                                loop {
                                    let w = ctx.read(wins.off(v as u32));
                                    if ctx.cas_bool(wins.off(v as u32), w, w + 1) {
                                        break;
                                    }
                                }
                            }
                        }
                    }
                })
                .run();
            report.assert_clean();
            for v in 0..n {
                let val = g.value(&heap, v);
                assert!(val <= 5 + 12, "seed {seed}: vertex {v} value {val} out of range");
                assert_eq!(
                    g.updates(&heap, v) as u64,
                    heap.peek(wins.off(v as u32)),
                    "seed {seed}: vertex {v} update counter diverged from wins"
                );
            }
        }
    }
}
