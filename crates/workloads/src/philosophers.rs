//! Dining philosophers — the paper's running example.
//!
//! `n` philosophers around a table, one chopstick (lock) between each
//! adjacent pair. Eating = a tryLock on both adjacent chopsticks whose
//! critical section increments the philosopher's meal counter (protected
//! by both chopsticks, since only neighbors can race on it). With the
//! paper's algorithm each eating attempt succeeds with probability at
//! least 1/4 (`κ = L = 2`) and takes O(1) steps, independent of `n` —
//! experiment E4.

use wfl_baselines::LockAlgo;
use wfl_core::{LockId, Scratch, TryLockRequest};
use wfl_idem::{IdemRun, Registry, TagSource, Thunk, ThunkId};
use wfl_runtime::{Addr, Ctx, Heap};

/// The eating critical section: one read-modify-write on the meal cell.
pub struct EatThunk;

impl Thunk for EatThunk {
    fn run(&self, run: &mut IdemRun<'_, '_>) {
        let meals = Addr::from_word(run.arg(0));
        let v = run.read(meals);
        run.write(meals, v + 1);
    }
    fn max_ops(&self) -> usize {
        2
    }
}

/// Setup for a table of `n` philosophers: chopstick locks are ids
/// `0..n`, `meals` is one tagged cell per philosopher.
#[derive(Debug, Clone, Copy)]
pub struct Table {
    /// Number of philosophers (= number of chopsticks).
    pub n: usize,
    /// Base address of the per-philosopher meal counters.
    pub meals: Addr,
    /// The registered eating thunk.
    pub eat: ThunkId,
}

impl Table {
    /// Registers the thunk and allocates the meal counters.
    pub fn create_root(heap: &Heap, registry: &mut Registry, n: usize) -> Table {
        Table::re_root(heap, n, registry.register(EatThunk))
    }

    /// (Re-)allocates the table's heap roots against a pre-registered eat
    /// thunk — the epoch-lifecycle hook: thunks register once per run,
    /// while heap roots are re-created after every quiescent reset.
    pub fn re_root(heap: &Heap, n: usize, eat: ThunkId) -> Table {
        assert!(n >= 2, "need at least two philosophers");
        Table { n, meals: heap.alloc_root(n), eat }
    }

    /// The two chopsticks philosopher `i` needs.
    pub fn chopsticks(&self, i: usize) -> [LockId; 2] {
        [LockId(i as u32), LockId(((i + 1) % self.n) as u32)]
    }

    /// One eating attempt by philosopher `i` under `algo`; returns whether
    /// the philosopher ate, and the step cost.
    pub fn attempt_eat<A: LockAlgo + ?Sized>(
        &self,
        ctx: &Ctx<'_>,
        algo: &A,
        tags: &mut TagSource,
        scratch: &mut Scratch,
        i: usize,
    ) -> wfl_baselines::AttemptOutcome {
        let locks = self.chopsticks(i);
        let args = [self.meals.off(i as u32).to_word()];
        let req = TryLockRequest { locks: &locks, thunk: self.eat, args: &args };
        algo.attempt(ctx, tags, scratch, &req)
    }

    /// Meals philosopher `i` has eaten (uncounted inspection).
    pub fn meals_eaten(&self, heap: &Heap, i: usize) -> u32 {
        wfl_idem::cell::value(heap.peek(self.meals.off(i as u32)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfl_baselines::WflKnown;
    use wfl_core::{LockConfig, LockSpace};
    use wfl_runtime::schedule::SeededRandom;
    use wfl_runtime::sim::SimBuilder;

    #[test]
    fn meals_match_successful_attempts() {
        for seed in 0..8 {
            let mut registry = Registry::new();
            let heap = Heap::new(1 << 22);
            let n = 4;
            let table = Table::create_root(&heap, &mut registry, n);
            let space = LockSpace::create_root(&heap, n, 2);
            let algo = WflKnown {
                space: &space,
                registry: &registry,
                cfg: LockConfig::new(2, 2, 2).without_delays(),
            };
            let wins = heap.alloc_root(n);
            let (algo_ref, table_ref) = (&algo, &table);
            let report = SimBuilder::new(&heap, n)
                .schedule(SeededRandom::new(n, seed))
                .max_steps(50_000_000)
                .spawn_all(|pid| {
                    move |ctx: &Ctx| {
                        let mut tags = TagSource::new(pid);
                        let mut scratch = Scratch::new();
                        let mut w = 0u64;
                        for _ in 0..6 {
                            if table_ref.attempt_eat(ctx, algo_ref, &mut tags, &mut scratch, pid).won {
                                w += 1;
                            }
                            // Think for a random while.
                            let think = ctx.rand_below(32);
                            for _ in 0..think {
                                ctx.local_step();
                            }
                        }
                        ctx.write(wins.off(pid as u32), w);
                    }
                })
                .run();
            report.assert_clean();
            for i in 0..n {
                assert_eq!(
                    table.meals_eaten(&heap, i) as u64,
                    heap.peek(wins.off(i as u32)),
                    "seed {seed}: philosopher {i} meal count diverged"
                );
            }
        }
    }

    #[test]
    fn chopstick_layout_wraps_around() {
        let mut registry = Registry::new();
        let heap = Heap::new(1 << 10);
        let table = Table::create_root(&heap, &mut registry, 5);
        assert_eq!(table.chopsticks(0), [LockId(0), LockId(1)]);
        assert_eq!(table.chopsticks(4), [LockId(4), LockId(0)]);
    }
}
