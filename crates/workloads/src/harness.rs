//! An algorithm-agnostic, backend-agnostic experiment harness.
//!
//! Every workload driver in this module runs under **either execution
//! backend** behind [`ExecMode`]:
//!
//! * [`ExecMode::Sim`] — the deterministic simulator (any schedule family,
//!   bounded scheduled steps), for adversarial and replayable runs;
//! * [`ExecMode::Real`] — one free-running OS thread per process via
//!   [`wfl_runtime::real::run_threads_with`], optionally timed, for
//!   throughput and hardware-race stress.
//!
//! The drivers record one outcome word per `(process, round)` attempt into
//! the shared heap and derive the post-run **safety check from the recorded
//! outcomes** — each lock counter (or meal counter, update counter, list
//! snapshot, bank total) must match exactly what the recorded wins imply.
//! Timed real runs complete a variable number of attempts, so nothing about
//! the check assumes every round ran; unfinished rounds are simply absent
//! from both sides of the comparison. Every experiment built on this
//! harness is therefore also a mutual-exclusion test — on the simulator
//! *and* on real hardware — which keeps the benchmark numbers honest.

use crate::graph::Graph;
use crate::list::SortedList;
use crate::philosophers;
use wfl_baselines::{BlockingTpl, LockAlgo, NaiveTryLock, TspLock, WflKnown, WflUnknown};
use wfl_core::{LockConfig, LockId, LockSpace, Scratch, TryLockRequest, UnknownConfig};
use wfl_idem::{cell, IdemRun, Registry, TagSource, Thunk};
use wfl_runtime::real::{run_threads_with, RealConfig};
use wfl_runtime::rng::Pcg;
use wfl_runtime::schedule::{Bursty, RoundRobin, Schedule, SeededRandom, Weighted};
use wfl_runtime::sim::SimBuilder;
use wfl_runtime::stats::{Bernoulli, Summary};
use wfl_runtime::{Addr, Ctx, Heap};
use std::time::Duration;

/// Critical section used by the random-conflict workload: increment the
/// counter of every acquired lock (read+write per counter).
pub struct TouchAll {
    /// Maximum locks per attempt (sizes the op log).
    pub max_locks: usize,
}

impl Thunk for TouchAll {
    fn run(&self, run: &mut IdemRun<'_, '_>) {
        let n = run.arg(0) as usize;
        for i in 0..n {
            let c = Addr::from_word(run.arg(1 + i));
            let v = run.read(c);
            run.write(c, v + 1);
        }
    }
    fn max_ops(&self) -> usize {
        2 * self.max_locks
    }
}

/// Scheduler families for simulated experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedKind {
    /// Fair round-robin.
    RoundRobin,
    /// Seeded uniform random.
    Random,
    /// Runs of the given length on one process at a time.
    Bursty(u64),
    /// Weights `1, 4, 7, ...` — persistent speed skew across processes.
    WeightedRamp,
}

impl SchedKind {
    fn build(self, n: usize, seed: u64) -> Box<dyn Schedule> {
        match self {
            SchedKind::RoundRobin => Box::new(RoundRobin::new(n)),
            SchedKind::Random => Box::new(SeededRandom::new(n, seed)),
            SchedKind::Bursty(len) => Box::new(Bursty::new(n, len, seed)),
            SchedKind::WeightedRamp => Box::new(Weighted::new(
                &(0..n as u64).map(|i| 1 + 3 * i).collect::<Vec<_>>(),
                seed,
            )),
        }
    }
}

/// Which backend executes a workload's process bodies.
///
/// The bodies themselves are identical across backends — they are written
/// against [`Ctx`] — so switching the mode changes *only* who grants steps.
#[derive(Debug, Clone, Copy)]
pub enum ExecMode {
    /// Deterministic simulator: schedule family + scheduled-phase budget
    /// (the simulator drains cooperatively past the budget).
    Sim(SchedKind, u64),
    /// Free-running OS threads. `threads` must equal the workload's process
    /// count (it is spelled out so a matrix sweep reads naturally). With
    /// `run_for` set, the driver raises the cooperative stop flag at the
    /// deadline and every attempt loop drains; recorded outcomes then cover
    /// a variable number of completed rounds.
    Real {
        /// OS threads == workload processes.
        threads: usize,
        /// Optional wall-clock budget (timed run).
        run_for: Option<Duration>,
        /// Hot-path configuration of the real driver.
        cfg: RealConfig,
    },
}

impl ExecMode {
    /// An untimed real-threads mode with the contention-free hot path.
    pub fn real(threads: usize) -> ExecMode {
        ExecMode::Real { threads, run_for: None, cfg: RealConfig::fast() }
    }

    /// A timed real-threads mode with the contention-free hot path.
    pub fn real_timed(threads: usize, run_for: Duration) -> ExecMode {
        ExecMode::Real { threads, run_for: Some(run_for), cfg: RealConfig::fast() }
    }

    /// Short label for tables and JSON ("sim" / "real").
    pub fn label(&self) -> &'static str {
        match self {
            ExecMode::Sim(..) => "sim",
            ExecMode::Real { .. } => "real",
        }
    }
}

/// Runs every process body under the chosen backend and asserts the run
/// was clean. Returns the wall-clock duration for real runs (`None` in the
/// simulator, where wall time is meaningless).
fn drive<'h, F, G>(
    heap: &'h Heap,
    nprocs: usize,
    seed: u64,
    mode: &ExecMode,
    make_body: F,
) -> Option<Duration>
where
    F: FnMut(usize) -> G,
    G: FnOnce(&Ctx<'_>) + Send + 'h,
{
    match *mode {
        ExecMode::Sim(sched, max_steps) => {
            let report = SimBuilder::new(heap, nprocs)
                .seed(seed)
                .schedule_box(sched.build(nprocs, seed))
                .max_steps(max_steps)
                .spawn_all(make_body)
                .run();
            report.assert_clean();
            None
        }
        ExecMode::Real { threads, run_for, cfg } => {
            assert_eq!(
                threads, nprocs,
                "ExecMode::Real.threads must equal the workload's process count"
            );
            let report = run_threads_with(heap, nprocs, seed, run_for, cfg, make_body);
            report.assert_clean();
            Some(report.wall)
        }
    }
}

/// Results of a harness run.
#[derive(Debug, Clone)]
pub struct HarnessReport {
    /// Total attempts made (completed rounds; timed real runs stop early).
    pub attempts: u64,
    /// Total successful attempts.
    pub wins: u64,
    /// Per-attempt own-step counts.
    pub steps: Summary,
    /// Success-rate estimator over all attempts.
    pub success: Bernoulli,
    /// Per-process (wins, attempts).
    pub per_pid: Vec<(u64, u64)>,
    /// Whether the workload's invariant matched the recorded outcomes
    /// exactly (the mutual-exclusion check).
    pub safety_ok: bool,
    /// Wall-clock duration (real runs only).
    pub wall: Option<Duration>,
}

impl HarnessReport {
    /// Successful acquisitions per wall-clock second (real runs only).
    pub fn wins_per_sec(&self) -> Option<f64> {
        self.wall.map(|w| self.wins as f64 / w.as_secs_f64().max(1e-12))
    }
}

// ---------------------------------------------------------------------------
// Outcome recording
// ---------------------------------------------------------------------------

/// Per-`(process, round)` outcome slots in the shared heap: 0 = round not
/// run (timed run stopped first), 1 = attempt lost, 2 = attempt won; plus a
/// parallel word of own-steps per attempt.
struct Outcomes {
    outcomes: Addr,
    steps: Addr,
    cap: usize,
    nprocs: usize,
}

impl Outcomes {
    fn create_root(heap: &Heap, nprocs: usize, cap: usize) -> Outcomes {
        // One tag base is drawn per attempt, and the tag space is per heap
        // lifetime — a cap beyond it could never be recorded anyway.
        assert!(
            cap < wfl_idem::tag::MAX_ATTEMPTS as usize,
            "attempts/process cap {cap} exceeds the tag space"
        );
        Outcomes {
            outcomes: heap.alloc_root(nprocs * cap),
            steps: heap.alloc_root(nprocs * cap),
            cap,
            nprocs,
        }
    }

    fn idx(&self, pid: usize, round: usize) -> u32 {
        (pid * self.cap + round) as u32
    }

    /// Records one attempt (counted heap writes from the process itself).
    fn record(&self, ctx: &Ctx<'_>, pid: usize, round: usize, won: bool, steps: u64) {
        let idx = self.idx(pid, round);
        ctx.write(self.outcomes.off(idx), 1 + won as u64);
        ctx.write(self.steps.off(idx), steps);
    }

    /// Folds the recorded outcomes into a [`HarnessReport`] (with
    /// `safety_ok` left `true` for the caller to refine), invoking
    /// `on_win(pid, round)` for every recorded win so the caller can
    /// reconstruct the workload-specific expectation.
    fn aggregate(
        &self,
        heap: &Heap,
        wall: Option<Duration>,
        mut on_win: impl FnMut(usize, usize),
    ) -> HarnessReport {
        let mut steps = Summary::new();
        let mut success = Bernoulli::default();
        let mut per_pid = vec![(0u64, 0u64); self.nprocs];
        let mut attempts = 0u64;
        let mut wins = 0u64;
        for (pid, pp) in per_pid.iter_mut().enumerate() {
            for round in 0..self.cap {
                let idx = self.idx(pid, round);
                let o = heap.peek(self.outcomes.off(idx));
                if o == 0 {
                    continue; // round not run (timed run stopped first)
                }
                attempts += 1;
                pp.1 += 1;
                let won = o == 2;
                success.record(won);
                steps.push(heap.peek(self.steps.off(idx)));
                if won {
                    wins += 1;
                    pp.0 += 1;
                    on_win(pid, round);
                }
            }
        }
        HarnessReport { attempts, wins, steps, success, per_pid, safety_ok: true, wall }
    }
}

// ---------------------------------------------------------------------------
// Algorithm instantiation
// ---------------------------------------------------------------------------

/// Algorithms the harness can instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgoKind {
    /// The paper's known-bounds algorithm (§6). `kappa` is the contention
    /// bound used for the delays (active sets are always sized at the
    /// process count, which is a valid upper bound).
    Wfl {
        /// Contention bound κ for the delay formulas.
        kappa: usize,
        /// Fixed delays enabled (disable only for the E11 ablation).
        delays: bool,
        /// Helping phase enabled (disable only for the E12 ablation).
        helping: bool,
    },
    /// The §6.2 unknown-bounds variant.
    WflUnknown,
    /// Turek–Shasha–Prakash-style lock-free locks (always succeed).
    Tsp,
    /// Blocking ordered two-phase locking (always succeeds outside of
    /// cooperative shutdown; blocks under crashes).
    Blocking,
    /// No-helping tryLock (may fail; never blocks).
    Naive,
}

impl AlgoKind {
    /// Short name for tables and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            AlgoKind::Wfl { .. } => "wfl",
            AlgoKind::WflUnknown => "wfl-unknown",
            AlgoKind::Tsp => "tsp",
            AlgoKind::Blocking => "blocking",
            AlgoKind::Naive => "naive",
        }
    }

    /// The five kinds with default wfl parameters (κ = `nprocs`).
    pub fn all(nprocs: usize) -> [AlgoKind; 5] {
        [
            AlgoKind::Wfl { kappa: nprocs.max(2), delays: true, helping: true },
            AlgoKind::WflUnknown,
            AlgoKind::Tsp,
            AlgoKind::Blocking,
            AlgoKind::Naive,
        ]
    }
}

/// Creates only the algorithm under test on the heap and passes it to `f`
/// (the paper's algorithms need a [`LockSpace`]; the baselines allocate
/// their own lock words).
fn with_algo<R>(
    heap: &Heap,
    registry: &Registry,
    algo: AlgoKind,
    nlocks: usize,
    aset: usize,
    known_cfg: LockConfig,
    f: impl FnOnce(&dyn LockAlgo) -> R,
) -> R {
    match algo {
        AlgoKind::Wfl { .. } => {
            let space = LockSpace::create_root(heap, nlocks, aset);
            f(&WflKnown { space: &space, registry, cfg: known_cfg })
        }
        AlgoKind::WflUnknown => {
            let space = LockSpace::create_root(heap, nlocks, aset);
            f(&WflUnknown { space: &space, registry, cfg: UnknownConfig::new() })
        }
        AlgoKind::Tsp => f(&TspLock::create_root(heap, registry, nlocks)),
        AlgoKind::Blocking => f(&BlockingTpl::create_root(heap, registry, nlocks)),
        AlgoKind::Naive => f(&NaiveTryLock::create_root(heap, registry, nlocks)),
    }
}

/// The known-bounds configuration a workload hands to [`with_algo`]:
/// the `AlgoKind`'s κ/ablation switches with the workload's `L` and `T`.
fn known_cfg(algo: AlgoKind, default_kappa: usize, l_max: usize, t_max: usize) -> LockConfig {
    let (kappa, delays, helping) = match algo {
        AlgoKind::Wfl { kappa, delays, helping } => (kappa, delays, helping),
        _ => (default_kappa, true, true),
    };
    let mut cfg = LockConfig::new(kappa.max(1), l_max, t_max);
    cfg.delays = delays;
    cfg.helping = helping;
    cfg
}

// ---------------------------------------------------------------------------
// Deterministic lock-set choice
// ---------------------------------------------------------------------------

/// Allocation-free deterministic lock-set draws: `L` distinct locks,
/// uniform without replacement, as a pure function of `(seed, pid, round)`.
///
/// The draw is a partial Fisher–Yates shuffle over a reusable pool; the
/// swaps are undone after each draw so the mapping is independent of call
/// history (the aggregation pass recomputes the same sets from a fresh
/// picker). In the driver hot loop this replaces a fresh `Vec` plus an
/// O(L²) `contains` scan per attempt.
pub struct LockPicker {
    pool: Vec<u32>,
    swaps: Vec<u32>,
}

impl LockPicker {
    /// A picker over locks `0..nlocks`.
    pub fn new(nlocks: usize) -> LockPicker {
        LockPicker { pool: (0..nlocks as u32).collect(), swaps: Vec::new() }
    }

    /// Writes the sorted lock set for `(seed, pid, round)` into `out`.
    pub fn pick_into(&mut self, seed: u64, pid: usize, round: usize, l: usize, out: &mut Vec<LockId>) {
        let n = self.pool.len();
        assert!(l <= n, "cannot draw {l} distinct locks from {n}");
        let mut rng = Pcg::new(seed ^ 0xD1CE, ((pid as u64) << 32) | round as u64);
        self.swaps.clear();
        for i in 0..l {
            let j = i + rng.below((n - i) as u64) as usize;
            self.pool.swap(i, j);
            self.swaps.push(j as u32);
        }
        out.clear();
        out.extend(self.pool[..l].iter().map(|&c| LockId(c)));
        // Undo the swaps (reverse order) so the pool is the identity again:
        // the mapping must depend only on (seed, pid, round).
        for i in (0..l).rev() {
            self.pool.swap(i, self.swaps[i] as usize);
        }
        out.sort_unstable();
    }
}

/// Deterministic lock-set choice for `(seed, pid, round)`: `L` distinct
/// locks, uniform without replacement, sorted. Convenience wrapper around
/// [`LockPicker`] for cold paths and tests.
pub fn pick_locks(seed: u64, pid: usize, round: usize, nlocks: usize, l: usize) -> Vec<LockId> {
    let mut picker = LockPicker::new(nlocks);
    let mut out = Vec::with_capacity(l);
    picker.pick_into(seed, pid, round, l, &mut out);
    out
}

// ---------------------------------------------------------------------------
// Random-conflict workload
// ---------------------------------------------------------------------------

/// Workload shape for [`run_random_conflict`].
#[derive(Debug, Clone, Copy)]
pub struct SimSpec {
    /// Number of processes.
    pub nprocs: usize,
    /// Attempts per process (in timed real runs: an upper bound).
    pub attempts_per_proc: usize,
    /// Number of locks in the system.
    pub nlocks: usize,
    /// Locks per attempt (`L`).
    pub locks_per_attempt: usize,
    /// Maximum random think time (local steps) between attempts.
    pub think_max: u64,
    /// Workload + schedule seed.
    pub seed: u64,
    /// Scheduler family (used by the [`run_random_conflict`] legacy entry
    /// point, which runs `ExecMode::Sim(self.sched, self.max_steps)`).
    pub sched: SchedKind,
    /// Scheduled-phase budget for the legacy entry point.
    pub max_steps: u64,
    /// Heap size in words.
    pub heap_words: usize,
}

impl SimSpec {
    /// A reasonable default spec; override fields as needed.
    pub fn new(nprocs: usize, attempts_per_proc: usize, nlocks: usize, locks_per_attempt: usize) -> SimSpec {
        SimSpec {
            nprocs,
            attempts_per_proc,
            nlocks,
            locks_per_attempt,
            think_max: 16,
            seed: 1,
            sched: SchedKind::Random,
            max_steps: 400_000_000,
            heap_words: 1 << 23,
        }
    }

    /// The execution mode the legacy sim-only entry points use.
    pub fn sim_mode(&self) -> ExecMode {
        ExecMode::Sim(self.sched, self.max_steps)
    }
}

/// Runs the random-conflict workload in the simulator (legacy entry point;
/// equivalent to [`run_random_conflict_mode`] with [`SimSpec::sim_mode`]).
pub fn run_random_conflict(spec: &SimSpec, algo: AlgoKind) -> HarnessReport {
    run_random_conflict_mode(spec, algo, &spec.sim_mode())
}

/// Runs the random-conflict workload under the given algorithm on either
/// backend and returns aggregated metrics. Safety check: each lock's
/// counter must equal the number of *recorded* winning attempts covering
/// it (recomputed from the deterministic `(seed, pid, round)` lock sets).
pub fn run_random_conflict_mode(spec: &SimSpec, algo: AlgoKind, mode: &ExecMode) -> HarnessReport {
    assert!(spec.locks_per_attempt <= spec.nlocks);
    let mut registry = Registry::new();
    let touch = registry.register(TouchAll { max_locks: spec.locks_per_attempt });
    let heap = Heap::new(spec.heap_words);
    let counters = heap.alloc_root(spec.nlocks);
    let rec = Outcomes::create_root(&heap, spec.nprocs, spec.attempts_per_proc);
    let cfg = known_cfg(algo, spec.nprocs, spec.locks_per_attempt, 2 * spec.locks_per_attempt);

    let spec_copy = *spec;
    let (rec_ref, counters_ref) = (&rec, &counters);
    let wall = with_algo(&heap, &registry, algo, spec.nlocks, spec.nprocs.max(2), cfg, |algo_ref| {
        drive(&heap, spec_copy.nprocs, spec_copy.seed, mode, |pid| {
            let s = spec_copy;
            move |ctx: &Ctx| {
                let mut tags = TagSource::new(pid);
                let mut scratch = Scratch::new();
                let mut picker = LockPicker::new(s.nlocks);
                let mut locks: Vec<LockId> = Vec::with_capacity(s.locks_per_attempt);
                let mut args: Vec<u64> = Vec::with_capacity(1 + s.locks_per_attempt);
                for round in 0..s.attempts_per_proc {
                    if ctx.stop_requested() {
                        break;
                    }
                    picker.pick_into(s.seed, pid, round, s.locks_per_attempt, &mut locks);
                    args.clear();
                    args.push(locks.len() as u64);
                    args.extend(locks.iter().map(|l| counters_ref.off(l.0).to_word()));
                    let req = TryLockRequest { locks: &locks, thunk: touch, args: &args };
                    let out = algo_ref.attempt(ctx, &mut tags, &mut scratch, &req);
                    rec_ref.record(ctx, pid, round, out.won, out.steps);
                    if s.think_max > 0 {
                        let think = ctx.rand_below(s.think_max);
                        for _ in 0..think {
                            ctx.local_step();
                        }
                    }
                }
            }
        })
    });

    // Expected counter values from the recorded wins.
    let mut expected = vec![0u64; spec.nlocks];
    let mut picker = LockPicker::new(spec.nlocks);
    let mut locks: Vec<LockId> = Vec::with_capacity(spec.locks_per_attempt);
    let mut report = rec.aggregate(&heap, wall, |pid, round| {
        picker.pick_into(spec.seed, pid, round, spec.locks_per_attempt, &mut locks);
        for l in &locks {
            expected[l.0 as usize] += 1;
        }
    });
    report.safety_ok = (0..spec.nlocks)
        .all(|l| cell::value(heap.peek(counters.off(l as u32))) as u64 == expected[l]);
    report
}

// ---------------------------------------------------------------------------
// Dining philosophers
// ---------------------------------------------------------------------------

/// Runs the dining-philosophers workload (E4) in the simulator (legacy
/// entry point).
pub fn run_philosophers(
    n: usize,
    attempts: usize,
    seed: u64,
    sched: SchedKind,
    algo: AlgoKind,
    heap_words: usize,
) -> HarnessReport {
    run_philosophers_mode(n, attempts, seed, algo, heap_words, &ExecMode::Sim(sched, 600_000_000))
}

/// Runs the dining-philosophers workload on either backend: `n`
/// philosophers, each making up to `attempts` eating attempts with random
/// think time. Safety check: each philosopher's meal counter must equal
/// their recorded wins.
pub fn run_philosophers_mode(
    n: usize,
    attempts: usize,
    seed: u64,
    algo: AlgoKind,
    heap_words: usize,
    mode: &ExecMode,
) -> HarnessReport {
    let mut registry = Registry::new();
    let heap = Heap::new(heap_words);
    let table = philosophers::Table::create_root(&heap, &mut registry, n);
    let rec = Outcomes::create_root(&heap, n, attempts);
    let cfg = known_cfg(algo, 2, 2, 2);

    let (rec_ref, table_ref) = (&rec, &table);
    let wall = with_algo(&heap, &registry, algo, n, 3, cfg, |algo_ref| {
        drive(&heap, n, seed, mode, |pid| {
            move |ctx: &Ctx| {
                let mut tags = TagSource::new(pid);
                let mut scratch = Scratch::new();
                for round in 0..attempts {
                    if ctx.stop_requested() {
                        break;
                    }
                    let out = table_ref.attempt_eat(ctx, algo_ref, &mut tags, &mut scratch, pid);
                    rec_ref.record(ctx, pid, round, out.won, out.steps);
                    let think = ctx.rand_below(24);
                    for _ in 0..think {
                        ctx.local_step();
                    }
                }
            }
        })
    });

    let mut report = rec.aggregate(&heap, wall, |_pid, _round| {});
    report.safety_ok =
        (0..n).all(|i| table.meals_eaten(&heap, i) as u64 == report.per_pid[i].0);
    report
}

// ---------------------------------------------------------------------------
// Bank transfers
// ---------------------------------------------------------------------------

/// Runs the bank-transfer workload on either backend: `nprocs` processes
/// each make up to `rounds` two-account transfers with deterministic
/// `(seed, pid, round)` account/amount choices. Safety check: the sum of
/// all balances equals the initial total (conservation — any
/// mutual-exclusion or idempotence failure moves money).
#[allow(clippy::too_many_arguments)]
pub fn run_bank_mode(
    nprocs: usize,
    accounts: usize,
    rounds: usize,
    initial: u32,
    seed: u64,
    algo: AlgoKind,
    heap_words: usize,
    mode: &ExecMode,
) -> HarnessReport {
    assert!(accounts >= 2);
    let mut registry = Registry::new();
    let heap = Heap::new(heap_words);
    let bank = crate::bank::Bank::create_root(&heap, &mut registry, accounts, initial);
    let rec = Outcomes::create_root(&heap, nprocs, rounds);
    let initial_total = bank.total(&heap);
    let cfg = known_cfg(algo, nprocs, 2, 4);

    let (rec_ref, bank_ref) = (&rec, &bank);
    let wall = with_algo(&heap, &registry, algo, accounts, nprocs.max(2), cfg, |algo_ref| {
        drive(&heap, nprocs, seed, mode, |pid| {
            move |ctx: &Ctx| {
                let mut tags = TagSource::new(pid);
                let mut scratch = Scratch::new();
                for round in 0..rounds {
                    if ctx.stop_requested() {
                        break;
                    }
                    let mut rng = Pcg::new(seed ^ 0xBA2C, ((pid as u64) << 32) | round as u64);
                    let a = rng.below(accounts as u64) as usize;
                    let mut b = rng.below(accounts as u64 - 1) as usize;
                    if b >= a {
                        b += 1;
                    }
                    let amt = 1 + rng.below(30) as u32;
                    let out =
                        bank_ref.attempt_transfer(ctx, algo_ref, &mut tags, &mut scratch, a, b, amt);
                    rec_ref.record(ctx, pid, round, out.won, out.steps);
                    let think = ctx.rand_below(16);
                    for _ in 0..think {
                        ctx.local_step();
                    }
                }
            }
        })
    });

    let mut report = rec.aggregate(&heap, wall, |_pid, _round| {});
    report.safety_ok = bank.total(&heap) == initial_total;
    report
}

// ---------------------------------------------------------------------------
// Sorted list
// ---------------------------------------------------------------------------

/// Per-operation tryLock attempt budget for the list workload (each retry
/// draws one tag, so `keys_per_proc * LIST_ATTEMPT_BUDGET` must stay well
/// inside the per-process tag space).
const LIST_ATTEMPT_BUDGET: u64 = 64;

/// Runs the sorted-list workload on either backend: each process inserts
/// `keys_per_proc` globally-unique keys (dedicated pool slots, so the only
/// contention is on adjacent splice points). Safety check: the final list
/// snapshot is exactly the sorted set of keys whose inserts were recorded
/// as wins.
pub fn run_list_mode(
    nprocs: usize,
    keys_per_proc: usize,
    seed: u64,
    algo: AlgoKind,
    heap_words: usize,
    mode: &ExecMode,
) -> HarnessReport {
    let pool = 1 + nprocs * keys_per_proc;
    // Unlike the one-tag-per-round workloads, each list round may draw up
    // to LIST_ATTEMPT_BUDGET tags (one per tryLock retry) — bound the whole
    // run against the per-process tag space up front.
    assert!(
        (keys_per_proc as u64) * LIST_ATTEMPT_BUDGET < wfl_idem::tag::MAX_ATTEMPTS as u64,
        "keys_per_proc {keys_per_proc} x retry budget {LIST_ATTEMPT_BUDGET} exceeds the tag space"
    );
    let mut registry = Registry::new();
    let heap = Heap::new(heap_words);
    let list = SortedList::create_root(&heap, &mut registry, pool);
    let rec = Outcomes::create_root(&heap, nprocs, keys_per_proc);
    let cfg = known_cfg(algo, nprocs, 2, 4);
    // Interleave keys across processes so splice points genuinely contend.
    let key_of = |pid: usize, round: usize| (1 + round * nprocs + pid) as u32 * 10 + 3;

    let (rec_ref, list_ref) = (&rec, &list);
    let wall = with_algo(&heap, &registry, algo, pool, nprocs.max(2), cfg, |algo_ref| {
        drive(&heap, nprocs, seed, mode, |pid| {
            move |ctx: &Ctx| {
                let mut tags = TagSource::new(pid);
                let mut scratch = Scratch::new();
                let result_cell = ctx.alloc(1);
                for round in 0..keys_per_proc {
                    if ctx.stop_requested() {
                        break;
                    }
                    let node = (1 + pid * keys_per_proc + round) as u32;
                    let start = ctx.steps();
                    let r = list_ref.insert(
                        ctx,
                        algo_ref,
                        &mut tags,
                        &mut scratch,
                        result_cell,
                        node,
                        key_of(pid, round),
                        LIST_ATTEMPT_BUDGET,
                    );
                    rec_ref.record(ctx, pid, round, r == Some(true), ctx.steps() - start);
                }
            }
        })
    });

    let mut expected: Vec<u32> = Vec::new();
    let mut report = rec.aggregate(&heap, wall, |pid, round| {
        expected.push(key_of(pid, round));
    });
    expected.sort_unstable();
    report.safety_ok = list.snapshot(&heap) == expected;
    report
}

// ---------------------------------------------------------------------------
// Graph relaxations
// ---------------------------------------------------------------------------

/// Runs the graph workload on either backend: a ring of `vertices`, each
/// process making up to `rounds` relax attempts on deterministic
/// `(seed, pid, round)` vertices (`L = 3`: the vertex and both neighbors).
/// Safety check: every vertex's lock-protected update counter equals the
/// number of recorded wins targeting it.
#[allow(clippy::too_many_arguments)]
pub fn run_graph_mode(
    nprocs: usize,
    vertices: usize,
    rounds: usize,
    seed: u64,
    algo: AlgoKind,
    heap_words: usize,
    mode: &ExecMode,
) -> HarnessReport {
    assert!(vertices >= 3);
    let mut registry = Registry::new();
    let heap = Heap::new(heap_words);
    let init = vec![1u32; vertices];
    let graph = Graph::ring(&heap, &mut registry, vertices, &init);
    let rec = Outcomes::create_root(&heap, nprocs, rounds);
    let cfg = known_cfg(algo, nprocs, 3, 5);
    let vertex_of = move |pid: usize, round: usize| {
        Pcg::new(seed ^ 0x62AF, ((pid as u64) << 32) | round as u64).below(vertices as u64) as usize
    };

    let (rec_ref, graph_ref) = (&rec, &graph);
    let wall = with_algo(&heap, &registry, algo, vertices, nprocs.max(2), cfg, |algo_ref| {
        drive(&heap, nprocs, seed, mode, |pid| {
            move |ctx: &Ctx| {
                let mut tags = TagSource::new(pid);
                let mut scratch = Scratch::new();
                // Pre-build every vertex's request buffers outside the hot
                // loop (the ring is small; attempts stay allocation-free).
                let reqs: Vec<(Vec<LockId>, Vec<u64>)> = (0..vertices)
                    .map(|v| {
                        let mut args = Vec::new();
                        graph_ref.relax_args(v, &mut args);
                        (graph_ref.lock_set(v), args)
                    })
                    .collect();
                for round in 0..rounds {
                    if ctx.stop_requested() {
                        break;
                    }
                    let (locks, args) = &reqs[vertex_of(pid, round)];
                    let req = TryLockRequest { locks, thunk: graph_ref.relax, args };
                    let out = algo_ref.attempt(ctx, &mut tags, &mut scratch, &req);
                    rec_ref.record(ctx, pid, round, out.won, out.steps);
                }
            }
        })
    });

    let mut expected = vec![0u64; vertices];
    let mut report = rec.aggregate(&heap, wall, |pid, round| {
        expected[vertex_of(pid, round)] += 1;
    });
    report.safety_ok =
        (0..vertices).all(|v| graph.updates(&heap, v) as u64 == expected[v]);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_locks_is_deterministic_distinct_sorted() {
        let a = pick_locks(5, 2, 7, 10, 3);
        let b = pick_locks(5, 2, 7, 10, 3);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted, a, "locks must be sorted and distinct");
    }

    #[test]
    fn lock_picker_matches_one_shot_and_is_history_independent() {
        // The reusable picker must give the same set regardless of what it
        // drew before (the aggregation pass recomputes with a fresh one).
        let mut picker = LockPicker::new(12);
        let mut out = Vec::new();
        picker.pick_into(9, 1, 4, 5, &mut out);
        let first = out.clone();
        for (pid, round) in [(0usize, 0usize), (3, 17), (2, 2)] {
            picker.pick_into(9, pid, round, 5, &mut out);
            assert_eq!(out, pick_locks(9, pid, round, 12, 5));
        }
        picker.pick_into(9, 1, 4, 5, &mut out);
        assert_eq!(out, first, "picker state leaked between draws");
    }

    #[test]
    fn lock_picker_draws_full_pool() {
        let mut picker = LockPicker::new(6);
        let mut out = Vec::new();
        picker.pick_into(3, 0, 0, 6, &mut out);
        assert_eq!(out, (0..6).map(LockId).collect::<Vec<_>>());
    }

    #[test]
    fn harness_runs_wfl_and_checks_safety() {
        let mut spec = SimSpec::new(3, 4, 3, 2);
        spec.seed = 11;
        let r = run_random_conflict(&spec, AlgoKind::Wfl { kappa: 3, delays: false, helping: true });
        assert!(r.safety_ok, "harness safety check failed");
        assert_eq!(r.attempts, 12);
        assert!(r.wins >= 1);
        assert_eq!(r.per_pid.len(), 3);
        assert!(r.wall.is_none(), "sim runs have no wall clock");
    }

    #[test]
    fn harness_runs_all_baselines() {
        for algo in [AlgoKind::Tsp, AlgoKind::Blocking, AlgoKind::Naive, AlgoKind::WflUnknown] {
            let mut spec = SimSpec::new(3, 3, 3, 2);
            spec.seed = 21;
            let r = run_random_conflict(&spec, algo);
            assert!(r.safety_ok, "{algo:?}: safety check failed");
            assert_eq!(r.attempts, 9, "{algo:?}");
            if matches!(algo, AlgoKind::Tsp | AlgoKind::Blocking) {
                assert_eq!(r.wins, 9, "{algo:?}: blocking-style algorithms always succeed");
            }
        }
    }

    #[test]
    fn philosophers_harness_reports_consistent_meals() {
        let r = run_philosophers(
            4,
            5,
            3,
            SchedKind::Random,
            AlgoKind::Wfl { kappa: 2, delays: false, helping: true },
            1 << 22,
        );
        assert!(r.safety_ok);
        assert_eq!(r.attempts, 20);
    }

    // ----- unified-backend coverage: the same drivers on real threads -----

    /// Every algorithm must pass the random-conflict safety check on free
    /// -running threads with the contention-free hot path — this is the
    /// acceptance gate for the unified harness, and (for `WflUnknown` and
    /// `Naive`) the only real-hardware race coverage those paths get.
    #[test]
    fn real_threads_random_conflict_all_algos_safe() {
        for algo in AlgoKind::all(4) {
            let mut spec = SimSpec::new(4, 60, 4, 2);
            spec.seed = 9;
            spec.heap_words = 1 << 22;
            let r = run_random_conflict_mode(&spec, algo, &ExecMode::real(4));
            assert!(r.safety_ok, "{algo:?}: real-threads safety check failed");
            assert_eq!(r.attempts, 240, "{algo:?}: untimed real runs complete every round");
            assert!(r.wall.is_some());
        }
    }

    /// Heavier real-threads stress for the two paths that previously had no
    /// real-hardware lost-update coverage at all.
    #[test]
    fn real_threads_stress_wfl_unknown_and_naive() {
        for algo in [AlgoKind::WflUnknown, AlgoKind::Naive] {
            let mut spec = SimSpec::new(8, 400, 2, 2);
            spec.seed = 31;
            spec.think_max = 0;
            spec.heap_words = 1 << 24;
            let r = run_random_conflict_mode(&spec, algo, &ExecMode::real(8));
            assert!(r.safety_ok, "{algo:?}: lost update under real-threads stress");
            assert_eq!(r.attempts, 3200, "{algo:?}");
            assert!(r.wins >= 1, "{algo:?}: some attempt must succeed");
        }
    }

    #[test]
    fn timed_real_run_records_variable_attempts_and_stays_safe() {
        // A timed run stops early via the cooperative flag; the safety
        // check must hold for whatever subset of rounds completed, and the
        // early-return driver fix keeps the wall near the actual finish.
        let mut spec = SimSpec::new(2, 3000, 3, 2);
        spec.seed = 17;
        spec.think_max = 4;
        spec.heap_words = 1 << 24;
        let mode = ExecMode::real_timed(2, Duration::from_millis(20));
        let r = run_random_conflict_mode(&spec, AlgoKind::Naive, &mode);
        assert!(r.safety_ok, "timed real run failed the safety check");
        assert!(r.attempts > 0, "no attempts completed in the window");
        assert!(r.attempts <= 6000);
        assert!(r.wall.is_some());
    }

    #[test]
    fn philosophers_run_on_real_threads() {
        for algo in [
            AlgoKind::Wfl { kappa: 2, delays: false, helping: true },
            AlgoKind::Blocking,
        ] {
            let r = run_philosophers_mode(4, 50, 7, algo, 1 << 22, &ExecMode::real(4));
            assert!(r.safety_ok, "{algo:?}: meal counters diverged on real threads");
            assert_eq!(r.attempts, 200, "{algo:?}");
        }
    }

    #[test]
    fn bank_conserves_money_on_both_backends() {
        for mode in [ExecMode::Sim(SchedKind::Random, 100_000_000), ExecMode::real(3)] {
            for algo in [
                AlgoKind::Wfl { kappa: 3, delays: false, helping: true },
                AlgoKind::Tsp,
            ] {
                let r = run_bank_mode(3, 4, 12, 100, 23, algo, 1 << 22, &mode);
                assert!(r.safety_ok, "{}/{algo:?}: money not conserved", mode.label());
                assert_eq!(r.attempts, 36, "{}/{algo:?}", mode.label());
            }
        }
    }

    #[test]
    fn list_snapshot_matches_recorded_wins_on_both_backends() {
        for mode in [ExecMode::Sim(SchedKind::Random, 100_000_000), ExecMode::real(3)] {
            for algo in [
                AlgoKind::Wfl { kappa: 4, delays: false, helping: true },
                AlgoKind::Naive,
            ] {
                let r = run_list_mode(3, 4, 41, algo, 1 << 22, &mode);
                assert!(r.safety_ok, "{}/{algo:?}: snapshot != recorded wins", mode.label());
                assert_eq!(r.attempts, 12, "{}/{algo:?}", mode.label());
            }
        }
    }

    #[test]
    fn graph_update_counters_match_recorded_wins_on_both_backends() {
        for mode in [ExecMode::Sim(SchedKind::Random, 100_000_000), ExecMode::real(3)] {
            for algo in [
                AlgoKind::Wfl { kappa: 3, delays: false, helping: true },
                AlgoKind::WflUnknown,
            ] {
                let r = run_graph_mode(3, 6, 10, 13, algo, 1 << 22, &mode);
                assert!(r.safety_ok, "{}/{algo:?}: update counters diverged", mode.label());
                assert_eq!(r.attempts, 30, "{}/{algo:?}", mode.label());
            }
        }
    }

    #[test]
    #[should_panic(expected = "threads must equal")]
    fn real_mode_thread_mismatch_is_rejected() {
        let spec = SimSpec::new(3, 2, 3, 2);
        run_random_conflict_mode(&spec, AlgoKind::Tsp, &ExecMode::real(4));
    }
}
