//! An algorithm-agnostic, backend-agnostic experiment harness with a
//! first-class **epoch lifecycle**.
//!
//! Every workload driver in this module runs under **either execution
//! backend** behind [`ExecMode`]:
//!
//! * [`ExecMode::Sim`] — the deterministic simulator (any schedule family,
//!   bounded scheduled steps), for adversarial and replayable runs;
//! * [`ExecMode::Real`] — one free-running OS thread per process via
//!   [`wfl_runtime::real`], optionally timed, for throughput and
//!   hardware-race stress.
//!
//! # Epochs
//!
//! The tagged-write idempotence scheme is sound *per heap lifetime*, and
//! each process's attempt serials are finite (`wfl_idem::tag`), so a run
//! that should outlast one tag space proceeds in **epochs**: batches of
//! rounds separated by quiescent resets. [`ExecMode::with_epoch_rounds`]
//! sets the batch length; at every boundary the recorded outcomes are
//! aggregated and safety-checked, the arena is rewound to the pre-root
//! watermark, the per-process tag counters are rewound, and the workload's
//! roots (data structure, outcome slots, the algorithm's lock records) are
//! re-created from scratch via each workload's `re_root` hook. Timed real
//! runs with an epoch length keep opening fresh epochs until the deadline —
//! they run for their full `run_for`, no longer bounded by the tag space —
//! while untimed (and simulator) runs split their fixed round total into
//! deterministic epochs, so epoch-crossing bugs are schedulable and
//! replayable. Without an explicit epoch length every run is a single
//! epoch, exactly the historical behavior.
//!
//! In real mode the epoch boundary is a barrier rendezvous
//! ([`wfl_runtime::epoch::EpochSync`]): workers park, one leader
//! aggregates, checks, resets and re-roots, and everyone resumes. In sim
//! mode epochs are consecutive simulator runs with the reset performed
//! between them on the host thread — same lifecycle, fully deterministic.
//!
//! # Safety checking
//!
//! The drivers record one outcome word per `(process, round)` attempt into
//! the shared heap and derive the post-epoch **safety check from the
//! recorded outcomes** — each lock counter (or meal counter, update
//! counter, list snapshot, bank total) must match exactly what the recorded
//! wins imply. Checks run at *every* epoch boundary and aggregate across
//! epochs ([`HarnessReport::safety_ok`] is the conjunction), so nothing is
//! lost or double-counted across a reset. Every experiment built on this
//! harness is therefore also a mutual-exclusion test — on the simulator
//! *and* on real hardware — which keeps the benchmark numbers honest.

use crate::graph::Graph;
use crate::list::SortedList;
use crate::philosophers;
use wfl_baselines::{
    AttemptOutcome, BlockingMode, BlockingTpl, LockAlgo, NaiveTryLock, TspLock, WflKnown,
    WflUnknown,
};
use wfl_core::{
    Deadline, GiveUp, LockConfig, LockId, LockSpace, Scratch, SpaceLayout, TryLockRequest,
    UnknownConfig,
};
use wfl_delegation::{CcSynch, FcLock};
use wfl_idem::{cell, IdemRun, Registry, TagSource, Thunk, ThunkId};
use wfl_runtime::epoch::{run_epoch_worker, EpochState, EpochSync};
use wfl_runtime::real::{run_threads_epochs, RealConfig};
use wfl_runtime::rng::Pcg;
use wfl_runtime::schedule::{Bursty, PeriodicFaults, RoundRobin, Schedule, SeededRandom, Weighted};
use wfl_runtime::sim::SimBuilder;
use wfl_runtime::stats::{Bernoulli, Summary};
use wfl_runtime::{Addr, AllocMode, Ctx, Event, Heap, History};
use std::sync::{Mutex, RwLock};
use std::time::Duration;

/// Critical section used by the random-conflict workload: increment the
/// counter of every acquired lock (read+write per counter), optionally
/// preceded by `cs_work` padding steps of pure local computation.
pub struct TouchAll {
    /// Maximum locks per attempt (sizes the op log).
    pub max_locks: usize,
    /// Local padding steps executed while the locks are held, before the
    /// counter increments. Models a non-trivial critical section: a
    /// blocking holder occupies its locks for this long, while under wfl
    /// the padding is re-executed by whichever process drives the decided
    /// attempt (helpers pay the work, the op log stays idempotent).
    pub cs_work: u64,
}

impl Thunk for TouchAll {
    fn run(&self, run: &mut IdemRun<'_, '_>) {
        for _ in 0..self.cs_work {
            run.ctx().local_step();
        }
        let n = run.arg(0) as usize;
        for i in 0..n {
            let c = Addr::from_word(run.arg(1 + i));
            let v = run.read(c);
            run.write(c, v + 1);
        }
    }
    fn max_ops(&self) -> usize {
        2 * self.max_locks
    }
}

/// Scheduler families for simulated experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedKind {
    /// Fair round-robin.
    RoundRobin,
    /// Seeded uniform random.
    Random,
    /// Runs of the given length on one process at a time.
    Bursty(u64),
    /// Weights `1, 4, 7, ...` — persistent speed skew across processes.
    WeightedRamp,
    /// Seeded uniform random with periodic injected stalls: in every window
    /// of `period` scheduled slots, one deterministically chosen victim
    /// loses its first `quantum` slots — a lock holder freezing
    /// mid-critical-section (the E16 fault model, sim arm). Deterministic
    /// and oblivious, so fault runs replay exactly.
    RandomFaults {
        /// Window length in scheduled slots.
        period: u64,
        /// Stalled slots per window (`<= period`).
        quantum: u64,
    },
    /// [`SchedKind::Random`], additionally opting the run in to the wfl
    /// combining fast path ([`LockConfig::combine`]). Combining changes the
    /// counted step sequence, so it stays off in sim replays unless the
    /// schedule family names it — recordings under the plain families keep
    /// replaying bit-identically.
    RandomCombining,
    /// [`SchedKind::RandomFaults`] with combining opted in (the E17 sim
    /// fault arm: frozen processes *and* a live combining fast path).
    FaultsCombining {
        /// Window length in scheduled slots.
        period: u64,
        /// Stalled slots per window (`<= period`).
        quantum: u64,
    },
}

impl SchedKind {
    /// Instantiates the schedule for `n` processes (public so external
    /// drivers — the fairness adversary — build schedules from the same
    /// families).
    pub fn build(self, n: usize, seed: u64) -> Box<dyn Schedule> {
        match self {
            SchedKind::RoundRobin => Box::new(RoundRobin::new(n)),
            SchedKind::Random => Box::new(SeededRandom::new(n, seed)),
            SchedKind::Bursty(len) => Box::new(Bursty::new(n, len, seed)),
            SchedKind::WeightedRamp => Box::new(Weighted::new(
                &(0..n as u64).map(|i| 1 + 3 * i).collect::<Vec<_>>(),
                seed,
            )),
            SchedKind::RandomFaults { period, quantum }
            | SchedKind::FaultsCombining { period, quantum } => Box::new(PeriodicFaults::new(
                SeededRandom::new(n, seed),
                n,
                period,
                quantum,
                seed ^ 0x5EED_FA17,
            )),
            SchedKind::RandomCombining => Box::new(SeededRandom::new(n, seed)),
        }
    }

    /// Whether sim runs under this family may use the wfl combining fast
    /// path. The interleaving families are unchanged — opting in only
    /// unmasks [`LockConfig::combine`] in [`ExecMode::Sim`] (real-threads
    /// runs always honor the config; they never claim replayability).
    pub fn allows_combining(self) -> bool {
        matches!(self, SchedKind::RandomCombining | SchedKind::FaultsCombining { .. })
    }
}

/// Which backend executes a workload's process bodies, and how the run is
/// batched into epochs.
///
/// The bodies themselves are identical across backends — they are written
/// against [`Ctx`] — so switching the mode changes *only* who grants steps
/// and where the epoch boundaries fall.
#[derive(Debug, Clone, Copy)]
pub enum ExecMode {
    /// Deterministic simulator.
    Sim {
        /// Schedule family.
        sched: SchedKind,
        /// Scheduled-phase budget **per epoch** (the simulator drains
        /// cooperatively past the budget).
        max_steps: u64,
        /// Rounds per process per epoch (`None` = the whole run is one
        /// epoch). Deterministic, so epoch-crossing bugs are replayable.
        epoch_rounds: Option<usize>,
        /// Per-round own-step deadline budget armed into the attempt's
        /// [`Scratch::deadline`] (`None` = attempts run to a decision, the
        /// historical behavior). See [`ExecMode::with_deadline_steps`].
        deadline_steps: Option<u64>,
        /// Capture a flight-recorder trace of the run (see
        /// [`ExecMode::with_recorder`]).
        recorder: bool,
    },
    /// Free-running OS threads. `threads` must equal the workload's process
    /// count (it is spelled out so a matrix sweep reads naturally). With
    /// `run_for` set, the driver raises the cooperative stop flag at the
    /// deadline and every attempt loop drains; recorded outcomes then cover
    /// a variable number of completed rounds.
    Real {
        /// OS threads == workload processes.
        threads: usize,
        /// Optional wall-clock budget (timed run).
        run_for: Option<Duration>,
        /// Hot-path configuration of the real driver.
        cfg: RealConfig,
        /// Rounds per process per epoch. With `run_for` also set, the run
        /// keeps opening fresh epochs until the deadline — wall-clock
        /// soaks unbounded by the tag space. `None` = single epoch
        /// (historical behavior).
        epoch_rounds: Option<usize>,
        /// Per-round own-step deadline budget (see the `Sim` variant).
        deadline_steps: Option<u64>,
        /// Capture a flight-recorder trace of the run (see
        /// [`ExecMode::with_recorder`]).
        recorder: bool,
    },
}

impl ExecMode {
    /// A simulator mode (single epoch).
    pub fn sim(sched: SchedKind, max_steps: u64) -> ExecMode {
        ExecMode::Sim {
            sched,
            max_steps,
            epoch_rounds: None,
            deadline_steps: None,
            recorder: false,
        }
    }

    /// An untimed real-threads mode with the contention-free hot path.
    pub fn real(threads: usize) -> ExecMode {
        ExecMode::Real {
            threads,
            run_for: None,
            cfg: RealConfig::fast(),
            epoch_rounds: None,
            deadline_steps: None,
            recorder: false,
        }
    }

    /// A timed real-threads mode with the contention-free hot path.
    pub fn real_timed(threads: usize, run_for: Duration) -> ExecMode {
        ExecMode::Real {
            threads,
            run_for: Some(run_for),
            cfg: RealConfig::fast(),
            epoch_rounds: None,
            deadline_steps: None,
            recorder: false,
        }
    }

    /// Batches the run into epochs of `rounds` rounds per process (clamped
    /// to at least 1). See the variant docs for the timed/untimed split.
    pub fn with_epoch_rounds(mut self, rounds: usize) -> ExecMode {
        let r = Some(rounds.max(1));
        match &mut self {
            ExecMode::Sim { epoch_rounds, .. } => *epoch_rounds = r,
            ExecMode::Real { epoch_rounds, .. } => *epoch_rounds = r,
        }
        self
    }

    /// Arms a per-round abort deadline: before every round the driver sets
    /// the attempt's [`Scratch::deadline`] to `steps` own steps from the
    /// round's start, so any single acquisition bails out (releasing
    /// partial acquisitions, descriptor left helpable) instead of
    /// overstaying its SLO. Applies to **all five workloads** — the budget
    /// rides [`Scratch`], untouched by workload-specific round logic.
    pub fn with_deadline_steps(mut self, steps: u64) -> ExecMode {
        let d = Some(steps.max(1));
        match &mut self {
            ExecMode::Sim { deadline_steps, .. } => *deadline_steps = d,
            ExecMode::Real { deadline_steps, .. } => *deadline_steps = d,
        }
        self
    }

    /// Turns on the flight recorder for the run: the driver enables
    /// `wfl_obs::rec` before spawning the processes, the epoch leader
    /// stamps an `EpochBarrier` control event at every boundary, and the
    /// drained [`wfl_obs::TraceSnapshot`] rides back on
    /// [`HarnessReport::trace`]. The recorder is process-global, so traced
    /// runs must not overlap other traced runs in the same process.
    pub fn with_recorder(mut self) -> ExecMode {
        match &mut self {
            ExecMode::Sim { recorder, .. } => *recorder = true,
            ExecMode::Real { recorder, .. } => *recorder = true,
        }
        self
    }

    /// Whether the run captures a flight-recorder trace.
    pub fn recorder(&self) -> bool {
        match self {
            ExecMode::Sim { recorder, .. } | ExecMode::Real { recorder, .. } => *recorder,
        }
    }

    /// The configured epoch length, if any.
    pub fn epoch_rounds(&self) -> Option<usize> {
        match self {
            ExecMode::Sim { epoch_rounds, .. } | ExecMode::Real { epoch_rounds, .. } => *epoch_rounds,
        }
    }

    /// The configured per-round deadline budget, if any.
    pub fn deadline_steps(&self) -> Option<u64> {
        match self {
            ExecMode::Sim { deadline_steps, .. } | ExecMode::Real { deadline_steps, .. } => {
                *deadline_steps
            }
        }
    }

    /// Rounds per process per epoch for a run of `total_rounds`.
    pub fn epoch_len(&self, total_rounds: usize) -> usize {
        self.epoch_rounds().unwrap_or(total_rounds).max(1)
    }

    /// Short label for tables and JSON ("sim" / "real").
    pub fn label(&self) -> &'static str {
        match self {
            ExecMode::Sim { .. } => "sim",
            ExecMode::Real { .. } => "real",
        }
    }
}

/// Results of a harness run, aggregated across every epoch.
#[derive(Debug, Clone)]
pub struct HarnessReport {
    /// Total attempts made (completed rounds; timed real runs stop early —
    /// or, with epochs, keep going until the deadline).
    pub attempts: u64,
    /// Total successful attempts.
    pub wins: u64,
    /// Per-attempt own-step counts.
    pub steps: Summary,
    /// Success-rate estimator over all attempts.
    pub success: Bernoulli,
    /// Per-process (wins, attempts).
    pub per_pid: Vec<(u64, u64)>,
    /// Whether **every epoch's** workload invariant matched its recorded
    /// outcomes exactly (the mutual-exclusion check).
    pub safety_ok: bool,
    /// Attempts abandoned mid-flight (armed deadline expired, or the stop
    /// flag during a deadline-armed attempt) rather than decided.
    pub aborts: u64,
    /// Abandoned attempts a competitor's helping completed anyway (these
    /// also count as wins); `rescues / aborts` is E16's abandoned-attempt
    /// helping rate.
    pub rescues: u64,
    /// Per-attempt own-step counts of the aborted attempts alone — the
    /// abort *latency* distribution (steps from round start to bailing
    /// out). Its tail against the armed budget is E16's abort-p99 gate.
    pub abort_steps: Summary,
    /// Wins granted by a combining holder (wfl's [`LockConfig::combine`]
    /// fast path, or a delegation baseline's combiner applying the request)
    /// rather than by the attempt's own competition. A subset of `wins`,
    /// disjoint from `rescues`.
    pub combined_wins: u64,
    /// Batch sizes observed by combining winners: one sample per winner
    /// that applied at least one peer request (the sample is the peer
    /// count). Empty when combining never fired — E17's histogram gate.
    pub combine_batch: Summary,
    /// Give-up events by reason, indexed by [`GiveUp::index`]: per-attempt
    /// aborts land under `Deadline`/`Stop`; a batch cut short by heap
    /// pressure or the stop flag adds one `HeapLow`/`Stop` event per
    /// process per epoch.
    pub give_up: [u64; GiveUp::COUNT],
    /// Wall-clock duration (real runs only).
    pub wall: Option<Duration>,
    /// Heap lifetimes the run spanned (1 = no epoch batching).
    pub epochs: u64,
    /// Highest arena usage observed at any epoch boundary: words handed
    /// out, summed over every allocation lane.
    pub heap_high_water: usize,
    /// The per-lane breakdown of [`HarnessReport::heap_high_water`]
    /// (index = lane = pid; the trailing entry is the root lane carrying
    /// setup and re-root allocations).
    pub heap_high_water_lanes: Vec<usize>,
    /// Recorded invoke/respond history (empty unless the workload records
    /// one, e.g. [`run_bank_mode_recorded`]).
    pub history: History,
    /// The drained flight-recorder trace ([`ExecMode::with_recorder`]
    /// runs only).
    pub trace: Option<wfl_obs::TraceSnapshot>,
}

impl HarnessReport {
    /// Successful acquisitions per wall-clock second (real runs only).
    pub fn wins_per_sec(&self) -> Option<f64> {
        self.wall.map(|w| self.wins as f64 / w.as_secs_f64().max(1e-12))
    }

    /// The meaningful slice of [`HarnessReport::heap_high_water_lanes`]
    /// for reports and JSON: the worker lanes actually used by this run
    /// (one per process) plus the trailing root lane — the heap pads to
    /// its full lane count, which would bury output in zeros.
    pub fn compact_high_water_lanes(&self) -> Vec<usize> {
        let threads = self.per_pid.len();
        if self.heap_high_water_lanes.len() <= threads + 1 {
            return self.heap_high_water_lanes.clone();
        }
        let mut v = self.heap_high_water_lanes[..threads].to_vec();
        v.push(*self.heap_high_water_lanes.last().expect("non-empty lane vector"));
        v
    }

    /// Folds the report into the uniform [`wfl_obs::MetricsSnapshot`] the
    /// shared `wfl_bench` row writer serializes: counters, per-reason
    /// give-up tallies under their stable labels, the step summaries
    /// rebucketed into fixed power-of-two histograms, and the calibrated
    /// wall-clock rates (real runs only; `steps_per_sec` is total own
    /// steps over the wall, the number that converts step-denominated
    /// deadlines into time).
    pub fn metrics(&self) -> wfl_obs::MetricsSnapshot {
        let fold = |s: &Summary| {
            let mut h = wfl_obs::FixedHistogram::default();
            for &v in s.samples() {
                h.record(v);
            }
            h
        };
        let wall_secs = self.wall.map(|w| w.as_secs_f64().max(1e-12));
        let total_steps: u64 = self.steps.samples().iter().sum();
        wfl_obs::MetricsSnapshot {
            attempts: self.attempts,
            wins: self.wins,
            aborts: self.aborts,
            rescues: self.rescues,
            combined_wins: self.combined_wins,
            epochs: self.epochs,
            steps: fold(&self.steps),
            abort_steps: fold(&self.abort_steps),
            give_up: GiveUp::all()
                .iter()
                .map(|g| (g.label(), self.give_up[g.index()]))
                .collect(),
            wall_secs,
            steps_per_sec: wall_secs.map(|w| total_steps as f64 / w),
            wins_per_sec: self.wins_per_sec(),
        }
    }
}

// ---------------------------------------------------------------------------
// Outcome recording
// ---------------------------------------------------------------------------

/// Per-`(process, round)` outcome slots in the shared heap for **one
/// epoch**: 0 = round not run (timed run stopped first), else `1 + bits`
/// with bit 0 = won, bit 1 = aborted, bit 2 = rescued, bit 3 = the stop
/// flag was up when the abort was recorded (classifies the abort reason);
/// plus a parallel word of own-steps per attempt and one batch-exit word
/// per process (0 = ran its full batch, else `1 + GiveUp::index`). The
/// recorder knows its epoch's base round so aggregation reports *global*
/// round numbers, which is what keeps deterministic `(seed, pid, round)`
/// reconstructions exact across resets.
struct Outcomes {
    outcomes: Addr,
    steps: Addr,
    breaks: Addr,
    cap: usize,
    /// Words between consecutive processes' slot regions: `cap` rounded up
    /// to a cache-line multiple, so concurrent recorders never share a
    /// line (false-sharing audit, DESIGN.md §1.3). The bases are
    /// line-aligned, making every `pid * stride` region line-disjoint.
    stride: usize,
    nprocs: usize,
    base_round: usize,
}

/// Outcome-word bits (over `value - 1`).
const OUT_WON: u64 = 1;
const OUT_ABORTED: u64 = 2;
const OUT_RESCUED: u64 = 4;
const OUT_STOPPING: u64 = 8;
/// The win was granted by a combining holder (disjoint from
/// [`OUT_RESCUED`]; implies [`OUT_WON`]).
const OUT_COMBINED: u64 = 16;
/// Bits above this shift carry the winner's combine batch size (peer
/// requests applied while holding; 0 for non-combining wins).
const OUT_PEERS_SHIFT: u32 = 5;

impl Outcomes {
    fn create_root(heap: &Heap, nprocs: usize, cap: usize, base_round: usize) -> Outcomes {
        // One tag base is drawn per attempt, and the tag space is per heap
        // lifetime (= per epoch) — a cap beyond the guaranteed per-process
        // capacity could never be recorded anyway.
        assert!(
            cap <= wfl_idem::tag::MIN_PROCESS_CAPACITY as usize,
            "epoch length {cap} exceeds the per-process tag capacity"
        );
        let stride = cap.next_multiple_of(wfl_runtime::LINE_WORDS);
        Outcomes {
            outcomes: heap.alloc_root_aligned(nprocs * stride),
            steps: heap.alloc_root_aligned(nprocs * stride),
            // One line per process: the break word is written exactly once
            // per epoch, but all processes write it in the same drain
            // window.
            breaks: heap.alloc_root_aligned(nprocs * wfl_runtime::LINE_WORDS),
            cap,
            stride,
            nprocs,
            base_round,
        }
    }

    fn idx(&self, pid: usize, slot: usize) -> u32 {
        (pid * self.stride + slot) as u32
    }

    fn break_idx(&self, pid: usize) -> u32 {
        (pid * wfl_runtime::LINE_WORDS) as u32
    }

    /// Records one attempt (counted heap writes from the process itself).
    /// `slot` is the round index *within this epoch*.
    ///
    /// Release writes, not SeqCst (the §2.2 ordering audit): each slot is
    /// written by exactly one process and read only at the quiescent epoch
    /// boundary, where the barrier's mutex (or the sim host's join)
    /// already provides the happens-before edge — the store needs no
    /// global ordering of its own.
    fn record(&self, ctx: &Ctx<'_>, pid: usize, slot: usize, out: &AttemptOutcome) {
        let idx = self.idx(pid, slot);
        let mut bits = 0u64;
        if out.won {
            bits |= OUT_WON;
        }
        if out.aborted {
            bits |= OUT_ABORTED;
            // Classifies the abort: armed deadlines are the steady-state
            // trigger; the stop flag only rises once the driver drains, and
            // it never falls again, so sampling it here is exact enough to
            // split the per-reason counters.
            if ctx.stop_requested() {
                bits |= OUT_STOPPING;
            }
        }
        if out.rescued {
            bits |= OUT_RESCUED;
        }
        if out.combined {
            bits |= OUT_COMBINED;
        }
        bits |= out.combined_peers << OUT_PEERS_SHIFT;
        ctx.write_rel(self.outcomes.off(idx), 1 + bits);
        ctx.write_rel(self.steps.off(idx), out.steps);
    }

    /// Records why `pid`'s batch ended before running every round (noop
    /// word 0 when the batch completed; the slots are freshly zeroed per
    /// epoch, so only real breaks need a write — but writing
    /// unconditionally keeps the step count schedule-independent).
    fn record_break(&self, ctx: &Ctx<'_>, pid: usize, reason: Option<GiveUp>) {
        let word = reason.map_or(0, |g| 1 + g.index() as u64);
        ctx.write_rel(self.breaks.off(self.break_idx(pid)), word);
    }

    /// Folds this epoch's recorded outcomes into a [`HarnessReport`] (with
    /// `safety_ok` left `true` for the caller to refine), invoking
    /// `on_win(pid, global_round)` for every recorded win so the caller can
    /// reconstruct the workload-specific expectation.
    fn aggregate(&self, heap: &Heap, mut on_win: impl FnMut(usize, usize)) -> HarnessReport {
        let mut steps = Summary::new();
        let mut success = Bernoulli::default();
        let mut per_pid = vec![(0u64, 0u64); self.nprocs];
        let mut attempts = 0u64;
        let mut wins = 0u64;
        let mut aborts = 0u64;
        let mut rescues = 0u64;
        let mut abort_steps = Summary::new();
        let mut give_up = [0u64; GiveUp::COUNT];
        let mut combined_wins = 0u64;
        let mut combine_batch = Summary::new();
        for (pid, pp) in per_pid.iter_mut().enumerate() {
            for slot in 0..self.cap {
                let idx = self.idx(pid, slot);
                let o = heap.peek(self.outcomes.off(idx));
                if o == 0 {
                    continue; // round not run (timed run stopped first)
                }
                let bits = o - 1;
                attempts += 1;
                pp.1 += 1;
                let won = bits & OUT_WON != 0;
                success.record(won);
                let own_steps = heap.peek(self.steps.off(idx));
                steps.push(own_steps);
                if bits & OUT_ABORTED != 0 {
                    aborts += 1;
                    abort_steps.push(own_steps);
                    let reason = if bits & OUT_STOPPING != 0 { GiveUp::Stop } else { GiveUp::Deadline };
                    give_up[reason.index()] += 1;
                }
                if bits & OUT_RESCUED != 0 {
                    rescues += 1;
                }
                if bits & OUT_COMBINED != 0 {
                    combined_wins += 1;
                }
                let peers = bits >> OUT_PEERS_SHIFT;
                if peers > 0 {
                    combine_batch.push(peers);
                }
                if won {
                    wins += 1;
                    pp.0 += 1;
                    on_win(pid, self.base_round + slot);
                }
            }
            let brk = heap.peek(self.breaks.off(self.break_idx(pid)));
            if brk != 0 {
                let idx = (brk - 1) as usize;
                assert!(idx < GiveUp::COUNT, "corrupt batch-exit word {brk}");
                give_up[idx] += 1;
            }
        }
        HarnessReport {
            attempts,
            wins,
            steps,
            success,
            per_pid,
            safety_ok: true,
            aborts,
            rescues,
            abort_steps,
            combined_wins,
            combine_batch,
            give_up,
            wall: None,
            epochs: 1,
            heap_high_water: 0,
            heap_high_water_lanes: Vec::new(),
            history: History::default(),
            trace: None,
        }
    }
}

/// Accumulates per-epoch reports into the whole-run report.
struct Totals {
    attempts: u64,
    wins: u64,
    steps: Summary,
    success: Bernoulli,
    per_pid: Vec<(u64, u64)>,
    safety_ok: bool,
    aborts: u64,
    rescues: u64,
    abort_steps: Summary,
    combined_wins: u64,
    combine_batch: Summary,
    give_up: [u64; GiveUp::COUNT],
    epochs: u64,
}

impl Totals {
    fn new(nprocs: usize) -> Totals {
        Totals {
            attempts: 0,
            wins: 0,
            steps: Summary::new(),
            success: Bernoulli::default(),
            per_pid: vec![(0, 0); nprocs],
            safety_ok: true,
            aborts: 0,
            rescues: 0,
            abort_steps: Summary::new(),
            combined_wins: 0,
            combine_batch: Summary::new(),
            give_up: [0; GiveUp::COUNT],
            epochs: 0,
        }
    }

    fn merge(&mut self, epoch_report: &HarnessReport, safe: bool) {
        self.attempts += epoch_report.attempts;
        self.wins += epoch_report.wins;
        self.steps.merge(&epoch_report.steps);
        self.success.successes += epoch_report.success.successes;
        self.success.trials += epoch_report.success.trials;
        for (acc, e) in self.per_pid.iter_mut().zip(&epoch_report.per_pid) {
            acc.0 += e.0;
            acc.1 += e.1;
        }
        self.safety_ok &= safe;
        self.aborts += epoch_report.aborts;
        self.rescues += epoch_report.rescues;
        self.abort_steps.merge(&epoch_report.abort_steps);
        self.combined_wins += epoch_report.combined_wins;
        self.combine_batch.merge(&epoch_report.combine_batch);
        for (acc, e) in self.give_up.iter_mut().zip(&epoch_report.give_up) {
            *acc += e;
        }
        self.epochs += 1;
    }

    fn into_report(self, wall: Option<Duration>, state: &EpochState, history: History) -> HarnessReport {
        HarnessReport {
            attempts: self.attempts,
            wins: self.wins,
            steps: self.steps,
            success: self.success,
            per_pid: self.per_pid,
            safety_ok: self.safety_ok,
            aborts: self.aborts,
            rescues: self.rescues,
            abort_steps: self.abort_steps,
            combined_wins: self.combined_wins,
            combine_batch: self.combine_batch,
            give_up: self.give_up,
            wall,
            epochs: self.epochs,
            heap_high_water: state.high_water(),
            heap_high_water_lanes: state.high_water_lanes(),
            history,
            trace: None,
        }
    }
}

// ---------------------------------------------------------------------------
// Algorithm instantiation
// ---------------------------------------------------------------------------

/// Algorithms the harness can instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgoKind {
    /// The paper's known-bounds algorithm (§6). `kappa` is the contention
    /// bound used for the delays (active sets are always sized at the
    /// process count, which is a valid upper bound).
    Wfl {
        /// Contention bound κ for the delay formulas.
        kappa: usize,
        /// Fixed delays enabled (disable only for the E11 ablation).
        delays: bool,
        /// Helping phase enabled (disable only for the E12 ablation).
        helping: bool,
    },
    /// The §6.2 unknown-bounds variant.
    WflUnknown,
    /// Turek–Shasha–Prakash-style lock-free locks (always succeed).
    Tsp,
    /// Blocking ordered two-phase locking (always succeeds outside of
    /// cooperative shutdown; blocks under crashes).
    Blocking,
    /// Blocking two-phase locking with the cohort/backoff spin discipline
    /// (TTAS + bounded exponential backoff, per Fissile Locks): the honest
    /// blocking comparison point at 16–64 threads, where the naked spin is
    /// a coherence-traffic strawman.
    BlockingCohort,
    /// No-helping tryLock (may fail; never blocks).
    Naive,
    /// The known-bounds algorithm with the combining fast path
    /// ([`LockConfig::combine`]): a winner batches compatible pending
    /// requests before releasing. Wait-freedom and the fairness bound are
    /// untouched — combining only adds extra-early grants.
    WflCombine {
        /// Contention bound κ for the delay formulas.
        kappa: usize,
    },
    /// Flat combining (Hendler et al.): publication array + combiner lock.
    FlatCombining,
    /// CCSynch (Fatourou & Kallimanis): swap-based combining queue.
    CcSynch,
}

impl AlgoKind {
    /// Short name for tables and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            AlgoKind::Wfl { .. } => "wfl",
            AlgoKind::WflUnknown => "wfl-unknown",
            AlgoKind::Tsp => "tsp",
            AlgoKind::Blocking => "blocking",
            AlgoKind::BlockingCohort => "blocking-cohort",
            AlgoKind::Naive => "naive",
            AlgoKind::WflCombine { .. } => "wfl+combine",
            AlgoKind::FlatCombining => "fc",
            AlgoKind::CcSynch => "ccsynch",
        }
    }

    /// The five kinds with default wfl parameters (κ = `nprocs`).
    pub fn all(nprocs: usize) -> [AlgoKind; 5] {
        [
            AlgoKind::Wfl { kappa: nprocs.max(2), delays: true, helping: true },
            AlgoKind::WflUnknown,
            AlgoKind::Tsp,
            AlgoKind::Blocking,
            AlgoKind::Naive,
        ]
    }

    /// Every kind the harness can run: [`AlgoKind::all`] plus the cohort
    /// spin discipline, the combining fast path, and both delegation
    /// baselines (the E14 extended matrix / E17 roster).
    pub fn all_extended(nprocs: usize) -> [AlgoKind; 9] {
        let [wfl, unknown, tsp, blocking, naive] = Self::all(nprocs);
        [
            wfl,
            AlgoKind::WflCombine { kappa: nprocs.max(2) },
            unknown,
            tsp,
            blocking,
            AlgoKind::BlockingCohort,
            naive,
            AlgoKind::FlatCombining,
            AlgoKind::CcSynch,
        ]
    }

    /// Parses a [`AlgoKind::label`] back into a kind with default
    /// parameters (κ = `nprocs`) — the `--algos` filter flags.
    pub fn from_label(name: &str, nprocs: usize) -> Option<AlgoKind> {
        Self::all_extended(nprocs).into_iter().find(|k| k.label() == name)
    }
}

/// Everything needed to (re-)create the algorithm under test on a fresh
/// heap: kind, lock-space shape, memory layout, and the known-bounds
/// configuration.
#[derive(Debug, Clone, Copy)]
struct AlgoSpec {
    kind: AlgoKind,
    nlocks: usize,
    aset: usize,
    layout: SpaceLayout,
    cfg: LockConfig,
}

/// The per-epoch heap instantiation of an [`AlgoSpec`]: owns the on-heap
/// lock records (or the lock-word arrays of the baselines) so the epoch
/// boundary can drop and re-create them wholesale.
enum AlgoInstance<'reg> {
    Wfl { space: LockSpace, cfg: LockConfig },
    Unknown { space: LockSpace },
    Tsp(TspLock<'reg>),
    Blocking(BlockingTpl<'reg>),
    Naive(NaiveTryLock<'reg>),
    Fc(FcLock<'reg>),
    Cc(CcSynch<'reg>),
}

impl<'reg> AlgoInstance<'reg> {
    fn create(heap: &Heap, registry: &'reg Registry, spec: &AlgoSpec) -> AlgoInstance<'reg> {
        let layout = spec.layout;
        match spec.kind {
            // WflCombine differs only in `spec.cfg.combine` (see
            // `known_cfg`); the heap instantiation is identical.
            AlgoKind::Wfl { .. } | AlgoKind::WflCombine { .. } => AlgoInstance::Wfl {
                space: LockSpace::create_root_with(heap, spec.nlocks, spec.aset, layout),
                cfg: spec.cfg,
            },
            AlgoKind::WflUnknown => AlgoInstance::Unknown {
                space: LockSpace::create_root_with(heap, spec.nlocks, spec.aset, layout),
            },
            AlgoKind::Tsp => AlgoInstance::Tsp(TspLock::create_root_placed(
                heap,
                registry,
                spec.nlocks,
                layout.placement,
            )),
            AlgoKind::Blocking => AlgoInstance::Blocking(BlockingTpl::create_root_placed(
                heap,
                registry,
                spec.nlocks,
                layout.placement,
            )),
            AlgoKind::BlockingCohort => AlgoInstance::Blocking(
                BlockingTpl::create_root_placed(heap, registry, spec.nlocks, layout.placement)
                    .with_mode(BlockingMode::Cohort),
            ),
            AlgoKind::Naive => AlgoInstance::Naive(NaiveTryLock::create_root_placed(
                heap,
                registry,
                spec.nlocks,
                layout.placement,
            )),
            // The delegation baselines size their per-process publication
            // records by the process count; `aset` is exactly
            // `nprocs.max(2)` everywhere the harness builds a spec.
            AlgoKind::FlatCombining => AlgoInstance::Fc(FcLock::create_root_placed(
                heap,
                registry,
                spec.aset,
                layout.placement,
            )),
            AlgoKind::CcSynch => AlgoInstance::Cc(CcSynch::create_root_placed(
                heap,
                registry,
                spec.aset,
                layout.placement,
            )),
        }
    }

    /// Lends the instance as a `&dyn LockAlgo` (the paper's algorithms
    /// borrow the space per call; the baselines are the algo themselves).
    fn with<R>(&self, registry: &Registry, f: impl FnOnce(&dyn LockAlgo) -> R) -> R {
        match self {
            AlgoInstance::Wfl { space, cfg } => f(&WflKnown { space, registry, cfg: *cfg }),
            AlgoInstance::Unknown { space } => {
                f(&WflUnknown { space, registry, cfg: UnknownConfig::new() })
            }
            AlgoInstance::Tsp(a) => f(a),
            AlgoInstance::Blocking(a) => f(a),
            AlgoInstance::Naive(a) => f(a),
            AlgoInstance::Fc(a) => f(a),
            AlgoInstance::Cc(a) => f(a),
        }
    }
}

/// A harness hook for **external drivers**: (re-)creates any [`AlgoKind`]
/// on a heap and lends it as a `&dyn LockAlgo`, exactly like the epoch
/// driver does for its own workloads. The `wfl_fairness` adversary
/// subsystem uses this so its victim/competitor loops instantiate
/// algorithms identically to every other experiment (same κ defaulting,
/// same active-set sizing), and so an epoch boundary can drop and re-create
/// the whole thing by building a fresh handle.
pub struct AlgoHandle<'reg> {
    registry: &'reg Registry,
    instance: AlgoInstance<'reg>,
}

impl<'reg> AlgoHandle<'reg> {
    /// Creates the algorithm's heap roots (lock records / lock-word
    /// arrays). `nprocs` is the κ default and active-set size; `l_max` /
    /// `t_max` bound the known-bounds delay formulas.
    pub fn create(
        heap: &Heap,
        registry: &'reg Registry,
        kind: AlgoKind,
        nlocks: usize,
        nprocs: usize,
        l_max: usize,
        t_max: usize,
    ) -> AlgoHandle<'reg> {
        Self::create_with_layout(
            heap,
            registry,
            kind,
            nlocks,
            nprocs,
            l_max,
            t_max,
            SpaceLayout::default(),
        )
    }

    /// [`AlgoHandle::create`] with an explicit memory [`SpaceLayout`]
    /// (layout A/B experiments; everything else uses the default).
    #[allow(clippy::too_many_arguments)]
    pub fn create_with_layout(
        heap: &Heap,
        registry: &'reg Registry,
        kind: AlgoKind,
        nlocks: usize,
        nprocs: usize,
        l_max: usize,
        t_max: usize,
        layout: SpaceLayout,
    ) -> AlgoHandle<'reg> {
        let cfg = known_cfg(kind, nprocs, l_max, t_max);
        let spec = AlgoSpec { kind, nlocks, aset: nprocs.max(2), layout, cfg };
        AlgoHandle { registry, instance: AlgoInstance::create(heap, registry, &spec) }
    }

    /// Lends the instance as a `&dyn LockAlgo`.
    pub fn with<R>(&self, f: impl FnOnce(&dyn LockAlgo) -> R) -> R {
        self.instance.with(self.registry, f)
    }
}

/// The known-bounds configuration a workload hands to the harness:
/// the `AlgoKind`'s κ/ablation switches with the workload's `L` and `T`.
fn known_cfg(algo: AlgoKind, default_kappa: usize, l_max: usize, t_max: usize) -> LockConfig {
    let (kappa, delays, helping) = match algo {
        AlgoKind::Wfl { kappa, delays, helping } => (kappa, delays, helping),
        AlgoKind::WflCombine { kappa } => (kappa, true, true),
        _ => (default_kappa, true, true),
    };
    let mut cfg = LockConfig::new(kappa.max(1), l_max, t_max);
    cfg.delays = delays;
    cfg.helping = helping;
    cfg.combine = matches!(algo, AlgoKind::WflCombine { .. });
    cfg
}

// ---------------------------------------------------------------------------
// The generic epoch driver
// ---------------------------------------------------------------------------

/// One workload's epoch-lifecycle hooks. The generic driver
/// ([`drive_epochs`]) owns batching, recording, rendezvous, reset and
/// aggregation; a workload supplies root (re-)creation, per-round behavior
/// and the boundary safety check.
trait EpochWorkload: Sync {
    /// Per-epoch heap roots (shared by every worker through the world
    /// slot).
    type Roots: Send + Sync;
    /// Per-worker per-epoch scratch (request buffers, result cells, ...).
    type Local;

    /// (Re-)creates the workload's heap roots on a fresh (or freshly
    /// reset) arena.
    fn re_root(&self, heap: &Heap) -> Self::Roots;

    /// Builds a worker's per-epoch scratch (may allocate from the heap via
    /// `ctx`; such allocations are reclaimed by the next reset).
    fn local(&self, ctx: &Ctx<'_>, roots: &Self::Roots) -> Self::Local;

    /// Runs one round. `round` is the global round number (deterministic
    /// draws key off it, so behavior varies across epochs); `slot` is the
    /// index within the current epoch.
    #[allow(clippy::too_many_arguments)]
    fn round(
        &self,
        ctx: &Ctx<'_>,
        roots: &Self::Roots,
        local: &mut Self::Local,
        algo: &dyn LockAlgo,
        tags: &mut TagSource,
        scratch: &mut Scratch,
        pid: usize,
        round: usize,
        slot: usize,
    ) -> AttemptOutcome;

    /// Epoch-boundary check at quiescence: aggregate this epoch's recorded
    /// outcomes (via [`Outcomes::aggregate`]) and compare the heap state
    /// against them. Returns the epoch report and whether it was safe.
    fn check(&self, heap: &Heap, roots: &Self::Roots, rec: &Outcomes) -> (HarnessReport, bool);
}

/// A world: everything re-created at each epoch boundary.
struct World<'reg, R> {
    algo: AlgoInstance<'reg>,
    roots: R,
    rec: Outcomes,
}

/// One worker's batch for one epoch: build the per-epoch scratch, run up to
/// `rounds` rounds (bailing at the cooperative stop flag), record each
/// outcome. Shared verbatim by the simulator and real-threads arms of
/// [`drive_epochs`] — the bodies must stay identical across backends.
#[allow(clippy::too_many_arguments)]
fn run_batch<WL: EpochWorkload>(
    ctx: &Ctx<'_>,
    wl: &WL,
    world: &World<'_, WL::Roots>,
    registry: &Registry,
    tags: &mut TagSource,
    scratch: &mut Scratch,
    pid: usize,
    base: usize,
    rounds: usize,
    deadline_steps: Option<u64>,
) {
    // A fresh heap lifetime: the boundary reset (or first-epoch setup) has
    // rewound the lanes, so any latched allocation pressure is stale.
    ctx.reset_heap_low();
    let mut local = wl.local(ctx, &world.roots);
    world.algo.with(registry, |algo| {
        let mut cut_short = None;
        for slot in 0..rounds {
            // Heap pressure ends the batch exactly like the stop flag: the
            // attempt that tapped the reserve has completed and been
            // recorded; nothing new starts until the boundary rewinds the
            // lanes (see `Ctx::heap_low`).
            if ctx.stop_requested() {
                cut_short = Some(GiveUp::Stop);
                break;
            }
            if ctx.heap_low() {
                cut_short = Some(GiveUp::HeapLow);
                break;
            }
            // Arm the per-round SLO: the attempt (any algorithm) bails out
            // once the budget is spent instead of retrying/spinning on.
            if let Some(budget) = deadline_steps {
                scratch.deadline = Deadline::after(ctx, budget);
            }
            let out =
                wl.round(ctx, &world.roots, &mut local, algo, tags, scratch, pid, base + slot, slot);
            world.rec.record(ctx, pid, slot, &out);
        }
        if deadline_steps.is_some() {
            scratch.deadline = Deadline::NEVER;
        }
        world.rec.record_break(ctx, pid, cut_short);
    });
}

/// Runs `wl` for `total_rounds` rounds per process (timed epoch runs:
/// unbounded) under `mode`, driving the full epoch lifecycle on either
/// backend. See the module docs for the protocol.
#[allow(clippy::too_many_arguments)]
fn drive_epochs<WL: EpochWorkload>(
    heap: &Heap,
    registry: &Registry,
    spec: AlgoSpec,
    nprocs: usize,
    seed: u64,
    total_rounds: usize,
    mode: &ExecMode,
    wl: &WL,
) -> HarnessReport {
    // The epoch mark precedes every root: a boundary rewinds *everything*
    // (workload roots, outcome slots, lock records, transients), which is
    // what makes rewinding the tag counters sound.
    let state = EpochState::new(heap);
    let epoch_len = mode.epoch_len(total_rounds);
    let deadline_steps = mode.deadline_steps();
    // The flight recorder is enabled at quiescence, before any process
    // spawns, and drained after the last join — the single points where
    // every ring is guaranteed writer-free. The recorder is global, so a
    // traced run owns it for its whole duration.
    let recording = mode.recorder();
    if recording {
        wfl_obs::rec::enable();
    }
    // Combining is masked in the simulator unless the schedule family opts
    // in: a combining winner takes extra counted steps, so recordings made
    // under the plain families must keep replaying bit-identically
    // (`SchedKind::allows_combining`). Real runs always honor the config.
    let mut spec = spec;
    if let ExecMode::Sim { sched, .. } = *mode {
        spec.cfg.combine &= sched.allows_combining();
    }
    let make_world = |epoch: usize| World {
        algo: AlgoInstance::create(heap, registry, &spec),
        roots: wl.re_root(heap),
        rec: Outcomes::create_root(heap, nprocs, epoch_len, epoch * epoch_len),
    };

    let mut report = match *mode {
        ExecMode::Sim { sched, max_steps, .. } => {
            let mut totals = Totals::new(nprocs);
            let mut events: Vec<Event> = Vec::new();
            let mut epoch = 0usize;
            loop {
                let base = epoch * epoch_len;
                // The loop only opens an epoch while base < total_rounds,
                // so this is >= 1 except in the degenerate total == 0 run
                // (which must execute zero rounds).
                let rounds = epoch_len.min(total_rounds.saturating_sub(base));
                let world = make_world(epoch);
                let world_ref = &world;
                let report = SimBuilder::new(heap, nprocs)
                    .seed(seed)
                    // Re-seed the schedule per epoch so boundaries land at
                    // fresh interleavings (still fully deterministic).
                    .schedule_box(sched.build(nprocs, seed.wrapping_add(epoch as u64)))
                    .max_steps(max_steps)
                    .spawn_all(|pid| {
                        move |ctx: &Ctx| {
                            let mut tags = TagSource::new(pid);
                            let mut scratch = Scratch::new();
                            run_batch(ctx, wl, world_ref, registry, &mut tags, &mut scratch, pid, base, rounds, deadline_steps);
                        }
                    })
                    .run();
                report.assert_clean();
                // Each epoch's sim clock restarts near zero, so events from
                // different epochs must never be mixed into one ordered
                // history: recording is only meaningful inside epoch 0
                // (run_bank_mode_recorded caps itself accordingly).
                debug_assert!(
                    epoch == 0 || report.history.is_empty(),
                    "sim history recorded past epoch 0 would interleave as falsely concurrent"
                );
                events.extend(report.history.events);
                let (erep, safe) = wl.check(heap, &world.roots, &world.rec);
                postmortem_on_failure(epoch, safe);
                totals.merge(&erep, safe);
                // The sim host owns the quiescent gap between epoch runs,
                // so the control ring is writer-free here (the host has no
                // pid or clock of its own — `now` is 0 by convention).
                wfl_obs::rec::record_ctrl(wfl_obs::EventKind::EpochBarrier, 0, epoch as u64);
                epoch += 1;
                if epoch * epoch_len >= total_rounds {
                    state.finish(heap);
                    break;
                }
                state.advance(heap);
            }
            totals.into_report(None, &state, History::from_parts(vec![events]))
        }
        ExecMode::Real { threads, run_for, cfg, epoch_rounds, .. } => {
            assert_eq!(
                threads, nprocs,
                "ExecMode::Real.threads must equal the workload's process count"
            );
            // A timed run with an explicit epoch length keeps opening
            // epochs until the deadline; otherwise the run covers exactly
            // `total_rounds`.
            let unbounded = run_for.is_some() && epoch_rounds.is_some();
            let sync = EpochSync::new(nprocs);
            let slot_world = RwLock::new(make_world(0));
            let totals = Mutex::new(Totals::new(nprocs));
            let (sync_ref, state_ref, world_ref, totals_ref, make_world_ref) =
                (&sync, &state, &slot_world, &totals, &make_world);
            let report = run_threads_epochs(heap, nprocs, seed, run_for, cfg, &state, &sync, |pid| {
                move |ctx: &Ctx| {
                    let mut tags = TagSource::new(pid);
                    let mut scratch = Scratch::new();
                    run_epoch_worker(
                        ctx,
                        sync_ref,
                        |ctx, epoch| {
                            // A fresh heap lifetime begins: rewind the tag
                            // counters (sound — see the quiescence argument
                            // in DESIGN.md §1.1).
                            tags.reset();
                            let world = world_ref.read().unwrap();
                            let base = epoch as usize * epoch_len;
                            let rounds = if unbounded {
                                epoch_len
                            } else {
                                // The leader only continues while the next
                                // base is below the total, so this is >= 1
                                // except in the degenerate total == 0 run.
                                epoch_len.min(total_rounds.saturating_sub(base))
                            };
                            run_batch(ctx, wl, &world, registry, &mut tags, &mut scratch, pid, base, rounds, deadline_steps);
                        },
                        |ctx, epoch| {
                            // Leader, at quiescence: aggregate + check this
                            // epoch, then either close the run or reset the
                            // arena and re-root the next epoch.
                            let heap = ctx.heap();
                            let mut world = world_ref.write().unwrap();
                            let (erep, safe) = wl.check(heap, &world.roots, &world.rec);
                            postmortem_on_failure(epoch as usize, safe);
                            totals_ref.lock().unwrap().merge(&erep, safe);
                            // The barrier stamp goes on the leader's *own*
                            // ring, not the control ring: the fault
                            // injector thread may be writing control
                            // events concurrently, and pid rings are the
                            // single-writer-safe home for worker emissions.
                            wfl_obs::rec::record(
                                ctx.pid(),
                                wfl_obs::EventKind::EpochBarrier,
                                ctx.now(),
                                ctx.steps(),
                                epoch,
                            );
                            let next_base = (epoch as usize + 1) * epoch_len;
                            let done = ctx.stop_requested()
                                || (!unbounded && next_base >= total_rounds);
                            if done {
                                state_ref.finish(heap);
                                false
                            } else {
                                state_ref.advance(heap);
                                *world = make_world_ref(epoch as usize + 1);
                                true
                            }
                        },
                    );
                }
            });
            report.assert_clean();
            let totals = totals.into_inner().unwrap();
            // The driver-stamped epoch count (from the EpochState the
            // leaders advanced) must agree with the boundary merges — a
            // divergence means a worker body skipped the epoch protocol.
            assert_eq!(
                report.epochs, totals.epochs,
                "driver epoch count disagrees with boundary aggregation"
            );
            totals.into_report(Some(report.wall), &state, report.history)
        }
    };
    if recording {
        wfl_obs::rec::disable();
        report.trace = Some(wfl_obs::rec::snapshot());
    }
    report
}

/// Prints the flight recorder's tail when a recorded run fails its
/// safety check — the postmortem the recorder exists for. A no-op when
/// the recorder is off (every untraced run).
fn postmortem_on_failure(epoch: usize, safe: bool) {
    if !safe && wfl_obs::rec::is_enabled() {
        eprintln!(
            "[wfl-obs] epoch {epoch} safety check FAILED; flight-recorder tail:\n{}",
            wfl_obs::rec::snapshot().postmortem(16)
        );
    }
}

// ---------------------------------------------------------------------------
// Deterministic lock-set choice
// ---------------------------------------------------------------------------

/// Allocation-free deterministic lock-set draws: `L` distinct locks,
/// uniform without replacement, as a pure function of `(seed, pid, round)`.
///
/// The draw is a partial Fisher–Yates shuffle over a reusable pool; the
/// swaps are undone after each draw so the mapping is independent of call
/// history (the aggregation pass recomputes the same sets from a fresh
/// picker). In the driver hot loop this replaces a fresh `Vec` plus an
/// O(L²) `contains` scan per attempt.
pub struct LockPicker {
    pool: Vec<u32>,
    swaps: Vec<u32>,
}

impl LockPicker {
    /// A picker over locks `0..nlocks`.
    pub fn new(nlocks: usize) -> LockPicker {
        LockPicker { pool: (0..nlocks as u32).collect(), swaps: Vec::new() }
    }

    /// Writes the sorted lock set for `(seed, pid, round)` into `out`.
    pub fn pick_into(&mut self, seed: u64, pid: usize, round: usize, l: usize, out: &mut Vec<LockId>) {
        let n = self.pool.len();
        assert!(l <= n, "cannot draw {l} distinct locks from {n}");
        let mut rng = Pcg::new(seed ^ 0xD1CE, ((pid as u64) << 32) | round as u64);
        self.swaps.clear();
        for i in 0..l {
            let j = i + rng.below((n - i) as u64) as usize;
            self.pool.swap(i, j);
            self.swaps.push(j as u32);
        }
        out.clear();
        out.extend(self.pool[..l].iter().map(|&c| LockId(c)));
        // Undo the swaps (reverse order) so the pool is the identity again:
        // the mapping must depend only on (seed, pid, round).
        for i in (0..l).rev() {
            self.pool.swap(i, self.swaps[i] as usize);
        }
        out.sort_unstable();
    }
}

/// Deterministic lock-set choice for `(seed, pid, round)`: `L` distinct
/// locks, uniform without replacement, sorted. Convenience wrapper around
/// [`LockPicker`] for cold paths and tests.
pub fn pick_locks(seed: u64, pid: usize, round: usize, nlocks: usize, l: usize) -> Vec<LockId> {
    let mut picker = LockPicker::new(nlocks);
    let mut out = Vec::with_capacity(l);
    picker.pick_into(seed, pid, round, l, &mut out);
    out
}

// ---------------------------------------------------------------------------
// Random-conflict workload
// ---------------------------------------------------------------------------

/// Workload shape for [`run_random_conflict`].
#[derive(Debug, Clone, Copy)]
pub struct SimSpec {
    /// Number of processes.
    pub nprocs: usize,
    /// Attempts per process (in timed real runs: an upper bound, or with
    /// epochs the per-epoch batch size base).
    pub attempts_per_proc: usize,
    /// Number of locks in the system.
    pub nlocks: usize,
    /// Locks per attempt (`L`).
    pub locks_per_attempt: usize,
    /// Maximum random think time (local steps) between attempts.
    pub think_max: u64,
    /// Critical-section padding steps (see [`TouchAll::cs_work`]).
    /// Default 0: the historical read+write-only critical section.
    pub cs_work: u64,
    /// Workload + schedule seed.
    pub seed: u64,
    /// Scheduler family (used by the [`run_random_conflict`] legacy entry
    /// point, which runs `ExecMode::sim(self.sched, self.max_steps)`).
    pub sched: SchedKind,
    /// Scheduled-phase budget for the legacy entry point.
    pub max_steps: u64,
    /// Heap size in words.
    pub heap_words: usize,
    /// Allocator mode for the arena (default: sharded lanes; `Global`
    /// keeps the historical single bump cursor for the E13 A/B cell).
    pub alloc: AllocMode,
    /// Memory layout of the lock space and baseline lock words (default:
    /// padded + sharded; `SpaceLayout::packed_unified()` is the historical
    /// layout for the E13 A/B cells). Pure address arithmetic — sim replays
    /// are identical under every layout.
    pub layout: SpaceLayout,
}

impl SimSpec {
    /// A reasonable default spec; override fields as needed.
    pub fn new(nprocs: usize, attempts_per_proc: usize, nlocks: usize, locks_per_attempt: usize) -> SimSpec {
        SimSpec {
            nprocs,
            attempts_per_proc,
            nlocks,
            locks_per_attempt,
            think_max: 16,
            cs_work: 0,
            seed: 1,
            sched: SchedKind::Random,
            max_steps: 400_000_000,
            heap_words: 1 << 23,
            alloc: AllocMode::laned(),
            layout: SpaceLayout::default(),
        }
    }

    /// The execution mode the legacy sim-only entry points use.
    pub fn sim_mode(&self) -> ExecMode {
        ExecMode::sim(self.sched, self.max_steps)
    }
}

/// The random-conflict workload behind the epoch hooks.
struct ConflictWl {
    spec: SimSpec,
    touch: ThunkId,
}

impl EpochWorkload for ConflictWl {
    type Roots = Addr; // counters base
    type Local = (LockPicker, Vec<LockId>, Vec<u64>);

    fn re_root(&self, heap: &Heap) -> Addr {
        heap.alloc_root(self.spec.nlocks)
    }

    fn local(&self, _ctx: &Ctx<'_>, _roots: &Addr) -> Self::Local {
        (
            LockPicker::new(self.spec.nlocks),
            Vec::with_capacity(self.spec.locks_per_attempt),
            Vec::with_capacity(1 + self.spec.locks_per_attempt),
        )
    }

    fn round(
        &self,
        ctx: &Ctx<'_>,
        counters: &Addr,
        (picker, locks, args): &mut Self::Local,
        algo: &dyn LockAlgo,
        tags: &mut TagSource,
        scratch: &mut Scratch,
        pid: usize,
        round: usize,
        _slot: usize,
    ) -> AttemptOutcome {
        let s = &self.spec;
        picker.pick_into(s.seed, pid, round, s.locks_per_attempt, locks);
        args.clear();
        args.push(locks.len() as u64);
        args.extend(locks.iter().map(|l| counters.off(l.0).to_word()));
        let req = TryLockRequest { locks, thunk: self.touch, args };
        let out = algo.attempt(ctx, tags, scratch, &req);
        if s.think_max > 0 {
            let think = ctx.rand_below(s.think_max);
            for _ in 0..think {
                ctx.local_step();
            }
        }
        out
    }

    fn check(&self, heap: &Heap, counters: &Addr, rec: &Outcomes) -> (HarnessReport, bool) {
        let s = &self.spec;
        let mut expected = vec![0u64; s.nlocks];
        let mut picker = LockPicker::new(s.nlocks);
        let mut locks: Vec<LockId> = Vec::with_capacity(s.locks_per_attempt);
        let report = rec.aggregate(heap, |pid, round| {
            picker.pick_into(s.seed, pid, round, s.locks_per_attempt, &mut locks);
            for l in &locks {
                expected[l.0 as usize] += 1;
            }
        });
        let safe = (0..s.nlocks)
            .all(|l| cell::value(heap.peek(counters.off(l as u32))) as u64 == expected[l]);
        (report, safe)
    }
}

/// Runs the random-conflict workload in the simulator (legacy entry point;
/// equivalent to [`run_random_conflict_mode`] with [`SimSpec::sim_mode`]).
pub fn run_random_conflict(spec: &SimSpec, algo: AlgoKind) -> HarnessReport {
    run_random_conflict_mode(spec, algo, &spec.sim_mode())
}

/// Runs the random-conflict workload under the given algorithm on either
/// backend and returns aggregated metrics. Safety check (every epoch):
/// each lock's counter must equal the number of *recorded* winning
/// attempts covering it (recomputed from the deterministic
/// `(seed, pid, round)` lock sets).
pub fn run_random_conflict_mode(spec: &SimSpec, algo: AlgoKind, mode: &ExecMode) -> HarnessReport {
    assert!(spec.locks_per_attempt <= spec.nlocks);
    let mut registry = Registry::new();
    let touch = registry.register(TouchAll { max_locks: spec.locks_per_attempt, cs_work: spec.cs_work });
    let heap = Heap::with_mode(spec.heap_words, spec.alloc);
    let cfg = known_cfg(algo, spec.nprocs, spec.locks_per_attempt, 2 * spec.locks_per_attempt);
    let aspec =
        AlgoSpec { kind: algo, nlocks: spec.nlocks, aset: spec.nprocs.max(2), layout: spec.layout, cfg };
    let wl = ConflictWl { spec: *spec, touch };
    drive_epochs(&heap, &registry, aspec, spec.nprocs, spec.seed, spec.attempts_per_proc, mode, &wl)
}

// ---------------------------------------------------------------------------
// Dining philosophers
// ---------------------------------------------------------------------------

/// The philosophers workload behind the epoch hooks.
struct PhilWl {
    n: usize,
    eat: ThunkId,
}

impl EpochWorkload for PhilWl {
    type Roots = philosophers::Table;
    type Local = ();

    fn re_root(&self, heap: &Heap) -> philosophers::Table {
        philosophers::Table::re_root(heap, self.n, self.eat)
    }

    fn local(&self, _ctx: &Ctx<'_>, _roots: &philosophers::Table) {}

    fn round(
        &self,
        ctx: &Ctx<'_>,
        table: &philosophers::Table,
        _local: &mut (),
        algo: &dyn LockAlgo,
        tags: &mut TagSource,
        scratch: &mut Scratch,
        pid: usize,
        _round: usize,
        _slot: usize,
    ) -> AttemptOutcome {
        let out = table.attempt_eat(ctx, algo, tags, scratch, pid);
        let think = ctx.rand_below(24);
        for _ in 0..think {
            ctx.local_step();
        }
        out
    }

    fn check(&self, heap: &Heap, table: &philosophers::Table, rec: &Outcomes) -> (HarnessReport, bool) {
        let report = rec.aggregate(heap, |_pid, _round| {});
        let safe = (0..self.n).all(|i| table.meals_eaten(heap, i) as u64 == report.per_pid[i].0);
        (report, safe)
    }
}

/// Runs the dining-philosophers workload (E4) in the simulator (legacy
/// entry point).
pub fn run_philosophers(
    n: usize,
    attempts: usize,
    seed: u64,
    sched: SchedKind,
    algo: AlgoKind,
    heap_words: usize,
) -> HarnessReport {
    run_philosophers_mode(n, attempts, seed, algo, heap_words, &ExecMode::sim(sched, 600_000_000))
}

/// Runs the dining-philosophers workload on either backend: `n`
/// philosophers, each making up to `attempts` eating attempts per epoch
/// with random think time. Safety check (every epoch): each philosopher's
/// meal counter must equal their recorded wins.
pub fn run_philosophers_mode(
    n: usize,
    attempts: usize,
    seed: u64,
    algo: AlgoKind,
    heap_words: usize,
    mode: &ExecMode,
) -> HarnessReport {
    let mut registry = Registry::new();
    let eat = registry.register(philosophers::EatThunk);
    let heap = Heap::new(heap_words);
    let cfg = known_cfg(algo, 2, 2, 2);
    let aspec = AlgoSpec { kind: algo, nlocks: n, aset: 3, layout: SpaceLayout::default(), cfg };
    let wl = PhilWl { n, eat };
    drive_epochs(&heap, &registry, aspec, n, seed, attempts, mode, &wl)
}

// ---------------------------------------------------------------------------
// Bank transfers
// ---------------------------------------------------------------------------

/// History op code recorded by [`run_bank_mode_recorded`] for a winning
/// transfer. Numerically equal to `wfl_lincheck::regular::MS_INSERT`: a won
/// transfer "inserts" its unique token, so a set-regularity pass against a
/// final getSet synthesized from the *heap-recorded* outcomes cross-checks
/// the real-mode history pipeline against the outcome recording.
pub const BANK_HIST_WIN: u32 = 20;
/// History op code for a losing transfer attempt (ignored by the
/// set-regularity checker; recorded so the event stream covers every
/// attempt).
pub const BANK_HIST_LOSS: u32 = 99;

/// The unique history token for the bank attempt `(pid, global round)`.
pub fn bank_history_token(pid: usize, round: usize) -> u64 {
    ((pid as u64 + 1) << 32) | (round as u64 + 1)
}

/// The bank workload behind the epoch hooks.
struct BankWl {
    accounts: usize,
    initial: u32,
    seed: u64,
    transfer: ThunkId,
    /// Record invoke/respond history events for global rounds below this
    /// bound (0 = off; [`run_bank_mode_recorded`] sets it to the first
    /// epoch's length).
    record_rounds: usize,
    /// Tokens of heap-recorded wins among the recorded rounds, collected at
    /// the epoch boundary (the cross-check oracle).
    win_tokens: Mutex<Vec<u64>>,
}

impl EpochWorkload for BankWl {
    type Roots = crate::bank::Bank;
    type Local = ();

    fn re_root(&self, heap: &Heap) -> crate::bank::Bank {
        crate::bank::Bank::re_root(heap, self.accounts, self.initial, self.transfer)
    }

    fn local(&self, _ctx: &Ctx<'_>, _roots: &crate::bank::Bank) {}

    fn round(
        &self,
        ctx: &Ctx<'_>,
        bank: &crate::bank::Bank,
        _local: &mut (),
        algo: &dyn LockAlgo,
        tags: &mut TagSource,
        scratch: &mut Scratch,
        pid: usize,
        round: usize,
        _slot: usize,
    ) -> AttemptOutcome {
        let mut rng = Pcg::new(self.seed ^ 0xBA2C, ((pid as u64) << 32) | round as u64);
        let a = rng.below(self.accounts as u64) as usize;
        let mut b = rng.below(self.accounts as u64 - 1) as usize;
        if b >= a {
            b += 1;
        }
        let amt = 1 + rng.below(30) as u32;
        let out = bank.attempt_transfer(ctx, algo, tags, scratch, a, b, amt);
        if round < self.record_rounds {
            // Bracket the *known outcome* right after the attempt (a
            // linearization-point-style recording: the transfer has taken
            // effect by now, and the token interval precedes any later
            // audit event). Won attempts are set-regularity inserts;
            // losses use an opcode the checker ignores.
            let op = if out.won { BANK_HIST_WIN } else { BANK_HIST_LOSS };
            ctx.invoke(op, bank_history_token(pid, round), 0);
            ctx.respond(out.won as u64, vec![]);
        }
        let think = ctx.rand_below(16);
        for _ in 0..think {
            ctx.local_step();
        }
        out
    }

    fn check(&self, heap: &Heap, bank: &crate::bank::Bank, rec: &Outcomes) -> (HarnessReport, bool) {
        let mut tokens = Vec::new();
        let report = rec.aggregate(heap, |pid, round| {
            if round < self.record_rounds {
                tokens.push(bank_history_token(pid, round));
            }
        });
        if !tokens.is_empty() {
            self.win_tokens.lock().unwrap().extend(tokens);
        }
        // Conservation: any mutual-exclusion or idempotence failure moves
        // money (schedule-independent, so no win reconstruction needed).
        let safe = bank.total(heap) == (self.accounts as u64) * (self.initial as u64);
        (report, safe)
    }
}

/// Runs the bank-transfer workload on either backend: `nprocs` processes
/// each make up to `rounds` two-account transfers per epoch with
/// deterministic `(seed, pid, round)` account/amount choices. Safety check
/// (every epoch): the sum of all balances equals the initial total
/// (conservation — any mutual-exclusion or idempotence failure moves
/// money).
#[allow(clippy::too_many_arguments)]
pub fn run_bank_mode(
    nprocs: usize,
    accounts: usize,
    rounds: usize,
    initial: u32,
    seed: u64,
    algo: AlgoKind,
    heap_words: usize,
    mode: &ExecMode,
) -> HarnessReport {
    run_bank_inner(nprocs, accounts, rounds, initial, seed, algo, heap_words, mode, false).0
}

/// Like [`run_bank_mode`], but records a history of the **first epoch**'s
/// transfer attempts (invoke/respond events with [`BANK_HIST_WIN`] /
/// [`BANK_HIST_LOSS`] opcodes) and returns the [`bank_history_token`]s of
/// the first epoch's heap-recorded wins alongside the report. Feed the
/// history plus a synthetic final getSet built from the tokens to
/// `wfl_lincheck::regular` to cross-check the real-mode history pipeline
/// (use [`RealConfig::precise`] so event timestamps are globally ordered).
#[allow(clippy::too_many_arguments)]
pub fn run_bank_mode_recorded(
    nprocs: usize,
    accounts: usize,
    rounds: usize,
    initial: u32,
    seed: u64,
    algo: AlgoKind,
    heap_words: usize,
    mode: &ExecMode,
) -> (HarnessReport, Vec<u64>) {
    run_bank_inner(nprocs, accounts, rounds, initial, seed, algo, heap_words, mode, true)
}

#[allow(clippy::too_many_arguments)]
fn run_bank_inner(
    nprocs: usize,
    accounts: usize,
    rounds: usize,
    initial: u32,
    seed: u64,
    algo: AlgoKind,
    heap_words: usize,
    mode: &ExecMode,
    record_first_epoch: bool,
) -> (HarnessReport, Vec<u64>) {
    assert!(accounts >= 2);
    let mut registry = Registry::new();
    let transfer = registry.register(crate::bank::TransferThunk);
    let heap = Heap::new(heap_words);
    let cfg = known_cfg(algo, nprocs, 2, 4);
    let aspec = AlgoSpec {
        kind: algo,
        nlocks: accounts,
        aset: nprocs.max(2),
        layout: SpaceLayout::default(),
        cfg,
    };
    let wl = BankWl {
        accounts,
        initial,
        seed,
        transfer,
        record_rounds: if record_first_epoch { mode.epoch_len(rounds) } else { 0 },
        win_tokens: Mutex::new(Vec::new()),
    };
    let report = drive_epochs(&heap, &registry, aspec, nprocs, seed, rounds, mode, &wl);
    let tokens = wl.win_tokens.into_inner().unwrap();
    (report, tokens)
}

// ---------------------------------------------------------------------------
// Sorted list
// ---------------------------------------------------------------------------

/// Per-operation tryLock attempt budget for the list workload (each retry
/// draws one tag, so `keys_per_epoch * LIST_ATTEMPT_BUDGET` must stay
/// inside the per-process tag space of one epoch).
const LIST_ATTEMPT_BUDGET: u64 = 64;

/// The sorted-list workload behind the epoch hooks. Each epoch builds a
/// fresh list; pool slots and keys are keyed off the *in-epoch* slot, so
/// every epoch inserts the same key set into its own lifetime.
struct ListWl {
    nprocs: usize,
    keys_per_epoch: usize,
    insert_thunk: ThunkId,
    delete_thunk: ThunkId,
}

impl ListWl {
    /// Interleave keys across processes so splice points genuinely contend.
    fn key_of(&self, pid: usize, slot: usize) -> u32 {
        (1 + slot * self.nprocs + pid) as u32 * 10 + 3
    }

    fn node_of(&self, pid: usize, slot: usize) -> u32 {
        (1 + pid * self.keys_per_epoch + slot) as u32
    }
}

impl EpochWorkload for ListWl {
    type Roots = SortedList;
    type Local = Addr; // per-worker result cell

    fn re_root(&self, heap: &Heap) -> SortedList {
        let pool = 1 + self.nprocs * self.keys_per_epoch;
        // Thunks are registered by the runner; only the heap pool is
        // re-created per epoch.
        SortedList::re_root(heap, pool, self.insert_thunk, self.delete_thunk)
    }

    fn local(&self, ctx: &Ctx<'_>, _roots: &SortedList) -> Addr {
        ctx.alloc(1)
    }

    fn round(
        &self,
        ctx: &Ctx<'_>,
        list: &SortedList,
        result_cell: &mut Addr,
        algo: &dyn LockAlgo,
        tags: &mut TagSource,
        scratch: &mut Scratch,
        pid: usize,
        _round: usize,
        slot: usize,
    ) -> AttemptOutcome {
        let start = ctx.steps();
        let r = list.insert(
            ctx,
            algo,
            tags,
            scratch,
            *result_cell,
            self.node_of(pid, slot),
            self.key_of(pid, slot),
            LIST_ATTEMPT_BUDGET,
        );
        AttemptOutcome::decided(r == Some(true), ctx.steps() - start)
    }

    fn check(&self, heap: &Heap, list: &SortedList, rec: &Outcomes) -> (HarnessReport, bool) {
        let mut expected: Vec<u32> = Vec::new();
        let epoch_len = rec.cap;
        let report = rec.aggregate(heap, |pid, round| {
            expected.push(self.key_of(pid, round % epoch_len.max(1)));
        });
        expected.sort_unstable();
        let safe = list.snapshot(heap) == expected;
        (report, safe)
    }
}

/// Runs the sorted-list workload on either backend: each process inserts
/// `keys_per_proc` globally-unique keys per epoch (dedicated pool slots, so
/// the only contention is on adjacent splice points). Safety check (every
/// epoch): the final list snapshot is exactly the sorted set of keys whose
/// inserts were recorded as wins.
pub fn run_list_mode(
    nprocs: usize,
    keys_per_proc: usize,
    seed: u64,
    algo: AlgoKind,
    heap_words: usize,
    mode: &ExecMode,
) -> HarnessReport {
    let keys_per_epoch = mode.epoch_len(keys_per_proc);
    // Unlike the one-tag-per-round workloads, each list round may draw up
    // to LIST_ATTEMPT_BUDGET tags (one per tryLock retry) — bound each
    // epoch against the per-process tag space up front.
    assert!(
        (keys_per_epoch as u64) * LIST_ATTEMPT_BUDGET
            <= wfl_idem::tag::MIN_PROCESS_CAPACITY as u64,
        "keys/epoch {keys_per_epoch} x retry budget {LIST_ATTEMPT_BUDGET} exceeds the tag space"
    );
    let mut registry = Registry::new();
    let insert = registry.register(crate::list::InsertThunk);
    let delete = registry.register(crate::list::DeleteThunk);
    let pool = 1 + nprocs * keys_per_epoch;
    let heap = Heap::new(heap_words);
    let cfg = known_cfg(algo, nprocs, 2, 4);
    let aspec = AlgoSpec {
        kind: algo,
        nlocks: pool,
        aset: nprocs.max(2),
        layout: SpaceLayout::default(),
        cfg,
    };
    let wl = ListWl { nprocs, keys_per_epoch, insert_thunk: insert, delete_thunk: delete };
    drive_epochs(&heap, &registry, aspec, nprocs, seed, keys_per_proc, mode, &wl)
}

// ---------------------------------------------------------------------------
// Graph relaxations
// ---------------------------------------------------------------------------

/// The graph workload behind the epoch hooks.
struct GraphWl {
    vertices: usize,
    seed: u64,
    relax: ThunkId,
    init: Vec<u32>,
}

impl GraphWl {
    fn vertex_of(&self, pid: usize, round: usize) -> usize {
        Pcg::new(self.seed ^ 0x62AF, ((pid as u64) << 32) | round as u64)
            .below(self.vertices as u64) as usize
    }
}

impl EpochWorkload for GraphWl {
    type Roots = Graph;
    /// Pre-built per-vertex request buffers (the ring is small; attempts
    /// stay allocation-free inside the epoch).
    type Local = Vec<(Vec<LockId>, Vec<u64>)>;

    fn re_root(&self, heap: &Heap) -> Graph {
        Graph::ring_rooted(heap, self.vertices, &self.init, self.relax)
    }

    fn local(&self, _ctx: &Ctx<'_>, graph: &Graph) -> Self::Local {
        (0..self.vertices)
            .map(|v| {
                let mut args = Vec::new();
                graph.relax_args(v, &mut args);
                (graph.lock_set(v), args)
            })
            .collect()
    }

    fn round(
        &self,
        ctx: &Ctx<'_>,
        graph: &Graph,
        reqs: &mut Self::Local,
        algo: &dyn LockAlgo,
        tags: &mut TagSource,
        scratch: &mut Scratch,
        pid: usize,
        round: usize,
        _slot: usize,
    ) -> AttemptOutcome {
        let (locks, args) = &reqs[self.vertex_of(pid, round)];
        let req = TryLockRequest { locks, thunk: graph.relax, args };
        algo.attempt(ctx, tags, scratch, &req)
    }

    fn check(&self, heap: &Heap, graph: &Graph, rec: &Outcomes) -> (HarnessReport, bool) {
        let mut expected = vec![0u64; self.vertices];
        let report = rec.aggregate(heap, |pid, round| {
            expected[self.vertex_of(pid, round)] += 1;
        });
        let safe = (0..self.vertices).all(|v| graph.updates(heap, v) as u64 == expected[v]);
        (report, safe)
    }
}

/// Runs the graph workload on either backend: a ring of `vertices`, each
/// process making up to `rounds` relax attempts per epoch on deterministic
/// `(seed, pid, round)` vertices (`L = 3`: the vertex and both neighbors).
/// Safety check (every epoch): every vertex's lock-protected update counter
/// equals the number of recorded wins targeting it.
#[allow(clippy::too_many_arguments)]
pub fn run_graph_mode(
    nprocs: usize,
    vertices: usize,
    rounds: usize,
    seed: u64,
    algo: AlgoKind,
    heap_words: usize,
    mode: &ExecMode,
) -> HarnessReport {
    assert!(vertices >= 3);
    let mut registry = Registry::new();
    let relax = registry.register(crate::graph::RelaxThunk { max_degree: 2 });
    let heap = Heap::new(heap_words);
    let cfg = known_cfg(algo, nprocs, 3, 5);
    let aspec = AlgoSpec {
        kind: algo,
        nlocks: vertices,
        aset: nprocs.max(2),
        layout: SpaceLayout::default(),
        cfg,
    };
    let wl = GraphWl { vertices, seed, relax, init: vec![1u32; vertices] };
    drive_epochs(&heap, &registry, aspec, nprocs, seed, rounds, mode, &wl)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_locks_is_deterministic_distinct_sorted() {
        let a = pick_locks(5, 2, 7, 10, 3);
        let b = pick_locks(5, 2, 7, 10, 3);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted, a, "locks must be sorted and distinct");
    }

    #[test]
    fn lock_picker_matches_one_shot_and_is_history_independent() {
        // The reusable picker must give the same set regardless of what it
        // drew before (the aggregation pass recomputes with a fresh one).
        let mut picker = LockPicker::new(12);
        let mut out = Vec::new();
        picker.pick_into(9, 1, 4, 5, &mut out);
        let first = out.clone();
        for (pid, round) in [(0usize, 0usize), (3, 17), (2, 2)] {
            picker.pick_into(9, pid, round, 5, &mut out);
            assert_eq!(out, pick_locks(9, pid, round, 12, 5));
        }
        picker.pick_into(9, 1, 4, 5, &mut out);
        assert_eq!(out, first, "picker state leaked between draws");
    }

    #[test]
    fn lock_picker_draws_full_pool() {
        let mut picker = LockPicker::new(6);
        let mut out = Vec::new();
        picker.pick_into(3, 0, 0, 6, &mut out);
        assert_eq!(out, (0..6).map(LockId).collect::<Vec<_>>());
    }

    #[test]
    fn harness_runs_wfl_and_checks_safety() {
        let mut spec = SimSpec::new(3, 4, 3, 2);
        spec.seed = 11;
        let r = run_random_conflict(&spec, AlgoKind::Wfl { kappa: 3, delays: false, helping: true });
        assert!(r.safety_ok, "harness safety check failed");
        assert_eq!(r.attempts, 12);
        assert!(r.wins >= 1);
        assert_eq!(r.per_pid.len(), 3);
        assert!(r.wall.is_none(), "sim runs have no wall clock");
        assert_eq!(r.epochs, 1, "no epoch batching requested");
        assert!(r.heap_high_water > 0);
    }

    #[test]
    fn harness_runs_all_baselines() {
        for algo in [AlgoKind::Tsp, AlgoKind::Blocking, AlgoKind::Naive, AlgoKind::WflUnknown] {
            let mut spec = SimSpec::new(3, 3, 3, 2);
            spec.seed = 21;
            let r = run_random_conflict(&spec, algo);
            assert!(r.safety_ok, "{algo:?}: safety check failed");
            assert_eq!(r.attempts, 9, "{algo:?}");
            if matches!(algo, AlgoKind::Tsp | AlgoKind::Blocking) {
                assert_eq!(r.wins, 9, "{algo:?}: blocking-style algorithms always succeed");
            }
        }
    }

    #[test]
    fn blocking_cohort_always_wins_and_is_labeled() {
        assert_eq!(AlgoKind::BlockingCohort.label(), "blocking-cohort");
        let mut spec = SimSpec::new(3, 3, 3, 2);
        spec.seed = 21;
        let r = run_random_conflict(&spec, AlgoKind::BlockingCohort);
        assert!(r.safety_ok, "cohort safety check failed");
        assert_eq!(r.attempts, 9);
        assert_eq!(r.wins, 9, "blocking-style algorithms always succeed");
    }

    #[test]
    fn extended_roster_labels_round_trip() {
        for kind in AlgoKind::all_extended(4) {
            assert_eq!(
                AlgoKind::from_label(kind.label(), 4),
                Some(kind),
                "{kind:?}: label does not round-trip"
            );
        }
        assert_eq!(AlgoKind::from_label("nope", 4), None);
        assert_eq!(AlgoKind::FlatCombining.label(), "fc");
        assert_eq!(AlgoKind::CcSynch.label(), "ccsynch");
        assert_eq!(AlgoKind::WflCombine { kappa: 4 }.label(), "wfl+combine");
    }

    #[test]
    fn delegation_baselines_pass_harness_safety_checks() {
        for algo in [AlgoKind::FlatCombining, AlgoKind::CcSynch] {
            let mut spec = SimSpec::new(3, 4, 3, 2);
            spec.seed = 41;
            let r = run_random_conflict(&spec, algo);
            assert!(r.safety_ok, "{algo:?}: safety check failed");
            assert_eq!(r.attempts, 12, "{algo:?}");
            assert_eq!(r.wins, 12, "{algo:?}: the combiner applies every request");
            assert!(
                r.combined_wins > 0,
                "{algo:?}: some request must have been applied by another's combiner"
            );
        }
    }

    #[test]
    fn wfl_combine_is_masked_under_plain_sim_schedules() {
        // Replay-compat contract: under a schedule family that does not
        // opt in, WflCombine must be bit-identical to plain Wfl — the
        // combining fast path changes the counted step sequence, so it
        // only runs when the family names it.
        let run = |algo: AlgoKind| {
            let mut spec = SimSpec::new(4, 6, 4, 2);
            spec.seed = 77;
            spec.think_max = 0;
            let r = run_random_conflict(&spec, algo);
            assert!(r.safety_ok, "{algo:?}");
            (r.attempts, r.wins, r.aborts, r.steps.max(), r.steps.mean().to_bits(), r.per_pid.clone())
        };
        let plain = run(AlgoKind::Wfl { kappa: 4, delays: true, helping: true });
        let combine = run(AlgoKind::WflCombine { kappa: 4 });
        assert_eq!(combine, plain, "masked combining diverged from plain wfl");
        let mut spec = SimSpec::new(4, 6, 4, 2);
        spec.seed = 77;
        spec.think_max = 0;
        let r = run_random_conflict(&spec, AlgoKind::WflCombine { kappa: 4 });
        assert_eq!(r.combined_wins, 0, "combining fired under a non-combining family");
        assert!(r.combine_batch.is_empty());
    }

    #[test]
    fn wfl_combine_fires_under_opted_in_schedules() {
        // Single shared lock, no think time: every attempt contends, so
        // over enough rounds some winner must find a claimable ACTIVE peer.
        let mut spec = SimSpec::new(4, 40, 1, 1);
        spec.seed = 5;
        spec.think_max = 0;
        spec.sched = SchedKind::RandomCombining;
        let r = run_random_conflict(&spec, AlgoKind::WflCombine { kappa: 4 });
        assert!(r.safety_ok, "combining broke the counter invariant");
        assert_eq!(r.attempts, 160);
        assert!(r.combined_wins > 0, "combining never fired under RandomCombining");
        assert!(!r.combine_batch.is_empty(), "no batch sizes recorded");
        assert!(r.combined_wins <= r.wins);
        // Each combined win was granted by exactly one batch sample peer.
        assert!(
            r.combine_batch.len() as u64 <= r.combined_wins.max(r.wins),
            "more batches than winners"
        );
    }

    #[test]
    fn sim_replay_is_identical_across_layouts() {
        // The E13 A/B contract at the harness level: the schedule is
        // oblivious and layout is pure address arithmetic, so the same
        // seed must produce the same outcome stream under every layout.
        let run = |layout: SpaceLayout, algo: AlgoKind| {
            let mut spec = SimSpec::new(4, 6, 8, 2);
            spec.seed = 33;
            spec.layout = layout;
            let r = run_random_conflict(&spec, algo);
            assert!(r.safety_ok);
            (r.attempts, r.wins, r.aborts, r.steps.max(), r.steps.mean().to_bits(), r.per_pid.clone())
        };
        for algo in [
            AlgoKind::Wfl { kappa: 4, delays: true, helping: true },
            AlgoKind::Naive,
            AlgoKind::BlockingCohort,
        ] {
            let layouts = [
                SpaceLayout::packed_unified(),
                SpaceLayout::default(),
                SpaceLayout { placement: wfl_runtime::Placement::Padded, shards: 1 },
                SpaceLayout { placement: wfl_runtime::Placement::Packed, shards: 0 },
            ];
            let first = run(layouts[0], algo);
            for layout in &layouts[1..] {
                assert_eq!(run(*layout, algo), first, "{algo:?} diverged under {layout:?}");
            }
        }
    }

    #[test]
    fn philosophers_harness_reports_consistent_meals() {
        let r = run_philosophers(
            4,
            5,
            3,
            SchedKind::Random,
            AlgoKind::Wfl { kappa: 2, delays: false, helping: true },
            1 << 22,
        );
        assert!(r.safety_ok);
        assert_eq!(r.attempts, 20);
    }

    // ----- unified-backend coverage: the same drivers on real threads -----

    /// Every algorithm must pass the random-conflict safety check on free
    /// -running threads with the contention-free hot path — this is the
    /// acceptance gate for the unified harness, and (for `WflUnknown` and
    /// `Naive`) the only real-hardware race coverage those paths get.
    #[test]
    fn real_threads_random_conflict_all_algos_safe() {
        for algo in AlgoKind::all(4) {
            let mut spec = SimSpec::new(4, 60, 4, 2);
            spec.seed = 9;
            spec.heap_words = 1 << 22;
            let r = run_random_conflict_mode(&spec, algo, &ExecMode::real(4));
            assert!(r.safety_ok, "{algo:?}: real-threads safety check failed");
            assert_eq!(r.attempts, 240, "{algo:?}: untimed real runs complete every round");
            assert!(r.wall.is_some());
            assert_eq!(r.epochs, 1);
        }
    }

    /// The E17 roster on free-running threads: the combining fast path and
    /// both delegation baselines must pass the same recorded-outcome
    /// safety check as everything else (real mode never masks combining).
    #[test]
    fn real_threads_extended_algos_safe() {
        for algo in
            [AlgoKind::WflCombine { kappa: 4 }, AlgoKind::FlatCombining, AlgoKind::CcSynch]
        {
            let mut spec = SimSpec::new(4, 60, 4, 2);
            spec.seed = 9;
            spec.heap_words = 1 << 22;
            let r = run_random_conflict_mode(&spec, algo, &ExecMode::real(4));
            assert!(r.safety_ok, "{algo:?}: real-threads safety check failed");
            assert_eq!(r.attempts, 240, "{algo:?}");
            assert!(r.combined_wins <= r.wins, "{algo:?}");
        }
    }

    /// Heavier real-threads stress for the two paths that previously had no
    /// real-hardware lost-update coverage at all.
    #[test]
    fn real_threads_stress_wfl_unknown_and_naive() {
        for algo in [AlgoKind::WflUnknown, AlgoKind::Naive] {
            let mut spec = SimSpec::new(8, 400, 2, 2);
            spec.seed = 31;
            spec.think_max = 0;
            spec.heap_words = 1 << 24;
            let r = run_random_conflict_mode(&spec, algo, &ExecMode::real(8));
            assert!(r.safety_ok, "{algo:?}: lost update under real-threads stress");
            assert_eq!(r.attempts, 3200, "{algo:?}");
            assert!(r.wins >= 1, "{algo:?}: some attempt must succeed");
        }
    }

    #[test]
    fn timed_real_run_records_variable_attempts_and_stays_safe() {
        // A timed run without epoch batching stops early via the
        // cooperative flag; the safety check must hold for whatever subset
        // of rounds completed, and the wall stays near the actual finish.
        let mut spec = SimSpec::new(2, 3000, 3, 2);
        spec.seed = 17;
        spec.think_max = 4;
        spec.heap_words = 1 << 24;
        let mode = ExecMode::real_timed(2, Duration::from_millis(20));
        let r = run_random_conflict_mode(&spec, AlgoKind::Naive, &mode);
        assert!(r.safety_ok, "timed real run failed the safety check");
        assert!(r.attempts > 0, "no attempts completed in the window");
        assert!(r.attempts <= 6000);
        assert!(r.wall.is_some());
        assert_eq!(r.epochs, 1);
    }

    #[test]
    fn philosophers_run_on_real_threads() {
        for algo in [
            AlgoKind::Wfl { kappa: 2, delays: false, helping: true },
            AlgoKind::Blocking,
        ] {
            let r = run_philosophers_mode(4, 50, 7, algo, 1 << 22, &ExecMode::real(4));
            assert!(r.safety_ok, "{algo:?}: meal counters diverged on real threads");
            assert_eq!(r.attempts, 200, "{algo:?}");
        }
    }

    #[test]
    fn bank_conserves_money_on_both_backends() {
        for mode in [ExecMode::sim(SchedKind::Random, 100_000_000), ExecMode::real(3)] {
            for algo in [
                AlgoKind::Wfl { kappa: 3, delays: false, helping: true },
                AlgoKind::Tsp,
            ] {
                let r = run_bank_mode(3, 4, 12, 100, 23, algo, 1 << 22, &mode);
                assert!(r.safety_ok, "{}/{algo:?}: money not conserved", mode.label());
                assert_eq!(r.attempts, 36, "{}/{algo:?}", mode.label());
            }
        }
    }

    #[test]
    fn list_snapshot_matches_recorded_wins_on_both_backends() {
        for mode in [ExecMode::sim(SchedKind::Random, 100_000_000), ExecMode::real(3)] {
            for algo in [
                AlgoKind::Wfl { kappa: 4, delays: false, helping: true },
                AlgoKind::Naive,
            ] {
                let r = run_list_mode(3, 4, 41, algo, 1 << 22, &mode);
                assert!(r.safety_ok, "{}/{algo:?}: snapshot != recorded wins", mode.label());
                assert_eq!(r.attempts, 12, "{}/{algo:?}", mode.label());
            }
        }
    }

    #[test]
    fn graph_update_counters_match_recorded_wins_on_both_backends() {
        for mode in [ExecMode::sim(SchedKind::Random, 100_000_000), ExecMode::real(3)] {
            for algo in [
                AlgoKind::Wfl { kappa: 3, delays: false, helping: true },
                AlgoKind::WflUnknown,
            ] {
                let r = run_graph_mode(3, 6, 10, 13, algo, 1 << 22, &mode);
                assert!(r.safety_ok, "{}/{algo:?}: update counters diverged", mode.label());
                assert_eq!(r.attempts, 30, "{}/{algo:?}", mode.label());
            }
        }
    }

    #[test]
    #[should_panic(expected = "threads must equal")]
    fn real_mode_thread_mismatch_is_rejected() {
        let spec = SimSpec::new(3, 2, 3, 2);
        run_random_conflict_mode(&spec, AlgoKind::Tsp, &ExecMode::real(4));
    }

    // ----- the epoch lifecycle -----

    /// Untimed runs split into epochs must complete *exactly* the same
    /// round total as a single-epoch run — nothing lost or double-counted
    /// across the resets — and pass every epoch's safety check.
    #[test]
    fn sim_epochs_complete_exact_rounds_across_resets() {
        for epoch_rounds in [1usize, 3, 4, 10, 25] {
            let mut spec = SimSpec::new(3, 10, 4, 2);
            spec.seed = 77;
            spec.heap_words = 1 << 22;
            let mode = ExecMode::sim(SchedKind::Random, 100_000_000).with_epoch_rounds(epoch_rounds);
            let r = run_random_conflict_mode(
                &spec,
                AlgoKind::Wfl { kappa: 3, delays: false, helping: true },
                &mode,
            );
            assert!(r.safety_ok, "epoch_rounds {epoch_rounds}: safety failed");
            assert_eq!(r.attempts, 30, "epoch_rounds {epoch_rounds}: outcome lost or duplicated");
            assert_eq!(
                r.epochs,
                (10usize.div_ceil(epoch_rounds.min(10))) as u64,
                "epoch_rounds {epoch_rounds}"
            );
            assert_eq!(r.per_pid.iter().map(|p| p.1).sum::<u64>(), 30);
            assert_eq!(r.per_pid.iter().map(|p| p.0).sum::<u64>(), r.wins);
            assert_eq!(r.steps.len() as u64, r.attempts, "one step sample per attempt");
        }
    }

    /// A zero-round run executes zero rounds on both backends (regression:
    /// the epoch driver briefly clamped every epoch to >= 1 round).
    #[test]
    fn zero_round_runs_attempt_nothing() {
        for mode in [ExecMode::sim(SchedKind::Random, 1_000_000), ExecMode::real(3)] {
            let r = run_bank_mode(3, 4, 0, 100, 1, AlgoKind::Tsp, 1 << 20, &mode);
            assert_eq!(r.attempts, 0, "{}: zero rounds must mean zero attempts", mode.label());
            assert!(r.safety_ok, "{}", mode.label());
        }
    }

    /// The epoch lifecycle is deterministic in sim mode: same seed, same
    /// split — identical aggregate results.
    #[test]
    fn sim_epochs_are_deterministic() {
        let run = || {
            let mut spec = SimSpec::new(3, 9, 3, 2);
            spec.seed = 5;
            spec.heap_words = 1 << 22;
            let mode = ExecMode::sim(SchedKind::Random, 100_000_000).with_epoch_rounds(4);
            run_random_conflict_mode(&spec, AlgoKind::WflUnknown, &mode)
        };
        let (a, b) = (run(), run());
        assert_eq!(a.attempts, b.attempts);
        assert_eq!(a.wins, b.wins);
        assert_eq!(a.per_pid, b.per_pid);
        assert_eq!(a.epochs, b.epochs);
        assert_eq!(a.heap_high_water, b.heap_high_water);
    }

    /// Real-threads untimed epochs: the barrier protocol must neither lose
    /// nor duplicate outcomes, for every algorithm family.
    #[test]
    fn real_epochs_complete_exact_rounds_across_resets() {
        for algo in AlgoKind::all(4) {
            let mut spec = SimSpec::new(4, 40, 4, 2);
            spec.seed = 3;
            spec.heap_words = 1 << 22;
            let mode = ExecMode::real(4).with_epoch_rounds(9); // 40 = 4 full epochs + partial
            let r = run_random_conflict_mode(&spec, algo, &mode);
            assert!(r.safety_ok, "{algo:?}: epoch-crossing safety failed");
            assert_eq!(r.attempts, 160, "{algo:?}: outcome lost or duplicated across resets");
            assert_eq!(r.epochs, 5, "{algo:?}");
        }
    }

    /// The tentpole acceptance shape: a timed real run with a small epoch
    /// length must cross several epoch boundaries under the contention-free
    /// hot path, keep every epoch's safety check green, and use the full
    /// wall budget instead of stopping at the tag space.
    #[test]
    fn timed_real_soak_crosses_epochs_under_fast_config() {
        let mut spec = SimSpec::new(4, 30, 4, 2);
        spec.seed = 41;
        spec.think_max = 2;
        spec.heap_words = 1 << 22;
        let budget = Duration::from_millis(120);
        let mode = ExecMode::real_timed(4, budget).with_epoch_rounds(30);
        let r = run_random_conflict_mode(&spec, AlgoKind::Naive, &mode);
        assert!(r.safety_ok, "soak safety failed");
        assert!(r.epochs >= 3, "only {} epochs crossed in {budget:?}", r.epochs);
        assert!(
            r.attempts > 4 * 30,
            "attempts {} never exceeded one epoch's cap — epochs not batching",
            r.attempts
        );
        let wall = r.wall.expect("real runs report wall");
        assert!(wall >= budget, "soak stopped early at {wall:?}");
        assert_eq!(r.per_pid.iter().map(|p| p.1).sum::<u64>(), r.attempts);
        assert!(r.heap_high_water <= spec.heap_words);
    }

    /// Regression (allocation lanes): a heap far too small for one epoch's
    /// worth of attempts must NOT abort the process. Allocation pressure
    /// latches `heap_low` (after the in-flight attempt completes from the
    /// reserve), the batch ends early, the quiescent boundary rewinds
    /// every lane, and the run keeps crossing epochs for its full wall
    /// budget — with every epoch's safety check still exact.
    #[test]
    fn tiny_heap_triggers_epoch_resets_instead_of_panicking() {
        let mut spec = SimSpec::new(3, 512, 4, 2);
        spec.seed = 19;
        spec.think_max = 0;
        // ~16K words: epoch roots fit, but 3x512 wfl attempts (frames,
        // descriptors, cons cells) cannot — each epoch hits the lanes' end.
        spec.heap_words = 1 << 14;
        let budget = Duration::from_millis(60);
        let mode = ExecMode::real_timed(3, budget).with_epoch_rounds(512);
        let algo = AlgoKind::Wfl { kappa: 3, delays: false, helping: true };
        let r = run_random_conflict_mode(&spec, algo, &mode);
        assert!(r.safety_ok, "recorded outcomes diverged across pressure-driven resets");
        assert!(r.attempts > 0, "no attempt ever completed");
        assert!(
            r.epochs >= 2,
            "exhaustion must end batches at epoch boundaries (got {} epochs)",
            r.epochs
        );
        assert!(r.wall.expect("real run") >= budget, "run gave up before the deadline");
        assert!(r.heap_high_water <= spec.heap_words);
    }

    /// The same pressure shape in the deterministic simulator: batches end
    /// early on `heap_low`, the host-side reset rewinds the lanes, and the
    /// fixed epoch plan still completes without a panic.
    #[test]
    fn tiny_heap_sim_epochs_survive_allocation_pressure() {
        let mut spec = SimSpec::new(3, 400, 4, 2);
        spec.seed = 23;
        spec.think_max = 0;
        spec.heap_words = 1 << 14;
        let mode = ExecMode::sim(SchedKind::Random, 400_000_000).with_epoch_rounds(100);
        let algo = AlgoKind::Wfl { kappa: 3, delays: false, helping: true };
        let r = run_random_conflict_mode(&spec, algo, &mode);
        assert!(r.safety_ok);
        assert_eq!(r.epochs, 4, "the fixed epoch plan still runs to its end");
        assert!(r.attempts > 0);
        // Pressure means not every planned round ran — but nothing was
        // double-counted either.
        assert!(r.attempts <= 3 * 400);
    }

    // ----- per-attempt deadlines and fault injection (E16 plumbing) -----

    /// Armed deadlines across a budget sweep: tight budgets abort attempts
    /// (and every abort is classified under exactly one give-up reason),
    /// generous budgets still win — and the mutual-exclusion safety check
    /// holds at every point, aborted attempts included.
    #[test]
    fn deadline_armed_runs_abort_cleanly_and_stay_safe() {
        let mut saw_abort = false;
        let mut saw_win = false;
        for budget in [40u64, 400, 40_000] {
            let mut spec = SimSpec::new(3, 12, 3, 2);
            spec.seed = 29;
            let mode =
                ExecMode::sim(SchedKind::Random, 100_000_000).with_deadline_steps(budget);
            let algo = AlgoKind::Wfl { kappa: 3, delays: true, helping: true };
            let r = run_random_conflict_mode(&spec, algo, &mode);
            assert!(r.safety_ok, "budget {budget}: aborted attempts corrupted the counters");
            assert_eq!(r.attempts, 36, "budget {budget}: every round still records an outcome");
            let classified = r.give_up[GiveUp::Deadline.index()] + r.give_up[GiveUp::Stop.index()];
            assert_eq!(classified, r.aborts, "budget {budget}: aborts must classify exactly once");
            assert!(r.rescues <= r.aborts, "budget {budget}");
            saw_abort |= r.aborts > 0;
            saw_win |= r.wins > 0;
            // Determinism: the sim fault-free deadline run must replay.
            let r2 = run_random_conflict_mode(&spec, algo, &mode);
            assert_eq!((r2.attempts, r2.wins, r2.aborts, r2.rescues), (r.attempts, r.wins, r.aborts, r.rescues));
        }
        assert!(saw_abort, "the tight budget never aborted an attempt");
        assert!(saw_win, "the generous budget never won an attempt");
    }

    /// The same knob on free-running threads: an untimed run completes
    /// every round (aborted rounds record a loss, not a hole) and stays
    /// safe.
    #[test]
    fn deadline_armed_real_threads_stay_safe() {
        for algo in [
            AlgoKind::Wfl { kappa: 3, delays: true, helping: true },
            AlgoKind::Blocking,
        ] {
            let mut spec = SimSpec::new(3, 40, 3, 2);
            spec.seed = 37;
            spec.heap_words = 1 << 22;
            let mode = ExecMode::real(3).with_deadline_steps(300);
            let r = run_random_conflict_mode(&spec, algo, &mode);
            assert!(r.safety_ok, "{algo:?}: deadline aborts corrupted the counters");
            assert_eq!(r.attempts, 120, "{algo:?}");
            assert_eq!(
                r.give_up[GiveUp::Deadline.index()] + r.give_up[GiveUp::Stop.index()],
                r.aborts,
                "{algo:?}"
            );
        }
    }

    /// The sim fault model: periodic injected stalls freeze a rotating
    /// victim (sometimes a lock holder, mid-critical-section). The helping
    /// protocol must keep every algorithm's recorded outcomes consistent,
    /// and the runs must replay exactly.
    #[test]
    fn injected_faults_keep_every_algo_safe_and_deterministic() {
        let sched = SchedKind::RandomFaults { period: 48, quantum: 24 };
        for algo in AlgoKind::all(3) {
            let mut spec = SimSpec::new(3, 8, 3, 2);
            spec.seed = 43;
            let mode = ExecMode::sim(sched, 200_000_000);
            let r = run_random_conflict_mode(&spec, algo, &mode);
            assert!(r.safety_ok, "{algo:?}: faults corrupted the counters");
            assert_eq!(r.attempts, 24, "{algo:?}");
            assert!(r.wins > 0, "{algo:?}: nothing won under finite stalls");
            let r2 = run_random_conflict_mode(&spec, algo, &mode);
            assert_eq!((r2.wins, r2.aborts), (r.wins, r.aborts), "{algo:?}: fault run must replay");
        }
    }

    /// Regression (ISSUE 6 satellite): the `heap_low` latch must be cleared
    /// at the epoch boundary **even when the batch's final attempt
    /// aborted** — an abort must not leak the latch (or a stale armed
    /// deadline) into the next epoch, which would silently end every later
    /// batch at slot 0. Tiny heap + tight deadlines: batches end on
    /// allocation pressure, attempts abort mid-flight, and the fixed epoch
    /// plan still runs to its end with exact safety accounting.
    #[test]
    fn aborting_batches_do_not_leak_the_heap_low_latch_across_epochs() {
        let mut spec = SimSpec::new(3, 400, 4, 2);
        spec.seed = 47;
        spec.think_max = 0;
        // Aborted attempts cut helping (and its allocations) short, so the
        // heap must be tighter than the fault-free tiny-heap test above to
        // still hit pressure inside a 100-round batch.
        spec.heap_words = 10_000;
        let mode = ExecMode::sim(SchedKind::Random, 400_000_000)
            .with_epoch_rounds(100)
            .with_deadline_steps(120);
        // Delays off keeps single attempts short (so allocation volume —
        // and with it the heap-pressure batch cuts — matches the
        // fault-free tiny-heap regression above), while contested rounds
        // still overrun the 120-step budget and abort.
        let algo = AlgoKind::Wfl { kappa: 3, delays: false, helping: true };
        let r = run_random_conflict_mode(&spec, algo, &mode);
        assert!(r.safety_ok);
        assert_eq!(r.epochs, 4, "the fixed epoch plan still runs to its end");
        assert!(r.attempts > 0);
        assert!(r.aborts > 0, "tight budgets under pressure must abort some attempts");
        assert!(
            r.give_up[GiveUp::HeapLow.index()] > 0,
            "the tiny heap must cut batches short on allocation pressure: {r:?}"
        );
        // A leaked latch would end epochs 2..4 at slot 0: three processes
        // over four epochs must record far more attempts than one epoch
        // could alone if the boundary reset works. (Each batch records at
        // least one attempt before pressure can latch, so a leak caps the
        // total near the first epoch's contribution.)
        assert!(
            r.attempts > r.per_pid.len() as u64 * 3,
            "later epochs recorded almost nothing — latch leaked across the boundary?"
        );
    }

    /// Per-lane high-water accounting: the vector must sum to the scalar,
    /// cover every worker lane plus the root lane, and attribute re-root
    /// allocations to the root lane.
    #[test]
    fn per_lane_high_water_sums_and_attributes_roots() {
        let mut spec = SimSpec::new(3, 10, 4, 2);
        spec.seed = 7;
        spec.heap_words = 1 << 22;
        let mode = ExecMode::real(3).with_epoch_rounds(4);
        let algo = AlgoKind::Wfl { kappa: 3, delays: false, helping: true };
        let r = run_random_conflict_mode(&spec, algo, &mode);
        assert!(r.safety_ok);
        let lanes = &r.heap_high_water_lanes;
        assert!(!lanes.is_empty());
        // Per-lane peaks may come from different epochs, so they bound the
        // single-boundary total from above.
        assert!(lanes.iter().sum::<usize>() >= r.heap_high_water, "lane peaks must cover the total");
        assert!(lanes.iter().all(|&w| w <= r.heap_high_water));
        let root = *lanes.last().unwrap();
        assert!(root > 0, "re-rooting (lock space, outcome slots) bills the root lane");
        for (pid, &w) in lanes[..3].iter().enumerate() {
            assert!(w > 0, "worker lane {pid} allocated attempt records");
        }
        for lane in &lanes[3..lanes.len() - 1] {
            assert_eq!(*lane, 0, "unused lanes must stay empty");
        }
    }

    /// The `AllocMode::Global` arena (the E13 A/B baseline) must drive the
    /// identical workload to identical safety results.
    #[test]
    fn global_alloc_mode_still_passes_the_harness_checks() {
        for mode in [ExecMode::sim(SchedKind::Random, 100_000_000), ExecMode::real(3)] {
            let mut spec = SimSpec::new(3, 20, 4, 2);
            spec.seed = 13;
            spec.heap_words = 1 << 22;
            spec.alloc = AllocMode::Global;
            let r = run_random_conflict_mode(
                &spec,
                AlgoKind::Wfl { kappa: 3, delays: false, helping: true },
                &mode,
            );
            assert!(r.safety_ok, "{}: global-cursor arena failed safety", mode.label());
            assert_eq!(r.attempts, 60, "{}", mode.label());
            assert_eq!(r.heap_high_water_lanes.len(), 1, "global mode reports one lane");
        }
    }

    /// Every workload's safety check must aggregate correctly across epoch
    /// boundaries on both backends.
    #[test]
    fn all_workloads_survive_epoch_boundaries() {
        let algo = AlgoKind::Wfl { kappa: 3, delays: false, helping: true };
        for mode in [
            ExecMode::sim(SchedKind::Random, 100_000_000).with_epoch_rounds(3),
            ExecMode::real(3).with_epoch_rounds(3),
        ] {
            let label = mode.label();
            let r = run_philosophers_mode(3, 8, 7, algo, 1 << 22, &mode);
            assert!(r.safety_ok, "{label}/philosophers");
            assert_eq!((r.attempts, r.epochs), (24, 3), "{label}/philosophers");
            let r = run_bank_mode(3, 4, 8, 100, 23, algo, 1 << 22, &mode);
            assert!(r.safety_ok, "{label}/bank");
            assert_eq!((r.attempts, r.epochs), (24, 3), "{label}/bank");
            let r = run_list_mode(3, 8, 41, algo, 1 << 22, &mode);
            assert!(r.safety_ok, "{label}/list");
            assert_eq!((r.attempts, r.epochs), (24, 3), "{label}/list");
            let r = run_graph_mode(3, 6, 8, 13, algo, 1 << 22, &mode);
            assert!(r.safety_ok, "{label}/graph");
            assert_eq!((r.attempts, r.epochs), (24, 3), "{label}/graph");
        }
    }

    /// The recorded bank history covers exactly the first epoch, win events
    /// match the heap-recorded win tokens one-to-one, and later epochs stay
    /// silent.
    #[test]
    fn bank_recorded_history_matches_first_epoch_outcomes() {
        let mode = ExecMode::real(3).with_epoch_rounds(5);
        let (r, tokens) =
            run_bank_mode_recorded(3, 4, 15, 100, 29, AlgoKind::Tsp, 1 << 22, &mode);
        assert!(r.safety_ok);
        assert_eq!(r.epochs, 3);
        assert_eq!(r.attempts, 45);
        let wins: Vec<&Event> =
            r.history.events.iter().filter(|e| e.op == BANK_HIST_WIN).collect();
        let losses = r.history.events.iter().filter(|e| e.op == BANK_HIST_LOSS).count();
        assert_eq!(wins.len() + losses, 15, "history covers exactly the first epoch");
        assert_eq!(wins.len(), tokens.len(), "history wins == heap-recorded wins");
        let mut history_tokens: Vec<u64> = wins.iter().map(|e| e.a).collect();
        history_tokens.sort_unstable();
        let mut heap_tokens = tokens.clone();
        heap_tokens.sort_unstable();
        assert_eq!(history_tokens, heap_tokens, "token sets diverge");
        for e in &r.history.events {
            assert!(e.invoke < e.response, "event interval degenerate");
        }
    }
}
