//! An algorithm-agnostic experiment harness.
//!
//! Runs a *random-conflict workload* — every attempt draws a random set of
//! `L` distinct locks from `nlocks` and a critical section that increments
//! one counter per acquired lock — under any [`LockAlgo`], any schedule,
//! in the deterministic simulator; collects per-attempt step counts and
//! success rates; and **checks safety as a side effect** (each lock's
//! counter must equal the number of successful attempts that covered it).
//!
//! Every experiment built on this harness is therefore also a
//! mutual-exclusion test, which keeps the benchmark numbers honest.

use crate::philosophers;
use wfl_baselines::{BlockingTpl, LockAlgo, NaiveTryLock, TspLock, WflKnown, WflUnknown};
use wfl_core::{LockConfig, LockId, LockSpace, Scratch, TryLockRequest, UnknownConfig};
use wfl_idem::{cell, IdemRun, Registry, TagSource, Thunk};
use wfl_runtime::rng::Pcg;
use wfl_runtime::schedule::{Bursty, RoundRobin, Schedule, SeededRandom, Weighted};
use wfl_runtime::sim::SimBuilder;
use wfl_runtime::stats::{Bernoulli, Summary};
use wfl_runtime::{Addr, Ctx, Heap};

/// Critical section used by the harness: increment the counter of every
/// acquired lock (read+write per counter).
pub struct TouchAll {
    /// Maximum locks per attempt (sizes the op log).
    pub max_locks: usize,
}

impl Thunk for TouchAll {
    fn run(&self, run: &mut IdemRun<'_, '_>) {
        let n = run.arg(0) as usize;
        for i in 0..n {
            let c = Addr::from_word(run.arg(1 + i));
            let v = run.read(c);
            run.write(c, v + 1);
        }
    }
    fn max_ops(&self) -> usize {
        2 * self.max_locks
    }
}

/// Scheduler families for experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedKind {
    /// Fair round-robin.
    RoundRobin,
    /// Seeded uniform random.
    Random,
    /// Runs of the given length on one process at a time.
    Bursty(u64),
    /// Weights `1, 4, 7, ...` — persistent speed skew across processes.
    WeightedRamp,
}

impl SchedKind {
    fn build(self, n: usize, seed: u64) -> Box<dyn Schedule> {
        match self {
            SchedKind::RoundRobin => Box::new(RoundRobin::new(n)),
            SchedKind::Random => Box::new(SeededRandom::new(n, seed)),
            SchedKind::Bursty(len) => Box::new(Bursty::new(n, len, seed)),
            SchedKind::WeightedRamp => Box::new(Weighted::new(
                &(0..n as u64).map(|i| 1 + 3 * i).collect::<Vec<_>>(),
                seed,
            )),
        }
    }
}

/// Algorithms the harness can instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgoKind {
    /// The paper's known-bounds algorithm (§6). `kappa` is the contention
    /// bound used for the delays (active sets are always sized at the
    /// process count, which is a valid upper bound).
    Wfl {
        /// Contention bound κ for the delay formulas.
        kappa: usize,
        /// Fixed delays enabled (disable only for the E11 ablation).
        delays: bool,
        /// Helping phase enabled (disable only for the E12 ablation).
        helping: bool,
    },
    /// The §6.2 unknown-bounds variant.
    WflUnknown,
    /// Turek–Shasha–Prakash-style lock-free locks (always succeed).
    Tsp,
    /// Blocking ordered two-phase locking (always succeeds; blocks under
    /// crashes).
    Blocking,
    /// No-helping tryLock (may fail; never blocks).
    Naive,
}

/// Workload shape for [`run_random_conflict`].
#[derive(Debug, Clone, Copy)]
pub struct SimSpec {
    /// Number of processes.
    pub nprocs: usize,
    /// Attempts per process.
    pub attempts_per_proc: usize,
    /// Number of locks in the system.
    pub nlocks: usize,
    /// Locks per attempt (`L`).
    pub locks_per_attempt: usize,
    /// Maximum random think time (local steps) between attempts.
    pub think_max: u64,
    /// Workload + schedule seed.
    pub seed: u64,
    /// Scheduler family.
    pub sched: SchedKind,
    /// Scheduled-phase budget.
    pub max_steps: u64,
    /// Heap size in words.
    pub heap_words: usize,
}

impl SimSpec {
    /// A reasonable default spec; override fields as needed.
    pub fn new(nprocs: usize, attempts_per_proc: usize, nlocks: usize, locks_per_attempt: usize) -> SimSpec {
        SimSpec {
            nprocs,
            attempts_per_proc,
            nlocks,
            locks_per_attempt,
            think_max: 16,
            seed: 1,
            sched: SchedKind::Random,
            max_steps: 400_000_000,
            heap_words: 1 << 23,
        }
    }
}

/// Results of a harness run.
#[derive(Debug, Clone)]
pub struct HarnessReport {
    /// Total attempts made.
    pub attempts: u64,
    /// Total successful attempts.
    pub wins: u64,
    /// Per-attempt own-step counts.
    pub steps: Summary,
    /// Success-rate estimator over all attempts.
    pub success: Bernoulli,
    /// Per-process (wins, attempts).
    pub per_pid: Vec<(u64, u64)>,
    /// Whether every lock counter matched the recorded wins covering it.
    pub safety_ok: bool,
}

/// Deterministic lock-set choice for `(seed, pid, round)`: `L` distinct
/// locks, uniform without replacement.
pub fn pick_locks(seed: u64, pid: usize, round: usize, nlocks: usize, l: usize) -> Vec<LockId> {
    let mut rng = Pcg::new(seed ^ 0xD1CE, ((pid as u64) << 32) | round as u64);
    let mut chosen: Vec<u32> = Vec::with_capacity(l);
    while chosen.len() < l {
        let c = rng.below(nlocks as u64) as u32;
        if !chosen.contains(&c) {
            chosen.push(c);
        }
    }
    chosen.sort_unstable();
    chosen.into_iter().map(LockId).collect()
}

/// Runs the random-conflict workload under the given algorithm and
/// returns aggregated metrics (with the built-in safety check).
pub fn run_random_conflict(spec: &SimSpec, algo: AlgoKind) -> HarnessReport {
    assert!(spec.locks_per_attempt <= spec.nlocks);
    let mut registry = Registry::new();
    let touch = registry.register(TouchAll { max_locks: spec.locks_per_attempt });
    let heap = Heap::new(spec.heap_words);
    let counters = heap.alloc_root(spec.nlocks);
    let n_attempts = spec.nprocs * spec.attempts_per_proc;
    // outcome word per attempt: 0 not run, 1 lost, 2 won; plus steps word.
    let outcomes = heap.alloc_root(n_attempts);
    let steps_out = heap.alloc_root(n_attempts);

    // Algorithm-specific setup (all reference setup-time state).
    let space = LockSpace::create_root(&heap, spec.nlocks, spec.nprocs.max(2));
    let blocking = BlockingTpl::create_root(&heap, &registry, spec.nlocks);
    let naive = NaiveTryLock::create_root(&heap, &registry, spec.nlocks);
    let tsp = TspLock::create_root(&heap, &registry, spec.nlocks);
    let wfl_cfg = |kappa: usize, delays: bool, helping: bool| {
        let mut cfg = LockConfig::new(kappa, spec.locks_per_attempt, 2 * spec.locks_per_attempt);
        cfg.delays = delays;
        cfg.helping = helping;
        cfg
    };
    let known_cfg = match algo {
        AlgoKind::Wfl { kappa, delays, helping } => wfl_cfg(kappa, delays, helping),
        _ => wfl_cfg(spec.nprocs, true, true),
    };
    let wfl = WflKnown { space: &space, registry: &registry, cfg: known_cfg };
    let wfl_unknown =
        WflUnknown { space: &space, registry: &registry, cfg: UnknownConfig::new() };
    let algo_ref: &dyn LockAlgo = match algo {
        AlgoKind::Wfl { .. } => &wfl,
        AlgoKind::WflUnknown => &wfl_unknown,
        AlgoKind::Tsp => &tsp,
        AlgoKind::Blocking => &blocking,
        AlgoKind::Naive => &naive,
    };

    let spec_copy = *spec;
    let report = SimBuilder::new(&heap, spec.nprocs)
        .seed(spec.seed)
        .schedule_box(spec.sched.build(spec.nprocs, spec.seed))
        .max_steps(spec.max_steps)
        .spawn_all(|pid| {
            let s = spec_copy;
            move |ctx: &Ctx| {
                let mut tags = TagSource::new(pid);
                let mut scratch = Scratch::new();
                let mut args: Vec<u64> = Vec::new();
                for round in 0..s.attempts_per_proc {
                    let locks = pick_locks(s.seed, pid, round, s.nlocks, s.locks_per_attempt);
                    args.clear();
                    args.push(locks.len() as u64);
                    args.extend(locks.iter().map(|l| counters.off(l.0).to_word()));
                    let req = TryLockRequest { locks: &locks, thunk: touch, args: &args };
                    let out = algo_ref.attempt(ctx, &mut tags, &mut scratch, &req);
                    let idx = (pid * s.attempts_per_proc + round) as u32;
                    ctx.write(outcomes.off(idx), 1 + out.won as u64);
                    ctx.write(steps_out.off(idx), out.steps);
                    if s.think_max > 0 {
                        let think = ctx.rand_below(s.think_max);
                        for _ in 0..think {
                            ctx.local_step();
                        }
                    }
                    if ctx.stop_requested() {
                        break;
                    }
                }
            }
        })
        .run();
    report.assert_clean();

    // Aggregate + safety check.
    let mut steps = Summary::new();
    let mut success = Bernoulli::default();
    let mut per_pid = vec![(0u64, 0u64); spec.nprocs];
    let mut expected = vec![0u64; spec.nlocks];
    let mut attempts = 0u64;
    let mut wins = 0u64;
    for (pid, pp) in per_pid.iter_mut().enumerate() {
        for round in 0..spec.attempts_per_proc {
            let idx = (pid * spec.attempts_per_proc + round) as u32;
            let o = heap.peek(outcomes.off(idx));
            if o == 0 {
                continue; // not run (stopped early)
            }
            attempts += 1;
            pp.1 += 1;
            let won = o == 2;
            success.record(won);
            steps.push(heap.peek(steps_out.off(idx)));
            if won {
                wins += 1;
                pp.0 += 1;
                for l in pick_locks(spec.seed, pid, round, spec.nlocks, spec.locks_per_attempt) {
                    expected[l.0 as usize] += 1;
                }
            }
        }
    }
    let safety_ok = (0..spec.nlocks)
        .all(|l| cell::value(heap.peek(counters.off(l as u32))) as u64 == expected[l]);
    HarnessReport { attempts, wins, steps, success, per_pid, safety_ok }
}

/// Runs the dining-philosophers workload (E4): `n` philosophers, each
/// making `attempts` eating attempts with random think time. Returns the
/// harness report (steps/success) with the meal-count safety check.
pub fn run_philosophers(
    n: usize,
    attempts: usize,
    seed: u64,
    sched: SchedKind,
    algo: AlgoKind,
    heap_words: usize,
) -> HarnessReport {
    let mut registry = Registry::new();
    let heap = Heap::new(heap_words);
    let table = philosophers::Table::create_root(&heap, &mut registry, n);
    let space = LockSpace::create_root(&heap, n, 3);
    let outcomes = heap.alloc_root(n * attempts);
    let steps_out = heap.alloc_root(n * attempts);
    let known_cfg = match algo {
        AlgoKind::Wfl { kappa, delays, helping } => {
            let mut cfg = LockConfig::new(kappa, 2, 2);
            cfg.delays = delays;
            cfg.helping = helping;
            cfg
        }
        _ => LockConfig::new(2, 2, 2),
    };
    let blocking = BlockingTpl::create_root(&heap, &registry, n);
    let naive = NaiveTryLock::create_root(&heap, &registry, n);
    let tsp = TspLock::create_root(&heap, &registry, n);
    let wfl = WflKnown { space: &space, registry: &registry, cfg: known_cfg };
    let wfl_unknown = WflUnknown { space: &space, registry: &registry, cfg: UnknownConfig::new() };
    let algo_ref: &dyn LockAlgo = match algo {
        AlgoKind::Wfl { .. } => &wfl,
        AlgoKind::WflUnknown => &wfl_unknown,
        AlgoKind::Tsp => &tsp,
        AlgoKind::Blocking => &blocking,
        AlgoKind::Naive => &naive,
    };
    let table_ref = &table;
    let report = SimBuilder::new(&heap, n)
        .seed(seed)
        .schedule_box(sched.build(n, seed))
        .max_steps(600_000_000)
        .spawn_all(|pid| {
            move |ctx: &Ctx| {
                let mut tags = TagSource::new(pid);
                let mut scratch = Scratch::new();
                for round in 0..attempts {
                    let out = table_ref.attempt_eat(ctx, algo_ref, &mut tags, &mut scratch, pid);
                    let idx = (pid * attempts + round) as u32;
                    ctx.write(outcomes.off(idx), 1 + out.won as u64);
                    ctx.write(steps_out.off(idx), out.steps);
                    let think = ctx.rand_below(24);
                    for _ in 0..think {
                        ctx.local_step();
                    }
                }
            }
        })
        .run();
    report.assert_clean();

    let mut steps = Summary::new();
    let mut success = Bernoulli::default();
    let mut per_pid = vec![(0u64, 0u64); n];
    let mut attempts_total = 0u64;
    let mut wins = 0u64;
    for (pid, pp) in per_pid.iter_mut().enumerate() {
        for round in 0..attempts {
            let idx = (pid * attempts + round) as u32;
            let o = heap.peek(outcomes.off(idx));
            if o == 0 {
                continue;
            }
            attempts_total += 1;
            pp.1 += 1;
            let won = o == 2;
            success.record(won);
            steps.push(heap.peek(steps_out.off(idx)));
            if won {
                wins += 1;
                pp.0 += 1;
            }
        }
    }
    let safety_ok = (0..n).all(|i| table.meals_eaten(&heap, i) as u64 == per_pid[i].0);
    HarnessReport { attempts: attempts_total, wins, steps, success, per_pid, safety_ok }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_locks_is_deterministic_distinct_sorted() {
        let a = pick_locks(5, 2, 7, 10, 3);
        let b = pick_locks(5, 2, 7, 10, 3);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted, a, "locks must be sorted and distinct");
    }

    #[test]
    fn harness_runs_wfl_and_checks_safety() {
        let mut spec = SimSpec::new(3, 4, 3, 2);
        spec.seed = 11;
        let r = run_random_conflict(&spec, AlgoKind::Wfl { kappa: 3, delays: false, helping: true });
        assert!(r.safety_ok, "harness safety check failed");
        assert_eq!(r.attempts, 12);
        assert!(r.wins >= 1);
        assert_eq!(r.per_pid.len(), 3);
    }

    #[test]
    fn harness_runs_all_baselines() {
        for algo in [AlgoKind::Tsp, AlgoKind::Blocking, AlgoKind::Naive, AlgoKind::WflUnknown] {
            let mut spec = SimSpec::new(3, 3, 3, 2);
            spec.seed = 21;
            let r = run_random_conflict(&spec, algo);
            assert!(r.safety_ok, "{algo:?}: safety check failed");
            assert_eq!(r.attempts, 9, "{algo:?}");
            if matches!(algo, AlgoKind::Tsp | AlgoKind::Blocking) {
                assert_eq!(r.wins, 9, "{algo:?}: blocking-style algorithms always succeed");
            }
        }
    }

    #[test]
    fn philosophers_harness_reports_consistent_meals() {
        let r = run_philosophers(
            4,
            5,
            3,
            SchedKind::Random,
            AlgoKind::Wfl { kappa: 2, delays: false, helping: true },
            1 << 22,
        );
        assert!(r.safety_ok);
        assert_eq!(r.attempts, 20);
    }
}
