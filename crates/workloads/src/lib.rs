//! Workloads for the wait-free-locks experiments — the applications the
//! paper's introduction motivates, built on the public lock API:
//!
//! * [`philosophers`] — Dijkstra's dining philosophers, the paper's running
//!   example (`κ = L = 2`; Theorem 1.1 specializes to success probability
//!   ≥ 1/4 in O(1) steps, experiment E4).
//! * [`bank`] — multi-lock money transfers with a conservation invariant
//!   (an end-to-end mutual-exclusion detector).
//! * [`list`] — a sorted linked list updated with fine-grained two-lock
//!   critical sections and optimistic traversal, after the concurrent data
//!   structures cited in §1.
//! * [`graph`] — GraphLab-style local vertex updates: lock a vertex and its
//!   neighbors, recompute from neighbor values (§1's graph processing use
//!   case).
//! * [`player`] — player-adversary strategies (adaptive start times) for
//!   the fairness experiments E7/E11/E15, shared by both backends via the
//!   probe-cell protocol and `flood_decision`.
//! * [`harness`] — a small algorithm-agnostic runner collecting success
//!   rates and step statistics over any [`wfl_baselines::LockAlgo`].

pub mod bank;
pub mod graph;
pub mod harness;
pub mod list;
pub mod philosophers;
pub mod player;
