//! A sorted linked list updated through fine-grained two-lock critical
//! sections — the concurrent-data-structure use case of §1 (hand-over-hand
//! locked lists in the style of Heller et al.'s lazy list).
//!
//! Nodes live in a fixed pool; node `i` is protected by lock id `i`. An
//! insert/delete optimistically traverses the list with plain reads
//! (no locks), then issues a tryLock on `{pred, curr}` whose critical
//! section *re-validates* the optimistic observation before splicing —
//! validation failure means the critical section does nothing and the
//! caller retraverses, exactly like validate-then-act lazy lists. The
//! thunk's control flow depends only on logged reads, so helpers replay it
//! deterministically.
//!
//! Layout per node: `next` (tagged cell holding the pool index + 1, 0 =
//! tail/nil) and `key` (immutable after allocation). Node 0 is the head
//! sentinel with key −∞.

use wfl_baselines::LockAlgo;
use wfl_core::{LockId, Scratch, TryLockRequest};
use wfl_idem::{cell, IdemRun, Registry, TagSource, Thunk, ThunkId};
use wfl_runtime::{Addr, Ctx, Heap};

/// Insert splice: validate `pred.next == curr && pred unmarked`, then
/// `new.next = curr; pred.next = new`. Returns (via the result cell)
/// 1 on success, 0 on validation failure.
pub struct InsertThunk;

impl Thunk for InsertThunk {
    fn run(&self, run: &mut IdemRun<'_, '_>) {
        let pred_next = Addr::from_word(run.arg(0));
        let expect_curr = run.arg(1) as u32;
        let new_next = Addr::from_word(run.arg(2));
        let new_idx = run.arg(3) as u32;
        let result = Addr::from_word(run.arg(4));
        let observed = run.read(pred_next);
        if observed == expect_curr {
            run.write(new_next, expect_curr);
            run.write(pred_next, new_idx);
            run.write(result, 1);
        } else {
            run.write(result, 0);
        }
    }
    fn max_ops(&self) -> usize {
        4
    }
}

/// Delete splice: validate `pred.next == curr && curr.next == succ`, then
/// `pred.next = succ`. Result cell: 1 on success, 0 on validation failure.
pub struct DeleteThunk;

impl Thunk for DeleteThunk {
    fn run(&self, run: &mut IdemRun<'_, '_>) {
        let pred_next = Addr::from_word(run.arg(0));
        let expect_curr = run.arg(1) as u32;
        let curr_next = Addr::from_word(run.arg(2));
        let expect_succ = run.arg(3) as u32;
        let result = Addr::from_word(run.arg(4));
        let o1 = run.read(pred_next);
        let o2 = run.read(curr_next);
        if o1 == expect_curr && o2 == expect_succ {
            run.write(pred_next, expect_succ);
            run.write(result, 1);
        } else {
            run.write(result, 0);
        }
    }
    fn max_ops(&self) -> usize {
        4
    }
}

/// A sorted singly-linked list over a fixed node pool.
#[derive(Debug, Clone, Copy)]
pub struct SortedList {
    nodes: Addr,
    pool: usize,
    insert: ThunkId,
    delete: ThunkId,
}

const NODE_WORDS: u32 = 2; // [next, key]

impl SortedList {
    /// Creates the node pool (node 0 = head sentinel). Locks: use a
    /// `LockSpace` with at least `pool` locks; node `i` ↔ lock `i`.
    pub fn create_root(heap: &Heap, registry: &mut Registry, pool: usize) -> SortedList {
        let insert = registry.register(InsertThunk);
        let delete = registry.register(DeleteThunk);
        SortedList::re_root(heap, pool, insert, delete)
    }

    /// (Re-)allocates the node pool against pre-registered splice thunks —
    /// the epoch-lifecycle hook (thunks register once per run, heap roots
    /// are re-created after every quiescent reset).
    pub fn re_root(heap: &Heap, pool: usize, insert: ThunkId, delete: ThunkId) -> SortedList {
        assert!(pool >= 2, "pool must hold the sentinel plus data nodes");
        let nodes = heap.alloc_root(pool * NODE_WORDS as usize);
        // Head sentinel: next = nil (0), key unused.
        SortedList { nodes, pool, insert, delete }
    }

    fn next_addr(&self, idx: u32) -> Addr {
        self.nodes.off(idx * NODE_WORDS)
    }

    fn key_addr(&self, idx: u32) -> Addr {
        self.nodes.off(idx * NODE_WORDS + 1)
    }

    /// Optimistic traversal: find `(pred, curr)` with `key(pred) < key ≤
    /// key(curr)` (curr = 0 encodes nil). Plain reads, no locks.
    fn search(&self, ctx: &Ctx<'_>, key: u32) -> (u32, u32) {
        let mut pred = 0u32; // head sentinel
        let mut curr = cell::value(ctx.read(self.next_addr(0)));
        while curr != 0 {
            let ckey = ctx.read(self.key_addr(curr)) as u32;
            if ckey >= key {
                break;
            }
            pred = curr;
            curr = cell::value(ctx.read(self.next_addr(curr)));
        }
        (pred, curr)
    }

    /// Whether `key` is present (optimistic read-only membership).
    pub fn contains(&self, ctx: &Ctx<'_>, key: u32) -> bool {
        let (_pred, curr) = self.search(ctx, key);
        curr != 0 && ctx.read(self.key_addr(curr)) as u32 == key
    }

    /// Inserts `key` using the free pool slot `node_idx` (caller-managed
    /// slot ownership; slots are never reused within a run). Retries
    /// traversal+tryLock until the splice validates, `max_attempts`
    /// attempts are spent, or the driver requests a cooperative stop.
    /// Returns `Some(true)` on insert, `Some(false)` if the key was
    /// already present, `None` if attempts ran out (or the stop flag cut
    /// the retry loop short); on `None` the key is guaranteed absent.
    #[allow(clippy::too_many_arguments)]
    pub fn insert<A: LockAlgo + ?Sized>(
        &self,
        ctx: &Ctx<'_>,
        algo: &A,
        tags: &mut TagSource,
        scratch: &mut Scratch,
        result_cell: Addr,
        node_idx: u32,
        key: u32,
        max_attempts: u64,
    ) -> Option<bool> {
        assert!((node_idx as usize) < self.pool && node_idx != 0);
        // Publish the key (private slot; plain write).
        ctx.write(self.key_addr(node_idx), key as u64);
        for _ in 0..max_attempts {
            let (pred, curr) = self.search(ctx, key);
            if curr != 0 && ctx.read(self.key_addr(curr)) as u32 == key {
                return Some(false);
            }
            let locks = [LockId(pred), LockId(node_idx)];
            let args = [
                self.next_addr(pred).to_word(),
                curr as u64,
                self.next_addr(node_idx).to_word(),
                node_idx as u64,
                result_cell.to_word(),
            ];
            let req = TryLockRequest { locks: &locks, thunk: self.insert, args: &args };
            if algo.attempt(ctx, tags, scratch, &req).won && cell::value(ctx.read(result_cell)) == 1
            {
                return Some(true);
            }
            // Lost the tryLock or validation failed: retraverse and retry
            // (unless the driver is draining).
            if ctx.stop_requested() {
                return None;
            }
        }
        None
    }

    /// Deletes `key`. `Some(true)` on delete, `Some(false)` if absent,
    /// `None` if attempts ran out (or the stop flag cut the retry loop
    /// short).
    #[allow(clippy::too_many_arguments)]
    pub fn delete<A: LockAlgo + ?Sized>(
        &self,
        ctx: &Ctx<'_>,
        algo: &A,
        tags: &mut TagSource,
        scratch: &mut Scratch,
        result_cell: Addr,
        key: u32,
        max_attempts: u64,
    ) -> Option<bool> {
        for _ in 0..max_attempts {
            let (pred, curr) = self.search(ctx, key);
            if curr == 0 || ctx.read(self.key_addr(curr)) as u32 != key {
                return Some(false);
            }
            let succ = cell::value(ctx.read(self.next_addr(curr)));
            let locks = [LockId(pred), LockId(curr)];
            let args = [
                self.next_addr(pred).to_word(),
                curr as u64,
                self.next_addr(curr).to_word(),
                succ as u64,
                result_cell.to_word(),
            ];
            let req = TryLockRequest { locks: &locks, thunk: self.delete, args: &args };
            if algo.attempt(ctx, tags, scratch, &req).won && cell::value(ctx.read(result_cell)) == 1
            {
                return Some(true);
            }
            if ctx.stop_requested() {
                return None;
            }
        }
        None
    }

    /// Reads the list contents at quiescence (uncounted inspection).
    pub fn snapshot(&self, heap: &Heap) -> Vec<u32> {
        let mut out = Vec::new();
        let mut curr = cell::value(heap.peek(self.next_addr(0)));
        while curr != 0 {
            out.push(heap.peek(self.key_addr(curr)) as u32);
            curr = cell::value(heap.peek(self.next_addr(curr)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfl_baselines::WflKnown;
    use wfl_core::{LockConfig, LockSpace};
    use wfl_runtime::schedule::SeededRandom;
    use wfl_runtime::sim::SimBuilder;

    #[test]
    fn sequential_insert_delete_contains() {
        let mut registry = Registry::new();
        let heap = Heap::new(1 << 20);
        let list = SortedList::create_root(&heap, &mut registry, 16);
        let space = LockSpace::create_root(&heap, 16, 2);
        let algo = WflKnown {
            space: &space,
            registry: &registry,
            cfg: LockConfig::new(2, 2, 4).without_delays(),
        };
        let (l, a) = (&list, &algo);
        let report = SimBuilder::new(&heap, 1)
            .spawn(move |ctx: &Ctx| {
                let mut tags = TagSource::new(0);
                let mut scratch = Scratch::new();
                let cell_out = ctx.alloc(1);
                assert_eq!(l.insert(ctx, a, &mut tags, &mut scratch, cell_out, 1, 30, 10), Some(true));
                assert_eq!(l.insert(ctx, a, &mut tags, &mut scratch, cell_out, 2, 10, 10), Some(true));
                assert_eq!(l.insert(ctx, a, &mut tags, &mut scratch, cell_out, 3, 20, 10), Some(true));
                assert_eq!(l.insert(ctx, a, &mut tags, &mut scratch, cell_out, 4, 20, 10), Some(false));
                assert!(l.contains(ctx, 20));
                assert!(!l.contains(ctx, 15));
                assert_eq!(l.delete(ctx, a, &mut tags, &mut scratch, cell_out, 20, 10), Some(true));
                assert_eq!(l.delete(ctx, a, &mut tags, &mut scratch, cell_out, 20, 10), Some(false));
                assert!(!l.contains(ctx, 20));
            })
            .run();
        report.assert_clean();
        assert_eq!(list.snapshot(&heap), vec![10, 30]);
    }

    #[test]
    fn concurrent_disjoint_key_inserts_all_land() {
        for seed in 0..8 {
            let mut registry = Registry::new();
            let heap = Heap::new(1 << 22);
            let nprocs = 3;
            let per = 3;
            let pool = 1 + nprocs * per;
            let list = SortedList::create_root(&heap, &mut registry, pool);
            let space = LockSpace::create_root(&heap, pool, nprocs + 1);
            let algo = WflKnown {
                space: &space,
                registry: &registry,
                cfg: LockConfig::new(nprocs + 1, 2, 4).without_delays(),
            };
            let (l, a) = (&list, &algo);
            let report = SimBuilder::new(&heap, nprocs)
                .schedule(SeededRandom::new(nprocs, seed))
                .max_steps(100_000_000)
                .spawn_all(|pid| {
                    move |ctx: &Ctx| {
                        let mut tags = TagSource::new(pid);
                        let mut scratch = Scratch::new();
                        let cell_out = ctx.alloc(1);
                        for k in 0..per {
                            let node = 1 + (pid * per + k) as u32;
                            let key = (10 * (pid * per + k) + 5) as u32;
                            let r = l.insert(ctx, a, &mut tags, &mut scratch, cell_out, node, key, 10_000);
                            assert_eq!(r, Some(true), "seed {seed}: insert {key} failed");
                        }
                    }
                })
                .run();
            report.assert_clean();
            let snap = list.snapshot(&heap);
            let mut expected: Vec<u32> =
                (0..nprocs * per).map(|j| (10 * j + 5) as u32).collect();
            expected.sort_unstable();
            assert_eq!(snap, expected, "seed {seed}: list content or order wrong");
        }
    }

    #[test]
    fn concurrent_mixed_inserts_and_deletes_stay_sorted() {
        for seed in 0..6 {
            let mut registry = Registry::new();
            let heap = Heap::new(1 << 22);
            let nprocs = 3;
            let pool = 1 + 2 * nprocs;
            let list = SortedList::create_root(&heap, &mut registry, pool);
            let space = LockSpace::create_root(&heap, pool, nprocs + 1);
            let algo = WflKnown {
                space: &space,
                registry: &registry,
                cfg: LockConfig::new(nprocs + 1, 2, 4).without_delays(),
            };
            let (l, a) = (&list, &algo);
            let report = SimBuilder::new(&heap, nprocs)
                .schedule(SeededRandom::new(nprocs, 600 + seed))
                .max_steps(100_000_000)
                .spawn_all(|pid| {
                    move |ctx: &Ctx| {
                        let mut tags = TagSource::new(pid);
                        let mut scratch = Scratch::new();
                        let cell_out = ctx.alloc(1);
                        let n1 = 1 + (2 * pid) as u32;
                        let n2 = 2 + (2 * pid) as u32;
                        let k1 = (pid as u32 + 1) * 7;
                        let k2 = (pid as u32 + 1) * 7 + 3;
                        assert_eq!(l.insert(ctx, a, &mut tags, &mut scratch, cell_out, n1, k1, 10_000), Some(true));
                        assert_eq!(l.insert(ctx, a, &mut tags, &mut scratch, cell_out, n2, k2, 10_000), Some(true));
                        assert_eq!(l.delete(ctx, a, &mut tags, &mut scratch, cell_out, k1, 10_000), Some(true));
                    }
                })
                .run();
            report.assert_clean();
            let snap = list.snapshot(&heap);
            let mut expected: Vec<u32> = (0..nprocs as u32).map(|p| (p + 1) * 7 + 3).collect();
            expected.sort_unstable();
            assert_eq!(snap, expected, "seed {seed}");
            let mut sorted = snap.clone();
            sorted.sort_unstable();
            assert_eq!(snap, sorted, "seed {seed}: list must stay sorted");
        }
    }
}
