//! Bank transfers: the classic multi-lock workload with a global
//! conservation invariant.
//!
//! A transfer locks the two account locks, and its critical section moves
//! money if the source balance suffices. Whatever the interleaving, the
//! sum of all balances must be conserved and no balance may go negative —
//! any mutual-exclusion or idempotence failure shows up as a violation.

use wfl_baselines::LockAlgo;
use wfl_core::{LockId, Scratch, TryLockRequest};
use wfl_idem::{cell, IdemRun, Registry, TagSource, Thunk, ThunkId};
use wfl_runtime::{Addr, Ctx, Heap};

/// The transfer critical section: `if bal[from] >= amt { bal[from] -= amt;
/// bal[to] += amt }` (2 reads + up to 2 writes).
pub struct TransferThunk;

impl Thunk for TransferThunk {
    fn run(&self, run: &mut IdemRun<'_, '_>) {
        let from = Addr::from_word(run.arg(0));
        let to = Addr::from_word(run.arg(1));
        let amt = run.arg(2) as u32;
        let b_from = run.read(from);
        let b_to = run.read(to);
        if b_from >= amt {
            run.write(from, b_from - amt);
            run.write(to, b_to + amt);
        }
    }
    fn max_ops(&self) -> usize {
        4
    }
}

/// A bank of `n` accounts, each protected by its own lock (lock id =
/// account id).
#[derive(Debug, Clone, Copy)]
pub struct Bank {
    /// Number of accounts.
    pub n: usize,
    /// Base address of the balances (tagged cells).
    pub balances: Addr,
    /// The registered transfer thunk.
    pub transfer: ThunkId,
}

impl Bank {
    /// Allocates `n` accounts with `initial` balance each.
    pub fn create_root(heap: &Heap, registry: &mut Registry, n: usize, initial: u32) -> Bank {
        Bank::re_root(heap, n, initial, registry.register(TransferThunk))
    }

    /// (Re-)allocates the accounts against a pre-registered transfer thunk
    /// — the epoch-lifecycle hook (thunks register once per run, heap
    /// roots are re-created after every quiescent reset).
    pub fn re_root(heap: &Heap, n: usize, initial: u32, transfer: ThunkId) -> Bank {
        assert!(n >= 2, "need at least two accounts");
        let balances = heap.alloc_root(n);
        for i in 0..n {
            heap.poke(balances.off(i as u32), cell::untagged(initial));
        }
        Bank { n, balances, transfer }
    }

    /// One transfer attempt of `amt` from account `a` to account `b`.
    ///
    /// # Panics
    /// Panics if `a == b` (a transfer needs two distinct accounts).
    #[allow(clippy::too_many_arguments)]
    pub fn attempt_transfer<A: LockAlgo + ?Sized>(
        &self,
        ctx: &Ctx<'_>,
        algo: &A,
        tags: &mut TagSource,
        scratch: &mut Scratch,
        a: usize,
        b: usize,
        amt: u32,
    ) -> wfl_baselines::AttemptOutcome {
        assert_ne!(a, b, "transfer needs two distinct accounts");
        let locks = [LockId(a as u32), LockId(b as u32)];
        let args = [
            self.balances.off(a as u32).to_word(),
            self.balances.off(b as u32).to_word(),
            amt as u64,
        ];
        let req = TryLockRequest { locks: &locks, thunk: self.transfer, args: &args };
        algo.attempt(ctx, tags, scratch, &req)
    }

    /// The sum of all balances (uncounted inspection).
    pub fn total(&self, heap: &Heap) -> u64 {
        (0..self.n).map(|i| cell::value(heap.peek(self.balances.off(i as u32))) as u64).sum()
    }

    /// One account's balance (uncounted inspection).
    pub fn balance(&self, heap: &Heap, i: usize) -> u32 {
        cell::value(heap.peek(self.balances.off(i as u32)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfl_baselines::WflKnown;
    use wfl_core::{LockConfig, LockSpace};
    use wfl_runtime::schedule::{Bursty, SeededRandom};
    use wfl_runtime::sim::SimBuilder;

    fn run_bank(nprocs: usize, accounts: usize, rounds: usize, seed: u64, bursty: bool) {
        let mut registry = Registry::new();
        let heap = Heap::new(1 << 22);
        let bank = Bank::create_root(&heap, &mut registry, accounts, 100);
        let space = LockSpace::create_root(&heap, accounts, nprocs);
        let algo = WflKnown {
            space: &space,
            registry: &registry,
            cfg: LockConfig::new(nprocs, 2, 4).without_delays(),
        };
        let initial_total = bank.total(&heap);
        let (algo_ref, bank_ref) = (&algo, &bank);
        let mut builder = SimBuilder::new(&heap, nprocs).seed(seed).max_steps(100_000_000);
        builder = if bursty {
            builder.schedule(Bursty::new(nprocs, 30, seed))
        } else {
            builder.schedule(SeededRandom::new(nprocs, seed))
        };
        let report = builder
            .spawn_all(|pid| {
                move |ctx: &Ctx| {
                    let mut tags = TagSource::new(pid);
                    let mut scratch = Scratch::new();
                    for _ in 0..rounds {
                        let a = ctx.rand_below(accounts as u64) as usize;
                        let mut b = ctx.rand_below(accounts as u64) as usize;
                        if b == a {
                            b = (b + 1) % accounts;
                        }
                        let amt = 1 + ctx.rand_below(30) as u32;
                        bank_ref.attempt_transfer(ctx, algo_ref, &mut tags, &mut scratch, a, b, amt);
                    }
                }
            })
            .run();
        report.assert_clean();
        assert_eq!(bank.total(&heap), initial_total, "seed {seed}: money not conserved");
    }

    #[test]
    fn money_is_conserved_random_schedules() {
        for seed in 0..8 {
            run_bank(3, 4, 6, seed, false);
        }
    }

    #[test]
    fn money_is_conserved_bursty_schedules() {
        for seed in 0..8 {
            run_bank(4, 3, 5, 100 + seed, true);
        }
    }

    #[test]
    fn insufficient_funds_leave_balances_untouched() {
        let mut registry = Registry::new();
        let heap = Heap::new(1 << 20);
        let bank = Bank::create_root(&heap, &mut registry, 2, 10);
        let space = LockSpace::create_root(&heap, 2, 1);
        let algo = WflKnown {
            space: &space,
            registry: &registry,
            cfg: LockConfig::new(1, 2, 4).without_delays(),
        };
        let (algo_ref, bank_ref) = (&algo, &bank);
        let report = SimBuilder::new(&heap, 1)
            .spawn(move |ctx: &Ctx| {
                let mut tags = TagSource::new(0);
                let mut scratch = Scratch::new();
                let out = bank_ref.attempt_transfer(ctx, algo_ref, &mut tags, &mut scratch, 0, 1, 50);
                assert!(out.won, "uncontended attempt must win");
            })
            .run();
        report.assert_clean();
        assert_eq!(bank.balance(&heap, 0), 10, "guard must block the overdraft");
        assert_eq!(bank.balance(&heap, 1), 10);
    }
}
