//! Player-adversary strategies: who attempts what, and when — shared by
//! **both execution backends**.
//!
//! The paper's *player adversary* is adaptive — it sees the full history
//! and decides when each process starts a tryLock and on which locks. Two
//! drivers exercise it:
//!
//! * **Simulator**: a [`wfl_runtime::sim::Controller`]
//!   ([`TargetedStarter`]) inspects the quiesced heap between steps and
//!   feeds `start` commands into process mailboxes; the process side
//!   ([`run_player_loop`]) polls its mailbox and executes the commanded
//!   attempts. Experiments E7/E11 use this to try to bias a victim's
//!   success probability; the delay mechanism is what defeats it.
//! * **Real threads**: `wfl_fairness` runs competitor threads that watch
//!   the victim's probe cell directly and start attempts themselves.
//!
//! Both backends take the *same* adaptive decision through
//! [`flood_decision`]: the victim publishes its in-flight attempt through a
//! **probe cell** (`Scratch::probe` makes the paper's algorithms publish
//! their descriptor address; [`PROBE_OPAQUE`] marks an attempt of a
//! baseline algorithm that exposes no descriptor), and the adversary floods
//! strong contenders precisely while the victim sits in its pre-reveal
//! window. This is strictly more visibility than a real player could
//! extract — it can even read priorities — yet Theorem 6.9 says the
//! victim's per-attempt success probability still cannot be pushed below
//! `1/C_p`.

use wfl_baselines::LockAlgo;
use wfl_core::descriptor::PRIO_TBD;
use wfl_core::{Desc, LockId, Scratch, TryLockRequest};
use wfl_idem::{TagSource, ThunkId};
use wfl_runtime::sim::{Controller, Mailboxes};
use wfl_runtime::{Addr, Ctx, Heap};

/// Probe-cell sentinel: the process is inside an attempt but exposes no
/// descriptor (a baseline algorithm, or the first steps before the paper's
/// algorithms create theirs). Descriptor addresses are always `> 1`
/// (`Addr(1)` is the first *root* allocation, never an attempt record), so
/// the sentinel cannot collide with a published descriptor.
pub const PROBE_OPAQUE: u64 = 1;

/// How aggressively the adversary schedules competitor attempts against
/// the victim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdvStrength {
    /// Non-adaptive background contention: competitors attempt on a fixed
    /// cadence, blind to the victim's state (the control cell).
    Calm,
    /// Adaptive: flood competitors only while the victim is observed in
    /// its **pre-reveal** window (descriptor published, priority not yet
    /// drawn) — the paper's targeted player strategy.
    Targeted,
    /// Saturation: competitors attempt back-to-back, unconditionally —
    /// maximal point contention on the victim's locks at all times.
    Flood,
}

impl AdvStrength {
    /// Short label for tables and JSON.
    pub fn label(self) -> &'static str {
        match self {
            AdvStrength::Calm => "calm",
            AdvStrength::Targeted => "targeted",
            AdvStrength::Flood => "flood",
        }
    }

    /// All strengths, weakest first.
    pub fn all() -> [AdvStrength; 3] {
        [AdvStrength::Calm, AdvStrength::Targeted, AdvStrength::Flood]
    }
}

/// The **shared adaptive decision** of the player adversary: should
/// competitors be started right now, given the victim's probe cell? Used
/// verbatim by the simulator controller ([`TargetedStarter`]) and the
/// real-threads observer loop in `wfl_fairness`, so the two backends run
/// the same strategy.
///
/// [`AdvStrength::Calm`] always answers `false` here — its cadence-based
/// starts are driver-owned (the controller's clock in sim, think-loops on
/// real threads), not reactions to the victim. [`AdvStrength::Flood`]
/// always answers `true`: saturation needs no observation.
///
/// Reads are uncounted ([`Heap::peek`]): the adversary's omniscience is
/// free, exactly like the simulator controller's heap access. Racing with
/// the victim is benign — a stale window observation only mistimes a
/// competitor attempt, it cannot corrupt anything.
pub fn flood_decision(heap: &Heap, probe_cell: Addr, strength: AdvStrength) -> bool {
    match strength {
        AdvStrength::Calm => false,
        AdvStrength::Flood => true,
        AdvStrength::Targeted => {
            let w = heap.peek(probe_cell);
            if w == 0 {
                false
            } else if w == PROBE_OPAQUE {
                // No descriptor to watch: the whole attempt is the window.
                true
            } else {
                let d = Desc(Addr::from_word(w));
                heap.peek(d.prio_addr()) <= PRIO_TBD
            }
        }
    }
}

/// Command encoding: `[n, lock0.., arg_count, args..]`; an empty slice
/// means "stop".
pub fn encode_attempt(locks: &[LockId], args: &[u64]) -> Box<[u64]> {
    let mut words = Vec::with_capacity(2 + locks.len() + args.len());
    words.push(locks.len() as u64);
    words.extend(locks.iter().map(|l| l.0 as u64));
    words.push(args.len() as u64);
    words.extend_from_slice(args);
    words.into_boxed_slice()
}

/// Decodes a command produced by [`encode_attempt`].
pub fn decode_attempt(cmd: &[u64]) -> (Vec<LockId>, Vec<u64>) {
    let n = cmd[0] as usize;
    let locks: Vec<LockId> = cmd[1..1 + n].iter().map(|&w| LockId(w as u32)).collect();
    let argc = cmd[1 + n] as usize;
    let args = cmd[2 + n..2 + n + argc].to_vec();
    (locks, args)
}

/// The process side of a commanded player: polls the mailbox; on a
/// command, runs one attempt and records the outcome into
/// `results[attempt_counter]` as `1 + won` (0 = not yet run). Stops when
/// the driver raises the stop flag or after `max_attempts`.
///
/// If the caller set `scratch.probe`, the loop brackets every attempt with
/// [`PROBE_OPAQUE`]/clear writes so even baseline algorithms (which never
/// publish a descriptor) are observable by the adaptive adversary.
#[allow(clippy::too_many_arguments)]
pub fn run_player_loop<A: LockAlgo + ?Sized>(
    ctx: &Ctx<'_>,
    algo: &A,
    tags: &mut TagSource,
    scratch: &mut Scratch,
    thunk: ThunkId,
    results: Addr,
    max_attempts: u64,
) {
    player_loop_inner(ctx, algo, tags, scratch, thunk, results, None, max_attempts);
}

/// Like [`run_player_loop`], but also records each attempt's own-step cost
/// into `steps_out[attempt_counter]` (a region of at least `max_attempts`
/// words). Used by the fairness subsystem to build latency histograms.
#[allow(clippy::too_many_arguments)]
pub fn run_player_loop_stats<A: LockAlgo + ?Sized>(
    ctx: &Ctx<'_>,
    algo: &A,
    tags: &mut TagSource,
    scratch: &mut Scratch,
    thunk: ThunkId,
    results: Addr,
    steps_out: Addr,
    max_attempts: u64,
) {
    player_loop_inner(ctx, algo, tags, scratch, thunk, results, Some(steps_out), max_attempts);
}

#[allow(clippy::too_many_arguments)]
fn player_loop_inner<A: LockAlgo + ?Sized>(
    ctx: &Ctx<'_>,
    algo: &A,
    tags: &mut TagSource,
    scratch: &mut Scratch,
    thunk: ThunkId,
    results: Addr,
    steps_out: Option<Addr>,
    max_attempts: u64,
) {
    let mut done = 0u64;
    while done < max_attempts && !ctx.stop_requested() {
        let Some(cmd) = ctx.poll_mailbox() else { continue };
        if cmd.is_empty() {
            return;
        }
        let (locks, args) = decode_attempt(&cmd);
        let req = TryLockRequest { locks: &locks, thunk, args: &args };
        if let Some(cell) = scratch.probe {
            ctx.write_rel(cell, PROBE_OPAQUE);
        }
        let out = algo.attempt(ctx, tags, scratch, &req);
        if let Some(cell) = scratch.probe {
            ctx.write_rel(cell, 0);
        }
        ctx.write(results.off(done as u32), 1 + out.won as u64);
        if let Some(steps) = steps_out {
            ctx.write(steps.off(done as u32), out.steps);
        }
        done += 1;
    }
}

/// An adaptive player adversary that tries to make a victim lose: it
/// watches the victim's probe cell (see [`Scratch::probe`]) and starts
/// competitor attempts timed so that strong competitors are revealed
/// around the victim's attempts. The flood trigger is the shared
/// [`flood_decision`], so the same strategy runs on real threads in
/// `wfl_fairness`.
pub struct TargetedStarter {
    /// The victim process id (receives attempts periodically).
    pub victim: usize,
    /// Competitor process ids.
    pub competitors: Vec<usize>,
    /// Lock set everyone fights over.
    pub locks: Vec<LockId>,
    /// Thunk args for every attempt.
    pub args: Vec<u64>,
    /// Interval (in global steps) between victim attempt starts. Under
    /// [`AdvStrength::Calm`] the competitors also start on this cadence.
    pub victim_period: u64,
    /// The victim's probe cell: NULL when idle, [`PROBE_OPAQUE`] or the
    /// published descriptor address while the victim is mid-attempt. The
    /// victim's driver must set `Scratch::probe` to this cell.
    pub victim_desc_cell: Addr,
    /// Adversary aggressiveness (how the probe observations are used).
    pub strength: AdvStrength,
    /// How many adaptive competitor commands have been issued (state).
    pub issued: u64,
}

impl Controller for TargetedStarter {
    fn on_step(&mut self, t: u64, heap: &Heap, mail: &Mailboxes<'_>) {
        // Keep the victim attempting on a fixed cadence.
        if t.is_multiple_of(self.victim_period) && mail.queued(self.victim) == 0 {
            mail.send(self.victim, encode_attempt(&self.locks, &self.args));
        }
        // Calm control arm: blind background contention on the same cadence.
        let start_all = match self.strength {
            AdvStrength::Calm => t.is_multiple_of(self.victim_period),
            // Adaptive arms: flood exactly while the shared decision says
            // the victim is exposed.
            _ => flood_decision(heap, self.victim_desc_cell, self.strength),
        };
        if start_all {
            for &c in &self.competitors {
                if mail.queued(c) == 0 {
                    mail.send(c, encode_attempt(&self.locks, &self.args));
                    self.issued += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfl_runtime::Heap;

    #[test]
    fn command_roundtrip() {
        let locks = vec![LockId(3), LockId(7)];
        let args = vec![99, 100];
        let cmd = encode_attempt(&locks, &args);
        let (l2, a2) = decode_attempt(&cmd);
        assert_eq!(l2, locks);
        assert_eq!(a2, args);
    }

    #[test]
    fn empty_args_roundtrip() {
        let cmd = encode_attempt(&[LockId(0)], &[]);
        let (l, a) = decode_attempt(&cmd);
        assert_eq!(l, vec![LockId(0)]);
        assert!(a.is_empty());
    }

    #[test]
    fn flood_decision_tracks_probe_protocol() {
        let heap = Heap::new(256);
        let probe = heap.alloc_root(1);

        // Idle victim: Calm never reacts, Targeted sees no window, Flood
        // saturates unconditionally.
        assert!(!flood_decision(&heap, probe, AdvStrength::Calm));
        assert!(!flood_decision(&heap, probe, AdvStrength::Targeted));
        assert!(flood_decision(&heap, probe, AdvStrength::Flood));

        // Opaque attempt (baseline algorithm): the whole attempt is the
        // Targeted window.
        heap.poke(probe, PROBE_OPAQUE);
        assert!(!flood_decision(&heap, probe, AdvStrength::Calm));
        assert!(flood_decision(&heap, probe, AdvStrength::Targeted));

        // Published descriptor, priority unset: pre-reveal window.
        let desc = heap.alloc_root(8); // fake descriptor: status, prio, ...
        heap.poke(probe, desc.to_word());
        assert!(flood_decision(&heap, probe, AdvStrength::Targeted), "pre-reveal = window");

        // Priority revealed: Targeted backs off.
        heap.poke(Desc(desc).prio_addr(), 1 << 63);
        assert!(!flood_decision(&heap, probe, AdvStrength::Targeted), "post-reveal = no window");
    }
}
