//! Player-adversary strategies: who attempts what, and when.
//!
//! The paper's *player adversary* is adaptive — it sees the full history
//! and decides when each process starts a tryLock and on which locks. In
//! the simulator this is a [`wfl_runtime::sim::Controller`] that inspects
//! the quiesced heap between steps and feeds `start` commands into process
//! mailboxes; the process side ([`run_player_loop`]) polls its mailbox and
//! executes the commanded attempts. Experiments E7/E11 use the
//! [`TargetedStarter`] to try to bias a victim's success probability; the
//! delay mechanism is what defeats it.

use wfl_baselines::LockAlgo;
use wfl_core::{Desc, LockId, Scratch, TryLockRequest};
use wfl_idem::{TagSource, ThunkId};
use wfl_runtime::sim::{Controller, Mailboxes};
use wfl_runtime::{Addr, Ctx, Heap};

/// Command encoding: `[n, lock0.., arg_count, args..]`; an empty slice
/// means "stop".
pub fn encode_attempt(locks: &[LockId], args: &[u64]) -> Box<[u64]> {
    let mut words = Vec::with_capacity(2 + locks.len() + args.len());
    words.push(locks.len() as u64);
    words.extend(locks.iter().map(|l| l.0 as u64));
    words.push(args.len() as u64);
    words.extend_from_slice(args);
    words.into_boxed_slice()
}

/// Decodes a command produced by [`encode_attempt`].
pub fn decode_attempt(cmd: &[u64]) -> (Vec<LockId>, Vec<u64>) {
    let n = cmd[0] as usize;
    let locks: Vec<LockId> = cmd[1..1 + n].iter().map(|&w| LockId(w as u32)).collect();
    let argc = cmd[1 + n] as usize;
    let args = cmd[2 + n..2 + n + argc].to_vec();
    (locks, args)
}

/// The process side of a commanded player: polls the mailbox; on a
/// command, runs one attempt and records the outcome into
/// `results[attempt_counter]` as `1 + won` (0 = not yet run). Stops when
/// the driver raises the stop flag or after `max_attempts`.
#[allow(clippy::too_many_arguments)]
pub fn run_player_loop<A: LockAlgo + ?Sized>(
    ctx: &Ctx<'_>,
    algo: &A,
    tags: &mut TagSource,
    scratch: &mut Scratch,
    thunk: ThunkId,
    results: Addr,
    max_attempts: u64,
) {
    let mut done = 0u64;
    while done < max_attempts && !ctx.stop_requested() {
        let Some(cmd) = ctx.poll_mailbox() else { continue };
        if cmd.is_empty() {
            return;
        }
        let (locks, args) = decode_attempt(&cmd);
        let req = TryLockRequest { locks: &locks, thunk, args: &args };
        let out = algo.attempt(ctx, tags, scratch, &req);
        ctx.write(results.off(done as u32), 1 + out.won as u64);
        done += 1;
    }
}

/// An adaptive player adversary that tries to make a victim lose: it
/// watches the victim's descriptor region and starts competitor attempts
/// timed so that strong competitors are revealed around the victim's
/// attempts. It has full read access to the heap (including everyone's
/// priorities) — strictly stronger than what a real player could know —
/// yet Theorem 6.9 says the victim's per-attempt success probability
/// still cannot be pushed below `1/C_p`.
pub struct TargetedStarter {
    /// The victim process id (receives attempts periodically).
    pub victim: usize,
    /// Competitor process ids.
    pub competitors: Vec<usize>,
    /// Lock set everyone fights over.
    pub locks: Vec<LockId>,
    /// Thunk args for every attempt.
    pub args: Vec<u64>,
    /// Interval (in global steps) between victim attempt starts.
    pub victim_period: u64,
    /// Address of a cell the victim publishes its current descriptor to
    /// (NULL when idle); lets the adversary react to the victim's state.
    pub victim_desc_cell: Addr,
    /// How many commands have been issued so far (state).
    pub issued: u64,
}

impl Controller for TargetedStarter {
    fn on_step(&mut self, t: u64, heap: &Heap, mail: &Mailboxes<'_>) {
        // Keep the victim attempting on a fixed cadence.
        if t.is_multiple_of(self.victim_period) && mail.queued(self.victim) == 0 {
            mail.send(self.victim, encode_attempt(&self.locks, &self.args));
        }
        // Adaptive part: whenever the victim has a live, not-yet-revealed
        // descriptor (it is inside its pending phase), flood one competitor
        // attempt per competitor — trying to land their reveals inside the
        // victim's window. This uses full heap visibility (the adversary
        // can even read priorities).
        let victim_desc = heap.peek(self.victim_desc_cell);
        if victim_desc != 0 {
            let d = Desc(Addr::from_word(victim_desc));
            let prio = heap.peek(d.prio_addr());
            if prio <= 1 {
                for &c in &self.competitors {
                    if mail.queued(c) == 0 {
                        mail.send(c, encode_attempt(&self.locks, &self.args));
                        self.issued += 1;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_roundtrip() {
        let locks = vec![LockId(3), LockId(7)];
        let args = vec![99, 100];
        let cmd = encode_attempt(&locks, &args);
        let (l2, a2) = decode_attempt(&cmd);
        assert_eq!(l2, locks);
        assert_eq!(a2, args);
    }

    #[test]
    fn empty_args_roundtrip() {
        let cmd = encode_attempt(&[LockId(0)], &[]);
        let (l, a) = decode_attempt(&cmd);
        assert_eq!(l, vec![LockId(0)]);
        assert!(a.is_empty());
    }
}
