//! Combiner-freeze fault injection for the delegation baselines: the
//! graceful-degradation story extended to the fc/ccsynch family.
//!
//! A delegation lock routes every critical section through one combiner,
//! so a frozen combiner is a single point of failure: pending requests
//! blow their deadline budgets spinning on it. wfl's combining fast path
//! takes the batching without that structural cost — a frozen combining
//! winner's batch members are ordinary decided descriptors, helpable by
//! anyone — so freezes cost it nothing it wasn't already paying.
//!
//! The sim arm is the load-bearing one: the schedule-level freeze
//! (`RandomFaults`/`FaultsCombining`) is deterministic, so the goodput
//! ratios and abort tails below are exact, replayable numbers, not
//! thresholds against noise. The real-threads arm drives the wall-clock
//! injector (`FaultSpec`) end-to-end on the same roster; on an arbitrary
//! CI box its *timing* is noise, so it asserts the safety audit and
//! completion, not ratios.

use std::time::Duration;
use wfl_workloads::harness::{
    run_random_conflict_mode, AlgoKind, ExecMode, HarnessReport, SchedKind, SimSpec,
};
use wfl_runtime::real::{FaultSpec, RealConfig};

const SEED: u64 = 4242;
/// Own-step SLO an unobstructed attempt meets comfortably (the e16/e17
/// sizing for 3 processes).
const SLO: u64 = 12_600;
/// Freeze window (the e17 sizing): one victim loses the first `QUANTUM`
/// of every `PERIOD` scheduled slots — several SLOs long, so a contender
/// pinned behind the victim blows its budget before the thaw.
const QUANTUM: u64 = 56_700;
const PERIOD: u64 = 85_050;

fn run_cell(algo: AlgoKind, faulted: bool, rounds: usize) -> HarnessReport {
    let threads = 3usize;
    let mut spec = SimSpec::new(threads, rounds, threads, 1);
    spec.seed = SEED;
    spec.think_max = 0;
    spec.cs_work = 400;
    let combining = matches!(algo, AlgoKind::WflCombine { .. });
    let sched = match (combining, faulted) {
        (true, false) => SchedKind::RandomCombining,
        (true, true) => SchedKind::FaultsCombining { period: PERIOD, quantum: QUANTUM },
        (false, false) => SchedKind::Random,
        (false, true) => SchedKind::RandomFaults { period: PERIOD, quantum: QUANTUM },
    };
    let mode = ExecMode::sim(sched, 2_000_000_000).with_deadline_steps(SLO);
    let r = run_random_conflict_mode(&spec, algo, &mode);
    assert!(r.safety_ok, "{}/faults {faulted}: safety audit failed", algo.label());
    r
}

/// Wins per own-step across all attempts — the sim goodput metric.
fn goodput(r: &HarnessReport) -> f64 {
    let steps_total = r.steps.mean() * r.steps.len() as f64;
    assert!(steps_total > 0.0);
    r.wins as f64 / steps_total
}

/// The headline claim, deterministic arm: freezes cost fc and ccsynch
/// their wait-freedom — pending requests pinned behind the frozen
/// combiner blow the SLO (aborts appear with p99 at or past the budget)
/// and goodput degrades below wfl+combine's faulted/fault-free ratio —
/// while wfl+combine blows zero deadlines and keeps >= 0.8x of its
/// fault-free goodput.
#[test]
fn combiner_freeze_collapses_delegation_but_not_wfl_combine() {
    let rounds = 150;
    let combine = AlgoKind::WflCombine { kappa: 3 };
    let fault_free = run_cell(combine, false, rounds);
    let faulted = run_cell(combine, true, rounds);
    assert_eq!(faulted.aborts, 0, "wfl+combine blew a deadline under freezes");
    assert!(fault_free.combined_wins > 0, "combining never fired fault-free");
    assert!(faulted.combined_wins > 0, "combining never fired under freezes");
    let combine_ratio = goodput(&faulted) / goodput(&fault_free);
    assert!(
        combine_ratio >= 0.8,
        "wfl+combine kept only {combine_ratio:.3}x of its fault-free goodput"
    );

    for algo in [AlgoKind::FlatCombining, AlgoKind::CcSynch] {
        let rounds = 2 * rounds; // delegation rounds are ~2x cheaper (e17)
        let fault_free = run_cell(algo, false, rounds);
        let faulted = run_cell(algo, true, rounds);
        assert_eq!(fault_free.aborts, 0, "{}: fault-free cell aborted", algo.label());
        let ratio = goodput(&faulted) / goodput(&fault_free);
        assert!(
            faulted.aborts > 0,
            "{}: no request blew its SLO behind the frozen combiner",
            algo.label()
        );
        assert!(
            faulted.abort_steps.percentile(0.99) >= SLO,
            "{}: abort p99 {} under the SLO {SLO}",
            algo.label(),
            faulted.abort_steps.percentile(0.99)
        );
        assert!(
            ratio < 0.9 * combine_ratio,
            "{}: faulted/fault-free ratio {ratio:.3} not below 0.9x wfl+combine's \
             {combine_ratio:.3} — no combiner-freeze cost",
            algo.label()
        );
    }
}

/// Plain wfl under the same freezes, for contrast: helping keeps the
/// audit clean and no deadline blows even without the combine bit.
#[test]
fn plain_wfl_survives_freezes_without_aborts() {
    let algo = AlgoKind::Wfl { kappa: 3, delays: true, helping: true };
    let r = run_cell(algo, true, 150);
    assert_eq!(r.aborts, 0, "wfl blew a deadline under freezes");
    assert_eq!(r.combined_wins, 0, "plain wfl cannot combine");
}

/// The wall-clock injector end-to-end (`FaultSpec`): every algorithm in
/// the delegation showdown roster survives real suspensions with the
/// safety audit clean and every round completed. Timing is asserted
/// nowhere — on a saturated CI box the quanta stretch arbitrarily.
#[test]
fn real_fault_injector_keeps_roster_safe() {
    let threads = 2usize;
    for algo in [
        AlgoKind::WflCombine { kappa: 2 },
        AlgoKind::FlatCombining,
        AlgoKind::CcSynch,
    ] {
        let mut spec = SimSpec::new(threads, 40, threads, 1);
        spec.seed = SEED;
        spec.think_max = 0;
        spec.cs_work = 400;
        spec.heap_words = 1 << 22;
        let cfg = RealConfig::fast().with_faults(FaultSpec {
            period: Duration::from_millis(4),
            quantum: Duration::from_millis(2),
            seed: SEED,
        });
        let mode = ExecMode::Real {
            threads,
            run_for: None,
            cfg,
            epoch_rounds: None,
            deadline_steps: None,
            recorder: false,
        };
        let r = run_random_conflict_mode(&spec, algo, &mode);
        assert!(r.safety_ok, "{}: safety audit failed under the injector", algo.label());
        assert_eq!(r.attempts, 80, "{}: untimed real runs complete every round", algo.label());
        assert!(r.combined_wins <= r.wins, "{}", algo.label());
    }
}
