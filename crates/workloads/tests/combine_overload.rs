//! Schedule-swept abort/combine race audit: the combining fast path
//! crossed with armed deadlines, across every simulator schedule family.
//!
//! The risky interleavings live at the intersection of three mechanisms:
//! a winner's settle pass eliminating ACTIVE peers, a peer's own abort
//! path bailing out post-reveal, and the deadline machinery classifying
//! the result. Each cell runs a contended conflict workload and audits
//! the recorded-outcome accounting identities that tie the four fates
//! together, plus the replay-compat contract: under families that do not
//! opt in to combining, `WflCombine` must be bit-identical to plain
//! `Wfl`, and every sim cell must replay exactly.

use wfl_workloads::harness::{
    run_random_conflict_mode, AlgoKind, ExecMode, HarnessReport, SchedKind, SimSpec,
};

/// One contended cell: single hot lock, long critical sections, zero
/// think time — every attempt contends, so settle passes find claimable
/// peers and armed deadlines actually fire.
fn run_cell(
    algo: AlgoKind,
    sched: SchedKind,
    deadline: Option<u64>,
    seed: u64,
) -> HarnessReport {
    run_cell_cs(algo, sched, deadline, seed, 200)
}

fn run_cell_cs(
    algo: AlgoKind,
    sched: SchedKind,
    deadline: Option<u64>,
    seed: u64,
    cs_work: u64,
) -> HarnessReport {
    let mut spec = SimSpec::new(4, 20, 1, 1);
    spec.seed = seed;
    spec.think_max = 0;
    spec.cs_work = cs_work;
    let mut mode = ExecMode::sim(sched, 2_000_000_000);
    if let Some(d) = deadline {
        mode = mode.with_deadline_steps(d);
    }
    run_random_conflict_mode(&spec, algo, &mode)
}

/// The accounting identities every cell must satisfy, whatever the
/// schedule did: rescues and combined grants are subsets of wins, and —
/// because `OUT_RESCUED` and `OUT_COMBINED` are disjoint by contract — the
/// two subsets cannot overlap, so their sum is still bounded by wins.
fn audit(label: &str, r: &HarnessReport, attempts: u64) {
    assert!(r.safety_ok, "{label}: safety audit failed");
    assert_eq!(r.attempts, attempts, "{label}: sim cells complete every round");
    assert!(r.rescues <= r.aborts, "{label}: rescue without an abort");
    assert!(r.rescues <= r.wins, "{label}: rescues are wins");
    assert!(r.combined_wins <= r.wins, "{label}: combined grants are wins");
    assert!(
        r.rescues + r.combined_wins <= r.wins,
        "{label}: OUT_RESCUED/OUT_COMBINED disjointness violated in aggregate \
         (rescues {} + combined {} > wins {})",
        r.rescues,
        r.combined_wins,
        r.wins
    );
    // A win is a win and an unrescued abort is a loss; nothing else wins.
    assert!(
        r.wins + (r.aborts - r.rescues) <= r.attempts,
        "{label}: fates overcount attempts"
    );
    assert_eq!(
        r.combine_batch.is_empty(),
        r.combined_wins == 0,
        "{label}: batch histogram disagrees with combined-win count"
    );
}

/// The comparable fingerprint of a sim run (everything a replay must
/// reproduce bit-identically).
#[derive(PartialEq, Debug)]
struct Fingerprint {
    fates: [u64; 5],
    steps_max: u64,
    steps_mean_bits: u64,
    per_pid: Vec<(u64, u64)>,
}

fn fingerprint(r: &HarnessReport) -> Fingerprint {
    Fingerprint {
        fates: [r.attempts, r.wins, r.aborts, r.rescues, r.combined_wins],
        steps_max: r.steps.max(),
        steps_mean_bits: r.steps.mean().to_bits(),
        per_pid: r.per_pid.clone(),
    }
}

#[test]
fn combine_under_deadlines_is_audited_across_schedules() {
    let faults = SchedKind::RandomFaults { period: 9_000, quantum: 6_000 };
    let faults_combining = SchedKind::FaultsCombining { period: 9_000, quantum: 6_000 };
    let schedules = [
        SchedKind::RoundRobin,
        SchedKind::Random,
        SchedKind::Bursty(7),
        SchedKind::WeightedRamp,
        faults,
        SchedKind::RandomCombining,
        faults_combining,
    ];
    // wfl's per-attempt cost is tightly bounded (that is wait-freedom), so
    // a deadline is bimodal: above the helping-chain cost nothing aborts,
    // below the attempt floor everything does. Both regimes must satisfy
    // the audit — the tight arm drives every attempt down the post-reveal
    // abandon path while competitors' settle passes race the eliminations.
    let deadlines = [None, Some(1_000u64)];
    let algos = [
        AlgoKind::Wfl { kappa: 4, delays: true, helping: true },
        AlgoKind::WflCombine { kappa: 4 },
    ];

    let mut combined_total = 0u64;
    let mut abort_total = 0u64;
    for sched in schedules {
        for deadline in deadlines {
            for algo in algos {
                for seed in [3u64, 11] {
                    let label = format!("{algo:?}/{sched:?}/deadline {deadline:?}/seed {seed}");
                    let r = run_cell(algo, sched, deadline, seed);
                    audit(&label, &r, 80);
                    // Replay determinism: the exact same cell again.
                    let replay = run_cell(algo, sched, deadline, seed);
                    assert_eq!(
                        fingerprint(&replay),
                        fingerprint(&r),
                        "{label}: replay diverged"
                    );
                    if !sched.allows_combining() {
                        assert_eq!(
                            r.combined_wins, 0,
                            "{label}: combining fired under a non-combining family"
                        );
                    }
                    combined_total += r.combined_wins;
                    abort_total += r.aborts;
                }
            }
        }
    }
    // The sweep genuinely exercised both mechanisms it crosses.
    assert!(combined_total > 0, "no cell ever combined — sweep shape is dead");
    assert!(abort_total > 0, "no cell ever aborted — deadline arm is dead");
}

/// The replay-compat contract under deadline pressure: with combining
/// masked (any non-opted-in family), `WflCombine` and plain `Wfl` with the
/// same knobs must produce bit-identical reports even while attempts are
/// aborting — the abort path must not observe the combine flag.
#[test]
fn masked_combine_is_bit_identical_to_wfl_under_aborts() {
    for sched in [
        SchedKind::Random,
        SchedKind::RandomFaults { period: 9_000, quantum: 6_000 },
    ] {
        for deadline in [None, Some(500u64)] {
            let plain =
                run_cell(AlgoKind::Wfl { kappa: 4, delays: true, helping: true }, sched, deadline, 7);
            let combine = run_cell(AlgoKind::WflCombine { kappa: 4 }, sched, deadline, 7);
            assert_eq!(
                fingerprint(&combine),
                fingerprint(&plain),
                "{sched:?}/deadline {deadline:?}: masked combining diverged from plain wfl"
            );
        }
    }
}

/// Abort/combine race, opted in: under `FaultsCombining` with a tight
/// deadline, both mechanisms fire in the same run and the audit still
/// holds — aborted attempts may be rescued by helpers, never granted by
/// combiners (a claim lands only on an ACTIVE descriptor the owner has
/// not yet abandoned; the abandon path's own elimination beats it or the
/// grant is a rescue, keeping the fates disjoint).
#[test]
fn faulted_combining_with_deadlines_keeps_fates_disjoint() {
    let sched = SchedKind::FaultsCombining { period: 9_000, quantum: 6_000 };
    // Long critical sections make the helped-frame cost dominate: an
    // uncontended attempt stays well under the budget while an attempt
    // that helps (or executes) peer frames blows it — the one shape where
    // aborts and combining genuinely coexist in a single run.
    let mut combined_total = 0u64;
    let mut abort_total = 0u64;
    for seed in 1u64..=4 {
        let r = run_cell_cs(AlgoKind::WflCombine { kappa: 4 }, sched, Some(3_600), seed, 2_000);
        audit(&format!("faulted-combining seed {seed}"), &r, 80);
        combined_total += r.combined_wins;
        abort_total += r.aborts;
    }
    assert!(combined_total > 0, "combining never fired under FaultsCombining");
    assert!(abort_total > 0, "no attempt ever blew its deadline");
}
