//! The fixed-capacity single-writer event ring.
//!
//! One ring belongs to one writer (a process, or the driver's control
//! machinery). The writer pushes with plain relaxed stores into its own
//! cache-line-aligned region — the same single-writer discipline as the
//! heap's allocation lanes (DESIGN.md §1.1.2) — and publishes each
//! record with one release store of the cursor. Readers are expected to
//! drain only at quiescence (after the run, or at an epoch barrier while
//! workers are parked), which the release/acquire cursor handshake makes
//! sound without any locks.
//!
//! Capacity is fixed at construction: when the ring is full, new events
//! overwrite the oldest — a flight recorder keeps the *end* of the
//! story, which is the part a postmortem needs.

use crate::event::{Event, EventKind};
use std::sync::atomic::{AtomicU64, Ordering};

/// Words per stored event: kind, now, steps, arg.
const EVENT_WORDS: usize = 4;

/// A fixed-capacity single-writer ring of [`Event`] records.
#[repr(align(64))]
pub struct EventRing {
    /// Total events ever pushed (monotone; `% capacity` is the write
    /// index). Written only by the owner, with `Release` so a quiescent
    /// reader that `Acquire`-loads it sees every published word.
    cursor: AtomicU64,
    words: Box<[AtomicU64]>,
    capacity: usize,
}

impl std::fmt::Debug for EventRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventRing")
            .field("capacity", &self.capacity)
            .field("total", &self.total())
            .finish()
    }
}

impl EventRing {
    /// A ring holding the last `capacity` events. Capacity is rounded up
    /// to a power of two (so the write index is a mask, not a division).
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> EventRing {
        assert!(capacity > 0, "an event ring needs at least one slot");
        let capacity = capacity.next_power_of_two();
        let mut words = Vec::with_capacity(capacity * EVENT_WORDS);
        words.resize_with(capacity * EVENT_WORDS, || AtomicU64::new(0));
        EventRing { cursor: AtomicU64::new(0), words: words.into_boxed_slice(), capacity }
    }

    /// The ring's slot count (power of two).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total events ever pushed (including overwritten ones).
    pub fn total(&self) -> u64 {
        self.cursor.load(Ordering::Acquire)
    }

    /// Events retained right now: `min(total, capacity)`.
    pub fn len(&self) -> usize {
        (self.total() as usize).min(self.capacity)
    }

    /// Whether nothing has ever been pushed.
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }

    /// Events overwritten (lost to wraparound): `total - len`.
    pub fn dropped(&self) -> u64 {
        self.total() - self.len() as u64
    }

    /// Owner-only: records one event. Plain relaxed stores of the four
    /// words, then a release publish of the cursor. Never allocates.
    #[inline]
    pub fn push(&self, ev: Event) {
        let total = self.cursor.load(Ordering::Relaxed);
        let base = (total as usize & (self.capacity - 1)) * EVENT_WORDS;
        self.words[base].store(ev.kind as u64, Ordering::Relaxed);
        self.words[base + 1].store(ev.now, Ordering::Relaxed);
        self.words[base + 2].store(ev.steps, Ordering::Relaxed);
        self.words[base + 3].store(ev.arg, Ordering::Relaxed);
        self.cursor.store(total + 1, Ordering::Release);
    }

    /// Owner-only (or quiescent): forgets everything.
    pub fn clear(&self) {
        // The words need no wipe: `events` only decodes slots below the
        // cursor, and every slot is fully re-stored before it is
        // republished.
        self.cursor.store(0, Ordering::Release);
    }

    /// Quiescent read: the retained events, oldest to newest.
    pub fn events(&self) -> Vec<Event> {
        let total = self.total();
        let len = (total as usize).min(self.capacity);
        let mut out = Vec::with_capacity(len);
        for i in 0..len {
            let slot = (total as usize - len + i) & (self.capacity - 1);
            let base = slot * EVENT_WORDS;
            let kind_word = self.words[base].load(Ordering::Relaxed);
            // An undecodable kind word can only mean a torn/foreign slot;
            // skip it rather than invent an event.
            if let Some(kind) = EventKind::from_u64(kind_word) {
                out.push(Event {
                    kind,
                    now: self.words[base + 1].load(Ordering::Relaxed),
                    steps: self.words[base + 2].load(Ordering::Relaxed),
                    arg: self.words[base + 3].load(Ordering::Relaxed),
                });
            }
        }
        out
    }

    /// Quiescent read: the last `n` retained events, oldest to newest.
    pub fn last_n(&self, n: usize) -> Vec<Event> {
        let mut evs = self.events();
        let keep = evs.len().min(n);
        evs.split_off(evs.len() - keep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, n: u64) -> Event {
        Event { kind, now: n, steps: n * 2, arg: n * 3 }
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(EventRing::new(1).capacity(), 1);
        assert_eq!(EventRing::new(3).capacity(), 4);
        assert_eq!(EventRing::new(1000).capacity(), 1024);
    }

    #[test]
    fn push_and_read_in_order() {
        let r = EventRing::new(8);
        for i in 0..5 {
            r.push(ev(EventKind::AttemptStart, i));
        }
        let evs = r.events();
        assert_eq!(evs.len(), 5);
        assert_eq!(r.total(), 5);
        assert_eq!(r.dropped(), 0);
        for (i, e) in evs.iter().enumerate() {
            assert_eq!(e.now, i as u64);
            assert_eq!(e.steps, 2 * i as u64);
            assert_eq!(e.arg, 3 * i as u64);
        }
    }

    #[test]
    fn wraparound_keeps_the_newest_events() {
        let r = EventRing::new(4);
        for i in 0..11 {
            r.push(ev(EventKind::AttemptEnd, i));
        }
        assert_eq!(r.total(), 11);
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 7);
        let nows: Vec<u64> = r.events().iter().map(|e| e.now).collect();
        assert_eq!(nows, vec![7, 8, 9, 10]);
        let last2: Vec<u64> = r.last_n(2).iter().map(|e| e.now).collect();
        assert_eq!(last2, vec![9, 10]);
    }

    #[test]
    fn clear_resets_counters() {
        let r = EventRing::new(4);
        for i in 0..9 {
            r.push(ev(EventKind::Abort, i));
        }
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 0);
        assert!(r.events().is_empty());
        r.push(ev(EventKind::Rescue, 42));
        assert_eq!(r.events().len(), 1);
        assert_eq!(r.events()[0].now, 42);
    }
}
