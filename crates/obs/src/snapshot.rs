//! The per-run metrics fold: counters + fixed histograms + calibrated
//! rates, serialized by the shared writer in `wfl_bench`.
//!
//! A [`MetricsSnapshot`] is built by the harness from a finished run
//! (the per-epoch outcome folds already happened at the epoch barriers;
//! this is their sum) and carries everything a `BENCH_*.json` row
//! reports uniformly: attempt/win/abort/rescue counters, per-reason
//! give-up tallies, step histograms, and the wall-clock rates —
//! including `steps_per_sec`, the own-step throughput calibrated from
//! the same logical clock the §2.1 leases batch, which is what converts
//! step-denominated deadlines into wall time.

use crate::hist::{FixedHistogram, BUCKETS};
use crate::json::escape;
use std::fmt::Write as _;

/// Metrics folded over one harness run (all epochs). See module docs.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    pub attempts: u64,
    pub wins: u64,
    pub aborts: u64,
    pub rescues: u64,
    pub combined_wins: u64,
    pub epochs: u64,
    /// Own steps per attempt.
    pub steps: FixedHistogram,
    /// Own steps to bail out, over aborted attempts.
    pub abort_steps: FixedHistogram,
    /// Per-reason give-up tallies `(stable label, count)`.
    pub give_up: Vec<(&'static str, u64)>,
    pub wall_secs: Option<f64>,
    /// Total own steps per wall second (real runs only).
    pub steps_per_sec: Option<f64>,
    pub wins_per_sec: Option<f64>,
}

impl MetricsSnapshot {
    /// Point success rate (0 when no attempts ran).
    pub fn success_rate(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.wins as f64 / self.attempts as f64
        }
    }

    /// The give-up tallies as a JSON object body, e.g.
    /// `{"stop": 0, "deadline": 12}`.
    pub fn give_up_json(&self) -> String {
        let body: Vec<String> =
            self.give_up.iter().map(|(label, n)| format!("\"{label}\": {n}")).collect();
        format!("{{{}}}", body.join(", "))
    }

    /// A histogram as a sparse JSON object keyed by bucket lower edge.
    fn hist_json(h: &FixedHistogram) -> String {
        let mut body = Vec::new();
        for i in 0..BUCKETS {
            let c = h.bucket_count(i);
            if c > 0 {
                body.push(format!("\"{}\": {}", FixedHistogram::bucket_lo(i), c));
            }
        }
        format!("{{{}}}", body.join(", "))
    }

    fn opt_json(v: Option<f64>) -> String {
        v.map_or("null".to_string(), |x| format!("{x:.3}"))
    }

    /// The snapshot as a standalone JSON document. `context` pairs
    /// (e.g. algo/backend/threads) are embedded verbatim as string
    /// fields ahead of the metrics.
    pub fn to_json(&self, context: &[(&str, String)]) -> String {
        let mut out = String::from("{\n");
        for (k, v) in context {
            let _ = writeln!(out, "  \"{}\": \"{}\",", escape(k), escape(v));
        }
        let _ = writeln!(out, "  \"attempts\": {},", self.attempts);
        let _ = writeln!(out, "  \"wins\": {},", self.wins);
        let _ = writeln!(out, "  \"success_rate\": {:.4},", self.success_rate());
        let _ = writeln!(out, "  \"aborts\": {},", self.aborts);
        let _ = writeln!(out, "  \"rescues\": {},", self.rescues);
        let _ = writeln!(out, "  \"combined_wins\": {},", self.combined_wins);
        let _ = writeln!(out, "  \"epochs\": {},", self.epochs);
        let _ = writeln!(out, "  \"give_up\": {},", self.give_up_json());
        let _ = writeln!(
            out,
            "  \"steps\": {{\"count\": {}, \"mean\": {:.1}, \"p50\": {}, \"p99\": {}, \
             \"max\": {}, \"buckets\": {}}},",
            self.steps.count(),
            self.steps.mean(),
            self.steps.percentile(0.50),
            self.steps.percentile(0.99),
            self.steps.max(),
            Self::hist_json(&self.steps)
        );
        let _ = writeln!(
            out,
            "  \"abort_steps\": {{\"count\": {}, \"p50\": {}, \"p99\": {}, \"buckets\": {}}},",
            self.abort_steps.count(),
            self.abort_steps.percentile(0.50),
            self.abort_steps.percentile(0.99),
            Self::hist_json(&self.abort_steps)
        );
        let _ = writeln!(out, "  \"wall_secs\": {},", Self::opt_json(self.wall_secs));
        let _ = writeln!(out, "  \"steps_per_sec\": {},", Self::opt_json(self.steps_per_sec));
        let _ = writeln!(out, "  \"wins_per_sec\": {}", Self::opt_json(self.wins_per_sec));
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::JsonValue;

    #[test]
    fn snapshot_serializes_to_parseable_json() {
        let mut s = MetricsSnapshot {
            attempts: 10,
            wins: 7,
            aborts: 2,
            rescues: 1,
            combined_wins: 0,
            epochs: 3,
            give_up: vec![("stop", 0), ("deadline", 2)],
            wall_secs: Some(0.25),
            steps_per_sec: Some(1.25e6),
            wins_per_sec: Some(28.0),
            ..Default::default()
        };
        for v in [10u64, 20, 300, 4000] {
            s.steps.record(v);
        }
        s.abort_steps.record(512);
        let doc = s.to_json(&[("algo", "wfl".to_string()), ("backend", "sim".to_string())]);
        let v = JsonValue::parse(&doc).expect("snapshot JSON parses");
        assert_eq!(v.get("algo").unwrap().as_str(), Some("wfl"));
        assert_eq!(v.get("attempts").unwrap().as_num(), Some(10.0));
        assert_eq!(v.get("give_up").unwrap().get("deadline").unwrap().as_num(), Some(2.0));
        assert_eq!(v.get("steps").unwrap().get("count").unwrap().as_num(), Some(4.0));
        assert!(v.get("steps").unwrap().get("buckets").unwrap().get("8").is_some());
        assert_eq!(v.get("steps_per_sec").unwrap().as_num(), Some(1.25e6));
        // A sim-style snapshot serializes rates as nulls.
        let sim = MetricsSnapshot::default();
        let doc = sim.to_json(&[]);
        let v = JsonValue::parse(&doc).unwrap();
        assert_eq!(v.get("wall_secs"), Some(&JsonValue::Null));
        assert_eq!(v.get("success_rate").unwrap().as_num(), Some(0.0));
    }
}
