//! The fixed-bucket power-of-two histogram.
//!
//! Moved here from `wfl_fairness::telemetry` (which re-exports it
//! unchanged) so the recorder's metric snapshots, the fairness
//! subsystem, and the benchmark serializers share one implementation.
//! Everything is fixed-size: recording is O(1) with no allocation, and
//! two histograms [`FixedHistogram::merge`] by adding counts — the
//! fold-at-the-epoch-boundary pattern — which conserves both the sample
//! count and the bucket totals exactly.

/// Number of histogram buckets: bucket 0 holds the value 0, bucket `i ≥ 1`
/// holds values in `[2^(i-1), 2^i)`; the last bucket absorbs everything
/// above `2^(BUCKETS-2)`.
pub const BUCKETS: usize = 33;

/// A fixed-bucket power-of-two histogram over `u64` samples (see module
/// docs). `Copy`-free but fixed-size: safe to keep per-process and merge
/// at epoch boundaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FixedHistogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for FixedHistogram {
    fn default() -> Self {
        FixedHistogram { counts: [0; BUCKETS], count: 0, sum: 0, max: 0 }
    }
}

impl FixedHistogram {
    /// An empty histogram.
    pub fn new() -> FixedHistogram {
        FixedHistogram::default()
    }

    /// The bucket index a value lands in.
    #[inline]
    pub fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
        }
    }

    /// Inclusive lower edge of bucket `i`.
    pub fn bucket_lo(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// Inclusive upper edge of bucket `i` (saturating for the last bucket).
    pub fn bucket_hi(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one sample (O(1), allocation-free).
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Folds `other` into `self` by adding bucket counts — the epoch
    /// boundary fold. Conserves counts: afterwards every bucket (and the
    /// total) equals the sum of the two inputs'.
    pub fn merge(&mut self, other: &FixedHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The count in bucket `i`.
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Nearest-rank `q`-quantile **upper bound**: the upper edge of the
    /// bucket holding the rank, clamped to the recorded maximum (so `q =
    /// 1` returns a value `>=` the true max's bucket resolution, never
    /// `u64::MAX` noise). 0 if empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count - 1) as f64 * q.clamp(0.0, 1.0)).round() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen > rank {
                return Self::bucket_hi(i).min(self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_monotone_and_cover() {
        for i in 1..BUCKETS {
            assert!(FixedHistogram::bucket_lo(i) > FixedHistogram::bucket_hi(i - 1));
            assert!(FixedHistogram::bucket_lo(i) <= FixedHistogram::bucket_hi(i));
        }
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX] {
            let b = FixedHistogram::bucket_of(v);
            assert!(FixedHistogram::bucket_lo(b) <= v && v <= FixedHistogram::bucket_hi(b), "{v}");
        }
    }

    #[test]
    fn histogram_records_and_summarizes() {
        let mut h = FixedHistogram::new();
        for v in [0u64, 1, 1, 2, 5, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 109);
        assert_eq!(h.max(), 100);
        assert_eq!(h.bucket_count(0), 1);
        assert_eq!(h.bucket_count(1), 2);
        assert!(h.percentile(0.0) <= h.percentile(0.5));
        assert!(h.percentile(0.5) <= h.percentile(1.0));
        assert_eq!(h.percentile(1.0), 100, "p100 clamps to the recorded max");
    }

    #[test]
    fn merge_conserves_counts() {
        let mut a = FixedHistogram::new();
        let mut b = FixedHistogram::new();
        for v in 0..50u64 {
            a.record(v * 3);
            b.record(v * 7);
        }
        let (ca, cb) = (a.count(), b.count());
        let per_bucket: Vec<u64> =
            (0..BUCKETS).map(|i| a.bucket_count(i) + b.bucket_count(i)).collect();
        a.merge(&b);
        assert_eq!(a.count(), ca + cb);
        for (i, &want) in per_bucket.iter().enumerate() {
            assert_eq!(a.bucket_count(i), want, "bucket {i}");
        }
    }
}
