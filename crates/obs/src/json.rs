//! A minimal JSON reader, just enough to parse-validate the traces and
//! snapshots this workspace emits (no external dependencies — the
//! workspace bakes in only vendored crates, none of which is a JSON
//! library). Full RFC 8259 input grammar except that numbers are read as
//! `f64` and `\u` escapes outside the BMP are not paired.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage is an error).
    pub fn parse(s: &str) -> Result<JsonValue, String> {
        let b = s.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(b, &mut pos)?;
        skip_ws(b, &mut pos);
        if pos != b.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }

    /// Object member lookup (first match; `None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(JsonValue::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", JsonValue::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(JsonValue::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {}", *pos))?;
                        *pos += 4;
                        out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape '\\{}'", other as char)),
                }
            }
            Some(&c) => {
                // Multibyte UTF-8 passes through byte by byte; the input
                // is a &str so the bytes are valid.
                let ch_len = match c {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let chunk = b.get(*pos..*pos + ch_len).ok_or("truncated utf-8")?;
                out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                *pos += ch_len;
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(b, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(members));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        members.push((key, val));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

/// Escapes a string for embedding in emitted JSON.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\nyA"}, "d": true, "e": null}"#;
        let v = JsonValue::parse(doc).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[1].as_num(), Some(2.5));
        assert_eq!(arr[2].as_num(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\nyA"));
        assert_eq!(v.get("d"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("e"), Some(&JsonValue::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,", "{\"a\" 1}", "tru", "\"unterminated", "{} extra", "[1 2]"] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn escape_roundtrips_through_parse() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let doc = format!("{{\"k\": \"{}\"}}", escape(nasty));
        let v = JsonValue::parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(nasty));
    }
}
