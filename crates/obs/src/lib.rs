//! Always-compiled, allocation-free observability for the wait-free-locks
//! workspace: a per-process flight recorder, exporters, and the shared
//! fixed-bucket histogram.
//!
//! This crate sits below every other `wfl_*` crate (it depends only on
//! `std`), so the lock algorithms, the delegation baselines, and both
//! execution backends can emit events without dependency cycles. Three
//! layers:
//!
//! * [`rec`] — the global flight recorder: fixed-capacity binary
//!   [`Event`] rings, one cache-padded single-writer ring per process
//!   plus a control ring for driver machinery (fault injectors, epoch
//!   leaders). Recording costs one relaxed atomic load when disabled and
//!   plain single-writer stores when enabled; nothing allocates on the
//!   hot path.
//! * exporters — [`perfetto`] renders a drained [`TraceSnapshot`] as
//!   Chrome `trace_event` JSON (openable in ui.perfetto.dev) and
//!   validates emitted traces; [`MetricsSnapshot`] is the per-run fold
//!   (counters + histograms + clock-lease-calibrated `steps_per_sec`)
//!   that benchmarks serialize into their `BENCH_*.json` rows.
//! * [`FixedHistogram`] — the power-of-two bucket histogram previously
//!   owned by `wfl_fairness::telemetry`, moved here so the recorder,
//!   the fairness subsystem, and the snapshots share one implementation
//!   (`wfl_fairness` re-exports it unchanged).
//!
//! Determinism contract: events carry the emitting process's logical
//! clock and own-step counter, both of which are uncounted reads — so a
//! simulated run records an identical event sequence for an identical
//! seed, and enabling the recorder never perturbs the schedule or the
//! step accounting of the run it observes.

mod event;
mod hist;
mod json;
pub mod perfetto;
pub mod rec;
mod ring;
mod snapshot;
mod text;

pub use event::{AttemptOutcomeBits, Event, EventKind};
pub use hist::{FixedHistogram, BUCKETS};
pub use json::{escape, JsonValue};
pub use rec::{TraceSnapshot, CTRL_PID, MAX_PIDS};
pub use ring::EventRing;
pub use snapshot::MetricsSnapshot;
pub use text::TextRing;
