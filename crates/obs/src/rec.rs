//! The global flight recorder: one [`EventRing`] per process plus a
//! control ring, behind a process-wide enable flag.
//!
//! Hooks in algorithm code call [`record`] unconditionally; when the
//! recorder is disabled (the default, and the state during every tier-1
//! test and untraced benchmark cell) the call is one relaxed atomic load
//! and a branch. When enabled, the call is a handful of plain
//! single-writer stores into the caller's own ring — no locks, no
//! allocation, no shared cache lines beyond the flag.
//!
//! The recorder is global (like `wfl_runtime::trace`) because the emit
//! sites live deep inside `wfl_core::trylock`, which deliberately has no
//! side channel for observers. Single-writer safety holds because ring
//! index = pid, and a pid runs on exactly one thread in both backends;
//! the control ring ([`CTRL_PID`]) is written by driver machinery that
//! is itself serialized (the real-mode injector thread, the simulator's
//! gate, an epoch leader at a barrier).
//!
//! Drain ([`snapshot`], [`postmortem`]) is specified at quiescence only:
//! after the run's threads joined, or at an epoch barrier.

use crate::event::{Event, EventKind};
use crate::ring::EventRing;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Highest process count the recorder can attribute events to. Events
/// from pids at or above this are dropped (no harness run approaches it;
/// the cap keeps the ring block a fixed allocation).
pub const MAX_PIDS: usize = 64;

/// The control track's ring index: fault injectors and epoch leaders
/// write driver-level events here (pid-attributed rings stay
/// single-writer).
pub const CTRL_PID: usize = MAX_PIDS;

/// Default per-ring capacity (events). 2048 events x 4 words x 65 rings
/// is ~4 MiB, allocated once on first enable.
pub const DEFAULT_CAPACITY: usize = 2048;

static ENABLED: AtomicBool = AtomicBool::new(false);
static RINGS: OnceLock<Vec<EventRing>> = OnceLock::new();

fn rings() -> &'static Vec<EventRing> {
    RINGS.get_or_init(|| (0..=MAX_PIDS).map(|_| EventRing::new(DEFAULT_CAPACITY)).collect())
}

/// Starts recording (clears all rings first). The ring block is
/// allocated on the first call and reused forever after; capacity is
/// fixed at [`DEFAULT_CAPACITY`].
///
/// Call at quiescence only (before spawning the run's processes).
pub fn enable() {
    let rs = rings();
    for r in rs {
        r.clear();
    }
    ENABLED.store(true, Ordering::SeqCst);
}

/// Stops recording. Rings keep their contents for [`snapshot`] /
/// [`postmortem`]. Call at quiescence (after the run's threads joined).
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether the recorder is currently capturing.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Records one event on `pid`'s ring. The disabled path is one relaxed
/// load and a branch; `pid >= MAX_PIDS` events are dropped.
#[inline]
pub fn record(pid: usize, kind: EventKind, now: u64, steps: u64, arg: u64) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    record_enabled(pid, kind, now, steps, arg);
}

/// The enabled half, outlined so the disabled fast path stays a
/// load-test-return at every emit site.
#[inline(never)]
fn record_enabled(pid: usize, kind: EventKind, now: u64, steps: u64, arg: u64) {
    let rs = rings();
    if pid <= MAX_PIDS {
        rs[pid].push(Event { kind, now, steps, arg });
    }
}

/// Records a driver-level event on the control ring (see [`CTRL_PID`]).
#[inline]
pub fn record_ctrl(kind: EventKind, now: u64, arg: u64) {
    record(CTRL_PID, kind, now, 0, arg);
}

/// A quiescent drain of every nonempty ring, oldest-to-newest per ring.
/// `PartialEq` so determinism tests can compare whole traces.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceSnapshot {
    /// `(ring index, retained events)`, ascending; [`CTRL_PID`] last if
    /// present.
    pub per_pid: Vec<(usize, Vec<Event>)>,
    /// `(ring index, events lost to wraparound)`, for rings that
    /// overflowed.
    pub dropped: Vec<(usize, u64)>,
}

impl TraceSnapshot {
    /// Retained events across all rings.
    pub fn total_events(&self) -> usize {
        self.per_pid.iter().map(|(_, evs)| evs.len()).sum()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.per_pid.is_empty()
    }

    /// The events of one ring (empty slice view if absent).
    pub fn events_of(&self, pid: usize) -> &[Event] {
        self.per_pid
            .iter()
            .find(|(p, _)| *p == pid)
            .map(|(_, evs)| evs.as_slice())
            .unwrap_or(&[])
    }

    /// Renders the last `n` events of every ring as an indented text
    /// block — the harness prints this when a safety check fails under
    /// recording.
    pub fn postmortem(&self, n: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (pid, evs) in &self.per_pid {
            let track = if *pid == CTRL_PID { "ctrl".to_string() } else { format!("pid {pid}") };
            let skipped = evs.len().saturating_sub(n);
            let _ = writeln!(out, "  [{track}] last {} of {} events:", evs.len() - skipped, evs.len());
            for e in &evs[skipped..] {
                let _ = writeln!(
                    out,
                    "    now {:>8}  steps {:>8}  {:<14} arg {:#x}",
                    e.now,
                    e.steps,
                    e.kind.label(),
                    e.arg
                );
            }
        }
        out
    }
}

/// Drains the recorder into a [`TraceSnapshot`]. Quiescent callers only;
/// does not clear the rings (the next [`enable`] does).
pub fn snapshot() -> TraceSnapshot {
    let mut snap = TraceSnapshot::default();
    if RINGS.get().is_none() {
        return snap; // never enabled: nothing to drain, don't allocate
    }
    for (pid, ring) in rings().iter().enumerate() {
        if ring.is_empty() {
            continue;
        }
        snap.per_pid.push((pid, ring.events()));
        if ring.dropped() > 0 {
            snap.dropped.push((pid, ring.dropped()));
        }
    }
    snap
}

#[cfg(test)]
pub(crate) mod test_lock {
    use std::sync::{Mutex, MutexGuard, PoisonError};

    /// The recorder is process-global; tests that enable it must hold
    /// this to keep `cargo test`'s parallel runner from interleaving
    /// captures.
    static LOCK: Mutex<()> = Mutex::new(());

    pub fn hold() -> MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing_and_enable_roundtrips() {
        let _g = test_lock::hold();
        disable();
        record(0, EventKind::AttemptStart, 1, 1, 0);
        enable();
        let before = snapshot();
        assert!(before.is_empty(), "enable clears prior contents");
        record(0, EventKind::AttemptStart, 5, 10, 2);
        record(3, EventKind::AttemptEnd, 6, 11, 1);
        record_ctrl(EventKind::FaultStart, 7, 3);
        record(MAX_PIDS + 1, EventKind::Abort, 8, 12, 0); // out of range: dropped
        disable();
        record(0, EventKind::Abort, 9, 13, 0); // disabled again: dropped
        let snap = snapshot();
        assert_eq!(snap.total_events(), 3);
        assert_eq!(snap.events_of(0).len(), 1);
        assert_eq!(snap.events_of(0)[0].kind, EventKind::AttemptStart);
        assert_eq!(snap.events_of(3)[0].arg, 1);
        assert_eq!(snap.events_of(CTRL_PID)[0].kind, EventKind::FaultStart);
        assert!(snap.dropped.is_empty());
        let pm = snap.postmortem(8);
        assert!(pm.contains("pid 0") && pm.contains("ctrl") && pm.contains("attempt_start"));
    }

    #[test]
    fn snapshot_reports_wraparound_drops() {
        let _g = test_lock::hold();
        enable();
        for i in 0..(DEFAULT_CAPACITY as u64 + 10) {
            record(1, EventKind::GiveUp, i, i, 0);
        }
        disable();
        let snap = snapshot();
        assert_eq!(snap.events_of(1).len(), DEFAULT_CAPACITY);
        assert_eq!(snap.dropped, vec![(1, 10)]);
        // The retained window is the newest events.
        assert_eq!(snap.events_of(1).last().unwrap().now, DEFAULT_CAPACITY as u64 + 9);
    }
}
