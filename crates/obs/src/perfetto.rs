//! Chrome/Perfetto `trace_event` export of a drained [`TraceSnapshot`],
//! plus a structural validator for the emitted JSON (CI parse-validates
//! every uploaded trace with it).
//!
//! The exported document is the legacy JSON trace format both
//! chrome://tracing and ui.perfetto.dev open directly: one *thread
//! track* per process ring (plus a control track for fault windows),
//! complete events (`"ph": "X"`) for attempts, their phases and combiner
//! stints, and instant events (`"ph": "i"`) for aborts, rescues,
//! give-ups, combine claims and epoch barriers. Timestamps are the
//! events' logical-clock readings interpreted as microseconds: wall-less
//! but order-exact in sim, lease-granular on real threads — the shapes
//! and nesting are what the viewer is for, not wall durations.

use crate::event::{AttemptOutcomeBits, Event, EventKind};
use crate::json::{escape, JsonValue};
use crate::rec::{TraceSnapshot, CTRL_PID};
use std::fmt::Write as _;

/// Span names of the attempt phases, in order. Derived from the
/// phase-boundary events' step counters; each is emitted as a child of
/// its `"attempt"` span.
pub const PHASES: [&str; 4] = ["help", "stall+reveal", "settle", "finish"];

/// One emitted `trace_event` line.
fn line(out: &mut String, body: &str) {
    if !out.is_empty() {
        out.push_str(",\n");
    }
    out.push_str("    ");
    out.push_str(body);
}

fn complete(
    out: &mut String,
    name: &str,
    tid: usize,
    ts: u64,
    dur: u64,
    args: &str,
) {
    line(
        out,
        &format!(
            "{{\"name\": \"{}\", \"ph\": \"X\", \"ts\": {ts}, \"dur\": {dur}, \
             \"pid\": 1, \"tid\": {tid}, \"args\": {{{args}}}}}",
            escape(name)
        ),
    );
}

fn instant(out: &mut String, name: &str, tid: usize, ts: u64, args: &str) {
    line(
        out,
        &format!(
            "{{\"name\": \"{}\", \"ph\": \"i\", \"s\": \"t\", \"ts\": {ts}, \
             \"pid\": 1, \"tid\": {tid}, \"args\": {{{args}}}}}",
            escape(name)
        ),
    );
}

fn thread_name(out: &mut String, tid: usize, name: &str) {
    line(
        out,
        &format!(
            "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": {tid}, \
             \"args\": {{\"name\": \"{}\"}}}}",
            escape(name)
        ),
    );
}

/// In-flight attempt state while walking one ring.
#[derive(Default)]
struct OpenAttempt {
    start_now: u64,
    start_steps: u64,
    locks: u64,
    /// `now` at each crossed phase boundary (help, reveal, settle).
    marks: [Option<u64>; 3],
}

/// Renders a snapshot as a Chrome `trace_event` JSON document. `meta`
/// pairs (algo, backend, seed, ...) become the process name and are
/// attached as args to every attempt span.
pub fn export(snap: &TraceSnapshot, meta: &[(&str, String)]) -> String {
    let mut events = String::new();
    let pname = meta
        .iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect::<Vec<_>>()
        .join(" ");
    line(
        &mut events,
        &format!(
            "{{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \
             \"args\": {{\"name\": \"{}\"}}}}",
            escape(&pname)
        ),
    );
    let meta_args = meta
        .iter()
        .map(|(k, v)| format!("\"{}\": \"{}\"", escape(k), escape(v)))
        .collect::<Vec<_>>()
        .join(", ");

    for (pid, evs) in &snap.per_pid {
        let tid = *pid;
        if tid == CTRL_PID {
            thread_name(&mut events, tid, "ctrl (injector/scheduler)");
            export_ctrl(&mut events, tid, evs);
            continue;
        }
        thread_name(&mut events, tid, &format!("pid {tid}"));
        export_pid(&mut events, tid, evs, &meta_args);
    }

    let mut out = String::from("{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n");
    out.push_str(&events);
    out.push_str("\n  ]\n}\n");
    out
}

/// Walks one process ring, emitting attempt spans with phase children
/// and instants for the point events.
fn export_pid(out: &mut String, tid: usize, evs: &[Event], meta_args: &str) {
    let mut open: Option<OpenAttempt> = None;
    let mut combiner_open: Option<(u64, u64)> = None; // (now, steps)
    for e in evs {
        match e.kind {
            EventKind::AttemptStart => {
                // A start with one already open means the previous
                // attempt's end fell off the ring; drop the orphan.
                open = Some(OpenAttempt {
                    start_now: e.now,
                    start_steps: e.steps,
                    locks: e.arg,
                    marks: [None; 3],
                });
            }
            EventKind::HelpDone | EventKind::RevealDone | EventKind::SettleDone => {
                if let Some(a) = open.as_mut() {
                    let i = match e.kind {
                        EventKind::HelpDone => 0,
                        EventKind::RevealDone => 1,
                        _ => 2,
                    };
                    a.marks[i] = Some(e.now);
                }
            }
            EventKind::AttemptEnd => {
                if let Some(a) = open.take() {
                    let outcome = AttemptOutcomeBits(e.arg);
                    let args = format!(
                        "{meta_args}{}\"outcome\": \"{}\", \"locks\": {}, \"steps\": {}",
                        if meta_args.is_empty() { "" } else { ", " },
                        outcome.describe(),
                        a.locks,
                        e.steps.saturating_sub(a.start_steps)
                    );
                    complete(
                        out,
                        "attempt",
                        tid,
                        a.start_now,
                        e.now.saturating_sub(a.start_now),
                        &args,
                    );
                    // Phase children: each crossed boundary closes the
                    // span that started at the previous boundary.
                    let mut prev = a.start_now;
                    let bounds =
                        [a.marks[0], a.marks[1], a.marks[2], Some(e.now)];
                    for (name, bound) in PHASES.iter().zip(bounds) {
                        if let Some(b) = bound {
                            complete(
                                out,
                                name,
                                tid,
                                prev,
                                b.saturating_sub(prev),
                                "",
                            );
                            prev = b;
                        }
                    }
                }
            }
            EventKind::Abort => {
                let post_reveal = e.arg >> 8 != 0;
                instant(
                    out,
                    "abort",
                    tid,
                    e.now,
                    &format!(
                        "\"reason\": {}, \"post_reveal\": {post_reveal}",
                        e.arg & 0xff
                    ),
                );
            }
            EventKind::Rescue => instant(out, "rescue", tid, e.now, ""),
            EventKind::GiveUp => {
                instant(out, "give_up", tid, e.now, &format!("\"reason\": {}", e.arg))
            }
            EventKind::CombineClaim => {
                instant(out, "combine_claim", tid, e.now, &format!("\"peer\": {}", e.arg))
            }
            EventKind::EpochBarrier => {
                instant(out, "epoch_barrier", tid, e.now, &format!("\"epoch\": {}", e.arg))
            }
            EventKind::CombinerEnter => combiner_open = Some((e.now, e.steps)),
            EventKind::CombinerApply => {
                instant(out, "combiner_apply", tid, e.now, &format!("\"owner\": {}", e.arg))
            }
            EventKind::CombinerExit => {
                if let Some((start, start_steps)) = combiner_open.take() {
                    complete(
                        out,
                        "combiner",
                        tid,
                        start,
                        e.now.saturating_sub(start),
                        &format!(
                            "\"applied\": {}, \"steps\": {}",
                            e.arg,
                            e.steps.saturating_sub(start_steps)
                        ),
                    );
                }
            }
            // Fault windows belong to the control ring; one leaking onto
            // a pid ring is rendered as an instant rather than dropped.
            EventKind::FaultStart | EventKind::FaultEnd => {
                instant(out, e.kind.label(), tid, e.now, &format!("\"victim\": {}", e.arg))
            }
        }
    }
}

/// The control ring: matched fault windows become spans, stragglers
/// instants.
fn export_ctrl(out: &mut String, tid: usize, evs: &[Event]) {
    let mut open: Option<(u64, u64)> = None; // (now, victim)
    for e in evs {
        match e.kind {
            EventKind::FaultStart => {
                if let Some((start, victim)) = open.take() {
                    // Unclosed predecessor (the run stopped mid-window or
                    // the end event wrapped away): keep it visible.
                    instant(out, "fault_start", tid, start, &format!("\"victim\": {victim}"));
                }
                open = Some((e.now, e.arg));
            }
            EventKind::FaultEnd => {
                if let Some((start, victim)) = open.take() {
                    complete(
                        out,
                        "fault_window",
                        tid,
                        start,
                        e.now.saturating_sub(start),
                        &format!("\"victim\": {victim}"),
                    );
                } else {
                    instant(out, "fault_end", tid, e.now, &format!("\"victim\": {}", e.arg));
                }
            }
            EventKind::EpochBarrier => {
                instant(out, "epoch_barrier", tid, e.now, &format!("\"epoch\": {}", e.arg))
            }
            other => instant(out, other.label(), tid, e.now, &format!("\"arg\": {}", e.arg)),
        }
    }
    if let Some((start, victim)) = open {
        instant(out, "fault_start", tid, start, &format!("\"victim\": {victim}"));
    }
}

/// What [`validate`] found in a trace document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceStats {
    /// Complete (`"X"`) events.
    pub complete_spans: usize,
    /// Instant (`"i"`) events.
    pub instants: usize,
    /// `"attempt"` spans.
    pub attempts: usize,
    /// `"abort"` instants.
    pub aborts: usize,
    /// Fault windows (spans or unmatched-start instants).
    pub fault_windows: usize,
    /// Distinct thread tracks carrying events.
    pub tracks: usize,
}

/// Parses an exported document and checks its structure: every event
/// carries the required fields, spans on each track nest properly
/// (contained or disjoint, never partially overlapping), and every
/// phase span sits inside an `"attempt"` span. Returns counts for the
/// caller's presence assertions (e.g. "a faulted traced cell must
/// contain abort and fault-window events").
pub fn validate(doc: &str) -> Result<TraceStats, String> {
    let v = JsonValue::parse(doc)?;
    let events = v
        .get("traceEvents")
        .and_then(JsonValue::as_arr)
        .ok_or("missing traceEvents array")?;
    let mut stats = TraceStats::default();
    // (pid, tid) -> [(ts, end, name)]
    type Span = (f64, f64, String);
    let mut tracks: Vec<((u64, u64), Vec<Span>)> = Vec::new();
    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        let name = e
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {i}: missing name"))?
            .to_string();
        if ph == "M" {
            continue;
        }
        let ts = e
            .get("ts")
            .and_then(JsonValue::as_num)
            .ok_or_else(|| format!("event {i}: missing ts"))?;
        let pid = e.get("pid").and_then(JsonValue::as_num).ok_or_else(|| format!("event {i}: missing pid"))? as u64;
        let tid = e.get("tid").and_then(JsonValue::as_num).ok_or_else(|| format!("event {i}: missing tid"))? as u64;
        let key = (pid, tid);
        match ph {
            "X" => {
                let dur = e
                    .get("dur")
                    .and_then(JsonValue::as_num)
                    .ok_or_else(|| format!("event {i}: X without dur"))?;
                if dur < 0.0 {
                    return Err(format!("event {i}: negative dur"));
                }
                stats.complete_spans += 1;
                match name.as_str() {
                    "attempt" => stats.attempts += 1,
                    "fault_window" => stats.fault_windows += 1,
                    _ => {}
                }
                let track = match tracks.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, t)) => t,
                    None => {
                        tracks.push((key, Vec::new()));
                        &mut tracks.last_mut().unwrap().1
                    }
                };
                track.push((ts, ts + dur, name));
            }
            "i" | "I" => {
                stats.instants += 1;
                match name.as_str() {
                    "abort" => stats.aborts += 1,
                    "fault_start" => stats.fault_windows += 1,
                    _ => {}
                }
            }
            other => return Err(format!("event {i}: unsupported ph {other:?}")),
        }
    }
    stats.tracks = tracks.len();
    for ((pid, tid), mut spans) in tracks {
        // Sort outermost-first so containment shows up as a stack
        // discipline: starts ascending, longer spans first on ties.
        spans.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap()
                .then(b.1.partial_cmp(&a.1).unwrap())
        });
        let mut stack: Vec<(f64, f64, String)> = Vec::new();
        for (start, end, name) in spans {
            while let Some(top) = stack.last() {
                if top.1 <= start {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(top) = stack.last() {
                if end > top.1 {
                    return Err(format!(
                        "track {pid}/{tid}: span {name:?} [{start}, {end}] partially \
                         overlaps {:?} [{}, {}]",
                        top.2, top.0, top.1
                    ));
                }
            }
            if PHASES.contains(&name.as_str()) {
                let inside_attempt = stack.iter().any(|(_, _, n)| n == "attempt");
                if !inside_attempt {
                    return Err(format!(
                        "track {pid}/{tid}: phase span {name:?} at {start} outside any attempt"
                    ));
                }
            }
            stack.push((start, end, name));
        }
    }
    Ok(stats)
}

/// Convenience: a one-line summary for bench logs.
pub fn describe(stats: &TraceStats) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "{} spans ({} attempts, {} fault windows), {} instants ({} aborts), {} tracks",
        stats.complete_spans,
        stats.attempts,
        stats.fault_windows,
        stats.instants,
        stats.aborts,
        stats.tracks
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{AttemptOutcomeBits, Event, EventKind};
    use crate::rec::TraceSnapshot;

    fn ev(kind: EventKind, now: u64, steps: u64, arg: u64) -> Event {
        Event { kind, now, steps, arg }
    }

    fn sample_snapshot() -> TraceSnapshot {
        TraceSnapshot {
            per_pid: vec![
                (
                    0,
                    vec![
                        ev(EventKind::AttemptStart, 10, 100, 2),
                        ev(EventKind::HelpDone, 14, 104, 1),
                        ev(EventKind::RevealDone, 30, 120, 0),
                        ev(EventKind::SettleDone, 34, 124, 1),
                        ev(
                            EventKind::AttemptEnd,
                            40,
                            130,
                            AttemptOutcomeBits::pack(true, false, false, false, 0),
                        ),
                        ev(EventKind::AttemptStart, 50, 140, 1),
                        ev(EventKind::Abort, 55, 145, 0),
                        ev(
                            EventKind::AttemptEnd,
                            56,
                            146,
                            AttemptOutcomeBits::pack(false, true, false, false, 0),
                        ),
                    ],
                ),
                (
                    1,
                    vec![
                        ev(EventKind::CombinerEnter, 12, 80, 0),
                        ev(EventKind::CombinerApply, 15, 83, 0),
                        ev(EventKind::CombinerExit, 20, 88, 1),
                        ev(EventKind::GiveUp, 25, 93, 3),
                    ],
                ),
                (
                    CTRL_PID,
                    vec![
                        ev(EventKind::FaultStart, 5, 0, 1),
                        ev(EventKind::FaultEnd, 22, 0, 1),
                        ev(EventKind::FaultStart, 60, 0, 0),
                    ],
                ),
            ],
            dropped: vec![],
        }
    }

    #[test]
    fn export_produces_valid_nesting_and_counts() {
        let doc = export(&sample_snapshot(), &[("algo", "wfl".into()), ("backend", "sim".into())]);
        let stats = validate(&doc).expect("exported trace validates");
        assert_eq!(stats.attempts, 2);
        assert_eq!(stats.aborts, 1);
        assert_eq!(stats.fault_windows, 2, "one matched window + one unmatched start");
        assert!(stats.complete_spans >= 7, "attempts + phases + combiner stint");
        assert!(stats.tracks >= 2);
        assert!(doc.contains("\"outcome\": \"won\""));
        assert!(doc.contains("\"algo\": \"wfl\""));
        assert!(!describe(&stats).is_empty());
    }

    #[test]
    fn validate_rejects_partial_overlap_and_orphan_phases() {
        let overlapping = r#"{"traceEvents": [
            {"name": "a", "ph": "X", "ts": 0, "dur": 10, "pid": 1, "tid": 0, "args": {}},
            {"name": "b", "ph": "X", "ts": 5, "dur": 10, "pid": 1, "tid": 0, "args": {}}
        ]}"#;
        assert!(validate(overlapping).unwrap_err().contains("partially overlaps"));
        let orphan = r#"{"traceEvents": [
            {"name": "help", "ph": "X", "ts": 0, "dur": 10, "pid": 1, "tid": 0, "args": {}}
        ]}"#;
        assert!(validate(orphan).unwrap_err().contains("outside any attempt"));
        assert!(validate("{}").is_err());
        assert!(validate("not json").is_err());
    }

    #[test]
    fn incomplete_attempts_are_dropped_not_mangled() {
        let snap = TraceSnapshot {
            per_pid: vec![(0, vec![ev(EventKind::AttemptStart, 10, 100, 1)])],
            dropped: vec![],
        };
        let doc = export(&snap, &[]);
        let stats = validate(&doc).unwrap();
        assert_eq!(stats.attempts, 0, "unclosed attempt emits no span");
    }
}
