//! A bounded text ring for human-readable trace lines.
//!
//! Replaces the unbounded `Mutex<Vec<String>>` sink that
//! `wfl_runtime::trace` grew in the early PRs: same lock-per-emit
//! discipline (emits are rare, debug-only), but fixed capacity — a
//! runaway trace loop overwrites its own oldest lines instead of eating
//! the heap — and the drop count is reported so a drained log says when
//! it is a suffix rather than the whole story.

use std::sync::Mutex;

struct TextState {
    slots: Vec<Option<String>>,
    /// Next slot to write (total pushed modulo capacity tracks it).
    total: u64,
}

/// A fixed-capacity overwrite-oldest ring of strings. Interior-mutable
/// (suitable for a `static`); all operations take the one internal lock.
pub struct TextRing {
    state: Mutex<TextState>,
    capacity: usize,
}

impl TextRing {
    /// A ring holding at most `capacity` lines (minimum 1).
    pub fn new(capacity: usize) -> TextRing {
        let capacity = capacity.max(1);
        TextRing {
            state: Mutex::new(TextState { slots: vec![None; capacity], total: 0 }),
            capacity,
        }
    }

    /// Appends a line, overwriting the oldest once full.
    pub fn push(&self, line: String) {
        let mut st = self.state.lock().unwrap();
        let idx = (st.total % self.capacity as u64) as usize;
        st.slots[idx] = Some(line);
        st.total += 1;
    }

    /// Lines ever pushed (including overwritten ones).
    pub fn total(&self) -> u64 {
        self.state.lock().unwrap().total
    }

    /// Lines lost to overwriting.
    pub fn dropped(&self) -> u64 {
        let st = self.state.lock().unwrap();
        st.total.saturating_sub(self.capacity as u64)
    }

    /// Removes and returns the retained lines, oldest first.
    pub fn drain(&self) -> Vec<String> {
        let mut st = self.state.lock().unwrap();
        let total = st.total;
        let start = total.saturating_sub(self.capacity as u64);
        let mut out = Vec::with_capacity((total - start) as usize);
        for i in start..total {
            let idx = (i % self.capacity as u64) as usize;
            if let Some(line) = st.slots[idx].take() {
                out.push(line);
            }
        }
        st.total = 0;
        out
    }

    /// Discards all retained lines.
    pub fn clear(&self) {
        let mut st = self.state.lock().unwrap();
        for s in st.slots.iter_mut() {
            *s = None;
        }
        st.total = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_returns_lines_in_order() {
        let r = TextRing::new(8);
        for i in 0..5 {
            r.push(format!("line {i}"));
        }
        assert_eq!(r.total(), 5);
        assert_eq!(r.dropped(), 0);
        let lines = r.drain();
        assert_eq!(lines, vec!["line 0", "line 1", "line 2", "line 3", "line 4"]);
        assert_eq!(r.total(), 0, "drain resets the ring");
        assert!(r.drain().is_empty());
    }

    #[test]
    fn overflow_keeps_newest_and_counts_drops() {
        let r = TextRing::new(4);
        for i in 0..11 {
            r.push(format!("{i}"));
        }
        assert_eq!(r.dropped(), 7);
        assert_eq!(r.drain(), vec!["7", "8", "9", "10"]);
    }

    #[test]
    fn clear_discards_everything() {
        let r = TextRing::new(4);
        r.push("x".into());
        r.clear();
        assert_eq!(r.total(), 0);
        assert!(r.drain().is_empty());
    }
}
