//! The binary event record and its kind vocabulary.
//!
//! One event is four words: kind, the emitting process's logical-clock
//! reading (`Ctx::now`), its own-step counter (`Ctx::steps`), and one
//! kind-specific argument word. Phase step-splits are *derived*, not
//! stored: each phase-boundary event carries the step counter at the
//! boundary, so `help = HelpDone.steps - AttemptStart.steps` and so on —
//! the recorder never does arithmetic on the hot path.

/// What an [`Event`] marks. Discriminants are stable (they appear in
/// drained snapshots and exported traces); append, never renumber.
#[repr(u8)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A tryLock attempt began (descriptor created). `arg` = lock count.
    AttemptStart = 1,
    /// The pre-insert helping phase finished (every conflicting decided
    /// descriptor was helped to completion). `arg` = locks helped.
    HelpDone = 2,
    /// The descriptor is inserted and revealed (the `T0` stall, the
    /// multiInsert, and the priority reveal are all behind). `arg` = 0.
    RevealDone = 3,
    /// The compete/settle phase decided the attempt (eliminate or decide
    /// CAS resolved). `arg` = 1 if this attempt won its locks, else 0.
    SettleDone = 4,
    /// The attempt returned. `arg` = [`AttemptOutcomeBits`].
    AttemptEnd = 5,
    /// The attempt aborted. `arg` = abort reason index (the stable
    /// `AbortReason` encoding: 0 deadline, 1 stop), `| 1 << 8` when the
    /// abort happened after the reveal (the elimination-race window).
    Abort = 6,
    /// An abandoned attempt turned out to have been completed by a
    /// helper (a rescued win). `arg` = 0.
    Rescue = 7,
    /// A combining winner claimed a compatible pending peer descriptor
    /// (wfl fast path). `arg` = the claimed peer's descriptor item word.
    CombineClaim = 8,
    /// A retry loop gave up. `arg` = the stable `GiveUp` reason index.
    GiveUp = 9,
    /// An epoch boundary was crossed (quiescent reset). `arg` = the epoch
    /// number just closed. Emitted on the leader's own ring in real mode
    /// (the control ring may be mid-write by the fault injector thread);
    /// the sim host, which has no pid, uses the control ring with
    /// `now` 0.
    EpochBarrier = 10,
    /// A fault-injection window opened. `arg` = victim pid. Emitted on
    /// the control ring ([`crate::CTRL_PID`]).
    FaultStart = 11,
    /// The matching fault window closed. `arg` = victim pid.
    FaultEnd = 12,
    /// A delegation combiner (fc scan / ccsynch queue walk) started its
    /// stint. `arg` = 0.
    CombinerEnter = 13,
    /// The combiner applied one published request. `arg` = the owner pid
    /// (flat combining) or the request node's address word (ccsynch).
    CombinerApply = 14,
    /// The combiner's stint ended. `arg` = requests applied.
    CombinerExit = 15,
}

impl EventKind {
    /// Decodes a stored discriminant; `None` for unknown words (a
    /// corrupted or future-version ring).
    pub fn from_u64(v: u64) -> Option<EventKind> {
        Some(match v {
            1 => EventKind::AttemptStart,
            2 => EventKind::HelpDone,
            3 => EventKind::RevealDone,
            4 => EventKind::SettleDone,
            5 => EventKind::AttemptEnd,
            6 => EventKind::Abort,
            7 => EventKind::Rescue,
            8 => EventKind::CombineClaim,
            9 => EventKind::GiveUp,
            10 => EventKind::EpochBarrier,
            11 => EventKind::FaultStart,
            12 => EventKind::FaultEnd,
            13 => EventKind::CombinerEnter,
            14 => EventKind::CombinerApply,
            15 => EventKind::CombinerExit,
            _ => return None,
        })
    }

    /// Stable display name (used in postmortem dumps and trace export).
    pub fn label(self) -> &'static str {
        match self {
            EventKind::AttemptStart => "attempt_start",
            EventKind::HelpDone => "help_done",
            EventKind::RevealDone => "reveal_done",
            EventKind::SettleDone => "settle_done",
            EventKind::AttemptEnd => "attempt_end",
            EventKind::Abort => "abort",
            EventKind::Rescue => "rescue",
            EventKind::CombineClaim => "combine_claim",
            EventKind::GiveUp => "give_up",
            EventKind::EpochBarrier => "epoch_barrier",
            EventKind::FaultStart => "fault_start",
            EventKind::FaultEnd => "fault_end",
            EventKind::CombinerEnter => "combiner_enter",
            EventKind::CombinerApply => "combiner_apply",
            EventKind::CombinerExit => "combiner_exit",
        }
    }
}

/// Bit layout of an [`EventKind::AttemptEnd`] argument word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttemptOutcomeBits(pub u64);

impl AttemptOutcomeBits {
    pub const WON: u64 = 1;
    pub const ABORTED: u64 = 2;
    pub const RESCUED: u64 = 4;
    pub const COMBINED: u64 = 8;
    /// Combined-peer count lives above the flag bits.
    pub const PEERS_SHIFT: u32 = 8;

    /// Packs an attempt outcome.
    pub fn pack(won: bool, aborted: bool, rescued: bool, combined: bool, peers: u64) -> u64 {
        (won as u64 * Self::WON)
            | (aborted as u64 * Self::ABORTED)
            | (rescued as u64 * Self::RESCUED)
            | (combined as u64 * Self::COMBINED)
            | (peers << Self::PEERS_SHIFT)
    }

    pub fn won(self) -> bool {
        self.0 & Self::WON != 0
    }
    pub fn aborted(self) -> bool {
        self.0 & Self::ABORTED != 0
    }
    pub fn rescued(self) -> bool {
        self.0 & Self::RESCUED != 0
    }
    pub fn combined(self) -> bool {
        self.0 & Self::COMBINED != 0
    }
    pub fn peers(self) -> u64 {
        self.0 >> Self::PEERS_SHIFT
    }

    /// A compact human label, e.g. `"won"`, `"won+combined(2)"`.
    pub fn describe(self) -> String {
        let mut parts = Vec::new();
        if self.won() {
            parts.push("won".to_string());
        }
        if self.aborted() {
            parts.push("aborted".to_string());
        }
        if self.rescued() {
            parts.push("rescued".to_string());
        }
        if self.combined() {
            parts.push(format!("combined({})", self.peers()));
        }
        if parts.is_empty() {
            parts.push("lost".to_string());
        }
        parts.join("+")
    }
}

/// One flight-recorder record (see module docs). `now` and `steps` are
/// the emitting process's uncounted clock/step readings at emission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    pub kind: EventKind,
    /// Logical-clock reading of the process's most recent step. In the
    /// simulator this is the deterministic global slot count; on real
    /// threads it is exact (`Precise`) or lease-granular (`Leased`).
    pub now: u64,
    /// The process's own-step counter at emission.
    pub steps: u64,
    /// Kind-specific argument (see [`EventKind`] variants).
    pub arg: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_roundtrips_through_words() {
        for v in 0..=32u64 {
            if let Some(k) = EventKind::from_u64(v) {
                assert_eq!(k as u64, v);
                assert!(!k.label().is_empty());
            }
        }
        assert_eq!(EventKind::from_u64(0), None);
        assert_eq!(EventKind::from_u64(999), None);
    }

    #[test]
    fn outcome_bits_pack_and_unpack() {
        let w = AttemptOutcomeBits::pack(true, false, false, true, 3);
        let b = AttemptOutcomeBits(w);
        assert!(b.won() && !b.aborted() && !b.rescued() && b.combined());
        assert_eq!(b.peers(), 3);
        assert_eq!(b.describe(), "won+combined(3)");
        assert_eq!(AttemptOutcomeBits(0).describe(), "lost");
        let r = AttemptOutcomeBits(AttemptOutcomeBits::pack(true, true, true, false, 0));
        assert_eq!(r.describe(), "won+aborted+rescued");
    }
}
