//! Property tests for the flight-recorder event ring: wraparound keeps
//! exactly the newest `capacity` events, and retained + dropped always
//! conserves the pushed total.

use proptest::prelude::*;
use wfl_obs::{Event, EventKind, EventRing};

fn ev(i: u64) -> Event {
    Event {
        kind: if i.is_multiple_of(2) { EventKind::AttemptStart } else { EventKind::AttemptEnd },
        now: i,
        steps: i * 3,
        arg: i ^ 0xabcd,
    }
}

proptest! {
    #[test]
    fn retained_plus_dropped_conserves_total(
        cap in 1usize..64,
        pushes in 0usize..300,
    ) {
        let r = EventRing::new(cap);
        for i in 0..pushes as u64 {
            r.push(ev(i));
        }
        prop_assert_eq!(r.total(), pushes as u64);
        prop_assert_eq!(r.len() as u64 + r.dropped(), pushes as u64);
        prop_assert_eq!(r.events().len(), r.len());
    }

    #[test]
    fn wraparound_keeps_newest_suffix_in_order(
        cap in 1usize..64,
        pushes in 0usize..300,
    ) {
        let r = EventRing::new(cap);
        for i in 0..pushes as u64 {
            r.push(ev(i));
        }
        let got = r.events();
        // The retained window is exactly the newest min(total, capacity)
        // events, oldest-to-newest, bit-identical to what was pushed.
        let start = (pushes as u64).saturating_sub(r.capacity() as u64);
        let want: Vec<Event> = (start..pushes as u64).map(ev).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn clear_resets_then_ring_fills_again(
        cap in 1usize..32,
        first in 0usize..100,
        second in 0usize..100,
    ) {
        let r = EventRing::new(cap);
        for i in 0..first as u64 {
            r.push(ev(i));
        }
        r.clear();
        prop_assert_eq!(r.total(), 0);
        prop_assert!(r.events().is_empty());
        for i in 0..second as u64 {
            r.push(ev(1000 + i));
        }
        prop_assert_eq!(r.total(), second as u64);
        let got = r.events();
        let start = (second as u64).saturating_sub(r.capacity() as u64);
        let want: Vec<Event> = (start..second as u64).map(|i| ev(1000 + i)).collect();
        prop_assert_eq!(got, want);
    }
}
