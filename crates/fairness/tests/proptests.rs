//! Property tests over the telemetry math: histogram bucket edges, count
//! conservation under the epoch-boundary merge, Jain-index bounds, and
//! per-process telemetry bookkeeping.

use proptest::prelude::*;
use wfl_fairness::{jain_index, FixedHistogram, ProcTelemetry, BUCKETS};

/// A deterministic pseudo-random sample stream from a seed (the shim's
/// strategies only draw scalars; streams are derived here).
fn stream(seed: u64, len: usize) -> Vec<u64> {
    let mut x = seed ^ 0x9e37_79b9_7f4a_7c15;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            // Mix magnitudes: small counts, mid-size latencies, huge outliers.
            match x % 5 {
                0 => x % 4,
                1 => x % 100,
                2 => x % 10_000,
                3 => x % (1 << 30),
                _ => x,
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Bucket edges are strictly monotone and partition `u64`: every value
    /// lands in exactly the bucket whose `[lo, hi]` range contains it.
    #[test]
    fn bucket_edges_monotone_and_containing(seed in 0u64..1_000_000) {
        for (i, v) in stream(seed, 64).into_iter().enumerate() {
            let b = FixedHistogram::bucket_of(v);
            prop_assert!(b < BUCKETS);
            prop_assert!(FixedHistogram::bucket_lo(b) <= v, "v {v} below bucket {b}");
            prop_assert!(v <= FixedHistogram::bucket_hi(b), "v {v} above bucket {b}");
            if i == 0 {
                for j in 1..BUCKETS {
                    prop_assert!(FixedHistogram::bucket_hi(j - 1) < FixedHistogram::bucket_lo(j));
                    prop_assert!(FixedHistogram::bucket_lo(j) <= FixedHistogram::bucket_hi(j));
                }
            }
        }
    }

    /// Merging conserves counts exactly: every bucket, the total, the sum
    /// and the max of a merge equal what recording both streams into one
    /// histogram would have produced.
    #[test]
    fn merge_conserves_counts(
        seed_a in 0u64..1_000_000,
        seed_b in 0u64..1_000_000,
        len_a in 0usize..200,
        len_b in 0usize..200,
    ) {
        let (xs, ys) = (stream(seed_a, len_a), stream(seed_b, len_b));
        let mut a = FixedHistogram::new();
        let mut b = FixedHistogram::new();
        let mut both = FixedHistogram::new();
        for &v in &xs { a.record(v); both.record(v); }
        for &v in &ys { b.record(v); both.record(v); }
        a.merge(&b);
        prop_assert_eq!(a.count(), both.count());
        prop_assert_eq!(a.sum(), both.sum());
        prop_assert_eq!(a.max(), both.max());
        for i in 0..BUCKETS {
            prop_assert_eq!(a.bucket_count(i), both.bucket_count(i), "bucket {}", i);
        }
        // Percentiles stay monotone and inside the recorded range.
        let mut prev = 0u64;
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let p = a.percentile(q);
            prop_assert!(p >= prev, "percentile not monotone at q={}", q);
            prop_assert!(p <= a.max());
            prev = p;
        }
    }

    /// Jain's index lies in `[1/n, 1]` for any non-degenerate allocation
    /// and hits 1 exactly on equal shares.
    #[test]
    fn jain_index_bounds(seed in 0u64..1_000_000, n in 1usize..24) {
        let xs: Vec<f64> = stream(seed, n).into_iter().map(|v| (v % 1000) as f64).collect();
        let j = jain_index(&xs);
        prop_assert!(j <= 1.0 + 1e-12, "jain {} > 1", j);
        prop_assert!(j >= 1.0 / n as f64 - 1e-12, "jain {} < 1/{}", j, n);
        let equal = vec![42.0; n];
        prop_assert!((jain_index(&equal) - 1.0).abs() < 1e-12);
        if n > 1 {
            let mut solo = vec![0.0; n];
            solo[0] = 7.0;
            prop_assert!((jain_index(&solo) - 1.0 / n as f64).abs() < 1e-12);
        }
    }

    /// Per-process telemetry bookkeeping: wins and attempts reconcile with
    /// the histograms for arbitrary win/loss sequences, and merging two
    /// telemetries adds their books.
    #[test]
    fn telemetry_books_balance(seed in 0u64..1_000_000, len in 0usize..300) {
        let samples = stream(seed, len);
        let mut t = ProcTelemetry::new();
        let mut wins = 0u64;
        for (i, &s) in samples.iter().enumerate() {
            let won = (s ^ i as u64) & 3 == 0;
            t.record_attempt(won, s % 1000);
            wins += won as u64;
        }
        prop_assert_eq!(t.attempts, len as u64);
        prop_assert_eq!(t.wins, wins);
        prop_assert_eq!(t.tries.count(), wins, "one try-count sample per acquisition");
        prop_assert_eq!(t.latency.count(), wins);
        prop_assert_eq!(t.tries.sum() <= t.attempts, true, "closed streaks cannot exceed attempts");
        prop_assert!(t.max_stretch <= t.attempts.max(1));

        let mut merged = ProcTelemetry::new();
        merged.merge(&t);
        merged.merge(&t);
        prop_assert_eq!(merged.attempts, 2 * t.attempts);
        prop_assert_eq!(merged.wins, 2 * t.wins);
        prop_assert_eq!(merged.tries.count(), 2 * t.tries.count());
        prop_assert_eq!(merged.max_stretch, t.max_stretch);
    }
}
