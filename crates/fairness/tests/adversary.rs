//! Integration tests of the adversary subsystem: real-threads runs across
//! every strength, the epoch-lifecycle soak, sim-vs-real parity of the
//! ported player construction, and the holder-exclusivity audit.

use std::time::Duration;
use wfl_core::{LockId, Scratch};
use wfl_fairness::{run_adversary, AdvStrength, AdversarySpec, FairnessReport};
use wfl_idem::{IdemRun, Registry, TagSource, Thunk};
use wfl_lincheck::holders::{assert_holder_exclusive, check_holder_exclusivity};
use wfl_runtime::real::RealConfig;
use wfl_runtime::sim::SimBuilder;
use wfl_runtime::{Addr, Ctx, Heap};
use wfl_workloads::harness::{AlgoHandle, AlgoKind, ExecMode, SchedKind};
use wfl_workloads::player::{run_player_loop_stats, TargetedStarter};

fn wfl(kappa: usize) -> AlgoKind {
    AlgoKind::Wfl { kappa, delays: true, helping: true }
}

/// Every strength must drive a clean, safety-checked real-threads run in
/// which the victim completes exactly its planned attempts.
#[test]
fn real_adversary_all_strengths_safe_and_complete() {
    for strength in AdvStrength::all() {
        for algo in [wfl(3), AlgoKind::WflUnknown, AlgoKind::Naive, AlgoKind::Tsp] {
            let mut spec = AdversarySpec::new(3, 40);
            spec.strength = strength;
            spec.victim_period = 50;
            spec.seed = 11;
            let r = run_adversary(&spec, algo, &ExecMode::real(3));
            assert!(r.safety_ok, "{strength:?}/{algo:?}: counter != recorded wins");
            let v = r.victim_success();
            assert_eq!(v.trials, 40, "{strength:?}/{algo:?}: victim must complete its rounds");
            assert_eq!(r.epochs, 1);
            assert!(r.wall.is_some());
            assert_eq!(r.per_proc.len(), 3);
            // Telemetry self-consistency: tries histogram counts one entry
            // per successful acquisition, for every process.
            for (pid, t) in r.per_proc.iter().enumerate() {
                assert_eq!(t.tries.count(), t.wins, "{strength:?}/{algo:?}/pid{pid}");
                assert_eq!(t.latency.count(), t.wins, "{strength:?}/{algo:?}/pid{pid}");
                assert!(t.wins <= t.attempts, "{strength:?}/{algo:?}/pid{pid}");
            }
        }
    }
}

/// The tentpole soak shape: a timed run with an epoch length keeps opening
/// fresh heap lifetimes until the wall budget is spent — adversarial runs
/// unbounded by the tag space — with every epoch's safety check green.
#[test]
fn timed_adversarial_soak_crosses_epochs_for_full_budget() {
    let mut spec = AdversarySpec::new(3, 32);
    spec.strength = AdvStrength::Flood;
    spec.victim_period = 20;
    spec.seed = 5;
    let budget = Duration::from_millis(80);
    let mode = ExecMode::real_timed(3, budget).with_epoch_rounds(32);
    let r = run_adversary(&spec, wfl(3), &mode);
    assert!(r.safety_ok, "soak safety failed");
    assert!(r.epochs >= 3, "only {} epochs crossed in {budget:?}", r.epochs);
    assert!(
        r.victim_success().trials > 32,
        "victim attempts {} never exceeded one epoch — epochs not batching",
        r.victim_success().trials
    );
    assert!(r.wall.expect("real runs report wall") >= budget, "soak stopped early");
}

/// The paper bound, deterministically: in the simulator the targeted
/// adversary pushes real contention onto the victim, and the measured
/// success rate must stay at or above `1/C_p = 1/nprocs` (κ = nprocs,
/// L = 1). Repeat runs must reproduce the identical numbers.
#[test]
fn sim_victim_holds_theorem_bound_deterministically() {
    let run = || {
        let mut spec = AdversarySpec::new(3, 60);
        spec.strength = AdvStrength::Targeted;
        spec.heap_words = 1 << 25;
        run_adversary(&spec, wfl(3), &ExecMode::sim(SchedKind::RoundRobin, 300_000_000))
    };
    let r = run();
    assert!(r.safety_ok);
    let v = r.victim_success();
    assert_eq!(v.trials, 60);
    assert!(
        v.rate() >= 1.0 / 3.0,
        "victim rate {:.3} below the 1/C_p bound under the adaptive adversary",
        v.rate()
    );
    let r2 = run();
    assert_eq!(v.successes, r2.victim_success().successes, "sim runs must be deterministic");
    assert_eq!(r.attempts(), r2.attempts());
}

/// The exact critical section `run_adversary` registers, duplicated so the
/// parity test can rebuild the sim arm by hand (any drift in the ported
/// construction shows up as a numeric mismatch).
struct HolderTouchClone;
impl Thunk for HolderTouchClone {
    fn run(&self, run: &mut IdemRun<'_, '_>) {
        let counter = Addr::from_word(run.arg(0));
        let seq = run.read(counter);
        run.write(counter, seq + 1);
        if (seq as u64) < run.arg(2) {
            run.write(Addr::from_word(run.arg(1)).off(seq), run.arg(3) as u32);
        }
    }
    fn max_ops(&self) -> usize {
        3
    }
}

/// Parity: the ported sim arm reproduces a hand-rolled E7 construction —
/// same heap layout, same controller, same player loops — number for
/// number (E7's victim-success figures are the reference the port must
/// preserve).
#[test]
fn ported_sim_arm_reproduces_e7_numbers() {
    let nprocs = 3usize;
    let rounds = 50usize;
    let seed = 1u64;
    let period = 600u64;
    let strength = AdvStrength::Targeted;

    // --- the subsystem under test ---
    let mut spec = AdversarySpec::new(nprocs, rounds);
    spec.strength = strength;
    spec.victim_period = period;
    spec.seed = seed;
    spec.heap_words = 1 << 25;
    let ported = run_adversary(&spec, wfl(nprocs), &ExecMode::sim(SchedKind::RoundRobin, 300_000_000));
    assert!(ported.safety_ok);

    // --- the E7 construction, by hand ---
    let mut registry = Registry::new();
    let touch = registry.register(HolderTouchClone);
    let heap = Heap::new(1 << 25);
    let handle = AlgoHandle::create(&heap, &registry, wfl(nprocs), 1, nprocs, 1, 3);
    let counter = heap.alloc_root(1);
    let results = heap.alloc_root(nprocs * rounds);
    let steps_log = heap.alloc_root(nprocs * rounds);
    let probe = heap.alloc_root(1);
    let adversary = TargetedStarter {
        victim: 0,
        competitors: (1..nprocs).collect(),
        locks: vec![LockId(0)],
        args: vec![counter.to_word(), 0, 0, 0],
        victim_period: period,
        victim_desc_cell: probe,
        strength,
        issued: 0,
    };
    let handle_ref = &handle;
    let report = SimBuilder::new(&heap, nprocs)
        .seed(seed)
        .schedule_box(SchedKind::RoundRobin.build(nprocs, seed))
        .controller(adversary)
        .max_steps(300_000_000)
        .spawn_all(|pid| {
            move |ctx: &Ctx| {
                let mut tags = TagSource::new(pid);
                let mut scratch = Scratch::new();
                if pid == 0 {
                    scratch.probe = Some(probe);
                }
                let base = (pid * rounds) as u32;
                handle_ref.with(|a| {
                    run_player_loop_stats(
                        ctx,
                        a,
                        &mut tags,
                        &mut scratch,
                        touch,
                        results.off(base),
                        steps_log.off(base),
                        rounds as u64,
                    )
                });
            }
        })
        .run();
    report.assert_clean();

    for pid in 0..nprocs {
        let (mut attempts, mut wins) = (0u64, 0u64);
        for slot in 0..rounds {
            match heap.peek(results.off((pid * rounds + slot) as u32)) {
                0 => break,
                o => {
                    attempts += 1;
                    wins += (o == 2) as u64;
                }
            }
        }
        let t = &ported.per_proc[pid];
        assert_eq!(
            (t.attempts, t.wins),
            (attempts, wins),
            "pid {pid}: ported sim arm diverged from the hand-rolled E7 run"
        );
    }
}

/// Recorded real runs produce per-lock holder sequences that pass the
/// lincheck holder-exclusivity audit — and the audit genuinely has teeth:
/// corrupting the recorded sequence trips it.
#[test]
fn real_mode_holder_sequences_pass_the_lincheck_audit() {
    let mut spec = AdversarySpec::new(3, 16);
    spec.nlocks = 2; // rotate the contested lock so the audit covers both
    spec.strength = AdvStrength::Flood;
    spec.victim_period = 30;
    spec.seed = 9;
    spec.record = true;
    let mode = ExecMode::Real {
        threads: 3,
        run_for: None,
        // Precise clock: the audit's real-time precedence needs globally
        // ordered event timestamps.
        cfg: RealConfig::precise(),
        epoch_rounds: Some(8),
        deadline_steps: None,
        recorder: false,
    };
    let r = run_adversary(&spec, wfl(3), &mode);
    assert!(r.safety_ok);
    assert_eq!(r.epochs, 2, "16 rounds at 8/epoch");
    assert_eq!(r.holder_logs.len(), 2, "one holder log per recorded epoch");
    let locks: Vec<u64> = {
        let mut l: Vec<u64> = r.holder_logs.iter().map(|(l, _)| *l).collect();
        l.sort_unstable();
        l
    };
    assert_eq!(locks, vec![0, 1], "the contested lock rotates across epochs");
    assert!(!r.history.is_empty(), "recorded epochs must produce attempt events");
    let total_log: usize = r.holder_logs.iter().map(|(_, t)| t.len()).sum();
    assert_eq!(total_log as u64, r.wins(), "every win appends exactly one holder");
    assert_holder_exclusive(&r.history, &r.holder_logs);

    // Teeth: reverse one busy log — real-time precedence must now
    // contradict the sequence.
    let mut corrupted = r.holder_logs.clone();
    let busy = corrupted.iter_mut().max_by_key(|(_, t)| t.len()).unwrap();
    assert!(busy.1.len() >= 2, "need at least two holders to corrupt");
    busy.1.reverse();
    assert!(
        !check_holder_exclusivity(&r.history, &corrupted).is_empty(),
        "a reversed holder sequence must violate the audit"
    );
}

/// Recording demands globally ordered timestamps: a leased-clock config
/// would let the audit flag correct runs, so the driver refuses it.
#[test]
#[should_panic(expected = "RealConfig::precise")]
fn recorded_runs_reject_the_leased_clock() {
    let mut spec = AdversarySpec::new(2, 4);
    spec.record = true;
    run_adversary(&spec, wfl(2), &ExecMode::real(2)); // real() = fast() = leased
}

/// The probe machinery must not perturb the paper algorithm's fixed
/// attempt length: with delays on, probed and unprobed attempts take the
/// same `T0 + T1` steps (the probe writes land inside the stall windows).
#[test]
fn probing_keeps_wfl_attempt_length_fixed() {
    let run = |probed: bool| -> FairnessReport {
        let mut spec = AdversarySpec::new(2, 10);
        // Calm never reads the probe; this isolates the probe's cost.
        spec.strength = if probed { AdvStrength::Targeted } else { AdvStrength::Calm };
        spec.heap_words = 1 << 24;
        run_adversary(&spec, wfl(2), &ExecMode::sim(SchedKind::RoundRobin, 100_000_000))
    };
    let (a, b) = (run(true), run(false));
    // Latency histograms record per-acquisition step totals; with delays
    // every attempt is exactly T0+T1 (plus think), so the victim's mean
    // latency must agree whether or not the adversary watches.
    let (la, lb) = (&a.per_proc[0].latency, &b.per_proc[0].latency);
    assert!(!la.is_empty() && !lb.is_empty());
    assert_eq!(la.max(), lb.max(), "probe writes leaked outside the delay windows");
}
